//! Property test for the headline guarantee: **exactly-once, in-order
//! delivery to durable subscribers under arbitrary disconnect schedules,
//! link loss and broker crashes** (early release disabled, as in the
//! paper's experiments).
//!
//! Each case builds a 1-PHB/1-SHB system with randomized subscriber
//! schedules and an optional SHB crash, runs it, and checks every
//! subscriber's received `_seq` numbers against the publisher's ground
//! truth: the received sequence must be *exactly* the per-class prefix
//! (modulo an in-flight tail).

use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::{LinkParams, Sim};
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SubPlan {
    class: i64,
    connect_at_ms: u64,
    disconnect_period_ms: Option<u64>,
    disconnect_duration_ms: u64,
}

fn arb_sub_plan() -> impl Strategy<Value = SubPlan> {
    (
        0i64..4,
        0u64..1_500,
        prop_oneof![Just(None), (3_000u64..8_000).prop_map(Some)],
        500u64..3_000,
    )
        .prop_map(|(class, connect_at_ms, period, dur)| SubPlan {
            class,
            connect_at_ms,
            disconnect_period_ms: period,
            disconnect_duration_ms: dur,
        })
}

#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    subs: Vec<SubPlan>,
    crash_at_ms: Option<u64>,
    crash_dur_ms: u64,
    loss_pct: u8,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        any::<u64>(),
        prop::collection::vec(arb_sub_plan(), 1..6),
        prop_oneof![Just(None), (4_000u64..12_000).prop_map(Some)],
        1_000u64..4_000,
        0u8..6,
    )
        .prop_map(|(seed, subs, crash_at_ms, crash_dur_ms, loss_pct)| Case {
            seed,
            subs,
            crash_at_ms,
            crash_dur_ms,
            loss_pct,
        })
}

fn run_case(case: &Case) {
    const RUN_MS: u64 = 25_000;
    let mut sim = Sim::new(case.seed);
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)]),
    );
    let shb = sim.add_typed_node(
        "shb",
        Broker::new(1, Box::new(MemFactory::new()), BrokerConfig::default()).hosting_subscribers(),
    );
    sim.node(phb).add_child(shb.id());
    sim.node(shb).set_parent(phb.id());
    sim.connect_with(
        phb.id(),
        shb.id(),
        LinkParams {
            latency_us: 1_000,
            jitter_us: 500,
            loss: case.loss_pct as f64 / 100.0,
            bytes_per_sec: None,
        },
    );
    let mut subs = Vec::new();
    for (i, plan) in case.subs.iter().enumerate() {
        let cfg = SubscriberConfig {
            collect: true,
            connect_at_us: plan.connect_at_ms * 1_000,
            disconnect_period_us: plan.disconnect_period_ms.map(|v| v * 1_000),
            disconnect_duration_us: plan.disconnect_duration_ms * 1_000,
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        };
        let sub = sim.add_typed_node(
            &format!("sub{i}"),
            SubscriberClient::new(
                SubscriberId(i as u64 + 1),
                shb.id(),
                format!("class = {}", plan.class).as_str(),
                cfg,
            ),
        );
        sim.connect(sub.id(), shb.id(), 500);
        subs.push((sub, plan.class));
    }
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(phb.id(), PubendId(0), 200.0).with_attrs(|seq, _| {
            let mut a = gryphon_types::Attributes::new();
            a.insert("class".into(), ((seq % 4) as i64).into());
            a
        }),
    );
    sim.connect(publisher.id(), phb.id(), 500);
    if let Some(at) = case.crash_at_ms {
        sim.schedule_crash(shb.id(), at * 1_000, case.crash_dur_ms * 1_000);
    }
    sim.run_until(RUN_MS * 1_000);

    for (sub, class) in subs {
        let client = sim.node_ref(sub);
        assert_eq!(
            client.order_violations(),
            0,
            "order violated for class {class} in {case:?}"
        );
        assert_eq!(
            client.gaps_received(),
            0,
            "gap without early release in {case:?}"
        );
        let seqs: Vec<i64> = client
            .received()
            .iter()
            .filter(|r| r.kind == "event")
            .filter_map(|r| r.seq)
            .collect();
        // A subscriber connecting at time T legitimately starts mid-stream
        // (its subscription starts at latestDelivered): the received seqs
        // must be a *contiguous* arithmetic run class, class+4, ... from
        // its first element.
        if let Some(&first) = seqs.first() {
            assert_eq!(
                first % 4,
                class.rem_euclid(4),
                "wrong class delivered in {case:?}"
            );
            for (k, &s) in seqs.iter().enumerate() {
                assert_eq!(
                    s,
                    first + (k as i64) * 4,
                    "hole or duplicate at position {k} for class {class} in {case:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn exactly_once_under_random_schedules(case in arb_case()) {
        run_case(&case);
    }
}

/// A fixed worst-case regression: crash in the middle of several
/// overlapping disconnect windows with lossy links.
#[test]
fn kitchen_sink_regression() {
    run_case(&Case {
        seed: 0xDEAD_BEEF,
        subs: vec![
            SubPlan {
                class: 0,
                connect_at_ms: 0,
                disconnect_period_ms: Some(4_000),
                disconnect_duration_ms: 1_500,
            },
            SubPlan {
                class: 1,
                connect_at_ms: 700,
                disconnect_period_ms: Some(5_500),
                disconnect_duration_ms: 2_500,
            },
            SubPlan {
                class: 0,
                connect_at_ms: 1_200,
                disconnect_period_ms: None,
                disconnect_duration_ms: 1_000,
            },
        ],
        crash_at_ms: Some(6_500),
        crash_dur_ms: 3_000,
        loss_pct: 4,
    });
}
