//! Acceptance tests for the delivery-lineage subsystem: stage-span
//! assembly, the exactly-once delivery ledger, latency-attribution
//! histograms, and the violation flight recorder.
//!
//! Two directions, mirroring `watchdogs.rs`: (1) a real multi-broker
//! run with SHB crashes and subscriber reconnects must leave the ledger
//! spotless under full audit, with complete stage chains and populated
//! catchup/constream histograms; (2) an injected duplicate delivery
//! must trip the ledger exactly once and produce a flight-recorder
//! post-mortem containing that event's lineage.
#![cfg(feature = "trace")]

use gryphon::SubscriberConfig;
use gryphon_harness::{System, TopologySpec, Workload};
use gryphon_sim::{names, DeliveryPath, Sim, TraceEvent};
use gryphon_types::{NodeId, PubendId, SubscriberId, Timestamp};

/// The headline acceptance run: PHB → intermediate → 2 SHBs, one SHB
/// crashing repeatedly while subscribers also take scheduled absences.
/// Every delivery crosses the full pipeline, so afterwards:
///
/// * the full-audit ledger is clean — zero duplicates (in-session and
///   across reconnect), zero gap-beyond-release, zero missing;
/// * every delivered event has a complete broker-side stage chain
///   (timestamped → logged → ingested);
/// * both delivery paths left real latency samples — catchup (recovery
///   reads) *and* constream (steady state) — plus the upstream stages.
#[test]
fn crash_and_reconnect_run_keeps_ledger_clean_with_full_chains() {
    let spec = TopologySpec {
        seed: 203,
        n_shbs: 2,
        intermediate: true,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 4,
        // One class → match-all filters, which the full audit's
        // `missing` check requires (a filtered subscriber legitimately
        // never sees non-matching ticks).
        classes: 1,
        sub_cfg: SubscriberConfig {
            disconnect_period_us: Some(8_000_000),
            disconnect_duration_us: 2_000_000,
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.set_full_audit(true);
    let shb = sys.shbs[1].id();
    for k in 0..2u64 {
        sys.sim
            .schedule_crash(shb, 6_000_000 + k * 14_000_000, 2_000_000);
    }
    sys.sim.run_until(40_000_000);

    assert!(
        sys.sim.metrics().counter("broker.restarts") >= 2.0,
        "the crashes must actually have happened"
    );
    assert_eq!(sys.total_order_violations(), 0);
    assert_eq!(sys.total_gaps(), 0);

    // Exactly-once, audited offline against the durable log.
    let audit = sys.sim.ledger_audit();
    assert!(audit.is_clean(), "ledger not clean: {audit:?}");
    assert_eq!(sys.sim.ledger_violations(), 0);

    // Every delivered event assembled a complete stage chain.
    let incomplete = sys.sim.lineage().incomplete_delivered();
    assert!(
        incomplete.is_empty(),
        "{} delivered events with broken stage chains, e.g. {}",
        incomplete.len(),
        incomplete[0]
    );

    // Latency attribution has real samples at every stage, on both
    // delivery paths.
    let m = sys.sim.metrics();
    for stage in [
        names::LINEAGE_STAGE_LOG_US,
        names::LINEAGE_STAGE_IB_FORWARD_US,
        names::LINEAGE_STAGE_SHB_INGEST_US,
        names::LINEAGE_STAGE_CATCHUP_US,
        names::LINEAGE_STAGE_CONSTREAM_US,
        names::LINEAGE_STAGE_DELIVER_US,
    ] {
        assert!(
            m.percentile(stage, 0.5).is_some(),
            "stage histogram {stage} is empty"
        );
    }
}

const N: NodeId = NodeId(42);
const P: PubendId = PubendId(7);
const SUB: SubscriberId = SubscriberId(9);

/// Pushes one event's full life through an unarmed sim: timestamped,
/// logged, forwarded, ingested, resumed session, delivered once.
fn seed_one_delivery(sim: &mut Sim, ts: Timestamp) {
    sim.inject_trace(N, TraceEvent::PubendTimestamped { pubend: P, ts });
    sim.inject_trace(
        N,
        TraceEvent::EventLogged {
            pubend: P,
            ts,
            bytes: 418,
        },
    );
    sim.inject_trace(N, TraceEvent::IbForwarded { pubend: P, ts });
    sim.inject_trace(N, TraceEvent::ShbIngested { pubend: P, ts });
    sim.inject_trace(
        N,
        TraceEvent::SubResumed {
            sub: SUB,
            pubend: P,
            at: Timestamp::ZERO,
        },
    );
    sim.inject_trace(
        N,
        TraceEvent::Delivered {
            pubend: P,
            ts,
            sub: SUB,
            path: DeliveryPath::Constream,
        },
    );
}

/// An injected duplicate delivery is flagged exactly once, and the
/// flight recorder dumps a post-mortem containing the offending event's
/// reconstructed lineage.
#[test]
fn injected_duplicate_trips_ledger_once_and_dumps_flight_recorder() {
    let dir = std::env::temp_dir().join(format!(
        "gryphon-lineage-test-{}-{}",
        std::process::id(),
        "dup"
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut sim = Sim::new(1);
    sim.set_watchdog_panic(false);
    sim.set_ledger_panic(false);
    sim.set_flight_dir(Some(dir.clone()));

    let ts = Timestamp(5_000);
    seed_one_delivery(&mut sim, ts);
    assert_eq!(sim.ledger_violations(), 0);
    assert_eq!(sim.flight_dumps(), 0);

    // The fault: the same event delivered to the same subscriber again.
    sim.inject_trace(
        N,
        TraceEvent::Delivered {
            pubend: P,
            ts,
            sub: SUB,
            path: DeliveryPath::Constream,
        },
    );
    assert_eq!(sim.ledger_violations(), 1, "exactly one violation");
    assert_eq!(sim.ledger_audit().duplicates, 1);
    assert_eq!(sim.metrics().counter(names::LINEAGE_LEDGER_DUPLICATE), 1.0);

    // Subsequent clean deliveries raise no further flags.
    sim.inject_trace(
        N,
        TraceEvent::Delivered {
            pubend: P,
            ts: Timestamp(6_000),
            sub: SUB,
            path: DeliveryPath::Constream,
        },
    );
    assert_eq!(sim.ledger_violations(), 1);

    // The flight recorder wrote exactly one post-mortem …
    assert_eq!(sim.flight_dumps(), 1);
    assert_eq!(sim.metrics().counter(names::LINEAGE_FLIGHT_DUMPS), 1.0);
    let dump = dir.join("postmortem-0.txt");
    let contents = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("missing {}: {e}", dump.display()));

    // … whose reason names the ledger and whose body carries the
    // offending event's lineage span with every recorded anchor.
    assert!(contents.contains("reason: ledger: duplicate delivery"));
    assert!(contents.contains("## lineage of offending event"));
    assert!(contents.contains(&format!("span {}", gryphon_types::LineageKey::new(P, ts))));
    assert!(
        contents.contains("deliveries:  2"),
        "span should show both deliveries"
    );
    assert!(contents.contains("## metrics snapshot"));
    assert!(contents.contains("## trace ring tail"));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The `xp --flight-dir` plumbing: arming the harness-wide default
/// flight directory reaches the simulator every topology builds.
#[test]
fn default_flight_dir_arms_built_systems() {
    let dir = std::env::temp_dir().join(format!(
        "gryphon-lineage-test-{}-{}",
        std::process::id(),
        "topo"
    ));
    let _ = std::fs::remove_dir_all(&dir);
    gryphon_harness::topology::set_default_flight_dir(Some(dir.clone()));
    let mut sys = System::build(&TopologySpec::default(), &Workload::default());
    gryphon_harness::topology::set_default_flight_dir(None);

    sys.sim.set_watchdog_panic(false);
    sys.sim.set_ledger_panic(false);
    let ts = Timestamp(5_000);
    for _ in 0..2 {
        sys.sim.inject_trace(
            N,
            TraceEvent::Delivered {
                pubend: P,
                ts,
                sub: SUB,
                path: DeliveryPath::Constream,
            },
        );
    }
    assert_eq!(sys.sim.flight_dumps(), 1);
    assert!(
        dir.join("postmortem-0.txt").is_file(),
        "the armed system must dump into the configured directory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A delivery at or below the session's resume checkpoint is the
/// reconnect-duplicate flavour, counted separately.
#[test]
fn delivery_below_resume_checkpoint_is_a_reconnect_duplicate() {
    let mut sim = Sim::new(1);
    sim.set_watchdog_panic(false);
    sim.set_ledger_panic(false);
    seed_one_delivery(&mut sim, Timestamp(5_000));
    // The subscriber reconnects with a checkpoint at 5 000 …
    sim.inject_trace(
        N,
        TraceEvent::SubResumed {
            sub: SUB,
            pubend: P,
            at: Timestamp(5_000),
        },
    );
    // … and the broker replays tick 5 000 anyway.
    sim.inject_trace(
        N,
        TraceEvent::Delivered {
            pubend: P,
            ts: Timestamp(5_000),
            sub: SUB,
            path: DeliveryPath::Catchup,
        },
    );
    assert_eq!(sim.ledger_violations(), 1);
    let audit = sim.ledger_audit();
    assert_eq!(audit.reconnect_duplicates, 1);
    assert_eq!(audit.duplicates, 0, "counted as the reconnect flavour");
    assert_eq!(
        sim.metrics()
            .counter(names::LINEAGE_LEDGER_RECONNECT_DUPLICATE),
        1.0
    );
}

/// A gap message claiming ticks beyond the L-conversion boundary is a
/// protocol violation — early release must never outrun LConverted.
#[test]
fn gap_beyond_release_boundary_is_flagged() {
    let mut sim = Sim::new(1);
    sim.set_watchdog_panic(false);
    sim.set_ledger_panic(false);
    sim.inject_trace(
        N,
        TraceEvent::LConverted {
            pubend: P,
            upto: Timestamp(10_000),
        },
    );
    // Within the released prefix: fine.
    sim.inject_trace(
        N,
        TraceEvent::GapDelivered {
            pubend: P,
            sub: SUB,
            upto: Timestamp(8_000),
        },
    );
    assert_eq!(sim.ledger_violations(), 0);
    // Beyond it: flagged.
    sim.inject_trace(
        N,
        TraceEvent::GapDelivered {
            pubend: P,
            sub: SUB,
            upto: Timestamp(12_000),
        },
    );
    assert_eq!(sim.ledger_violations(), 1);
    assert_eq!(sim.ledger_audit().gap_beyond_release, 1);
}

/// The armed ledger aborts the run on a violation (the debug-build
/// default inside experiments), after the flight recorder has dumped.
#[test]
#[should_panic(expected = "delivery ledger")]
fn armed_ledger_panics_on_duplicate() {
    let mut sim = Sim::new(1);
    sim.set_ledger_panic(true);
    let ts = Timestamp(5_000);
    seed_one_delivery(&mut sim, ts);
    sim.inject_trace(
        N,
        TraceEvent::Delivered {
            pubend: P,
            ts,
            sub: SUB,
            path: DeliveryPath::Constream,
        },
    );
}
