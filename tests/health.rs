//! Acceptance test for the online health engine (DESIGN.md §14): the
//! engine armed with the default rules must stay silent on a clean
//! PHB → IB → 2-SHB run, and on the same run with an SHB crash it must
//! raise the `catchup_backlog` sustained-growth alert during the
//! recovery transient and clear it by the tail — with the transitions
//! visible in the timeline alert log, the rendered report's ALERTS
//! section, and the Prometheus snapshot. Offline replay over the
//! exported timeline (`xp doctor check`) must reproduce the online
//! alert log exactly.
#![cfg(feature = "trace")]

use gryphon::SubscriberConfig;
use gryphon_harness::{Report, System, TopologySpec, Workload};
use gryphon_sim::telemetry::Timeline;
use gryphon_sim::{default_rules, AlertState};

const CRASH_AT_US: u64 = 10_000_000;
const CRASH_DUR_US: u64 = 2_000_000;
const RUN_US: u64 = 30_000_000;

/// The crash topology from `tests/telemetry.rs`: bounded SHB→client
/// bandwidth paces the post-crash catchup so the backlog transient
/// spans several sample windows — exactly what the sustained-growth
/// rule watches for.
fn build(crash: bool) -> (Timeline, f64, String) {
    let spec = TopologySpec {
        seed: 13,
        n_shbs: 2,
        intermediate: true,
        client_bw: Some(300_000),
        ..TopologySpec::default()
    };
    let workload = Workload {
        input_rate: 400.0,
        subs_per_shb: 3,
        classes: 1,
        sub_cfg: SubscriberConfig {
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.enable_telemetry(500_000);
    sys.sim.enable_health(default_rules());
    if crash {
        sys.sim
            .schedule_crash(sys.shbs[1].id(), CRASH_AT_US, CRASH_DUR_US);
    }
    sys.sim.run_until(RUN_US);
    assert_eq!(sys.total_order_violations(), 0);
    assert!(sys.total_events() > 100, "workload must deliver");
    let counter = sys
        .sim
        .metrics()
        .counter(gryphon_sim::names::HEALTH_ALERT_CATCHUP_BACKLOG);
    let prom = gryphon_sim::lineage::prometheus_text(sys.sim.metrics());
    let timeline = sys.sim.take_telemetry().expect("sampler was armed");
    (timeline, counter, prom)
}

#[test]
fn clean_run_raises_no_alerts() {
    let (timeline, counter, prom) = build(false);
    assert!(
        timeline.alerts().is_empty(),
        "clean run must stay quiet, got {:?}",
        timeline.alerts()
    );
    assert_eq!(counter, 0.0, "alert counter must be primed at zero");
    // Primed-at-zero counters keep the family visible in Prometheus so
    // "no alerts" is an observable fact, not a missing series.
    assert!(
        prom.contains("health_alert_catchup_backlog 0"),
        "prom snapshot must carry the primed alert counter"
    );
    // The report shows the engine as armed-but-quiet.
    let mut report = Report::new("health-clean");
    report.attach_telemetry(timeline);
    // attach_metrics is skipped here; the armed marker comes from the
    // health.alert.* counters, so render without them shows nothing.
    assert!(!report.render().contains("FIRING"));
}

#[test]
fn crash_fires_catchup_backlog_and_clears() {
    let (timeline, counter, prom) = build(true);
    let alerts = timeline.alerts();
    let restart_us = CRASH_AT_US + CRASH_DUR_US;

    let firing: Vec<_> = alerts
        .iter()
        .filter(|a| a.rule == "catchup_backlog" && a.state == AlertState::Firing)
        .collect();
    assert!(
        !firing.is_empty(),
        "crash must raise catchup_backlog; alert log: {alerts:?}"
    );
    // The alert belongs to the recovery transient, not the steady state.
    for a in &firing {
        assert!(
            a.t_us >= CRASH_AT_US && a.t_us <= restart_us + 10_000_000,
            "firing at {} µs is outside the transient",
            a.t_us
        );
    }
    // And it clears again: the last catchup_backlog transition in the
    // log is a Cleared, strictly after the first Firing.
    let last = alerts
        .iter()
        .rfind(|a| a.rule == "catchup_backlog")
        .unwrap();
    assert_eq!(
        last.state,
        AlertState::Cleared,
        "backlog alert must clear by the tail; alert log: {alerts:?}"
    );
    assert!(last.t_us > firing[0].t_us);

    // The firing incremented the counter, which shows up in Prometheus.
    assert!(counter >= 1.0, "counter must count firings, got {counter}");
    let prom_line = prom
        .lines()
        .find(|l| l.starts_with("health_alert_catchup_backlog "))
        .expect("prom snapshot must carry the alert counter");
    let value: f64 = prom_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(value >= 1.0, "{prom_line}");

    // The rendered report carries an ALERTS section with the firing.
    let mut report = Report::new("health-crash");
    report.attach_telemetry(timeline);
    let text = report.render();
    assert!(text.contains("## ALERTS"), "{text}");
    assert!(text.contains("FIRING"), "{text}");
    assert!(text.contains("catchup_backlog"), "{text}");
}

/// `xp doctor check` replays the default rules over a bundle's exported
/// timeline. The engine only ever reads samples at or before its
/// evaluation time, so replay must reproduce the online alert log
/// *exactly* — same transitions, same order, same timestamps — even
/// after a round-trip through the ndjson export.
#[test]
fn offline_replay_reproduces_online_alert_log() {
    let (timeline, _, _) = build(true);
    assert!(!timeline.alerts().is_empty(), "crash run must alert");

    let replayed = gryphon_harness::doctor::replay_health(&timeline);
    assert_eq!(replayed, timeline.alerts(), "replay must match online");

    // Same through the bundle's export formats (what doctor reads).
    let parsed = Timeline::from_ndjson(&timeline.to_ndjson(), timeline.interval_us()).unwrap();
    let replayed_from_export = gryphon_harness::doctor::replay_health(&parsed);
    assert_eq!(replayed_from_export, timeline.alerts());
}
