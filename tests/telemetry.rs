//! Acceptance test for the time-resolved telemetry layer (DESIGN.md
//! §13): a full PHB → IB → 2-SHB run through an SHB crash and
//! reconnect, with the windowed sampler armed, must *show the
//! transient* — queue depth and catchup backlog spike after the crash
//! and drain back to baseline — and the timeline must export cleanly.
#![cfg(feature = "trace")]

use gryphon::SubscriberConfig;
use gryphon_harness::{System, TopologySpec, Workload};
use gryphon_sim::telemetry::Timeline;

const CRASH_AT_US: u64 = 10_000_000;
const CRASH_DUR_US: u64 = 2_000_000;
const RUN_US: u64 = 30_000_000;

/// Builds and runs the crash workload with the sampler armed at 500 ms
/// windows, returning the collected timeline.
fn crash_run() -> Timeline {
    let spec = TopologySpec {
        seed: 13,
        n_shbs: 2,
        intermediate: true,
        // Bound SHB→client bandwidth so the post-crash catchup is paced
        // by flow control and the transient spans several sample
        // windows. The cap must still exceed the steady-state delivery
        // rate (classes:1 → every subscriber gets all 400 ev/s × 418 B
        // ≈ 167 kB/s), otherwise backlog grows without bound and never
        // drains.
        client_bw: Some(300_000),
        ..TopologySpec::default()
    };
    let workload = Workload {
        input_rate: 400.0,
        subs_per_shb: 3,
        classes: 1,
        sub_cfg: SubscriberConfig {
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.enable_telemetry(500_000);
    sys.sim
        .schedule_crash(sys.shbs[1].id(), CRASH_AT_US, CRASH_DUR_US);
    sys.sim.run_until(RUN_US);

    assert!(
        sys.sim.metrics().counter("broker.restarts") >= 1.0,
        "the crash must actually have happened"
    );
    assert_eq!(sys.total_order_violations(), 0);
    assert!(sys.total_events() > 100, "workload must deliver");
    sys.sim.take_telemetry().expect("sampler was armed")
}

/// Largest sample of `series` within `[from_us, to_us]`.
fn window_max(timeline: &Timeline, series: &str, from_us: u64, to_us: u64) -> f64 {
    timeline
        .series(series)
        .iter()
        .filter(|&&(t, _)| t >= from_us && t <= to_us)
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max)
}

#[test]
fn crash_transient_is_visible_in_telemetry_and_drains() {
    let timeline = crash_run();
    let restart_us = CRASH_AT_US + CRASH_DUR_US;

    // Window boundaries: steady state well after the initial connect
    // storm, the recovery transient right after the SHB restarts, and
    // the tail once catchup has finished.
    let baseline = |series: &str| window_max(&timeline, series, 5_000_000, CRASH_AT_US);
    let spike = |series: &str| window_max(&timeline, series, restart_us, restart_us + 10_000_000);
    let tail = |series: &str| window_max(&timeline, series, RUN_US - 5_000_000, RUN_US);

    // Catchup backlog: near zero in steady state, strictly positive
    // while the crashed SHB's subscribers replay the outage, near zero
    // again once they have caught up.
    let backlog = "telemetry.catchup_backlog_ticks";
    assert!(
        !timeline.series(backlog).is_empty(),
        "backlog series missing; have {:?}",
        timeline.series_names()
    );
    let (b0, b1, b2) = (baseline(backlog), spike(backlog), tail(backlog));
    assert!(
        b1 > 0.0,
        "catchup backlog must spike after the crash (baseline {b0}, spike {b1})"
    );
    assert!(
        b1 > 2.0 * b0.max(1.0),
        "spike ({b1}) must rise clearly above the steady state ({b0})"
    );
    assert!(
        b2 < b1 / 2.0,
        "backlog must drain back toward baseline (spike {b1}, tail {b2})"
    );

    // Scheduler queue depth: the paced catchup burst keeps many future
    // deliveries scheduled at once, so the gauge rises above its
    // steady-state level during recovery and settles afterwards.
    let depth = "telemetry.queue_depth";
    let (q0, q1, q2) = (baseline(depth), spike(depth), tail(depth));
    assert!(
        q1 > q0,
        "queue depth must spike above baseline after the crash ({q0} -> {q1})"
    );
    assert!(
        q2 < q1,
        "queue depth must come back down after recovery (spike {q1}, tail {q2})"
    );

    // The doubt-horizon width series from the SHB pipelines also
    // surfaced (the aggregate is derived from the .n<i>.p<j> shards).
    assert!(
        timeline
            .series_names()
            .iter()
            .any(|n| n.starts_with("telemetry.doubt_width_ticks")),
        "doubt-width series missing; have {:?}",
        timeline.series_names()
    );

    // Exports stay consistent with each other and with the timeline.
    let nd = timeline.to_ndjson();
    assert_eq!(nd.lines().count(), timeline.len());
    assert_eq!(timeline.to_csv().lines().count(), timeline.len() + 1);
}
