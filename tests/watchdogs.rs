//! Fault-injection tests for the protocol-invariant watchdogs.
//!
//! Two directions: (1) real failures — an SHB crash mid-catchup — must
//! leave every watchdog quiet after recovery (the protocol actually
//! upholds its invariants under faults); (2) deliberately corrupted
//! trace records must each be flagged as exactly one violation (the
//! watchdogs actually bite). Only meaningful with the observability
//! layer compiled in.
#![cfg(feature = "trace")]

use gryphon::SubscriberConfig;
use gryphon_harness::{System, TopologySpec, Workload};
use gryphon_sim::{names, Sim, TraceEvent};
use gryphon_types::{NodeId, PubendId, Timestamp};

/// An SHB that crashes while its subscribers are mid-catchup: after
/// recovery the constream must restart gap-free, the doubt horizon must
/// stay monotone, and the PHB must not re-log — zero violations, with
/// the watchdog panic armed the whole time so any violation would also
/// abort the run.
#[test]
fn shb_crash_mid_catchup_keeps_watchdogs_quiet() {
    let spec = TopologySpec {
        seed: 301,
        n_shbs: 1,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 6,
        sub_cfg: SubscriberConfig {
            // Periodic absences keep catchup streams in flight so the
            // crash lands mid-catchup for at least some subscribers.
            disconnect_period_us: Some(6_000_000),
            disconnect_duration_us: 2_000_000,
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.set_trace_capacity(1_000_000);
    sys.sim.set_watchdog_panic(true);
    sys.sim
        .schedule_crash(sys.shbs[0].id(), 9_000_000, 2_000_000);
    sys.sim.run_until(40_000_000);

    assert!(
        sys.sim.metrics().counter("broker.restarts") >= 1.0,
        "the crash must actually have happened"
    );
    assert_eq!(sys.total_order_violations(), 0);
    assert_eq!(sys.total_gaps(), 0);
    assert_eq!(
        sys.sim.watchdog_violations(),
        0,
        "crash recovery must not trip any protocol-invariant watchdog"
    );

    // The run must have exercised all three watchdogs with real traffic,
    // not vacuously passed.
    let mut gap_checks = 0u64;
    let mut doubt = 0u64;
    let mut logged = 0u64;
    let mut catchups = 0u64;
    let mut switchovers = 0u64;
    let mut restarts = 0u64;
    for r in sys.sim.trace_records() {
        match r.event {
            TraceEvent::ConstreamGapCheck { .. } => gap_checks += 1,
            TraceEvent::DoubtAdvanced { .. } => doubt += 1,
            TraceEvent::EventLogged { .. } => logged += 1,
            TraceEvent::CatchupStarted { .. } => catchups += 1,
            TraceEvent::Switchover { .. } => switchovers += 1,
            TraceEvent::NodeRestarted => restarts += 1,
            _ => {}
        }
    }
    assert!(
        gap_checks > 100,
        "constream watchdog barely exercised: {gap_checks}"
    );
    assert!(doubt > 100, "doubt watchdog barely exercised: {doubt}");
    assert!(
        logged > 100,
        "only-once-log watchdog barely exercised: {logged}"
    );
    assert!(
        catchups >= 1,
        "no catchup ever started — crash not mid-catchup"
    );
    assert!(
        switchovers >= 1,
        "no catchup ever switched over to the constream"
    );
    assert!(restarts >= 1, "restart trace event missing");

    // The switchover-latency histogram the experiments report must have
    // real samples from those catchups.
    assert!(sys
        .sim
        .metrics()
        .percentile(names::SHB_SWITCHOVER_LATENCY_US, 0.95)
        .is_some());
}

const N: NodeId = NodeId(42);
const P: PubendId = PubendId(7);

/// A sim with disarmed watchdog panics, for counting violations.
fn quiet_sim() -> Sim {
    let mut sim = Sim::new(1);
    sim.set_watchdog_panic(false);
    sim
}

/// A constream advance whose start doesn't meet the previous advance's
/// end is a gap: exactly one violation, and consistent records around it
/// stay clean.
#[test]
fn corrupted_constream_record_flags_exactly_one_gap() {
    let mut sim = quiet_sim();
    sim.inject_trace(
        N,
        TraceEvent::ConstreamGapCheck {
            pubend: P,
            prev: Timestamp(0),
            new_to: Timestamp(10),
        },
    );
    assert_eq!(sim.watchdog_violations(), 0);
    // Corrupted: claims to continue from 5, but the stream ended at 10.
    sim.inject_trace(
        N,
        TraceEvent::ConstreamGapCheck {
            pubend: P,
            prev: Timestamp(5),
            new_to: Timestamp(20),
        },
    );
    assert_eq!(sim.watchdog_violations(), 1);
    assert_eq!(sim.metrics().counter(names::WATCHDOG_CONSTREAM_GAP), 1.0);
    // Back on track from the corrupted record's frontier: no new flags.
    sim.inject_trace(
        N,
        TraceEvent::ConstreamGapCheck {
            pubend: P,
            prev: Timestamp(20),
            new_to: Timestamp(30),
        },
    );
    assert_eq!(sim.watchdog_violations(), 1);
}

/// A doubt horizon moving backwards is flagged once; equal (no-progress)
/// re-reports are fine.
#[test]
fn corrupted_doubt_horizon_flags_exactly_one_regression() {
    let mut sim = quiet_sim();
    for h in [100u64, 150, 150] {
        sim.inject_trace(
            N,
            TraceEvent::DoubtAdvanced {
                pubend: P,
                horizon: Timestamp(h),
            },
        );
    }
    assert_eq!(
        sim.watchdog_violations(),
        0,
        "equal horizons are not a regression"
    );
    sim.inject_trace(
        N,
        TraceEvent::DoubtAdvanced {
            pubend: P,
            horizon: Timestamp(40),
        },
    );
    assert_eq!(sim.watchdog_violations(), 1);
    assert_eq!(sim.metrics().counter(names::WATCHDOG_DOUBT_REGRESSION), 1.0);
}

/// Logging the same tick twice at the PHB violates only-once logging —
/// and a node restart must NOT excuse it (the log is persistent).
#[test]
fn duplicate_log_record_flags_violation_even_across_restart() {
    let mut sim = quiet_sim();
    let logged = |ts: u64| TraceEvent::EventLogged {
        pubend: P,
        ts: Timestamp(ts),
        bytes: 418,
    };
    sim.inject_trace(N, logged(10));
    sim.inject_trace(N, logged(11));
    assert_eq!(sim.watchdog_violations(), 0);
    sim.inject_trace(N, logged(11));
    assert_eq!(sim.watchdog_violations(), 1);
    assert_eq!(sim.metrics().counter(names::WATCHDOG_DUPLICATE_LOG), 1.0);
    // The delivery-side checkers reset on restart; the logging checker
    // must not — re-logging tick 11 after a restart is still a dup.
    sim.inject_trace(N, TraceEvent::NodeRestarted);
    sim.inject_trace(N, logged(11));
    assert_eq!(sim.watchdog_violations(), 2);
    assert_eq!(sim.metrics().counter(names::WATCHDOG_DUPLICATE_LOG), 2.0);
}

/// Mixed corruption across all three invariants: each per-kind counter
/// records its own violations, and the back-compat total is their sum.
#[test]
fn per_kind_counters_partition_the_total() {
    let mut sim = quiet_sim();
    // Two constream gaps.
    for (prev, new_to) in [(0u64, 10), (5, 20), (15, 30)] {
        sim.inject_trace(
            N,
            TraceEvent::ConstreamGapCheck {
                pubend: P,
                prev: Timestamp(prev),
                new_to: Timestamp(new_to),
            },
        );
    }
    // One doubt regression.
    for h in [100u64, 40] {
        sim.inject_trace(
            N,
            TraceEvent::DoubtAdvanced {
                pubend: P,
                horizon: Timestamp(h),
            },
        );
    }
    // One duplicate log.
    for ts in [7u64, 7] {
        sim.inject_trace(
            N,
            TraceEvent::EventLogged {
                pubend: P,
                ts: Timestamp(ts),
                bytes: 418,
            },
        );
    }
    let m = sim.metrics();
    assert_eq!(m.counter(names::WATCHDOG_CONSTREAM_GAP), 2.0);
    assert_eq!(m.counter(names::WATCHDOG_DOUBT_REGRESSION), 1.0);
    assert_eq!(m.counter(names::WATCHDOG_DUPLICATE_LOG), 1.0);
    assert_eq!(
        sim.watchdog_violations(),
        4,
        "the total must stay the sum of the per-kind counters"
    );
}

/// The armed watchdog panics on a violation (the debug-build behaviour
/// inside experiments).
#[test]
#[should_panic(expected = "invariant watchdog")]
fn armed_watchdog_panics_on_violation() {
    let mut sim = Sim::new(1);
    sim.set_watchdog_panic(true);
    sim.inject_trace(
        N,
        TraceEvent::DoubtAdvanced {
            pubend: P,
            horizon: Timestamp(100),
        },
    );
    sim.inject_trace(
        N,
        TraceEvent::DoubtAdvanced {
            pubend: P,
            horizon: Timestamp(10),
        },
    );
}
