//! Cross-crate integration tests: harness topologies + core protocol +
//! fault injection, verified against publisher ground truth.

use gryphon::{BrokerConfig, SubscriberConfig};
use gryphon_harness::{System, TopologySpec, Workload};
use gryphon_sim::LinkParams;

/// Every subscriber of a system received the exact per-class prefix of
/// published sequence numbers (tail-in-flight tolerated), with no gaps
/// and no order violations.
fn assert_system_exact(sys: &System, min_events: u64) {
    assert_eq!(sys.total_order_violations(), 0);
    assert_eq!(sys.total_gaps(), 0);
    for &(h, _) in &sys.subscribers {
        let client = sys.sim.node_ref(h);
        assert!(
            client.events_received() >= min_events,
            "{:?} received only {}",
            h.id(),
            client.events_received()
        );
    }
}

#[test]
fn four_shb_tree_with_intermediate_steady() {
    let spec = TopologySpec {
        seed: 201,
        n_shbs: 4,
        intermediate: true,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 8,
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.run_until(10_000_000);
    assert_system_exact(&sys, 1_000);
    // The intermediate consolidated traffic: its cache answered no nacks
    // in steady state, but knowledge flowed through it.
    assert!(sys.sim.busy_us(sys.intermediates[0].id()) > 0);
}

#[test]
fn lossy_links_still_deliver_exactly_once() {
    // 5% message loss on the broker link: curiosity/nack recovery must
    // fill every hole.
    let spec = TopologySpec {
        seed: 202,
        n_shbs: 1,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 4,
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    // Replace the broker link with a lossy one.
    sys.sim.connect_with(
        sys.phb.id(),
        sys.shbs[0].id(),
        LinkParams {
            latency_us: 1_000,
            jitter_us: 500,
            loss: 0.05,
            bytes_per_sec: None,
        },
    );
    sys.sim.run_until(30_000_000);
    assert_eq!(sys.total_order_violations(), 0);
    assert_eq!(sys.total_gaps(), 0);
    assert!(
        sys.sim.metrics().counter("net.dropped") > 50.0,
        "loss injection should actually drop messages"
    );
    // Despite the loss, subscribers track the stream (within recovery lag).
    for &(h, _) in &sys.subscribers {
        let client = sys.sim.node_ref(h);
        assert!(
            client.events_received() > 5_000,
            "lossy link stalled delivery: {}",
            client.events_received()
        );
    }
}

#[test]
fn repeated_shb_crashes_never_lose_or_duplicate() {
    let spec = TopologySpec {
        seed: 203,
        n_shbs: 1,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 6,
        sub_cfg: SubscriberConfig {
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    let shb = sys.shbs[0].id();
    // Three crash/recovery cycles.
    for k in 0..3u64 {
        sys.sim
            .schedule_crash(shb, 5_000_000 + k * 12_000_000, 2_000_000);
    }
    sys.sim.run_until(50_000_000);
    assert!(sys.sim.metrics().counter("broker.restarts") >= 3.0);
    assert_system_exact(&sys, 6_000);
}

#[test]
fn phb_and_shb_crash_in_same_run() {
    let spec = TopologySpec {
        seed: 204,
        n_shbs: 2,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 4,
        sub_cfg: SubscriberConfig {
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim
        .schedule_crash(sys.shbs[0].id(), 5_000_000, 2_000_000);
    sys.sim.schedule_crash(sys.phb.id(), 12_000_000, 2_000_000);
    sys.sim.run_until(40_000_000);
    // PHB crashes lose unlogged publishes (publisher-side, allowed), so
    // only order/gap invariants are asserted globally…
    assert_eq!(sys.total_order_violations(), 0);
    assert_eq!(sys.total_gaps(), 0);
    // …and everyone kept making progress afterwards.
    for &(h, _) in &sys.subscribers {
        assert!(sys.sim.node_ref(h).events_received() > 4_000);
    }
}

#[test]
fn early_release_bounds_phb_storage() {
    let spec = TopologySpec {
        seed: 205,
        n_shbs: 1,
        broker_config: BrokerConfig {
            max_retain_ticks: Some(2_000),
            cache_window_ticks: 1_000,
            ..BrokerConfig::default()
        },
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 2,
        sub_cfg: SubscriberConfig {
            // One subscriber index (0) stays connected; give both a
            // schedule and rely on staggering for variety.
            disconnect_period_us: Some(8_000_000),
            disconnect_duration_us: 6_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.run_until(40_000_000);
    assert_eq!(sys.total_order_violations(), 0);
    // Long absences beyond maxRetain must have produced gap messages.
    assert!(sys.total_gaps() > 0, "early release must gap the laggards");
    // And the release protocol actually reclaimed PHB storage.
    assert!(
        sys.sim.metrics().counter("phb.early_release_advances") > 0.0,
        "the release protocol should have advanced the lost prefix"
    );
}

#[test]
fn deterministic_replay_same_seed_same_world() {
    let run = |seed: u64| -> (u64, u64, f64) {
        let spec = TopologySpec {
            seed,
            n_shbs: 2,
            ..TopologySpec::default()
        };
        let workload = Workload {
            subs_per_shb: 4,
            sub_cfg: SubscriberConfig {
                disconnect_period_us: Some(6_000_000),
                disconnect_duration_us: 1_000_000,
                ..SubscriberConfig::default()
            },
            ..Workload::default()
        };
        let mut sys = System::build(&spec, &workload);
        sys.sim
            .schedule_crash(sys.shbs[1].id(), 4_000_000, 1_500_000);
        sys.sim.run_until(20_000_000);
        (
            sys.total_events(),
            sys.sim.events_processed(),
            sys.sim.metrics().counter("shb.delivered"),
        )
    };
    assert_eq!(run(99), run(99), "same seed must replay identically");
}

#[test]
fn intermediate_cache_absorbs_recovery_nacks() {
    // PHB → intermediate → 2 SHBs; one SHB crashes briefly. Its recovery
    // nacks should be answered by the intermediate's knowledge cache —
    // the paper's "caching events at intermediate brokers increases
    // scalability of recovery".
    let spec = TopologySpec {
        seed: 206,
        n_shbs: 2,
        intermediate: true,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 4,
        sub_cfg: SubscriberConfig {
            probe_interval_us: 1_000_000,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim
        .schedule_crash(sys.shbs[1].id(), 5_000_000, 2_000_000);
    sys.sim.run_until(20_000_000);
    assert_system_exact(&sys, 2_500);
    assert!(
        sys.sim.metrics().counter("broker.cache_answers") > 0.0,
        "the intermediate cache should have answered recovery nacks"
    );
}
