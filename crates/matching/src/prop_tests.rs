//! Property tests: the counting index is equivalent to naive evaluation.

use crate::{Filter, MatchScratch, Op, Predicate, SubscriptionIndex};
use gryphon_types::{AttrValue, Event, PubendId, SubscriberId, Timestamp};
use proptest::prelude::*;

const ATTRS: &[&str] = &["class", "price", "sym", "region", "qty"];

fn arb_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (-5i64..5).prop_map(AttrValue::Int),
        (-2.0f64..2.0).prop_map(AttrValue::Float),
        "[a-c]{1,3}".prop_map(AttrValue::Str),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Eq),
        Just(Op::Ne),
        Just(Op::Lt),
        Just(Op::Le),
        Just(Op::Gt),
        Just(Op::Ge),
        Just(Op::Exists),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0..ATTRS.len(), arb_op(), arb_value()).prop_map(|(a, op, v)| {
        if op == Op::Exists {
            // Exists carries no value; normalize so Display/parse agree.
            Predicate::exists(ATTRS[a])
        } else {
            Predicate::new(ATTRS[a], op, v)
        }
    })
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    prop::collection::vec(arb_predicate(), 0..4).prop_map(Filter::new)
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop::collection::btree_map(
        (0..ATTRS.len()).prop_map(|i| ATTRS[i].to_owned()),
        arb_value(),
        0..ATTRS.len(),
    )
    .prop_map(|attrs| {
        let mut b = Event::builder(PubendId(0));
        for (k, v) in attrs {
            b = b.attr(k, v);
        }
        b.build(Timestamp(1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The index must agree exactly with per-filter naive evaluation, and
    /// emit results already sorted (ascending subscriber id) without the
    /// test having to sort — the counting rework made output order a
    /// specified part of the contract. The same scratch is reused across
    /// all events to exercise generation-stamp invalidation.
    #[test]
    fn index_equals_naive(
        filters in prop::collection::vec(arb_filter(), 0..12),
        events in prop::collection::vec(arb_event(), 1..8),
    ) {
        let mut idx = SubscriptionIndex::new();
        for (i, f) in filters.iter().enumerate() {
            idx.insert(SubscriberId(i as u64), f.clone());
        }
        let mut scratch = MatchScratch::new();
        let mut fast = Vec::new();
        for e in &events {
            idx.matches_into(e, &mut scratch, &mut fast);
            let naive = idx.matches_naive(e);
            prop_assert_eq!(&fast, &naive);
            let expected: Vec<SubscriberId> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.eval(e))
                .map(|(i, _)| SubscriberId(i as u64))
                .collect();
            prop_assert_eq!(&fast, &expected);
            prop_assert_eq!(
                idx.any_match(e, &mut scratch),
                !expected.is_empty(),
                "any_match must agree with matches"
            );
        }
    }

    /// Removal must leave the index equivalent to one never containing the
    /// removed subscription.
    #[test]
    fn remove_is_clean(
        filters in prop::collection::vec(arb_filter(), 2..10),
        victim in 0usize..10,
        event in arb_event(),
    ) {
        let victim = victim % filters.len();
        let mut with_all = SubscriptionIndex::new();
        let mut without = SubscriptionIndex::new();
        for (i, f) in filters.iter().enumerate() {
            with_all.insert(SubscriberId(i as u64), f.clone());
            if i != victim {
                without.insert(SubscriberId(i as u64), f.clone());
            }
        }
        with_all.remove(SubscriberId(victim as u64));
        let mut a = with_all.matches(&event);
        let mut b = without.matches(&event);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Display → parse must round-trip filters built from the generator
    /// (whose string values fit the quoting rules).
    #[test]
    fn display_parse_roundtrip(filter in arb_filter()) {
        let printed = filter.to_string();
        let reparsed = Filter::parse(&printed).unwrap();
        prop_assert_eq!(filter, reparsed);
    }
}
