//! Counting-based subscription index.
//!
//! The index generalizes the matching-tree idea of Aguilera et al.: each
//! subscription is a conjunction with `n` predicates; matching an event
//! means finding, per subscription, how many of its predicates the event
//! satisfies, and selecting those where the count reaches `n`. Equality
//! predicates — the overwhelmingly common kind in partitioned workloads —
//! are satisfied via a single hash lookup per event attribute, so the cost
//! of matching is proportional to the event's attribute count plus the
//! number of *candidate* subscriptions, not the total subscription count.

use crate::{Filter, Op};
use gryphon_types::{AttrValue, Event, SubscriberId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct CompiledSub {
    filter: Filter,
    /// Number of predicates that must be satisfied.
    total: usize,
}

/// An index over many subscriptions answering "which subscriptions match
/// this event?" in sub-linear time.
///
/// # Examples
///
/// ```
/// use gryphon_matching::{Filter, SubscriptionIndex};
/// use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
///
/// let mut idx = SubscriptionIndex::new();
/// idx.insert(SubscriberId(1), Filter::parse("class = 0")?);
/// idx.insert(SubscriberId(2), Filter::parse("class = 1")?);
/// idx.insert(SubscriberId(3), Filter::match_all());
///
/// let e = Event::builder(PubendId(0)).attr("class", 1i64).build(Timestamp(1));
/// let mut hits = idx.matches(&e);
/// hits.sort();
/// assert_eq!(hits, vec![SubscriberId(2), SubscriberId(3)]);
/// # Ok::<(), gryphon_matching::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubscriptionIndex {
    subs: HashMap<SubscriberId, CompiledSub>,
    /// (attr, value) → subscriptions holding an equality predicate on it.
    eq_index: HashMap<(String, AttrValue), Vec<SubscriberId>>,
    /// attr → (subscription, predicate index) for non-equality predicates.
    attr_index: HashMap<String, Vec<(SubscriberId, usize)>>,
    /// Subscriptions with an empty conjunction (match everything).
    match_all: Vec<SubscriberId>,
}

impl SubscriptionIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Registers (or replaces) the filter for `sub`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_matching::{Filter, SubscriptionIndex};
    /// # use gryphon_types::SubscriberId;
    /// let mut idx = SubscriptionIndex::new();
    /// idx.insert(SubscriberId(1), Filter::match_all());
    /// idx.insert(SubscriberId(1), Filter::parse("a = 1").unwrap());
    /// assert_eq!(idx.len(), 1);
    /// ```
    pub fn insert(&mut self, sub: SubscriberId, filter: Filter) {
        self.remove(sub);
        let total = filter.predicates().len();
        if total == 0 {
            self.match_all.push(sub);
        } else {
            for (i, p) in filter.predicates().iter().enumerate() {
                if p.op == Op::Eq {
                    self.eq_index
                        .entry((p.attr.clone(), p.value.clone()))
                        .or_default()
                        .push(sub);
                } else {
                    self.attr_index
                        .entry(p.attr.clone())
                        .or_default()
                        .push((sub, i));
                }
            }
        }
        self.subs.insert(sub, CompiledSub { filter, total });
    }

    /// Removes `sub`; returns its filter if it was registered.
    pub fn remove(&mut self, sub: SubscriberId) -> Option<Filter> {
        let compiled = self.subs.remove(&sub)?;
        if compiled.total == 0 {
            self.match_all.retain(|&s| s != sub);
        } else {
            for p in compiled.filter.predicates() {
                if p.op == Op::Eq {
                    if let Some(v) = self.eq_index.get_mut(&(p.attr.clone(), p.value.clone())) {
                        v.retain(|&s| s != sub);
                        if v.is_empty() {
                            self.eq_index.remove(&(p.attr.clone(), p.value.clone()));
                        }
                    }
                } else if let Some(v) = self.attr_index.get_mut(&p.attr) {
                    v.retain(|&(s, _)| s != sub);
                    if v.is_empty() {
                        self.attr_index.remove(&p.attr);
                    }
                }
            }
        }
        Some(compiled.filter)
    }

    /// Returns the filter registered for `sub`, if any.
    pub fn get(&self, sub: SubscriberId) -> Option<&Filter> {
        self.subs.get(&sub).map(|c| &c.filter)
    }

    /// Iterates over `(subscriber, filter)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SubscriberId, &Filter)> + '_ {
        self.subs.iter().map(|(&s, c)| (s, &c.filter))
    }

    /// All subscriptions matching `event` (unspecified order).
    pub fn matches(&self, event: &Event) -> Vec<SubscriberId> {
        let mut out = Vec::new();
        self.matches_into(event, &mut out);
        out
    }

    /// Like [`SubscriptionIndex::matches`] but reuses an output buffer —
    /// the hot path for brokers matching hundreds of thousands of events
    /// per second.
    pub fn matches_into(&self, event: &Event, out: &mut Vec<SubscriberId>) {
        out.clear();
        out.extend_from_slice(&self.match_all);
        if self.subs.len() == self.match_all.len() {
            return;
        }
        let mut counts: HashMap<SubscriberId, usize> = HashMap::new();
        let mut key = (String::new(), AttrValue::Bool(false));
        for (attr, value) in &event.attrs {
            // Reuse the key allocation across lookups.
            key.0.clear();
            key.0.push_str(attr);
            key.1 = value.clone();
            if let Some(subs) = self.eq_index.get(&key) {
                for &s in subs {
                    *counts.entry(s).or_insert(0) += 1;
                }
            }
            if let Some(cands) = self.attr_index.get(attr) {
                for &(s, pi) in cands {
                    let pred = &self.subs[&s].filter.predicates()[pi];
                    if pred.eval_value(value) {
                        *counts.entry(s).or_insert(0) += 1;
                    }
                }
            }
        }
        for (s, n) in counts {
            if n == self.subs[&s].total {
                out.push(s);
            }
        }
    }

    /// Reference implementation: linear scan over every subscription.
    ///
    /// Used by property tests (index ≡ naive) and by the matching ablation
    /// bench; not intended for production paths.
    pub fn matches_naive(&self, event: &Event) -> Vec<SubscriberId> {
        let mut out: Vec<SubscriberId> = self
            .subs
            .iter()
            .filter(|(_, c)| c.filter.eval(event))
            .map(|(&s, _)| s)
            .collect();
        out.sort();
        out
    }

    /// `true` when *any* registered subscription matches `event` — the
    /// question intermediate brokers ask when deciding whether to forward
    /// a data tick or downgrade it to silence.
    pub fn any_match(&self, event: &Event) -> bool {
        if !self.match_all.is_empty() {
            return true;
        }
        // A full count pass is still needed (conjunctions).
        !self.matches(event).is_empty()
    }
}

impl Extend<(SubscriberId, Filter)> for SubscriptionIndex {
    fn extend<I: IntoIterator<Item = (SubscriberId, Filter)>>(&mut self, iter: I) {
        for (s, f) in iter {
            self.insert(s, f);
        }
    }
}

impl FromIterator<(SubscriberId, Filter)> for SubscriptionIndex {
    fn from_iter<I: IntoIterator<Item = (SubscriberId, Filter)>>(iter: I) -> Self {
        let mut idx = Self::new();
        idx.extend(iter);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{PubendId, Timestamp};

    fn event(class: i64, price: i64) -> Event {
        Event::builder(PubendId(0))
            .attr("class", class)
            .attr("price", price)
            .build(Timestamp(1))
    }

    fn sorted(mut v: Vec<SubscriberId>) -> Vec<SubscriberId> {
        v.sort();
        v
    }

    #[test]
    fn equality_partition() {
        let mut idx = SubscriptionIndex::new();
        for i in 0..4 {
            idx.insert(
                SubscriberId(i),
                Filter::parse(&format!("class = {i}")).unwrap(),
            );
        }
        assert_eq!(sorted(idx.matches(&event(2, 0))), vec![SubscriberId(2)]);
        assert_eq!(idx.matches(&event(9, 0)), vec![]);
    }

    #[test]
    fn conjunction_requires_all_predicates() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && price > 10").unwrap(),
        );
        assert!(idx.matches(&event(1, 5)).is_empty());
        assert_eq!(idx.matches(&event(1, 11)), vec![SubscriberId(1)]);
    }

    #[test]
    fn match_all_always_included() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(7), Filter::match_all());
        idx.insert(SubscriberId(8), Filter::parse("class = 0").unwrap());
        assert_eq!(sorted(idx.matches(&event(1, 0))), vec![SubscriberId(7)]);
        assert_eq!(
            sorted(idx.matches(&event(0, 0))),
            vec![SubscriberId(7), SubscriberId(8)]
        );
    }

    #[test]
    fn remove_unregisters_all_predicates() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && price > 10").unwrap(),
        );
        assert!(idx.remove(SubscriberId(1)).is_some());
        assert!(idx.remove(SubscriberId(1)).is_none());
        assert!(idx.matches(&event(1, 20)).is_empty());
        assert!(idx.is_empty());
        assert!(idx.eq_index.is_empty());
        assert!(idx.attr_index.is_empty());
    }

    #[test]
    fn replace_changes_matching() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(1), Filter::parse("class = 1").unwrap());
        idx.insert(SubscriberId(1), Filter::parse("class = 2").unwrap());
        assert!(idx.matches(&event(1, 0)).is_empty());
        assert_eq!(idx.matches(&event(2, 0)), vec![SubscriberId(1)]);
    }

    #[test]
    fn any_match_short_circuits_on_match_all() {
        let mut idx = SubscriptionIndex::new();
        assert!(!idx.any_match(&event(0, 0)));
        idx.insert(SubscriberId(1), Filter::match_all());
        assert!(idx.any_match(&event(0, 0)));
    }

    #[test]
    fn duplicate_predicates_counted_correctly() {
        // `class = 1 && class = 1` has total 2; both hits come from the
        // same attribute lookup and must both count.
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && class = 1").unwrap(),
        );
        assert_eq!(idx.matches(&event(1, 0)), vec![SubscriberId(1)]);
    }

    #[test]
    fn contradictory_filter_never_matches() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && class = 2").unwrap(),
        );
        assert!(idx.matches(&event(1, 0)).is_empty());
        assert!(idx.matches(&event(2, 0)).is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let idx: SubscriptionIndex = (0..3)
            .map(|i| {
                (
                    SubscriberId(i),
                    Filter::parse(&format!("class = {i}")).unwrap(),
                )
            })
            .collect();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn range_and_prefix_predicates_via_attr_index() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(1), Filter::parse("sym =p 'IB'").unwrap());
        idx.insert(SubscriberId(2), Filter::parse("price >= 100").unwrap());
        let e = Event::builder(PubendId(0))
            .attr("sym", "IBM")
            .attr("price", 100i64)
            .build(Timestamp(1));
        assert_eq!(
            sorted(idx.matches(&e)),
            vec![SubscriberId(1), SubscriberId(2)]
        );
    }
}
