//! Counting-based subscription index.
//!
//! The index generalizes the matching-tree idea of Aguilera et al.: each
//! subscription is a conjunction with `n` predicates; matching an event
//! means finding, per subscription, how many of its predicates the event
//! satisfies, and selecting those where the count reaches `n`. Equality
//! predicates — the overwhelmingly common kind in partitioned workloads —
//! are satisfied via a single hash lookup per event attribute, so the cost
//! of matching is proportional to the event's attribute count plus the
//! number of *candidate* subscriptions, not the total subscription count.
//!
//! # Hot-path memory model
//!
//! Subscriptions live in dense **slots** (`u32` indices recycled through a
//! free list), so the per-event satisfied-predicate counters are a flat
//! array indexed by slot, not a hash map keyed by subscriber. The counter
//! array lives in a caller-owned [`MatchScratch`] and is invalidated
//! between events by a generation stamp rather than being cleared, so
//! [`SubscriptionIndex::matches_into`] performs **zero heap allocations
//! per event** once the scratch has warmed up to the index size. Attribute
//! names are interned [`AttrName`]s and the equality index is keyed
//! `name → value → slots`, so probing it borrows the event's own key and
//! value — no per-event key construction either.

use crate::{Filter, Op};
use gryphon_types::{AttrName, AttrValue, Event, SubscriberId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Slot {
    sub: SubscriberId,
    filter: Filter,
    /// Number of predicates that must be satisfied.
    total: u32,
}

/// Caller-owned scratch for [`SubscriptionIndex::matches_into`].
///
/// Holds the generation-stamped counter array. Reusing one scratch across
/// events amortizes its (rare) growth: after it has seen the index's
/// current size once, matching allocates nothing. A scratch is not tied to
/// a particular index — it resizes to whatever index it is used with.
///
/// # Examples
///
/// ```
/// use gryphon_matching::{Filter, MatchScratch, SubscriptionIndex};
/// use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
///
/// let mut idx = SubscriptionIndex::new();
/// idx.insert(SubscriberId(1), Filter::parse("class = 1").unwrap());
/// let mut scratch = MatchScratch::new();
/// let mut out = Vec::new();
/// let e = Event::builder(PubendId(0)).attr("class", 1i64).build(Timestamp(1));
/// idx.matches_into(&e, &mut scratch, &mut out);
/// assert_eq!(out, vec![SubscriberId(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Satisfied-predicate count per slot; valid only where the stamp
    /// matches the current generation.
    counts: Vec<u32>,
    /// Generation stamp per slot; `stamps[i] == generation` means
    /// `counts[i]` belongs to the event currently being matched.
    stamps: Vec<u64>,
    /// Slots touched while matching the current event.
    touched: Vec<u32>,
    generation: u64,
}

impl MatchScratch {
    /// Creates an empty scratch; it grows to the index size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, slots: usize) {
        if self.counts.len() < slots {
            self.counts.resize(slots, 0);
            self.stamps.resize(slots, 0);
        }
        self.generation += 1;
        self.touched.clear();
    }

    /// Counts one satisfied predicate for `slot`; returns the new count.
    #[inline]
    fn bump(&mut self, slot: u32) -> u32 {
        let i = slot as usize;
        if self.stamps[i] == self.generation {
            self.counts[i] += 1;
        } else {
            self.stamps[i] = self.generation;
            self.counts[i] = 1;
            self.touched.push(slot);
        }
        self.counts[i]
    }
}

/// An index over many subscriptions answering "which subscriptions match
/// this event?" in sub-linear time.
///
/// Matching results are emitted in ascending [`SubscriberId`] order — a
/// specified, deterministic order that downstream emission paths (and the
/// golden-determinism tests) rely on.
///
/// # Examples
///
/// ```
/// use gryphon_matching::{Filter, SubscriptionIndex};
/// use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
///
/// let mut idx = SubscriptionIndex::new();
/// idx.insert(SubscriberId(1), Filter::parse("class = 0")?);
/// idx.insert(SubscriberId(2), Filter::parse("class = 1")?);
/// idx.insert(SubscriberId(3), Filter::match_all());
///
/// let e = Event::builder(PubendId(0)).attr("class", 1i64).build(Timestamp(1));
/// assert_eq!(idx.matches(&e), vec![SubscriberId(2), SubscriberId(3)]);
/// # Ok::<(), gryphon_matching::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubscriptionIndex {
    /// Subscriber → its slot.
    slot_of: HashMap<SubscriberId, u32>,
    /// Dense subscription storage; `None` marks a free slot.
    slots: Vec<Option<Slot>>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// name → value → slots holding an equality predicate on it. Two
    /// levels so the hot path can probe with the event's own borrowed
    /// `(AttrName, &AttrValue)` instead of building an owned pair key.
    eq_index: HashMap<AttrName, HashMap<AttrValue, Vec<u32>>>,
    /// name → (slot, predicate index) for non-equality predicates.
    attr_index: HashMap<AttrName, Vec<(u32, u32)>>,
    /// Slots with an empty conjunction (match everything).
    match_all: Vec<u32>,
}

impl SubscriptionIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    fn slot(&self, i: u32) -> &Slot {
        self.slots[i as usize].as_ref().expect("live slot")
    }

    /// Registers (or replaces) the filter for `sub`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_matching::{Filter, SubscriptionIndex};
    /// # use gryphon_types::SubscriberId;
    /// let mut idx = SubscriptionIndex::new();
    /// idx.insert(SubscriberId(1), Filter::match_all());
    /// idx.insert(SubscriberId(1), Filter::parse("a = 1").unwrap());
    /// assert_eq!(idx.len(), 1);
    /// ```
    pub fn insert(&mut self, sub: SubscriberId, filter: Filter) {
        self.remove(sub);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.link(slot, sub, filter);
    }

    /// Registers (or replaces) the filter for `sub` at the caller-chosen
    /// `slot`.
    ///
    /// This is the slot-sharing entry point for callers that keep their
    /// own dense per-subscriber slab (the SHB's `SubscriberTable`): the
    /// slab assigns slots and the index mirrors them, so a match result
    /// is directly a slab index — no per-event id→slot hop. An index is
    /// either caller-slotted (`insert_at`/`remove_at`) or self-slotted
    /// (`insert`/`remove`); mixing the two on one index is unsupported
    /// (the internal free list only tracks self-assigned slots).
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_matching::{Filter, MatchScratch, SubscriptionIndex};
    /// # use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
    /// let mut idx = SubscriptionIndex::new();
    /// idx.insert_at(7, SubscriberId(42), Filter::parse("a = 1").unwrap());
    /// let e = Event::builder(PubendId(0)).attr("a", 1i64).build(Timestamp(1));
    /// let (mut scratch, mut out) = (MatchScratch::new(), Vec::new());
    /// idx.matches_slots_into(&e, &mut scratch, &mut out);
    /// assert_eq!(out, vec![7]);
    /// assert_eq!(idx.sub_at(7), Some(SubscriberId(42)));
    /// ```
    pub fn insert_at(&mut self, slot: u32, sub: SubscriberId, filter: Filter) {
        if let Some(&old) = self.slot_of.get(&sub) {
            self.detach(old);
        }
        self.detach(slot);
        if self.slots.len() <= slot as usize {
            self.slots.resize(slot as usize + 1, None);
        }
        self.link(slot, sub, filter);
    }

    /// Links a compiled filter into the predicate indexes at `slot`
    /// (which must be empty).
    fn link(&mut self, slot: u32, sub: SubscriberId, filter: Filter) {
        debug_assert!(self.slots[slot as usize].is_none(), "occupied slot");
        let total = filter.predicates().len() as u32;
        if total == 0 {
            self.match_all.push(slot);
        } else {
            for (i, p) in filter.predicates().iter().enumerate() {
                if p.op == Op::Eq {
                    self.eq_index
                        .entry(p.attr)
                        .or_default()
                        .entry(p.value.clone())
                        .or_default()
                        .push(slot);
                } else {
                    self.attr_index
                        .entry(p.attr)
                        .or_default()
                        .push((slot, i as u32));
                }
            }
        }
        self.slots[slot as usize] = Some(Slot { sub, filter, total });
        self.slot_of.insert(sub, slot);
    }

    /// Unlinks whatever occupies `slot` without recycling the index —
    /// the caller owns slot assignment (see [`Self::insert_at`]).
    fn detach(&mut self, slot: u32) -> Option<Filter> {
        let compiled = self.slots.get_mut(slot as usize)?.take()?;
        self.slot_of.remove(&compiled.sub);
        if compiled.total == 0 {
            self.match_all.retain(|&s| s != slot);
        } else {
            for p in compiled.filter.predicates() {
                if p.op == Op::Eq {
                    if let Some(by_value) = self.eq_index.get_mut(&p.attr) {
                        if let Some(v) = by_value.get_mut(&p.value) {
                            v.retain(|&s| s != slot);
                            if v.is_empty() {
                                by_value.remove(&p.value);
                            }
                        }
                        if by_value.is_empty() {
                            self.eq_index.remove(&p.attr);
                        }
                    }
                } else if let Some(v) = self.attr_index.get_mut(&p.attr) {
                    v.retain(|&(s, _)| s != slot);
                    if v.is_empty() {
                        self.attr_index.remove(&p.attr);
                    }
                }
            }
        }
        Some(compiled.filter)
    }

    /// Removes `sub`; returns its filter if it was registered.
    pub fn remove(&mut self, sub: SubscriberId) -> Option<Filter> {
        let slot = self.slot_of.get(&sub).copied()?;
        let filter = self.detach(slot)?;
        self.free.push(slot);
        Some(filter)
    }

    /// Removes whatever occupies caller-assigned `slot`; returns its
    /// filter. The slot is *not* pushed on the internal free list — the
    /// caller's slab recycles it (see [`Self::insert_at`]).
    pub fn remove_at(&mut self, slot: u32) -> Option<Filter> {
        self.detach(slot)
    }

    /// The subscriber registered at `slot`, if any.
    pub fn sub_at(&self, slot: u32) -> Option<SubscriberId> {
        self.slots.get(slot as usize)?.as_ref().map(|s| s.sub)
    }

    /// Returns the filter registered for `sub`, if any.
    pub fn get(&self, sub: SubscriberId) -> Option<&Filter> {
        self.slot_of.get(&sub).map(|&i| &self.slot(i).filter)
    }

    /// Iterates over `(subscriber, filter)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SubscriberId, &Filter)> + '_ {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|s| (s.sub, &s.filter))
    }

    /// All subscriptions matching `event`, in ascending subscriber order.
    ///
    /// Convenience wrapper that allocates a fresh scratch and output
    /// vector; hot paths should hold a [`MatchScratch`] and use
    /// [`SubscriptionIndex::matches_into`].
    pub fn matches(&self, event: &Event) -> Vec<SubscriberId> {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        self.matches_into(event, &mut scratch, &mut out);
        out
    }

    /// Like [`SubscriptionIndex::matches`] but reuses caller-owned scratch
    /// and output buffers — the hot path for brokers matching hundreds of
    /// thousands of events per second. Performs no heap allocation once
    /// `scratch` and `out` have grown to the index's size.
    ///
    /// `out` is cleared and then filled in ascending [`SubscriberId`]
    /// order (a stable, specified order: broker emission must not depend
    /// on hash-map iteration).
    pub fn matches_into(
        &self,
        event: &Event,
        scratch: &mut MatchScratch,
        out: &mut Vec<SubscriberId>,
    ) {
        out.clear();
        for &slot in &self.match_all {
            out.push(self.slot(slot).sub);
        }
        if self.slot_of.len() > self.match_all.len() {
            scratch.begin(self.slots.len());
            for (attr, value) in &event.attrs {
                if let Some(slots) = self.eq_index.get(attr).and_then(|m| m.get(value)) {
                    for &slot in slots {
                        scratch.bump(slot);
                    }
                }
                if let Some(cands) = self.attr_index.get(attr) {
                    for &(slot, pi) in cands {
                        let s = self.slot(slot);
                        if s.filter.predicates()[pi as usize].eval_value(value) {
                            scratch.bump(slot);
                        }
                    }
                }
            }
            for i in 0..scratch.touched.len() {
                let slot = scratch.touched[i];
                let s = self.slot(slot);
                if scratch.counts[slot as usize] == s.total {
                    out.push(s.sub);
                }
            }
        }
        out.sort_unstable();
    }

    /// Like [`SubscriptionIndex::matches_into`] but emits raw **slot**
    /// indices instead of subscriber ids — the hot path for callers whose
    /// per-subscriber state is a dense slab sharing slot assignment with
    /// this index ([`Self::insert_at`]): each result is directly a slab
    /// index, with no id→slot map hop per matched subscriber.
    ///
    /// `out` is cleared and filled in ascending [`SubscriberId`] order of
    /// the slots' tenants — the same specified emission order as
    /// [`Self::matches_into`], so downstream delivery order stays
    /// independent of slot recycling history. Performs no heap allocation
    /// once `scratch` and `out` have warmed up to the index size.
    pub fn matches_slots_into(
        &self,
        event: &Event,
        scratch: &mut MatchScratch,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        out.extend_from_slice(&self.match_all);
        if self.slot_of.len() > self.match_all.len() {
            scratch.begin(self.slots.len());
            for (attr, value) in &event.attrs {
                if let Some(slots) = self.eq_index.get(attr).and_then(|m| m.get(value)) {
                    for &slot in slots {
                        scratch.bump(slot);
                    }
                }
                if let Some(cands) = self.attr_index.get(attr) {
                    for &(slot, pi) in cands {
                        let s = self.slot(slot);
                        if s.filter.predicates()[pi as usize].eval_value(value) {
                            scratch.bump(slot);
                        }
                    }
                }
            }
            for i in 0..scratch.touched.len() {
                let slot = scratch.touched[i];
                if scratch.counts[slot as usize] == self.slot(slot).total {
                    out.push(slot);
                }
            }
        }
        out.sort_unstable_by_key(|&slot| self.slot(slot).sub);
    }

    /// Reference implementation: linear scan over every subscription.
    ///
    /// Used by property tests (index ≡ naive) and by the matching ablation
    /// bench; not intended for production paths.
    pub fn matches_naive(&self, event: &Event) -> Vec<SubscriberId> {
        let mut out: Vec<SubscriberId> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref())
            .filter(|s| s.filter.eval(event))
            .map(|s| s.sub)
            .collect();
        out.sort();
        out
    }

    /// `true` when *any* registered subscription matches `event` — the
    /// question intermediate brokers ask when deciding whether to forward
    /// a data tick or downgrade it to silence. Allocation-free given a
    /// warmed-up `scratch`, and exits as soon as one conjunction fills.
    pub fn any_match(&self, event: &Event, scratch: &mut MatchScratch) -> bool {
        if !self.match_all.is_empty() {
            return true;
        }
        if self.slot_of.is_empty() {
            return false;
        }
        scratch.begin(self.slots.len());
        for (attr, value) in &event.attrs {
            if let Some(slots) = self.eq_index.get(attr).and_then(|m| m.get(value)) {
                for &slot in slots {
                    if scratch.bump(slot) == self.slot(slot).total {
                        return true;
                    }
                }
            }
            if let Some(cands) = self.attr_index.get(attr) {
                for &(slot, pi) in cands {
                    let s = self.slot(slot);
                    if s.filter.predicates()[pi as usize].eval_value(value)
                        && scratch.bump(slot) == s.total
                    {
                        return true;
                    }
                }
            }
        }
        false
    }
}

impl Extend<(SubscriberId, Filter)> for SubscriptionIndex {
    fn extend<I: IntoIterator<Item = (SubscriberId, Filter)>>(&mut self, iter: I) {
        for (s, f) in iter {
            self.insert(s, f);
        }
    }
}

impl FromIterator<(SubscriberId, Filter)> for SubscriptionIndex {
    fn from_iter<I: IntoIterator<Item = (SubscriberId, Filter)>>(iter: I) -> Self {
        let mut idx = Self::new();
        idx.extend(iter);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{PubendId, Timestamp};

    fn event(class: i64, price: i64) -> Event {
        Event::builder(PubendId(0))
            .attr("class", class)
            .attr("price", price)
            .build(Timestamp(1))
    }

    #[test]
    fn equality_partition() {
        let mut idx = SubscriptionIndex::new();
        for i in 0..4 {
            idx.insert(
                SubscriberId(i),
                Filter::parse(&format!("class = {i}")).unwrap(),
            );
        }
        assert_eq!(idx.matches(&event(2, 0)), vec![SubscriberId(2)]);
        assert_eq!(idx.matches(&event(9, 0)), vec![]);
    }

    #[test]
    fn conjunction_requires_all_predicates() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && price > 10").unwrap(),
        );
        assert!(idx.matches(&event(1, 5)).is_empty());
        assert_eq!(idx.matches(&event(1, 11)), vec![SubscriberId(1)]);
    }

    #[test]
    fn match_all_always_included() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(7), Filter::match_all());
        idx.insert(SubscriberId(8), Filter::parse("class = 0").unwrap());
        assert_eq!(idx.matches(&event(1, 0)), vec![SubscriberId(7)]);
        assert_eq!(
            idx.matches(&event(0, 0)),
            vec![SubscriberId(7), SubscriberId(8)]
        );
    }

    #[test]
    fn remove_unregisters_all_predicates() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && price > 10").unwrap(),
        );
        assert!(idx.remove(SubscriberId(1)).is_some());
        assert!(idx.remove(SubscriberId(1)).is_none());
        assert!(idx.matches(&event(1, 20)).is_empty());
        assert!(idx.is_empty());
        assert!(idx.eq_index.is_empty());
        assert!(idx.attr_index.is_empty());
    }

    #[test]
    fn removed_slots_are_recycled() {
        let mut idx = SubscriptionIndex::new();
        for i in 0..8 {
            idx.insert(
                SubscriberId(i),
                Filter::parse(&format!("class = {i}")).unwrap(),
            );
        }
        for i in 0..8 {
            idx.remove(SubscriberId(i));
        }
        let slots_before = idx.slots.len();
        for i in 8..16 {
            idx.insert(
                SubscriberId(i),
                Filter::parse(&format!("class = {i}")).unwrap(),
            );
        }
        assert_eq!(idx.slots.len(), slots_before, "free slots must be reused");
        assert_eq!(idx.matches(&event(12, 0)), vec![SubscriberId(12)]);
    }

    #[test]
    fn replace_changes_matching() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(1), Filter::parse("class = 1").unwrap());
        idx.insert(SubscriberId(1), Filter::parse("class = 2").unwrap());
        assert!(idx.matches(&event(1, 0)).is_empty());
        assert_eq!(idx.matches(&event(2, 0)), vec![SubscriberId(1)]);
    }

    #[test]
    fn any_match_short_circuits_on_match_all() {
        let mut idx = SubscriptionIndex::new();
        let mut scratch = MatchScratch::new();
        assert!(!idx.any_match(&event(0, 0), &mut scratch));
        idx.insert(SubscriberId(1), Filter::match_all());
        assert!(idx.any_match(&event(0, 0), &mut scratch));
    }

    #[test]
    fn any_match_agrees_with_matches() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && price > 10").unwrap(),
        );
        idx.insert(SubscriberId(2), Filter::parse("price < 0").unwrap());
        let mut scratch = MatchScratch::new();
        for e in [event(1, 20), event(1, 5), event(0, -1), event(0, 0)] {
            assert_eq!(idx.any_match(&e, &mut scratch), !idx.matches(&e).is_empty(),);
        }
    }

    #[test]
    fn duplicate_predicates_counted_correctly() {
        // `class = 1 && class = 1` has total 2; both hits come from the
        // same attribute lookup and must both count.
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && class = 1").unwrap(),
        );
        assert_eq!(idx.matches(&event(1, 0)), vec![SubscriberId(1)]);
    }

    #[test]
    fn contradictory_filter_never_matches() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(
            SubscriberId(1),
            Filter::parse("class = 1 && class = 2").unwrap(),
        );
        assert!(idx.matches(&event(1, 0)).is_empty());
        assert!(idx.matches(&event(2, 0)).is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let idx: SubscriptionIndex = (0..3)
            .map(|i| {
                (
                    SubscriberId(i),
                    Filter::parse(&format!("class = {i}")).unwrap(),
                )
            })
            .collect();
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn range_and_prefix_predicates_via_attr_index() {
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(1), Filter::parse("sym =p 'IB'").unwrap());
        idx.insert(SubscriberId(2), Filter::parse("price >= 100").unwrap());
        let e = Event::builder(PubendId(0))
            .attr("sym", "IBM")
            .attr("price", 100i64)
            .build(Timestamp(1));
        assert_eq!(idx.matches(&e), vec![SubscriberId(1), SubscriberId(2)]);
    }

    #[test]
    fn output_order_is_ascending_and_stable() {
        // Insert in descending id order with a mix of match-all, equality
        // and range filters: output must still be ascending by id, and
        // identical across repeated calls with a shared scratch.
        let mut idx = SubscriptionIndex::new();
        idx.insert(SubscriberId(30), Filter::match_all());
        idx.insert(SubscriberId(20), Filter::parse("price >= 0").unwrap());
        idx.insert(SubscriberId(10), Filter::parse("class = 1").unwrap());
        idx.insert(SubscriberId(5), Filter::parse("class = 1").unwrap());
        let e = event(1, 3);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        idx.matches_into(&e, &mut scratch, &mut out);
        let expect = vec![
            SubscriberId(5),
            SubscriberId(10),
            SubscriberId(20),
            SubscriberId(30),
        ];
        assert_eq!(out, expect);
        for _ in 0..5 {
            let mut again = Vec::new();
            idx.matches_into(&e, &mut scratch, &mut again);
            assert_eq!(again, expect, "order must be stable across calls");
        }
    }

    #[test]
    fn scratch_is_reusable_across_indexes() {
        let mut a = SubscriptionIndex::new();
        a.insert(SubscriberId(1), Filter::parse("class = 1").unwrap());
        let mut big = SubscriptionIndex::new();
        for i in 0..64 {
            big.insert(
                SubscriberId(i),
                Filter::parse(&format!("class = {}", i % 4)).unwrap(),
            );
        }
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        big.matches_into(&event(1, 0), &mut scratch, &mut out);
        assert_eq!(out.len(), 16);
        a.matches_into(&event(1, 0), &mut scratch, &mut out);
        assert_eq!(out, vec![SubscriberId(1)]);
    }
}
