//! Filter AST: conjunctions of attribute predicates.

use gryphon_types::{AttrName, AttrValue, Event};

/// Comparison operator of a [`Predicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `=` — equality (same type, same value).
    Eq,
    /// `!=` — attribute present and not equal (same-type comparison).
    Ne,
    /// `<` — strictly less (same-type, ordered).
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=p` — string prefix match.
    Prefix,
    /// `exists` — attribute present with any value.
    Exists,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Eq => "=",
            Op::Ne => "!=",
            Op::Lt => "<",
            Op::Le => "<=",
            Op::Gt => ">",
            Op::Ge => ">=",
            Op::Prefix => "=p",
            Op::Exists => "exists",
        };
        f.write_str(s)
    }
}

/// A single attribute predicate, e.g. `price > 10.5`.
///
/// Missing attributes never match (content-based semantics): `price != 3`
/// is *false* for an event without a `price` attribute, as is any
/// comparison across types.
///
/// # Examples
///
/// ```
/// use gryphon_matching::{Op, Predicate};
/// use gryphon_types::{AttrValue, Event, PubendId, Timestamp};
///
/// let p = Predicate::new("price", Op::Gt, AttrValue::Int(10));
/// let e = Event::builder(PubendId(0)).attr("price", 12i64).build(Timestamp(1));
/// assert!(p.eval(&e));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Interned attribute name.
    pub attr: AttrName,
    /// Comparison operator.
    pub op: Op,
    /// Right-hand constant (ignored for [`Op::Exists`]).
    pub value: AttrValue,
}

impl Predicate {
    /// Creates a predicate. The attribute name is interned.
    pub fn new(attr: impl Into<AttrName>, op: Op, value: AttrValue) -> Self {
        Predicate {
            attr: attr.into(),
            op,
            value,
        }
    }

    /// Creates an existence predicate for `attr`.
    pub fn exists(attr: impl Into<AttrName>) -> Self {
        Predicate {
            attr: attr.into(),
            op: Op::Exists,
            value: AttrValue::Bool(true),
        }
    }

    /// Evaluates this predicate against an event.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_matching::{Op, Predicate};
    /// # use gryphon_types::{AttrValue, Event, PubendId, Timestamp};
    /// let p = Predicate::new("sym", Op::Prefix, AttrValue::from("IB"));
    /// let hit = Event::builder(PubendId(0)).attr("sym", "IBM").build(Timestamp(1));
    /// let miss = Event::builder(PubendId(0)).attr("sym", "MSFT").build(Timestamp(2));
    /// assert!(p.eval(&hit));
    /// assert!(!p.eval(&miss));
    /// ```
    pub fn eval(&self, event: &Event) -> bool {
        // Direct symbol-keyed lookup: no string hashing or table probe.
        let Some(v) = event.attrs.get(&self.attr) else {
            return false;
        };
        self.eval_value(v)
    }

    /// Evaluates this predicate against a raw attribute value (the
    /// attribute is known to be present).
    pub fn eval_value(&self, v: &AttrValue) -> bool {
        use std::cmp::Ordering;
        match self.op {
            Op::Exists => true,
            Op::Eq => v == &self.value,
            Op::Ne => {
                // Same-type inequality only: cross-type is "incomparable",
                // not "unequal", matching content-based filter semantics.
                same_type(v, &self.value) && v != &self.value
            }
            Op::Prefix => match (v, &self.value) {
                (AttrValue::Str(s), AttrValue::Str(p)) => s.starts_with(p.as_str()),
                _ => false,
            },
            Op::Lt | Op::Le | Op::Gt | Op::Ge => match v.partial_cmp(&self.value) {
                None => false,
                Some(ord) => match self.op {
                    Op::Lt => ord == Ordering::Less,
                    Op::Le => ord != Ordering::Greater,
                    Op::Gt => ord == Ordering::Greater,
                    Op::Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                },
            },
        }
    }
}

fn same_type(a: &AttrValue, b: &AttrValue) -> bool {
    matches!(
        (a, b),
        (AttrValue::Int(_), AttrValue::Int(_))
            | (AttrValue::Float(_), AttrValue::Float(_))
            | (AttrValue::Str(_), AttrValue::Str(_))
            | (AttrValue::Bool(_), AttrValue::Bool(_))
    )
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.op == Op::Exists {
            write!(f, "{} exists", self.attr)
        } else {
            write!(f, "{} {} {}", self.attr, self.op, self.value)
        }
    }
}

/// A subscription filter: the conjunction of its predicates.
///
/// The empty conjunction ([`Filter::match_all`]) matches every event.
///
/// # Examples
///
/// ```
/// use gryphon_matching::Filter;
/// use gryphon_types::{Event, PubendId, Timestamp};
///
/// let f = Filter::parse("class = 1 && price >= 10")?;
/// let e = Event::builder(PubendId(0))
///     .attr("class", 1i64)
///     .attr("price", 10i64)
///     .build(Timestamp(1));
/// assert!(f.eval(&e));
/// # Ok::<(), gryphon_matching::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Filter {
    predicates: Vec<Predicate>,
}

impl Filter {
    /// Builds a filter from predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Filter { predicates }
    }

    /// The filter that matches every event.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_matching::Filter;
    /// # use gryphon_types::{Event, PubendId, Timestamp};
    /// let e = Event::builder(PubendId(0)).build(Timestamp(1));
    /// assert!(Filter::match_all().eval(&e));
    /// ```
    pub fn match_all() -> Self {
        Filter::default()
    }

    /// Parses the filter grammar; see the [crate docs](crate) for examples.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`](crate::ParseError) on malformed input.
    pub fn parse(input: &str) -> Result<Self, crate::ParseError> {
        crate::parser::parse(input)
    }

    /// The conjunction's predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Evaluates the conjunction against an event.
    pub fn eval(&self, event: &Event) -> bool {
        self.predicates.iter().all(|p| p.eval(event))
    }
}

impl std::fmt::Display for Filter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.predicates.is_empty() {
            return f.write_str("true");
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" && ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{PubendId, Timestamp};

    fn ev(pairs: &[(&str, AttrValue)]) -> Event {
        let mut b = Event::builder(PubendId(0));
        for (k, v) in pairs {
            b = b.attr(*k, v.clone());
        }
        b.build(Timestamp(1))
    }

    #[test]
    fn missing_attribute_never_matches() {
        let e = ev(&[]);
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Gt, Op::Exists, Op::Prefix] {
            let p = Predicate::new("x", op, AttrValue::Int(1));
            assert!(!p.eval(&e), "op {op:?} matched missing attribute");
        }
    }

    #[test]
    fn cross_type_comparisons_fail() {
        let e = ev(&[("x", AttrValue::Str("5".into()))]);
        assert!(!Predicate::new("x", Op::Eq, AttrValue::Int(5)).eval(&e));
        assert!(!Predicate::new("x", Op::Ne, AttrValue::Int(5)).eval(&e));
        assert!(!Predicate::new("x", Op::Lt, AttrValue::Int(9)).eval(&e));
    }

    #[test]
    fn ne_requires_same_type() {
        let e = ev(&[("x", AttrValue::Int(5))]);
        assert!(Predicate::new("x", Op::Ne, AttrValue::Int(4)).eval(&e));
        assert!(!Predicate::new("x", Op::Ne, AttrValue::Int(5)).eval(&e));
    }

    #[test]
    fn range_operators() {
        let e = ev(&[("x", AttrValue::Float(2.5))]);
        assert!(Predicate::new("x", Op::Gt, AttrValue::Float(2.0)).eval(&e));
        assert!(Predicate::new("x", Op::Ge, AttrValue::Float(2.5)).eval(&e));
        assert!(!Predicate::new("x", Op::Lt, AttrValue::Float(2.5)).eval(&e));
        assert!(Predicate::new("x", Op::Le, AttrValue::Float(2.5)).eval(&e));
    }

    #[test]
    fn prefix_on_strings_only() {
        let e = ev(&[("s", AttrValue::Str("IBM".into()))]);
        assert!(Predicate::new("s", Op::Prefix, AttrValue::from("IB")).eval(&e));
        assert!(!Predicate::new("s", Op::Prefix, AttrValue::from("BM")).eval(&e));
        let n = ev(&[("s", AttrValue::Int(3))]);
        assert!(!Predicate::new("s", Op::Prefix, AttrValue::from("3")).eval(&n));
    }

    #[test]
    fn empty_filter_matches_everything() {
        assert!(Filter::match_all().eval(&ev(&[])));
    }

    #[test]
    fn conjunction_semantics() {
        let f = Filter::new(vec![
            Predicate::new("a", Op::Eq, AttrValue::Int(1)),
            Predicate::new("b", Op::Gt, AttrValue::Int(5)),
        ]);
        assert!(f.eval(&ev(&[("a", AttrValue::Int(1)), ("b", AttrValue::Int(6))])));
        assert!(!f.eval(&ev(&[("a", AttrValue::Int(1)), ("b", AttrValue::Int(5))])));
        assert!(!f.eval(&ev(&[("b", AttrValue::Int(6))])));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let f = Filter::new(vec![
            Predicate::new("a", Op::Eq, AttrValue::Int(1)),
            Predicate::exists("b"),
            Predicate::new("s", Op::Prefix, AttrValue::from("x")),
        ]);
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed).expect("display should reparse");
        assert_eq!(f, reparsed);
    }

    #[test]
    fn nan_never_matches() {
        let e = ev(&[("x", AttrValue::Float(f64::NAN))]);
        for op in [Op::Eq, Op::Lt, Op::Le, Op::Gt, Op::Ge] {
            assert!(!Predicate::new("x", op, AttrValue::Float(1.0)).eval(&e));
        }
        // But existence still holds.
        assert!(Predicate::exists("x").eval(&e));
    }
}
