//! Parser for the subscription filter grammar.
//!
//! ```text
//! filter     := 'true' | predicate ( '&&' predicate )*
//! predicate  := ident op value | ident 'exists'
//! op         := '=' | '!=' | '<' | '<=' | '>' | '>=' | '=p'
//! value      := integer | float | 'single-quoted string' | true | false
//! ident      := [A-Za-z_][A-Za-z0-9_.]*
//! ```

use crate::{Filter, Op, Predicate};
use gryphon_types::AttrValue;

/// Error produced when a filter expression fails to parse.
///
/// # Examples
///
/// ```
/// use gryphon_matching::Filter;
/// let err = Filter::parse("price >").unwrap_err();
/// assert!(err.to_string().contains("expected value"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "filter parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Lexer<'a> {
    input: &'a str,
    pos: usize,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Op(Op),
    Value(AttrValue),
    And,
    Exists,
    True,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if rest.is_empty() {
            return Ok(None);
        }
        let bytes = rest.as_bytes();
        // Multi-char operators first.
        for (pat, tok) in [
            ("&&", Token::And),
            ("<=", Token::Op(Op::Le)),
            (">=", Token::Op(Op::Ge)),
            ("!=", Token::Op(Op::Ne)),
            ("=p", Token::Op(Op::Prefix)),
        ] {
            if rest.starts_with(pat) {
                self.pos += pat.len();
                return Ok(Some(tok));
            }
        }
        match bytes[0] {
            b'=' => {
                self.pos += 1;
                Ok(Some(Token::Op(Op::Eq)))
            }
            b'<' => {
                self.pos += 1;
                Ok(Some(Token::Op(Op::Lt)))
            }
            b'>' => {
                self.pos += 1;
                Ok(Some(Token::Op(Op::Gt)))
            }
            b'\'' => {
                let inner = &rest[1..];
                let Some(end) = inner.find('\'') else {
                    return Err(self.err("unterminated string literal"));
                };
                let s = inner[..end].to_owned();
                self.pos += end + 2;
                Ok(Some(Token::Value(AttrValue::Str(s))))
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let len = rest
                    .char_indices()
                    .take_while(|&(i, c)| {
                        i == 0
                            || c.is_ascii_digit()
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c == '-'
                            || c == '+'
                    })
                    .count();
                let lit = &rest[..len];
                self.pos += len;
                if lit.contains('.') || lit.contains('e') || lit.contains('E') {
                    lit.parse::<f64>()
                        .map(|v| Some(Token::Value(AttrValue::Float(v))))
                        .map_err(|_| self.err(format!("bad float literal '{lit}'")))
                } else {
                    lit.parse::<i64>()
                        .map(|v| Some(Token::Value(AttrValue::Int(v))))
                        .map_err(|_| self.err(format!("bad integer literal '{lit}'")))
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let len = rest
                    .chars()
                    .take_while(|&c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                    .map(char::len_utf8)
                    .sum();
                let word = &rest[..len];
                self.pos += len;
                Ok(Some(match word {
                    "exists" => Token::Exists,
                    "true" => Token::True,
                    "false" => Token::Value(AttrValue::Bool(false)),
                    _ => Token::Ident(word.to_owned()),
                }))
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }
}

/// Parses a filter expression. See the [crate docs](crate) for the grammar.
pub fn parse(input: &str) -> Result<Filter, ParseError> {
    let mut lex = Lexer::new(input);
    let mut predicates = Vec::new();
    let mut first = true;
    loop {
        let tok = lex.next_token()?;
        let Some(tok) = tok else {
            if first {
                // Empty input: treat as match-all for ergonomic defaults.
                return Ok(Filter::match_all());
            }
            return Err(lex.err("expected predicate after '&&'"));
        };
        match tok {
            Token::True if first => {
                // `true` must be the whole filter or conjoined; allow both.
            }
            Token::True => {}
            Token::Ident(attr) => {
                let op_tok = lex
                    .next_token()?
                    .ok_or_else(|| lex.err("expected operator after attribute"))?;
                match op_tok {
                    Token::Exists => predicates.push(Predicate::exists(attr)),
                    Token::Op(op) => {
                        let val_tok = lex
                            .next_token()?
                            .ok_or_else(|| lex.err("expected value after operator"))?;
                        let value = match val_tok {
                            Token::Value(v) => v,
                            Token::True => AttrValue::Bool(true),
                            other => {
                                return Err(lex.err(format!("expected value, found {other:?}")))
                            }
                        };
                        if op == Op::Prefix && !matches!(value, AttrValue::Str(_)) {
                            return Err(lex.err("prefix operator '=p' requires a string value"));
                        }
                        predicates.push(Predicate::new(attr, op, value));
                    }
                    other => return Err(lex.err(format!("expected operator, found {other:?}"))),
                }
            }
            other => return Err(lex.err(format!("expected predicate, found {other:?}"))),
        }
        first = false;
        match lex.next_token()? {
            None => break,
            Some(Token::And) => continue,
            Some(other) => return Err(lex.err(format!("expected '&&', found {other:?}"))),
        }
    }
    Ok(Filter::new(predicates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{Event, PubendId, Timestamp};

    #[test]
    fn parses_conjunction() {
        let f = parse("class = 2 && price > 10.5 && symbol =p 'IB'").unwrap();
        assert_eq!(f.predicates().len(), 3);
        assert_eq!(f.predicates()[0].op, Op::Eq);
        assert_eq!(f.predicates()[1].value, AttrValue::Float(10.5));
        assert_eq!(f.predicates()[2].op, Op::Prefix);
    }

    #[test]
    fn parses_true_and_empty_as_match_all() {
        assert_eq!(parse("true").unwrap(), Filter::match_all());
        assert_eq!(parse("").unwrap(), Filter::match_all());
        assert_eq!(parse("  ").unwrap(), Filter::match_all());
    }

    #[test]
    fn parses_exists() {
        let f = parse("region exists").unwrap();
        assert_eq!(f.predicates()[0].op, Op::Exists);
    }

    #[test]
    fn parses_negative_numbers_and_bools() {
        let f = parse("x = -3 && y = true && z = false").unwrap();
        assert_eq!(f.predicates()[0].value, AttrValue::Int(-3));
        assert_eq!(f.predicates()[1].value, AttrValue::Bool(true));
        assert_eq!(f.predicates()[2].value, AttrValue::Bool(false));
    }

    #[test]
    fn parses_float_scientific() {
        let f = parse("x < 1.5e3").unwrap();
        assert_eq!(f.predicates()[0].value, AttrValue::Float(1500.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("price >").is_err());
        assert!(parse("= 3").is_err());
        assert!(parse("a = 'unterminated").is_err());
        assert!(parse("a = 3 &&").is_err());
        assert!(parse("a = 3 b = 4").is_err());
        assert!(parse("a =p 3").is_err());
        assert!(parse("a ? 3").is_err());
    }

    #[test]
    fn error_reports_position() {
        let err = parse("a = 3 && !").unwrap_err();
        assert!(err.position >= 9, "position {} too small", err.position);
    }

    #[test]
    fn parsed_filter_evaluates() {
        let f = parse("class = 1 && sym =p 'A'").unwrap();
        let e = Event::builder(PubendId(0))
            .attr("class", 1i64)
            .attr("sym", "AAPL")
            .build(Timestamp(1));
        assert!(f.eval(&e));
    }

    #[test]
    fn dotted_attribute_names() {
        let f = parse("order.qty >= 100").unwrap();
        let e = Event::builder(PubendId(0))
            .attr("order.qty", 150i64)
            .build(Timestamp(1));
        assert!(f.eval(&e));
    }
}
