//! Content-based subscription matching for the Gryphon reproduction.
//!
//! Gryphon filters events against *content-based subscriptions* — predicate
//! conjunctions over typed event attributes — at every broker in the
//! overlay ([Aguilera et al., PODC 1999] is the matching substrate the
//! paper builds on). This crate provides:
//!
//! * a [`Filter`] AST: a conjunction of [`Predicate`]s over attributes;
//! * a text grammar and [parser](Filter::parse):
//!   `class = 2 && price > 10.5 && symbol =p 'IB'`;
//! * [`SubscriptionIndex`], a counting-based matcher that evaluates one
//!   event against *all* registered subscriptions far faster than a linear
//!   scan when subscriptions share equality predicates (the common case in
//!   the paper's workloads, where subscribers partition on a `class`
//!   attribute).
//!
//! # Examples
//!
//! ```
//! use gryphon_matching::{Filter, SubscriptionIndex};
//! use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
//!
//! let mut index = SubscriptionIndex::new();
//! index.insert(SubscriberId(1), Filter::parse("class = 2")?);
//! index.insert(SubscriberId(2), Filter::parse("class = 2 && price > 100")?);
//!
//! let event = Event::builder(PubendId(0))
//!     .attr("class", 2i64)
//!     .attr("price", 50i64)
//!     .build(Timestamp(1));
//! assert_eq!(index.matches(&event), vec![SubscriberId(1)]);
//! # Ok::<(), gryphon_matching::ParseError>(())
//! ```

mod ast;
mod index;
mod parser;

pub use ast::{Filter, Op, Predicate};
pub use index::{MatchScratch, SubscriptionIndex};
pub use parser::ParseError;

#[cfg(test)]
mod prop_tests;
