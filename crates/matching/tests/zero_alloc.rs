//! Proves `matches_into` allocates nothing per event after warm-up.
//!
//! A counting global allocator wraps the system allocator; after warming
//! the index, scratch and output buffer, a burst of matching calls must
//! leave the allocation counter untouched. This is the load-bearing
//! property behind the broker's per-event cost model: matching cost is
//! hash probes and counter bumps, never allocator traffic.
//!
//! The file contains a single `#[test]` on purpose: the default test
//! harness runs tests on multiple threads and the counter is process-wide,
//! so a sibling test's allocations would show up as noise here.

use gryphon_matching::{Filter, MatchScratch, SubscriptionIndex};
use gryphon_types::{Event, PubendId, SubscriberId, Timestamp};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter update has no effect
// on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn mk_event(seq: i64) -> Event {
    Event::builder(PubendId(0))
        .attr("class", seq % 16)
        .attr("price", 100 + seq % 50)
        .attr("sym", if seq % 2 == 0 { "IBM" } else { "MSFT" })
        .build(Timestamp(seq as u64))
}

#[test]
fn matches_into_allocates_nothing_after_warmup() {
    // A paper-style workload: equality partition on `class`, plus some
    // range and prefix predicates that exercise the attr_index path, plus
    // match-all subscriptions.
    let mut idx = SubscriptionIndex::new();
    for i in 0..64u64 {
        let f = match i % 4 {
            0 => Filter::parse(&format!("class = {}", i % 16)).unwrap(),
            1 => Filter::parse(&format!("class = {} && price > 110", i % 16)).unwrap(),
            2 => Filter::parse("sym =p 'IB' && price >= 100").unwrap(),
            _ => Filter::match_all(),
        };
        idx.insert(SubscriberId(i), f);
    }

    let events: Vec<Event> = (0..256).map(mk_event).collect();
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();

    // Warm-up: grows scratch to the index size and `out` to the largest
    // result set; also faults in the interner's read path.
    let mut warm_hits = 0usize;
    for e in &events {
        idx.matches_into(e, &mut scratch, &mut out);
        warm_hits += out.len();
        idx.any_match(e, &mut scratch);
    }
    assert!(warm_hits > 0, "workload must actually match");

    // Measured burst: zero allocations allowed.
    let before = ALLOCS.load(Ordering::SeqCst);
    let mut hits = 0usize;
    for _ in 0..8 {
        for e in &events {
            idx.matches_into(e, &mut scratch, &mut out);
            hits += out.len();
            idx.any_match(e, &mut scratch);
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "matches_into/any_match allocated on the warm path ({hits} hits)"
    );
    assert_eq!(hits, warm_hits * 8, "warm and measured runs must agree");
}
