//! Golden-determinism check for the role-partitioned broker.
//!
//! The broker refactor (PHB/IB/SHB role components over per-pubend
//! `PubendPipeline`s) must be *bit-identical* under the simulator: two
//! runs of the same seeded topology have to produce the same trace
//! event sequence and the same per-subscriber delivery history, down to
//! ordering. Any hidden `HashMap`-iteration-order dependence in the
//! broker shows up here as a diff between the two runs.

use gryphon_harness::{System, TopologySpec, Workload};

/// One delivery a subscriber saw: `(pubend, ts, kind, seq)`.
type Delivery = (u32, u64, &'static str, Option<i64>);

/// Everything observable about one run that determinism must fix:
/// rendered trace lines (in emission order) and, per subscriber, the
/// exact delivery sequence.
#[derive(PartialEq, Debug)]
struct Golden {
    traces: Vec<String>,
    deliveries: Vec<Vec<Delivery>>,
    events: u64,
    violations: u64,
    watchdogs: u64,
}

fn run_once(seed: u64) -> Golden {
    // Fig. 4-style tree: one PHB hosting four pubends, two SHBs, with
    // disconnecting subscribers so catchup/PFS paths execute too.
    let spec = TopologySpec {
        seed,
        n_shbs: 2,
        pubends: 4,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 6,
        ..Workload::paper_disconnecting(3_000_000, 500_000)
    };
    let mut sys = System::build(&spec, &workload);
    sys.sim.run_until(6_000_000);
    let traces = sys
        .sim
        .trace_records()
        .map(|r| format!("{} {}", r.t_us, r.render(sys.sim.node_name(r.node))))
        .collect();
    let deliveries = sys
        .subscribers
        .iter()
        .map(|(h, _)| {
            sys.sim
                .node_ref(*h)
                .received()
                .iter()
                .map(|r| (r.pubend.0, r.ts.0, r.kind, r.seq))
                .collect()
        })
        .collect();
    Golden {
        traces,
        deliveries,
        events: sys.total_events(),
        violations: sys.total_order_violations(),
        watchdogs: sys.sim.watchdog_violations(),
    }
}

#[test]
fn same_seed_same_traces_and_deliveries() {
    let a = run_once(42);
    assert!(
        a.events > 100,
        "workload must actually deliver: {}",
        a.events
    );
    assert_eq!(a.violations, 0);
    assert_eq!(a.watchdogs, 0);
    #[cfg(feature = "trace")]
    assert!(
        !a.traces.is_empty(),
        "trace feature on but no events recorded"
    );

    let b = run_once(42);
    // Compare traces line-by-line first so a mismatch points at the
    // earliest diverging event, not a megabyte Debug dump.
    for (i, (la, lb)) in a.traces.iter().zip(&b.traces).enumerate() {
        assert_eq!(la, lb, "first trace divergence at line {i}");
    }
    assert_eq!(a, b, "same seed must replay bit-identically");
}

#[test]
fn determinism_holds_across_seeds() {
    for seed in [7, 1234] {
        let a = run_once(seed);
        let b = run_once(seed);
        assert_eq!(a, b, "seed {seed} must replay bit-identically");
        assert_eq!(a.violations, 0, "seed {seed}");
        assert_eq!(a.watchdogs, 0, "seed {seed}");
    }
}
