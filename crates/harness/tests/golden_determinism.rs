//! Golden-determinism check for the role-partitioned broker.
//!
//! The broker refactor (PHB/IB/SHB role components over per-pubend
//! `PubendPipeline`s) must be *bit-identical* under the simulator: two
//! runs of the same seeded topology have to produce the same trace
//! event sequence and the same per-subscriber delivery history, down to
//! ordering. Any hidden `HashMap`-iteration-order dependence in the
//! broker shows up here as a diff between the two runs.

use gryphon_harness::{System, TopologySpec, Workload};

/// One delivery a subscriber saw: `(pubend, ts, kind, seq)`.
type Delivery = (u32, u64, &'static str, Option<i64>);

/// Everything observable about one run that determinism must fix:
/// rendered trace lines (in emission order) and, per subscriber, the
/// exact delivery sequence.
#[derive(PartialEq, Debug)]
struct Golden {
    traces: Vec<String>,
    deliveries: Vec<Vec<Delivery>>,
    events: u64,
    violations: u64,
    watchdogs: u64,
}

fn run_once(seed: u64) -> Golden {
    run_with_sampler(seed, None).0
}

fn run_with_sampler(
    seed: u64,
    sample_interval_us: Option<u64>,
) -> (Golden, Option<gryphon_sim::telemetry::Timeline>) {
    run_observed(seed, sample_interval_us, false)
}

/// Runs the golden workload, optionally with the windowed telemetry
/// sampler armed at `sample_interval_us` (and, on top of it, the online
/// health engine), returning the observables and the collected timeline
/// (if any).
fn run_observed(
    seed: u64,
    sample_interval_us: Option<u64>,
    health: bool,
) -> (Golden, Option<gryphon_sim::telemetry::Timeline>) {
    run_instrumented(seed, sample_interval_us, health, None).0
}

/// Like [`run_observed`] but optionally arming tail forensics (exemplar
/// reservoirs + the contention-profiler interval ring) with the given
/// config, and returning the final forensics drop counters
/// `(exemplar_dropped, interval_dropped)` alongside.
fn run_instrumented(
    seed: u64,
    sample_interval_us: Option<u64>,
    health: bool,
    forensics: Option<gryphon_sim::ForensicsConfig>,
) -> (
    (Golden, Option<gryphon_sim::telemetry::Timeline>),
    (f64, f64),
) {
    // Fig. 4-style tree: one PHB hosting four pubends, two SHBs, with
    // disconnecting subscribers so catchup/PFS paths execute too.
    let spec = TopologySpec {
        seed,
        n_shbs: 2,
        pubends: 4,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 6,
        ..Workload::paper_disconnecting(3_000_000, 500_000)
    };
    let mut sys = System::build(&spec, &workload);
    if let Some(interval) = sample_interval_us {
        sys.sim.enable_telemetry(interval);
    }
    if health {
        sys.sim.enable_health(gryphon_sim::default_rules());
    }
    if let Some(cfg) = forensics {
        sys.sim.enable_forensics(cfg);
    }
    sys.sim.run_until(6_000_000);
    let traces = sys
        .sim
        .trace_records()
        .map(|r| format!("{} {}", r.t_us, r.render(sys.sim.node_name(r.node))))
        .collect();
    let deliveries = sys
        .subscribers
        .iter()
        .map(|(h, _)| {
            sys.sim
                .node_ref(*h)
                .received()
                .iter()
                .map(|r| (r.pubend.0, r.ts.0, r.kind, r.seq))
                .collect()
        })
        .collect();
    let golden = Golden {
        traces,
        deliveries,
        events: sys.total_events(),
        violations: sys.total_order_violations(),
        watchdogs: sys.sim.watchdog_violations(),
    };
    let dropped = (
        sys.sim
            .metrics()
            .counter(gryphon_sim::names::FORENSICS_EXEMPLAR_DROPPED),
        sys.sim
            .metrics()
            .counter(gryphon_sim::names::FORENSICS_INTERVAL_DROPPED),
    );
    ((golden, sys.sim.take_telemetry()), dropped)
}

#[test]
fn same_seed_same_traces_and_deliveries() {
    let a = run_once(42);
    assert!(
        a.events > 100,
        "workload must actually deliver: {}",
        a.events
    );
    assert_eq!(a.violations, 0);
    assert_eq!(a.watchdogs, 0);
    #[cfg(feature = "trace")]
    assert!(
        !a.traces.is_empty(),
        "trace feature on but no events recorded"
    );

    let b = run_once(42);
    // Compare traces line-by-line first so a mismatch points at the
    // earliest diverging event, not a megabyte Debug dump.
    for (i, (la, lb)) in a.traces.iter().zip(&b.traces).enumerate() {
        assert_eq!(la, lb, "first trace divergence at line {i}");
    }
    assert_eq!(a, b, "same seed must replay bit-identically");
}

/// The sampler must be a pure observer: arming it cannot perturb the
/// run (no scheduler events, no RNG draws), so traces and deliveries
/// stay bit-identical with it on or off — and the timeline itself is
/// deterministic across runs.
#[test]
fn sampler_does_not_perturb_golden_run() {
    let (plain, no_timeline) = run_with_sampler(42, None);
    assert!(no_timeline.is_none());
    let (sampled_a, timeline_a) = run_with_sampler(42, Some(250_000));
    let (sampled_b, timeline_b) = run_with_sampler(42, Some(250_000));

    assert_eq!(
        plain, sampled_a,
        "sampler on vs off must not change traces or deliveries"
    );
    assert_eq!(sampled_a, sampled_b, "sampled runs must replay identically");
    let ta = timeline_a.expect("sampler armed");
    let tb = timeline_b.expect("sampler armed");
    assert!(!ta.is_empty(), "sampler collected nothing");
    assert_eq!(
        ta.to_ndjson(),
        tb.to_ndjson(),
        "telemetry timeline must replay bit-identically"
    );
    // The simulator publishes its scheduler queue depth every window.
    assert!(!ta.series("telemetry.queue_depth").is_empty());
}

/// The health engine must also be a pure observer: it reads finished
/// sampler windows and writes only its own alert counters/records, so
/// arming it cannot perturb traces, deliveries, or the sample series —
/// and two engine-on runs replay bit-identically, alert log included.
#[test]
fn health_engine_does_not_perturb_golden_run() {
    let (plain, timeline_off) = run_observed(42, Some(250_000), false);
    let (with_health_a, timeline_a) = run_observed(42, Some(250_000), true);
    let (with_health_b, timeline_b) = run_observed(42, Some(250_000), true);

    assert_eq!(
        plain, with_health_a,
        "health engine on vs off must not change traces or deliveries"
    );
    assert_eq!(
        with_health_a, with_health_b,
        "engine-on runs must replay identically"
    );
    let t_off = timeline_off.expect("sampler armed");
    let ta = timeline_a.expect("sampler armed");
    let tb = timeline_b.expect("sampler armed");
    // Arming the engine adds exactly its own primed `health.alert.*`
    // counters to the sampled timeline (their `.rate` series); every
    // *other* sample series is untouched and identical across all three
    // runs, and engine-on runs replay identically wholesale.
    let sans_alert_counters = |t: &gryphon_sim::telemetry::Timeline| -> String {
        t.to_ndjson()
            .lines()
            .filter(|l| !l.contains("\"series\":\"health.alert."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(sans_alert_counters(&t_off), sans_alert_counters(&ta));
    assert_eq!(ta.to_ndjson(), tb.to_ndjson());
    assert_eq!(ta.alerts(), tb.alerts());
    assert!(t_off.alerts().is_empty(), "engine off records no alerts");
}

/// Telemetry series merge deterministically in worker-index order: a
/// timeline collected in one shard equals the same samples split across
/// four per-worker shards and merged 0→3, regardless of which shard a
/// sample landed in.
#[test]
fn sharded_timelines_merge_in_worker_index_order() {
    use gryphon_sim::telemetry::Timeline;
    // Samples as (t_us, series, value, owning worker 0..4).
    let samples = [
        (1_000, "telemetry.queue_depth.w0", 3.0, 0),
        (1_000, "telemetry.queue_depth.w1", 5.0, 1),
        (2_000, "telemetry.queue_depth.w0", 1.0, 0),
        (2_000, "telemetry.queue_depth.w2", 7.0, 2),
        (1_000, "shb.delivered.rate", 100.0, 3),
        (2_000, "shb.delivered.rate", 250.0, 3),
    ];
    // One shard holding everything…
    let mut single = Timeline::new(1_000);
    for &(t, name, v, _) in &samples {
        single.record(t, name, v);
    }
    // …vs four per-worker shards merged in worker-index order.
    let mut shards = [
        Timeline::new(1_000),
        Timeline::new(1_000),
        Timeline::new(1_000),
        Timeline::new(1_000),
    ];
    for &(t, name, v, w) in &samples {
        shards[w].record(t, name, v);
    }
    let mut merged = Timeline::default();
    for shard in &shards {
        merged.merge(shard);
    }
    assert_eq!(merged.to_ndjson(), single.to_ndjson());
    assert_eq!(merged.interval_us(), 1_000);
}

/// Tail forensics must also be pure observers: arming exemplar capture
/// and the contention profiler cannot perturb traces or deliveries, the
/// ordinary sample series stay untouched, and the forensics streams
/// themselves replay bit-identically across armed runs.
#[test]
fn forensics_do_not_perturb_golden_run() {
    let (plain, timeline_off) = run_observed(42, Some(250_000), false);
    let ((armed_a, timeline_a), _) = run_instrumented(
        42,
        Some(250_000),
        false,
        Some(gryphon_sim::ForensicsConfig::default()),
    );
    let ((armed_b, timeline_b), _) = run_instrumented(
        42,
        Some(250_000),
        false,
        Some(gryphon_sim::ForensicsConfig::default()),
    );

    assert_eq!(
        plain, armed_a,
        "forensics on vs off must not change traces or deliveries"
    );
    assert_eq!(armed_a, armed_b, "armed runs must replay identically");
    let t_off = timeline_off.expect("sampler armed");
    let ta = timeline_a.expect("sampler armed");
    let tb = timeline_b.expect("sampler armed");
    // The sampled series are byte-identical with forensics on or off —
    // forensics append only to their own timeline streams plus the
    // `forensics.*` drop counters (same carve-out the health engine
    // gets for its `health.alert.*` counters above).
    let sans_forensics_counters = |t: &gryphon_sim::telemetry::Timeline| -> String {
        t.to_ndjson()
            .lines()
            .filter(|l| !l.contains("\"series\":\"forensics."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        sans_forensics_counters(&t_off),
        sans_forensics_counters(&ta)
    );
    assert_eq!(ta.exemplars_ndjson(), tb.exemplars_ndjson());
    assert_eq!(ta.intervals_ndjson(), tb.intervals_ndjson());
    // The contention profiler observed real work: every charged busy
    // interval lands in the timeline.
    assert!(ta.intervals().len() > 0, "no busy intervals collected");
    assert_eq!(t_off.intervals().len(), 0, "disarmed run collects none");
}

/// The population sketch (top-K attribution + lag spectrum, DESIGN.md
/// §18) is the newest pure observer: arming it cannot perturb traces or
/// deliveries, every non-sketch sample series is byte-identical with it
/// on or off, and the topk stream itself replays bit-identically across
/// armed runs.
#[test]
fn sketch_does_not_perturb_golden_run() {
    let run_sketched = |armed: bool| {
        let spec = TopologySpec {
            seed: 42,
            n_shbs: 2,
            pubends: 4,
            ..TopologySpec::default()
        };
        let workload = Workload {
            subs_per_shb: 6,
            ..Workload::paper_disconnecting(3_000_000, 500_000)
        };
        let mut sys = System::build(&spec, &workload);
        sys.sim.enable_telemetry(250_000);
        if armed {
            sys.sim
                .enable_sketch(gryphon_sim::sketch::SketchConfig::default());
        }
        sys.sim.run_until(6_000_000);
        let traces: Vec<String> = sys
            .sim
            .trace_records()
            .map(|r| format!("{} {}", r.t_us, r.render(sys.sim.node_name(r.node))))
            .collect();
        let deliveries: Vec<Vec<Delivery>> = sys
            .subscribers
            .iter()
            .map(|(h, _)| {
                sys.sim
                    .node_ref(*h)
                    .received()
                    .iter()
                    .map(|r| (r.pubend.0, r.ts.0, r.kind, r.seq))
                    .collect()
            })
            .collect();
        let timeline = sys.sim.take_telemetry().expect("sampler armed");
        (traces, deliveries, timeline)
    };

    let (traces_off, deliveries_off, t_off) = run_sketched(false);
    let (traces_a, deliveries_a, ta) = run_sketched(true);
    let (traces_b, deliveries_b, tb) = run_sketched(true);

    assert_eq!(
        traces_off, traces_a,
        "sketch on vs off must not change the trace stream"
    );
    assert_eq!(
        deliveries_off, deliveries_a,
        "sketch on vs off must not change deliveries"
    );
    assert_eq!(traces_a, traces_b, "armed runs must replay identically");
    assert_eq!(deliveries_a, deliveries_b);
    // The armed run adds only its own `sketch.*` gauge series; every
    // other sample series is untouched (same carve-out as the health
    // engine's counters and the forensics drop counters above).
    let sans_sketch = |t: &gryphon_sim::telemetry::Timeline| -> String {
        t.to_ndjson()
            .lines()
            .filter(|l| !l.contains("\"series\":\"sketch."))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(sans_sketch(&t_off), sans_sketch(&ta));
    assert_eq!(ta.to_ndjson(), tb.to_ndjson());
    // The topk stream itself is deterministic, present only when armed.
    assert_eq!(ta.topks_ndjson(), tb.topks_ndjson());
    assert_eq!(t_off.topks().len(), 0, "disarmed run attributes nothing");
}

/// Forensics memory is bounded even under a pathologically small
/// config: the interval ring evicts (counting each loss into
/// `forensics.interval_dropped`) instead of growing, and what reaches
/// the timeline respects the timeline's own cap.
#[test]
fn forensics_stay_bounded_and_count_drops() {
    let tiny = gryphon_sim::ForensicsConfig {
        interval_capacity: 8,
        ..gryphon_sim::ForensicsConfig::default()
    };
    let ((golden, timeline), (_, interval_dropped)) =
        run_instrumented(42, Some(2_000_000), false, Some(tiny));
    assert!(golden.events > 100);
    let t = timeline.expect("sampler armed");
    // With room for only 8 intervals per window the ring must have
    // evicted, and every eviction is accounted for.
    assert!(
        interval_dropped > 0.0,
        "tiny ring never dropped — bound not exercised"
    );
    assert!(t.intervals().len() <= gryphon_sim::telemetry::TIMELINE_INTERVAL_CAP);
    assert!(t.exemplars().len() <= gryphon_sim::telemetry::TIMELINE_EXEMPLAR_CAP);
}

#[test]
fn determinism_holds_across_seeds() {
    for seed in [7, 1234] {
        let a = run_once(seed);
        let b = run_once(seed);
        assert_eq!(a, b, "seed {seed} must replay bit-identically");
        assert_eq!(a.violations, 0, "seed {seed}");
        assert_eq!(a.watchdogs, 0, "seed {seed}");
    }
}
