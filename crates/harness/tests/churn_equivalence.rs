//! Churn-equivalence for the slab-resident subscriber table (ISSUE 7).
//!
//! The SHB refactor moved all per-subscriber state into a dense slab
//! keyed by `SubSlot`, with parked-stream records for idle subscribers
//! and slot recycling on unsubscribe. These tests prove the observable
//! protocol is unchanged under churn-heavy reconnection:
//!
//! * a churn-heavy run replays bit-identically (traces + deliveries) —
//!   slab iteration order is intrinsic, not `HashMap`-accidental;
//! * deliveries match the pre-refactor semantics exactly: every
//!   subscriber receives precisely the events its filter selects, in
//!   timestamp order, exactly once (consecutive publisher sequences in
//!   its class residue — no holes, no duplicates), with the delivery
//!   ledger and every watchdog clean;
//! * a reconnect-storm property test parks and rehydrates catchup
//!   streams under randomized storms (bandwidth-starved clients, so the
//!   second storm always lands mid-catchup) and asserts ledger-clean
//!   exactly-once delivery with `health.alert.*` quiet outside the
//!   storm transient.

use gryphon::SubscriberConfig;
use gryphon_harness::{System, TopologySpec, Workload};
use proptest::prelude::*;

/// One delivered event: `(pubend, ts, publisher seq)`.
type Delivery = (u32, u64, i64);

struct RunOut {
    traces: Vec<String>,
    /// Per subscriber (in build order): its event deliveries.
    deliveries: Vec<Vec<Delivery>>,
    events: u64,
    gaps: u64,
    order_violations: u64,
    watchdogs: u64,
    ledger: u64,
    rehydrations: f64,
    alerts: Vec<gryphon_sim::AlertRecord>,
}

fn collect_run(mut sys: System, until_us: u64, observe: bool) -> RunOut {
    if observe {
        sys.sim.enable_telemetry(250_000);
        sys.sim.enable_health(gryphon_sim::default_rules());
    }
    sys.sim.run_until(until_us);
    let traces = sys
        .sim
        .trace_records()
        .map(|r| format!("{} {}", r.t_us, r.render(sys.sim.node_name(r.node))))
        .collect();
    let deliveries = sys
        .subscribers
        .iter()
        .map(|(h, _)| {
            sys.sim
                .node_ref(*h)
                .received()
                .iter()
                .filter(|r| r.kind == "event")
                .map(|r| (r.pubend.0, r.ts.0, r.seq.expect("events carry _seq")))
                .collect()
        })
        .collect();
    RunOut {
        traces,
        deliveries,
        events: sys.total_events(),
        gaps: sys.total_gaps(),
        order_violations: sys.total_order_violations(),
        watchdogs: sys.sim.watchdog_violations(),
        ledger: sys.sim.ledger_violations(),
        rehydrations: sys.sim.metrics().counter("shb.stream_rehydrations"),
        alerts: sys
            .sim
            .take_telemetry()
            .map(|t| t.alerts().to_vec())
            .unwrap_or_default(),
    }
}

/// The churn-heavy scenario: 2 SHBs × 8 subscribers, every subscriber
/// disconnecting for 300 ms out of every 1.2 s with staggered phases,
/// so reconnection/catchup/parking churns continuously.
fn run_churn(seed: u64) -> RunOut {
    let spec = TopologySpec {
        seed,
        n_shbs: 2,
        pubends: 4,
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 8,
        sub_cfg: SubscriberConfig {
            disconnect_period_us: Some(1_200_000),
            disconnect_duration_us: 300_000,
            collect: true,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    collect_run(System::build(&spec, &workload), 6_000_000, false)
}

/// Exactly-once against filter semantics: subscriber `k` (filter
/// `class = (k % subs_per_shb) % classes`) must have received, per
/// pubend, a strictly-ascending run of publisher sequences in its class
/// residue with no holes between the first and last — any duplicate,
/// reordering, or missed redelivery under churn breaks the progression.
fn assert_deliveries_match_filters(out: &RunOut, subs_per_shb: usize, classes: i64) {
    for (k, subs) in out.deliveries.iter().enumerate() {
        let class = ((k % subs_per_shb) as i64) % classes;
        let mut per_pubend: std::collections::HashMap<u32, Vec<i64>> = Default::default();
        let mut last_ts: std::collections::HashMap<u32, u64> = Default::default();
        for &(p, ts, seq) in subs {
            assert_eq!(seq % classes, class, "sub {k}: delivery outside its filter");
            let last = last_ts.entry(p).or_insert(0);
            assert!(ts > *last, "sub {k}: non-monotone delivery on pubend {p}");
            *last = ts;
            per_pubend.entry(p).or_default().push(seq);
        }
        for (p, seqs) in per_pubend {
            for w in seqs.windows(2) {
                assert_eq!(
                    w[1],
                    w[0] + classes,
                    "sub {k} pubend {p}: hole or duplicate in the class-{class} sequence run"
                );
            }
        }
    }
}

#[test]
fn churn_heavy_run_replays_bit_identically() {
    let a = run_churn(42);
    assert!(a.events > 500, "churn workload must deliver: {}", a.events);
    assert_eq!(a.order_violations, 0);
    assert_eq!(a.watchdogs, 0);
    assert_eq!(a.ledger, 0, "delivery ledger must be clean under churn");
    let b = run_churn(42);
    for (i, (la, lb)) in a.traces.iter().zip(&b.traces).enumerate() {
        assert_eq!(la, lb, "first trace divergence at line {i}");
    }
    assert_eq!(a.traces.len(), b.traces.len());
    assert_eq!(
        a.deliveries, b.deliveries,
        "deliveries must replay bit-identically"
    );
    assert_eq!(a.events, b.events);
}

#[test]
fn churn_deliveries_match_filter_semantics_exactly_once() {
    let out = run_churn(7);
    assert_eq!(
        out.gaps, 0,
        "no information loss expected on loss-free links"
    );
    assert_eq!(out.order_violations, 0);
    assert_eq!(out.ledger, 0);
    assert!(
        out.deliveries.iter().all(|d| !d.is_empty()),
        "every subscriber delivers"
    );
    assert_deliveries_match_filters(&out, 8, 4);
}

/// One reconnect storm run: every subscriber of one SHB disconnects at
/// the same instant (twice — period 2.5 s), behind a bandwidth-starved
/// client link and a tight catchup flow-control window (300 ticks), so
/// catchup is paced by real client consumption. The long down window
/// piles up more backlog than the up window can drain, so the second
/// storm always lands mid-catchup: streams park into compact records
/// and rehydrate on the reconnect. The run ends with a long quiet tail
/// so catchup completes and any health alert has cleared.
fn run_storm(seed: u64, subs: usize, storm_at_us: u64, down_us: u64) -> RunOut {
    let spec = TopologySpec {
        seed,
        n_shbs: 1,
        pubends: 2,
        client_bw: Some(35_000),
        broker_config: gryphon::BrokerConfig {
            catchup_window_ticks: 300,
            ..gryphon::BrokerConfig::default()
        },
        ..TopologySpec::default()
    };
    let workload = Workload {
        input_rate: 200.0,
        subs_per_shb: subs,
        stagger: false,
        sub_cfg: SubscriberConfig {
            disconnect_period_us: Some(2_500_000),
            disconnect_duration_us: down_us,
            disconnect_phase_us: Some(storm_at_us),
            collect: true,
            ..SubscriberConfig::default()
        },
        ..Workload::default()
    };
    collect_run(System::build(&spec, &workload), 9_000_000, true)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        ..ProptestConfig::default()
    })]

    /// Satellite (d): park/rehydrate N random subscribers under churn —
    /// ledger-clean exactly-once delivery, `health.alert.*` quiet
    /// outside the storm transient.
    #[test]
    fn reconnect_storm_parks_rehydrates_and_stays_exactly_once(
        seed in 0u64..1_000,
        subs in 6usize..=10,
        storm_at_us in 700_000u64..=900_000,
        down_us in 1_500_000u64..=1_700_000,
    ) {
        let out = run_storm(seed, subs, storm_at_us, down_us);
        prop_assert_eq!(out.order_violations, 0);
        prop_assert_eq!(out.watchdogs, 0);
        prop_assert_eq!(out.ledger, 0, "exactly-once ledger must stay clean through the storm");
        prop_assert_eq!(out.gaps, 0);
        prop_assert!(
            out.deliveries.iter().all(|d| !d.is_empty()),
            "every subscriber must deliver through the storm"
        );
        assert_deliveries_match_filters(&out, subs, 4);
        prop_assert!(
            out.rehydrations >= 1.0,
            "the second storm must land mid-catchup and park streams (rehydrations = {})",
            out.rehydrations
        );
        // Health stays quiet outside the storm transient: nothing fires
        // before the first storm, and whatever fires during it clears
        // by the end of the quiet tail.
        for a in &out.alerts {
            prop_assert!(
                a.t_us >= storm_at_us,
                "alert {} fired at {} µs, before the first storm at {} µs",
                a.rule, a.t_us, storm_at_us
            );
        }
        let mut last_state: std::collections::HashMap<&str, gryphon_sim::AlertState> =
            Default::default();
        for a in &out.alerts {
            last_state.insert(a.series.as_str(), a.state);
        }
        for (series, state) in last_state {
            prop_assert!(
                state == gryphon_sim::AlertState::Cleared,
                "alert on {series} still firing after the quiet tail"
            );
        }
    }
}
