//! Chrome/Perfetto trace-event export for run bundles (DESIGN.md §17).
//!
//! `xp doctor export-trace BUNDLE -o trace.json` (and `xp
//! --chrome-trace`) turn a run's forensics streams into the [trace
//! event format] both `chrome://tracing` and [Perfetto] open directly:
//!
//! * each contention-profiler busy interval becomes a complete (`X`)
//!   slice on its worker's thread track (`tid` = track id, named via
//!   `M` metadata) — `busy`, `dispatch`, `queue`, `commit` and `fsync`
//!   slices visually separate CPU time from queueing from device time;
//! * each tail exemplar becomes an async (`b`/`e`) span per resolved
//!   lineage stage (`log` → `ib_forward` → `shb_ingest` → `deliver`),
//!   all sharing one id per event lineage so the whole end-to-end path
//!   nests on a single async track;
//! * each health-alert transition becomes a global instant (`i`) event.
//!
//! Everything is plain-text JSON assembled line-by-line (no JSON
//! dependency, same discipline as the ndjson codecs), one event per
//! line so the CI validator can check the stream with `awk`.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use gryphon_sim::forensics::{BusyInterval, Exemplar};
use gryphon_sim::AlertRecord;

/// The single process id all tracks live under.
const PID: u32 = 1;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full trace-event JSON array from a bundle's forensics
/// streams. Timestamps are already µs — the native trace-event unit —
/// so values pass through unscaled.
pub fn chrome_trace_json(
    intervals: &[BusyInterval],
    exemplars: &[Exemplar],
    alerts: &[AlertRecord],
) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\
         \"args\":{{\"name\":\"gryphon\"}}}}"
    ));
    // One named thread track per worker seen in the interval stream.
    let mut tracks: Vec<u32> = intervals.iter().map(|iv| iv.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{t},\
             \"args\":{{\"name\":\"worker {t}\"}}}}"
        ));
    }
    for iv in intervals {
        ev.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"forensics\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{PID},\"tid\":{}}}",
            esc(iv.kind),
            iv.start_us,
            iv.dur_us.max(1),
            iv.track
        ));
    }
    for ex in exemplars {
        push_exemplar_span(&mut ev, ex);
    }
    for a in alerts {
        ev.push(format!(
            "{{\"name\":\"alert:{}\",\"cat\":\"health\",\"ph\":\"i\",\"ts\":{},\
             \"pid\":{PID},\"tid\":0,\"s\":\"g\",\
             \"args\":{{\"series\":\"{}\",\"state\":\"{}\",\"detail\":\"{}\"}}}}",
            esc(&a.rule),
            a.t_us,
            esc(&a.series),
            a.state.as_str(),
            esc(&a.detail)
        ));
    }
    let mut out = String::from("[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Emits one async `b`/`e` pair per resolved lineage stage of `ex`, all
/// under a shared per-lineage id so the stages nest on one async track.
/// A stage is emitted only when both of its endpoints resolved; gaps
/// (evicted anchors) shrink the span rather than inventing times.
fn push_exemplar_span(ev: &mut Vec<String>, ex: &Exemplar) {
    let id = format!("p{}t{}", ex.pubend, ex.ts);
    let mut prev = ex.birth_us;
    let stages = [
        ("log", ex.log_us),
        ("ib_forward", ex.forward_us),
        ("shb_ingest", ex.ingest_us),
        ("deliver", Some(ex.t_us)),
    ];
    for (name, anchor) in stages {
        let Some(end) = anchor else {
            continue;
        };
        if let Some(start) = prev {
            let end = end.max(start);
            for (ph, ts) in [("b", start), ("e", end)] {
                ev.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"lineage\",\"ph\":\"{ph}\",\"ts\":{ts},\
                     \"pid\":{PID},\"tid\":0,\"id\":\"{id}\",\
                     \"args\":{{\"series\":\"{}\",\"value_us\":{}}}}}",
                    esc(&ex.series),
                    ex.value
                ));
            }
        }
        prev = Some(end.max(prev.unwrap_or(0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_sim::forensics::{KIND_BUSY, KIND_FSYNC};
    use gryphon_sim::{AlertState, Exemplar};

    fn sample_exemplar() -> Exemplar {
        Exemplar {
            t_us: 9_000,
            series: "lineage.stage.deliver_us".into(),
            value: 7_700.0,
            pubend: 3,
            ts: 17,
            birth_us: Some(1_000),
            log_us: Some(1_300),
            forward_us: None, // evicted anchor: stage skipped, not faked
            ingest_us: Some(2_500),
        }
    }

    #[test]
    fn export_has_metadata_slices_spans_and_instants() {
        let intervals = vec![
            BusyInterval {
                track: 0,
                kind: KIND_BUSY,
                start_us: 100,
                dur_us: 50,
            },
            BusyInterval {
                track: 2,
                kind: KIND_FSYNC,
                start_us: 400,
                dur_us: 0, // clamped to 1 µs so viewers render it
            },
        ];
        let alerts = vec![AlertRecord {
            t_us: 5_000,
            rule: "deliver_slo".into(),
            series: "lineage.stage.deliver_us.q99".into(),
            state: AlertState::Firing,
            value: 7_700.0,
            threshold: 5_000.0,
            detail: "q99 7700 µs".into(),
        }];
        let json = chrome_trace_json(&intervals, &[sample_exemplar()], &alerts);
        assert!(
            json.starts_with("[\n") && json.ends_with("\n]\n"),
            "array framing"
        );
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"worker 2\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":100,\"dur\":50,\"pid\":1,\"tid\":0"));
        assert!(
            json.contains("\"ph\":\"X\",\"ts\":400,\"dur\":1"),
            "zero dur clamped"
        );
        assert!(json.contains("\"name\":\"alert:deliver_slo\""));
        assert!(json.contains("\"s\":\"g\""));
        // Async begins and ends balance, and the missing ib_forward
        // anchor drops that stage while keeping the rest of the chain.
        let begins = json.matches("\"ph\":\"b\"").count();
        let ends = json.matches("\"ph\":\"e\"").count();
        assert_eq!(begins, ends);
        assert_eq!(begins, 3, "log, shb_ingest, deliver");
        assert!(!json.contains("\"name\":\"ib_forward\""));
        assert!(json.contains("\"id\":\"p3t17\""));
        // Every event row carries pid and tid (the CI validator's
        // contract), and only known phase letters appear.
        for line in json.lines() {
            if !line.starts_with('{') {
                continue;
            }
            assert!(line.contains("\"pid\":"), "no pid: {line}");
            assert!(line.contains("\"tid\":"), "no tid: {line}");
            let ph = line
                .split("\"ph\":\"")
                .nth(1)
                .and_then(|s| s.chars().next())
                .unwrap();
            assert!("XbeiM".contains(ph), "unknown phase {ph}");
        }
    }

    #[test]
    fn empty_streams_export_metadata_only() {
        let json = chrome_trace_json(&[], &[], &[]);
        assert!(json.contains("process_name"));
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(json.trim_end().ends_with(']'));
    }
}
