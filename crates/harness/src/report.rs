//! Printable experiment reports.

/// One table of an experiment report.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (usually the paper artefact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// A complete experiment report: tables, notes and optional raw series.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The experiment id.
    pub id: String,
    /// Rendered tables.
    pub tables: Vec<Table>,
    /// Free-form commentary (paper-vs-measured discussion).
    pub notes: Vec<String>,
    /// Raw `(name, samples)` series for plotting (virtual seconds, value).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

impl Report {
    /// Creates an empty report for `id`.
    pub fn new(id: &str) -> Self {
        Report {
            id: id.to_owned(),
            ..Default::default()
        }
    }

    /// Adds a table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Adds a raw series (already reduced to plot points).
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Renders everything as text.
    pub fn render(&self) -> String {
        let mut out = format!("# experiment: {}\n\n", self.id);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if !self.series.is_empty() {
            out.push_str("\nseries (first/last points):\n");
            for (name, pts) in &self.series {
                if let (Some(first), Some(last)) = (pts.first(), pts.last()) {
                    out.push_str(&format!(
                        "  {name}: {} points, t={:.1}s v={:.1} .. t={:.1}s v={:.1}\n",
                        pts.len(),
                        first.0,
                        first.1,
                        last.0,
                        last.1
                    ));
                }
            }
        }
        out
    }

    /// Dumps all series as CSV (`series,t_seconds,value` lines).
    pub fn series_csv(&self) -> String {
        let mut out = String::from("series,t_seconds,value\n");
        for (name, pts) in &self.series {
            for (t, v) in pts {
                out.push_str(&format!("{name},{t:.3},{v:.3}\n"));
            }
        }
        out
    }
}

/// Formats a float with thousands separators (rates in ev/s).
pub fn fmt_rate(v: f64) -> String {
    if v >= 1_000.0 {
        format!("{:.1}K", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn report_renders_notes_and_series() {
        let mut r = Report::new("x");
        r.note("hello");
        r.series("s", vec![(0.0, 1.0), (1.0, 2.0)]);
        let text = r.render();
        assert!(text.contains("note: hello"));
        assert!(text.contains("2 points"));
        let csv = r.series_csv();
        assert!(csv.lines().count() == 3);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(19_800.0), "19.8K");
        assert_eq!(fmt_rate(750.0), "750");
    }
}
