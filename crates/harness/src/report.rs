//! Printable experiment reports.

use gryphon_sim::telemetry::{sparkline, Timeline};
use gryphon_sim::Metrics;

/// Escapes one CSV field per RFC 4180: fields containing commas, quotes
/// or newlines are quoted, with interior quotes doubled.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Summary of one histogram for the metrics section.
#[derive(Debug, Clone)]
pub struct HistogramSummary {
    /// Metric name (see `gryphon_sim::names`).
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Exact smallest sample.
    pub min: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th percentile estimate.
    pub p95: f64,
    /// 99th percentile estimate.
    pub p99: f64,
    /// Exact largest sample.
    pub max: f64,
}

/// A snapshot of a run's [`Metrics`], reduced to stable, sorted summaries
/// for rendering and CSV/JSON export.
#[derive(Debug, Clone, Default)]
pub struct MetricsSection {
    /// All counters, sorted by name.
    pub counters: Vec<(String, f64)>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// All series reduced to `(name, samples, mean)`, sorted by name.
    pub series: Vec<(String, usize, f64)>,
}

impl MetricsSection {
    /// Snapshots `metrics` into sorted summaries.
    pub fn from_metrics(metrics: &Metrics) -> Self {
        let counters = metrics
            .counter_names()
            .into_iter()
            .map(|n| (n.to_owned(), metrics.counter(n)))
            .collect();
        let histograms = metrics
            .histogram_names()
            .into_iter()
            .filter_map(|n| {
                let h = metrics.histogram(n)?;
                Some(HistogramSummary {
                    name: n.to_owned(),
                    count: h.count(),
                    min: h.min()?,
                    p50: h.percentile(0.50)?,
                    p95: h.percentile(0.95)?,
                    p99: h.percentile(0.99)?,
                    max: h.max()?,
                })
            })
            .collect();
        let series = metrics
            .series_names()
            .into_iter()
            .map(|n| {
                let s = metrics.series(n);
                (n.to_owned(), s.len(), metrics.mean(n).unwrap_or(0.0))
            })
            .collect();
        MetricsSection {
            counters,
            histograms,
            series,
        }
    }
}

/// One table of an experiment report.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (usually the paper artefact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// A complete experiment report: tables, notes and optional raw series.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The experiment id.
    pub id: String,
    /// Rendered tables.
    pub tables: Vec<Table>,
    /// Free-form commentary (paper-vs-measured discussion).
    pub notes: Vec<String>,
    /// Raw `(name, samples)` series for plotting (virtual seconds, value).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Snapshot of the run's metrics (attach with
    /// [`Report::attach_metrics`]).
    pub metrics: Option<MetricsSection>,
    /// Prometheus text-format rendering of the same metrics snapshot
    /// (the `xp --prom-out` export; set by [`Report::attach_metrics`]).
    pub prom: Option<String>,
    /// Rendered trace lines (attach with [`Report::attach_trace`]).
    pub trace: Vec<String>,
    /// Time-resolved telemetry timeline (attach with
    /// [`Report::attach_telemetry`]); rendered as sparklines and
    /// exported via [`Report::telemetry_ndjson`] /
    /// [`Report::telemetry_csv`].
    pub telemetry: Option<Timeline>,
}

impl Report {
    /// Creates an empty report for `id`.
    pub fn new(id: &str) -> Self {
        Report {
            id: id.to_owned(),
            ..Default::default()
        }
    }

    /// Adds a table.
    pub fn table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a note.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Adds a raw series (already reduced to plot points).
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Snapshots a run's metrics into the report (counters, histogram
    /// percentiles, series summaries).
    pub fn attach_metrics(&mut self, metrics: &Metrics) -> &mut Self {
        self.metrics = Some(MetricsSection::from_metrics(metrics));
        self.prom = Some(gryphon_sim::lineage::prometheus_text(metrics));
        self.append_topk_prom();
        self
    }

    /// Appends the labeled `topk_*` gauges from the attached timeline's
    /// latest top-K snapshots onto the Prometheus snapshot, replacing
    /// any block a previous attach left (both attach orders work, and
    /// re-attaching never duplicates). Cardinality is bounded at K
    /// label pairs per dimension by the sketch itself (DESIGN.md §18):
    /// this is the one place the exporter emits per-entity labels, and
    /// it can never exceed `dims × K` series.
    fn append_topk_prom(&mut self) {
        // Doubles as the idempotence marker for truncate-and-reappend;
        // a HELP comment so the block stays inside the exposition
        // grammar the CI awk validator enforces.
        const MARKER: &str =
            "# HELP topk_weight top-K attribution weight (bounded-cardinality labels)\n";
        let Some(prom) = self.prom.as_mut() else {
            return;
        };
        if let Some(at) = prom.find(MARKER) {
            prom.truncate(at);
        }
        let Some(timeline) = self.telemetry.as_ref() else {
            return;
        };
        // Latest snapshot per dimension, in first-seen dimension order.
        let mut latest: Vec<&gryphon_sim::TopKSnapshot> = Vec::new();
        for snap in timeline.topks() {
            match latest.iter_mut().find(|s| s.dim == snap.dim) {
                Some(slot) => *slot = snap,
                None => latest.push(snap),
            }
        }
        if latest.is_empty() {
            return;
        }
        prom.push_str(MARKER);
        prom.push_str("# TYPE topk_weight gauge\n");
        for snap in &latest {
            for e in &snap.entries {
                prom.push_str(&format!(
                    "topk_weight{{dim=\"{}\",entity=\"{}\"}} {}\n",
                    snap.dim, e.entity, e.count
                ));
            }
        }
        prom.push_str("# TYPE topk_total gauge\n");
        for snap in &latest {
            prom.push_str(&format!(
                "topk_total{{dim=\"{}\"}} {}\n",
                snap.dim, snap.total
            ));
        }
    }

    /// Attaches already-rendered trace lines.
    pub fn attach_trace(&mut self, lines: Vec<String>) -> &mut Self {
        self.trace = lines;
        self
    }

    /// Attaches a telemetry timeline (from `Sim::take_telemetry` or
    /// `NetResult::telemetry`).
    pub fn attach_telemetry(&mut self, timeline: Timeline) -> &mut Self {
        self.telemetry = Some(timeline);
        self.append_topk_prom();
        self
    }

    /// Dumps the attached telemetry timeline as ndjson (one
    /// `{"series": ..., "t_us": ..., "value": ...}` object per sample).
    /// Empty when no timeline is attached.
    pub fn telemetry_ndjson(&self) -> String {
        self.telemetry
            .as_ref()
            .map(Timeline::to_ndjson)
            .unwrap_or_default()
    }

    /// Dumps the attached telemetry timeline as CSV
    /// (`series,t_us,value`). Header-only when no timeline is attached.
    pub fn telemetry_csv(&self) -> String {
        self.telemetry
            .as_ref()
            .map(Timeline::to_csv)
            .unwrap_or_else(|| "series,t_us,value\n".to_owned())
    }

    /// The health-alert transitions recorded on the attached timeline
    /// (empty when no timeline is attached or nothing fired).
    pub fn alerts(&self) -> &[gryphon_sim::AlertRecord] {
        self.telemetry
            .as_ref()
            .map(|t| t.alerts())
            .unwrap_or_default()
    }

    /// Dumps the alert log as ndjson (the bundle's `alerts.ndjson`).
    pub fn alerts_ndjson(&self) -> String {
        self.telemetry
            .as_ref()
            .map(Timeline::alerts_ndjson)
            .unwrap_or_default()
    }

    /// Dumps the tail-exemplar log as ndjson (the bundle's
    /// `exemplars.ndjson`; empty when forensics was disarmed).
    pub fn exemplars_ndjson(&self) -> String {
        self.telemetry
            .as_ref()
            .map(Timeline::exemplars_ndjson)
            .unwrap_or_default()
    }

    /// Dumps the busy-interval log as ndjson (the bundle's
    /// `intervals.ndjson`; empty when forensics was disarmed).
    pub fn intervals_ndjson(&self) -> String {
        self.telemetry
            .as_ref()
            .map(Timeline::intervals_ndjson)
            .unwrap_or_default()
    }

    /// Dumps the per-window top-K attribution snapshots as ndjson (the
    /// bundle's `topk.ndjson`; empty when the sketch was disarmed).
    pub fn topks_ndjson(&self) -> String {
        self.telemetry
            .as_ref()
            .map(Timeline::topks_ndjson)
            .unwrap_or_default()
    }

    /// Renders everything as text.
    pub fn render(&self) -> String {
        let mut out = format!("# experiment: {}\n\n", self.id);
        // Loud and first: a saturated trace ring means the trace tail
        // below is missing records. (Watchdogs and the lineage ledger
        // observe on push, before ring eviction, so *their* numbers
        // remain complete — only the retained records are partial.)
        let dropped = self
            .metrics
            .as_ref()
            .and_then(|m| {
                m.counters
                    .iter()
                    .find(|(n, _)| n == gryphon_sim::names::TRACE_DROPPED)
            })
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        if dropped > 0.0 {
            out.push_str(&format!(
                "!!{0}!!\n!! WARNING: trace ring dropped {dropped:.0} records during this run.\n\
                 !! The trace tail below is incomplete — raise the trace capacity\n\
                 !! (Sim::set_trace_capacity) to retain the full stream.\n!!{0}!!\n\n",
                "=".repeat(68)
            ));
        }
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if !self.series.is_empty() {
            out.push_str("\nseries (first/last points):\n");
            for (name, pts) in &self.series {
                if let (Some(first), Some(last)) = (pts.first(), pts.last()) {
                    out.push_str(&format!(
                        "  {name}: {} points, t={:.1}s v={:.1} .. t={:.1}s v={:.1}\n",
                        pts.len(),
                        first.0,
                        first.1,
                        last.0,
                        last.1
                    ));
                }
            }
        }
        if let Some(m) = &self.metrics {
            out.push_str("\n## metrics\n");
            if !m.histograms.is_empty() {
                let mut t = Table::new(
                    "histograms",
                    &["name", "count", "min", "p50", "p95", "p99", "max"],
                );
                for h in &m.histograms {
                    t.row(&[
                        h.name.clone(),
                        h.count.to_string(),
                        format!("{:.1}", h.min),
                        format!("{:.1}", h.p50),
                        format!("{:.1}", h.p95),
                        format!("{:.1}", h.p99),
                        format!("{:.1}", h.max),
                    ]);
                }
                out.push_str(&t.render());
            }
            if !m.counters.is_empty() {
                let mut t = Table::new("counters", &["name", "value"]);
                for (name, v) in &m.counters {
                    t.row(&[name.clone(), format!("{v:.0}")]);
                }
                out.push_str(&t.render());
            }
        }
        // ALERTS: present whenever the health engine was armed (its
        // primed `health.alert.*` counters mark that) or anything
        // actually fired, so "zero alerts" is a visible statement, not
        // an absence.
        let alerts = self.alerts();
        let armed = self.metrics.as_ref().is_some_and(|m| {
            m.counters
                .iter()
                .any(|(n, _)| n.starts_with("health.alert."))
        });
        if armed || !alerts.is_empty() {
            out.push_str(&format!("\n## ALERTS ({} transitions)\n", alerts.len()));
            if alerts.is_empty() {
                out.push_str("  health engine armed; no alerts fired\n");
            }
            for a in alerts {
                out.push_str(&format!(
                    "  [{:>9.3}s] {:<7} {} on {}: {}\n",
                    a.t_us as f64 / 1e6,
                    a.state.as_str().to_uppercase(),
                    a.rule,
                    a.series,
                    a.detail
                ));
            }
        }
        if let Some(t) = &self.telemetry {
            if !t.is_empty() {
                out.push_str(&format!(
                    "\n## telemetry ({} series, {:.0} ms windows)\n",
                    t.series_names().len(),
                    t.interval_us() as f64 / 1_000.0
                ));
                let width = t.series_names().iter().map(|n| n.len()).max().unwrap_or(0);
                for name in t.series_names() {
                    let samples = t.series(name);
                    let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
                    let (min, max) = values
                        .iter()
                        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                            (lo.min(v), hi.max(v))
                        });
                    out.push_str(&format!(
                        "  {name:<width$}  {}  min {:.1}  max {:.1}  last {:.1}\n",
                        sparkline(&values, 40),
                        min,
                        max,
                        values.last().copied().unwrap_or(0.0)
                    ));
                }
            }
        }
        if !self.trace.is_empty() {
            // Full dumps go through `xp --trace`; the report itself keeps
            // a readable tail.
            const SHOWN: usize = 20;
            out.push_str(&format!("\n## trace ({} records)\n", self.trace.len()));
            if self.trace.len() > SHOWN {
                out.push_str(&format!(
                    "... ({} earlier records elided)\n",
                    self.trace.len() - SHOWN
                ));
            }
            for line in self.trace.iter().rev().take(SHOWN).rev() {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }

    /// Dumps all series as CSV (`series,t_seconds,value` lines), RFC 4180
    /// escaped, rows sorted by series name (sample order preserved within
    /// a series).
    pub fn series_csv(&self) -> String {
        let mut out = String::from("series,t_seconds,value\n");
        let mut sorted: Vec<&(String, Vec<(f64, f64)>)> = self.series.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, pts) in sorted {
            let name = csv_escape(name);
            for (t, v) in pts {
                out.push_str(&format!("{name},{t:.3},{v:.3}\n"));
            }
        }
        out
    }

    /// Dumps the attached metrics snapshot as CSV: one row per metric
    /// (`kind,name,count,value,min,p50,p95,p99,max` — unused cells empty),
    /// sorted by kind then name. Empty when no metrics are attached.
    pub fn metrics_csv(&self) -> String {
        let mut out = String::from("kind,name,count,value,min,p50,p95,p99,max\n");
        let Some(m) = &self.metrics else {
            return out;
        };
        for (name, v) in &m.counters {
            out.push_str(&format!("counter,{},,{v:.3},,,,,\n", csv_escape(name)));
        }
        for h in &m.histograms {
            out.push_str(&format!(
                "histogram,{},{},,{:.3},{:.3},{:.3},{:.3},{:.3}\n",
                csv_escape(&h.name),
                h.count,
                h.min,
                h.p50,
                h.p95,
                h.p99,
                h.max
            ));
        }
        for (name, n, mean) in &m.series {
            out.push_str(&format!("series,{},{n},{mean:.3},,,,,\n", csv_escape(name)));
        }
        out
    }

    /// Dumps the attached metrics snapshot as a JSON object
    /// (`{"experiment": ..., "counters": {...}, "histograms": {...},
    /// "series": {...}}`). Hand-rolled — the workspace is offline and
    /// carries no JSON dependency.
    pub fn metrics_json(&self) -> String {
        let empty = MetricsSection::default();
        let m = self.metrics.as_ref().unwrap_or(&empty);
        let mut out = format!("{{\n  \"experiment\": \"{}\",\n", json_escape(&self.id));
        out.push_str("  \"counters\": {");
        let counters: Vec<String> = m
            .counters
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json_escape(n), json_num(*v)))
            .collect();
        out.push_str(&counters.join(", "));
        out.push_str("},\n  \"histograms\": {");
        let hists: Vec<String> = m
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "\"{}\": {{\"count\": {}, \"min\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
                    json_escape(&h.name),
                    h.count,
                    json_num(h.min),
                    json_num(h.p50),
                    json_num(h.p95),
                    json_num(h.p99),
                    json_num(h.max)
                )
            })
            .collect();
        out.push_str(&hists.join(", "));
        out.push_str("},\n  \"series\": {");
        let series: Vec<String> = m
            .series
            .iter()
            .map(|(n, count, mean)| {
                format!(
                    "\"{}\": {{\"samples\": {count}, \"mean\": {}}}",
                    json_escape(n),
                    json_num(*mean)
                )
            })
            .collect();
        out.push_str(&series.join(", "));
        out.push_str("}\n}\n");
        out
    }
}

/// Formats a float with thousands separators (rates in ev/s).
pub fn fmt_rate(v: f64) -> String {
    if v >= 1_000.0 {
        format!("{:.1}K", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn report_renders_notes_and_series() {
        let mut r = Report::new("x");
        r.note("hello");
        r.series("s", vec![(0.0, 1.0), (1.0, 2.0)]);
        let text = r.render();
        assert!(text.contains("note: hello"));
        assert!(text.contains("2 points"));
        let csv = r.series_csv();
        assert!(csv.lines().count() == 3);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(19_800.0), "19.8K");
        assert_eq!(fmt_rate(750.0), "750");
    }

    #[test]
    fn csv_escapes_and_sorts() {
        let mut r = Report::new("x");
        r.series("z,last", vec![(0.0, 1.0)]);
        r.series("a\"first", vec![(0.0, 2.0)]);
        let csv = r.series_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "series,t_seconds,value");
        // Sorted: the quoted-name series comes first despite insertion order.
        assert_eq!(lines[1], "\"a\"\"first\",0.000,2.000");
        assert_eq!(lines[2], "\"z,last\",0.000,1.000");
    }

    #[test]
    fn metrics_section_exports() {
        let mut m = Metrics::default();
        m.count("phb.log_bytes", 1024.0);
        for v in [10.0, 20.0, 30.0] {
            m.observe("shb.switchover_latency_us", v);
        }
        m.record(1_000, "shb.doubt_width", 5.0);
        let mut r = Report::new("exp");
        r.attach_metrics(&m);

        let text = r.render();
        assert!(text.contains("## metrics"));
        assert!(text.contains("phb.log_bytes"));
        assert!(text.contains("shb.switchover_latency_us"));

        let csv = r.metrics_csv();
        assert!(csv.starts_with("kind,name,count,value,min,p50,p95,p99,max\n"));
        assert!(csv.contains("counter,phb.log_bytes,,1024.000"));
        assert!(csv.contains("histogram,shb.switchover_latency_us,3,"));
        assert!(csv.contains("series,shb.doubt_width,1,5.000"));

        let json = r.metrics_json();
        assert!(json.contains("\"experiment\": \"exp\""));
        assert!(json.contains("\"phb.log_bytes\": 1024"));
        assert!(json.contains("\"count\": 3"));
    }

    #[test]
    fn empty_metrics_json_is_valid_shape() {
        let r = Report::new("none");
        let json = r.metrics_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"histograms\": {}"));
        assert_eq!(
            r.metrics_csv(),
            "kind,name,count,value,min,p50,p95,p99,max\n"
        );
    }

    #[test]
    fn prom_snapshot_carries_labeled_topk_gauges_in_either_attach_order() {
        use gryphon_sim::{TopKEntry, TopKSnapshot};
        let mk_timeline = || {
            let mut t = Timeline::new(500_000);
            t.push_topk(TopKSnapshot {
                t_us: 500_000,
                dim: gryphon_sim::sketch::DIM_SUB_BYTES,
                total: 900,
                entries: vec![TopKEntry {
                    entity: 42,
                    count: 900,
                    err: 0,
                }],
            });
            t
        };
        let needle = "topk_weight{dim=\"hottest_subs_by_bytes\",entity=\"42\"} 900";
        // metrics then telemetry (the common order).
        let mut r = Report::new("p");
        r.attach_metrics(&Metrics::default());
        r.attach_telemetry(mk_timeline());
        let prom = r.prom.clone().unwrap();
        assert!(prom.contains(needle), "{prom}");
        assert!(prom.contains("topk_total{dim=\"hottest_subs_by_bytes\"} 900"));
        // Re-attaching must not duplicate the block.
        r.attach_telemetry(mk_timeline());
        assert_eq!(r.prom.as_ref().unwrap().matches(needle).count(), 1);
        // telemetry then metrics also lands the block.
        let mut r2 = Report::new("p2");
        r2.attach_telemetry(mk_timeline());
        r2.attach_metrics(&Metrics::default());
        assert!(r2.prom.unwrap().contains(needle));
        // No topks → no topk families at all.
        let mut r3 = Report::new("p3");
        r3.attach_metrics(&Metrics::default());
        r3.attach_telemetry(Timeline::new(500_000));
        assert!(!r3.prom.unwrap().contains("topk_"));
    }

    #[test]
    fn dropped_trace_records_raise_a_banner() {
        let mut m = Metrics::default();
        m.count(gryphon_sim::names::TRACE_DROPPED, 17.0);
        let mut r = Report::new("drops");
        r.attach_metrics(&m);
        let text = r.render();
        assert!(text.contains("WARNING: trace ring dropped 17 records"));
        // And no banner when nothing was dropped.
        let mut clean = Report::new("clean");
        clean.attach_metrics(&Metrics::default());
        assert!(!clean.render().contains("WARNING: trace ring dropped"));
    }

    #[test]
    fn telemetry_section_renders_sparklines_and_exports() {
        let mut t = Timeline::new(500_000);
        for (i, v) in [0.0, 2.0, 9.0, 3.0, 1.0].iter().enumerate() {
            t.record((i as u64 + 1) * 500_000, "telemetry.queue_depth", *v);
        }
        let mut r = Report::new("tl");
        r.attach_telemetry(t);
        let text = r.render();
        assert!(text.contains("## telemetry (1 series, 500 ms windows)"));
        assert!(text.contains("telemetry.queue_depth"));
        assert!(text.contains("max 9.0"));
        assert!(text.contains('█'), "sparkline glyphs present: {text}");
        let nd = r.telemetry_ndjson();
        assert_eq!(nd.lines().count(), 5);
        assert!(nd.contains("\"series\":\"telemetry.queue_depth\""));
        let csv = r.telemetry_csv();
        assert!(csv.starts_with("series,t_us,value\n"));
        assert_eq!(csv.lines().count(), 6);
        // Unattached reports export empty shapes, not panics.
        let bare = Report::new("none");
        assert_eq!(bare.telemetry_ndjson(), "");
        assert_eq!(bare.telemetry_csv(), "series,t_us,value\n");
    }

    #[test]
    fn alerts_section_renders_firing_and_armed_quiet() {
        use gryphon_sim::{AlertRecord, AlertState};
        // A fired alert renders in the ALERTS section.
        let mut t = Timeline::new(500_000);
        t.record(500_000, "telemetry.queue_depth", 1.0);
        t.push_alert(AlertRecord {
            t_us: 500_000,
            rule: "catchup_backlog".into(),
            series: "telemetry.catchup_backlog_ticks".into(),
            value: 1234.0,
            threshold: 500.0,
            state: AlertState::Firing,
            detail: "rose 1234 over 4 windows (min 500)".into(),
        });
        let mut r = Report::new("a");
        r.attach_telemetry(t);
        let text = r.render();
        assert!(text.contains("## ALERTS (1 transitions)"), "{text}");
        assert!(text.contains("FIRING"), "{text}");
        assert!(text.contains("catchup_backlog"), "{text}");
        assert_eq!(r.alerts().len(), 1);
        assert_eq!(r.alerts_ndjson().lines().count(), 1);

        // Armed-but-quiet: primed counters alone produce the section.
        let mut m = Metrics::default();
        m.count("health.alert.catchup_backlog", 0.0);
        let mut quiet = Report::new("q");
        quiet.attach_metrics(&m);
        let text = quiet.render();
        assert!(text.contains("## ALERTS (0 transitions)"), "{text}");
        assert!(text.contains("no alerts fired"), "{text}");

        // Engine off: no section at all.
        let off = Report::new("off");
        assert!(!off.render().contains("## ALERTS"));
        assert_eq!(off.alerts_ndjson(), "");
    }

    #[test]
    fn trace_lines_render() {
        let mut r = Report::new("t");
        r.attach_trace(vec!["[0.001s] shb1 catchup-started p=1".into()]);
        let text = r.render();
        assert!(text.contains("## trace (1 records)"));
        assert!(text.contains("catchup-started"));
    }
}
