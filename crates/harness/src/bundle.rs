//! Run bundles: self-describing artifact directories for one `xp` run
//! (DESIGN.md §14).
//!
//! A bundle is everything a later diagnosis needs, in one directory:
//!
//! ```text
//! <root>/<experiment>/
//!   manifest.json     # flat key/value run metadata + summary counts
//!   metrics.csv       # counters / histogram percentiles / series means
//!   metrics.json      # the same snapshot as JSON
//!   timeline.ndjson   # the windowed telemetry timeline (exact samples)
//!   timeline.csv      # the same timeline as CSV
//!   alerts.ndjson     # health-engine alert transitions (may be empty)
//!   exemplars.ndjson  # tail exemplars with lineage anchors (may be empty)
//!   intervals.ndjson  # contention-profiler busy intervals (may be empty)
//!   topk.ndjson       # per-window top-K attribution snapshots (may be empty)
//!   snapshot.prom     # Prometheus text exposition of the snapshot
//!   report.txt        # the rendered human report
//!   flight/           # flight-recorder post-mortems, when any fired
//! ```
//!
//! `xp --bundle-out DIR` writes one bundle per experiment and `xp
//! doctor` reads them back ([`crate::doctor`]). The formats are the
//! pinned ones the report already exports; the manifest is a flat JSON
//! object (no nesting) so the offline reader needs no JSON library.

use crate::report::Report;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The manifest schema tag bundles are written with; readers reject
/// manifests from a different major shape.
pub const SCHEMA: &str = "gryphon-bundle/1";

/// Run metadata recorded into `manifest.json` alongside the summary
/// counts derived from the report.
#[derive(Debug, Clone, Default)]
pub struct BundleMeta {
    /// Quick (CI-shortened) run.
    pub quick: bool,
    /// Telemetry sampling interval in µs (0 = sampler off).
    pub interval_us: u64,
    /// Seed offset the run was built with (`xp --seed-offset`).
    pub seed_offset: u64,
    /// Whether the deliberate config degrade was armed (`xp --degrade`).
    pub degrade: bool,
}

/// Best-effort current commit from `.git/HEAD` (no git binary, no
/// network): follows one level of `ref:` indirection, returns a
/// shortened hex id, or "unknown" outside a checkout.
fn git_describe() -> String {
    let head = match std::fs::read_to_string(".git/HEAD") {
        Ok(s) => s,
        Err(_) => return "unknown".to_owned(),
    };
    let head = head.trim();
    let sha = if let Some(r) = head.strip_prefix("ref: ") {
        match std::fs::read_to_string(Path::new(".git").join(r.trim())) {
            Ok(s) => s.trim().to_owned(),
            Err(_) => return "unknown".to_owned(),
        }
    } else {
        head.to_owned()
    };
    if sha.len() >= 12 && sha.chars().all(|c| c.is_ascii_hexdigit()) {
        sha[..12].to_owned()
    } else {
        "unknown".to_owned()
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the flat manifest object: one `"key": value` pair per line,
/// string and numeric/bool values only — the shape
/// [`parse_flat_json`] reads back.
fn render_manifest(report: &Report, meta: &BundleMeta) -> String {
    let firing = report
        .alerts()
        .iter()
        .filter(|a| a.state == gryphon_sim::AlertState::Firing)
        .count();
    let (counters, histograms, series) = report
        .metrics
        .as_ref()
        .map(|m| (m.counters.len(), m.histograms.len(), m.series.len()))
        .unwrap_or((0, 0, 0));
    let timeline_series = report
        .telemetry
        .as_ref()
        .map(|t| t.series_names().len())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    let mut field = |k: &str, v: String| {
        out.push_str(&format!("  \"{k}\": {v},\n"));
    };
    field("schema", format!("\"{}\"", json_escape(SCHEMA)));
    field("experiment", format!("\"{}\"", json_escape(&report.id)));
    field("version", format!("\"{}\"", env!("CARGO_PKG_VERSION")));
    field("git", format!("\"{}\"", json_escape(&git_describe())));
    field("quick", meta.quick.to_string());
    field("interval_us", meta.interval_us.to_string());
    field("seed_offset", meta.seed_offset.to_string());
    field("degrade", meta.degrade.to_string());
    field("counters", counters.to_string());
    field("histograms", histograms.to_string());
    field("series", series.to_string());
    field("timeline_series", timeline_series.to_string());
    field("alerts", report.alerts().len().to_string());
    field("alerts_firing", firing.to_string());
    // Close without a trailing comma: the last field is rewritten.
    let trimmed = out.trim_end_matches(",\n").to_owned();
    format!("{trimmed}\n}}\n")
}

/// Parses the flat JSON object [`render_manifest`] writes (and nothing
/// fancier): one `"key": value` pair per line, values either quoted
/// strings or bare tokens. Returned values are unquoted raw strings.
pub fn parse_flat_json(s: &str) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    for line in s.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            continue;
        }
        let rest = line
            .strip_prefix('"')
            .ok_or_else(|| format!("manifest: expected key line, got {line}"))?;
        let (key, rest) = rest
            .split_once("\": ")
            .ok_or_else(|| format!("manifest: malformed pair {line}"))?;
        let value = rest
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or(rest);
        out.insert(key.to_owned(), value.to_owned());
    }
    if out.get("schema").map(String::as_str) != Some(SCHEMA) {
        return Err(format!(
            "manifest: schema {:?} is not {SCHEMA}",
            out.get("schema")
        ));
    }
    Ok(out)
}

/// The flight-recorder subdirectory inside a bundle for `experiment`.
pub fn flight_dir(root: &Path, experiment: &str) -> PathBuf {
    root.join(experiment).join("flight")
}

/// Writes a complete bundle under `root/<report.id>/`, returning the
/// bundle directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bundle(root: &Path, report: &Report, meta: &BundleMeta) -> std::io::Result<PathBuf> {
    let dir = root.join(&report.id);
    std::fs::create_dir_all(dir.join("flight"))?;
    let write = |name: &str, contents: &str| -> std::io::Result<()> {
        let mut f = std::fs::File::create(dir.join(name))?;
        f.write_all(contents.as_bytes())
    };
    write("manifest.json", &render_manifest(report, meta))?;
    write("metrics.csv", &report.metrics_csv())?;
    write("metrics.json", &report.metrics_json())?;
    write("timeline.ndjson", &report.telemetry_ndjson())?;
    write("timeline.csv", &report.telemetry_csv())?;
    write("alerts.ndjson", &report.alerts_ndjson())?;
    write("exemplars.ndjson", &report.exemplars_ndjson())?;
    write("intervals.ndjson", &report.intervals_ndjson())?;
    write("topk.ndjson", &report.topks_ndjson())?;
    write("snapshot.prom", report.prom.as_deref().unwrap_or(""))?;
    write("report.txt", &report.render())?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_sim::telemetry::Timeline;
    use gryphon_sim::Metrics;

    fn sample_report() -> Report {
        let mut m = Metrics::default();
        m.count("shb.constream_delivered", 500.0);
        m.count("health.alert.catchup_backlog", 0.0);
        for v in [1_000.0, 2_000.0, 3_000.0] {
            m.observe("lineage.stage.deliver_us", v);
        }
        let mut t = Timeline::new(500_000);
        t.record(500_000, "telemetry.queue_depth", 4.0);
        t.record(1_000_000, "telemetry.queue_depth", 6.0);
        let mut r = Report::new("demo");
        r.attach_metrics(&m);
        r.attach_telemetry(t);
        r
    }

    #[test]
    fn bundle_writes_all_artifacts_and_manifest_parses() {
        let root = std::env::temp_dir().join(format!("gryphon-bundle-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let report = sample_report();
        let meta = BundleMeta {
            quick: true,
            interval_us: 500_000,
            seed_offset: 7,
            degrade: false,
        };
        let dir = write_bundle(&root, &report, &meta).unwrap();
        assert_eq!(dir, root.join("demo"));
        for f in [
            "manifest.json",
            "metrics.csv",
            "metrics.json",
            "timeline.ndjson",
            "timeline.csv",
            "alerts.ndjson",
            "exemplars.ndjson",
            "intervals.ndjson",
            "topk.ndjson",
            "snapshot.prom",
            "report.txt",
        ] {
            assert!(dir.join(f).exists(), "missing {f}");
        }
        assert!(dir.join("flight").is_dir());
        let manifest =
            parse_flat_json(&std::fs::read_to_string(dir.join("manifest.json")).unwrap()).unwrap();
        assert_eq!(manifest["experiment"], "demo");
        assert_eq!(manifest["quick"], "true");
        assert_eq!(manifest["interval_us"], "500000");
        assert_eq!(manifest["seed_offset"], "7");
        assert_eq!(manifest["alerts"], "0");
        assert!(manifest.contains_key("git"));
        // The timeline written out re-parses to the identical samples.
        let nd = std::fs::read_to_string(dir.join("timeline.ndjson")).unwrap();
        let parsed = Timeline::from_ndjson(&nd, 500_000).unwrap();
        assert_eq!(
            parsed.series("telemetry.queue_depth"),
            &[(500_000, 4.0), (1_000_000, 6.0)]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn flat_json_parser_rejects_wrong_schema() {
        assert!(parse_flat_json("{\n  \"schema\": \"other/9\"\n}\n").is_err());
        assert!(parse_flat_json("not json").is_err());
    }
}
