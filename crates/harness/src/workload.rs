//! The paper's workload: class-partitioned subscriptions over a fixed
//! input rate.
//!
//! All scalability experiments use the same scheme (paper §5.1): an input
//! of 800 events/s spread over 4 pubends, events carrying a `class`
//! attribute cycling over 4 values, and each subscriber filtering one
//! class — so every subscriber receives 200 events/s.

use gryphon::SubscriberConfig;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Total input rate across all pubends (events/s).
    pub input_rate: f64,
    /// Number of event classes (and the matching fraction's denominator).
    pub classes: i64,
    /// Durable subscribers hosted per SHB.
    pub subs_per_shb: usize,
    /// Application payload bytes (250 in the paper → 418 on the wire).
    pub payload: usize,
    /// Template subscriber behaviour (connect times and disconnect
    /// schedules are staggered per subscriber by the topology builder).
    pub sub_cfg: SubscriberConfig,
    /// Spread subscriber connect/disconnect phases uniformly so the
    /// system sees a steady trickle of reconnections (the paper: "at
    /// least 1 subscriber is reconnecting at any instant").
    pub stagger: bool,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            input_rate: 800.0,
            classes: 4,
            subs_per_shb: 100,
            payload: 250,
            sub_cfg: SubscriberConfig::default(),
            stagger: true,
        }
    }
}

impl Workload {
    /// The paper's no-disconnection scalability workload.
    pub fn paper_steady() -> Self {
        Workload::default()
    }

    /// The paper's disconnection workload: each subscriber independently
    /// disconnects every `period` for `down`, compressed from the paper's
    /// 300 s / 5 s to keep virtual runs short.
    pub fn paper_disconnecting(period_us: u64, down_us: u64) -> Self {
        Workload {
            subs_per_shb: 87, // 348 total across 4 SHBs in the paper
            sub_cfg: SubscriberConfig {
                disconnect_period_us: Some(period_us),
                disconnect_duration_us: down_us,
                ..SubscriberConfig::default()
            },
            ..Workload::default()
        }
    }

    /// Expected per-subscriber event rate (ev/s).
    pub fn per_sub_rate(&self) -> f64 {
        self.input_rate / self.classes as f64
    }

    /// Filter expression for subscriber number `i`.
    pub fn filter_for(&self, i: usize) -> String {
        format!("class = {}", (i as i64) % self.classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates() {
        let w = Workload::paper_steady();
        assert_eq!(w.per_sub_rate(), 200.0);
        assert_eq!(w.filter_for(5), "class = 1");
    }

    #[test]
    fn disconnecting_variant_sets_schedule() {
        let w = Workload::paper_disconnecting(30_000_000, 5_000_000);
        assert_eq!(w.sub_cfg.disconnect_period_us, Some(30_000_000));
        assert_eq!(w.subs_per_shb, 87);
    }
}
