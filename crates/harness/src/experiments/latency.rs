//! §5 result 1 — end-to-end latency over a 5-hop broker network.
//!
//! Paper: "The end-to-end event latency for a 5 hop broker network is
//! 50 ms, of which 44 ms is due to event logging at the PHB. Since our
//! system logs an event only once, the end-to-end latency is low."
//!
//! We run a 5-broker chain (PHB → 3 intermediates → SHB) and compare with
//! the store-and-forward baseline, where *every* hop logs durably before
//! forwarding — the design the paper argues against.

use crate::report::{Report, Table};
use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_baseline::{SfConfig, SfSubscriber, StoreForwardBroker};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

fn gryphon_chain_latency(run_us: u64) -> (f64, u64, Sim) {
    let mut sim = Sim::new(11);
    crate::topology::apply_sim_defaults(&mut sim);
    let config = BrokerConfig::default();
    let phb = sim.add_typed_node(
        "phb",
        Broker::new(0, Box::new(MemFactory::new()), config.clone()).hosting_pubends([PubendId(0)]),
    );
    let mut prev = phb;
    let mut brokers = vec![phb];
    for i in 0..3 {
        let mid = sim.add_typed_node(
            &format!("mid{i}"),
            Broker::new(1 + i, Box::new(MemFactory::new()), config.clone()),
        );
        sim.node(prev).add_child(mid.id());
        sim.node(mid).set_parent(prev.id());
        sim.connect(prev.id(), mid.id(), 1_000);
        brokers.push(mid);
        prev = mid;
    }
    let shb = sim.add_typed_node(
        "shb",
        Broker::new(4, Box::new(MemFactory::new()), config).hosting_subscribers(),
    );
    sim.node(prev).add_child(shb.id());
    sim.node(shb).set_parent(prev.id());
    sim.connect(prev.id(), shb.id(), 1_000);
    let sub = sim.add_typed_node(
        "sub",
        SubscriberClient::new(
            SubscriberId(1),
            shb.id(),
            "class = 0",
            SubscriberConfig {
                collect: true,
                ..SubscriberConfig::default()
            },
        ),
    );
    sim.connect(sub.id(), shb.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        PublisherClient::new(phb.id(), PubendId(0), 50.0).with_attrs(|_, _| {
            let mut a = gryphon_types::Attributes::new();
            a.insert("class".into(), 0i64.into());
            a
        }),
    );
    sim.connect(publisher.id(), phb.id(), 500);
    sim.run_until(run_us);
    let mean = sim.metrics().mean("client.latency_ms").unwrap_or(f64::NAN);
    let events = sim.node_ref(sub).events_received();
    (mean, events, sim)
}

fn baseline_chain_latency(run_us: u64) -> (f64, u64) {
    let mut sim = Sim::new(12);
    let cfg = SfConfig::default(); // same disk model per hop
    let mut hops = Vec::new();
    for i in 0..5 {
        let h = sim.add_typed_node(&format!("hop{i}"), StoreForwardBroker::new(cfg));
        hops.push(h);
    }
    for w in hops.windows(2) {
        let (a, b) = (w[0], w[1]);
        sim.node(a).set_next_hop(b.id());
        sim.connect(a.id(), b.id(), 1_000);
    }
    let consumer = sim.add_typed_node("consumer", SfSubscriber::new());
    sim.node(hops[4])
        .add_subscriber(SubscriberId(1), consumer.id());
    sim.connect(hops[4].id(), consumer.id(), 500);
    let publisher =
        sim.add_typed_node("pub", PublisherClient::new(hops[0].id(), PubendId(0), 50.0));
    sim.connect(publisher.id(), hops[0].id(), 500);
    sim.run_until(run_us);
    let c = sim.node_ref(consumer);
    (c.mean_latency_ms(), c.events)
}

/// Runs the latency experiment.
pub fn run(quick: bool) -> Report {
    let run_us = if quick { 5_000_000 } else { 20_000_000 };
    let config = BrokerConfig::default();
    let logging_ms =
        (config.phb_commit_latency_us + config.phb_commit_interval_us / 2) as f64 / 1_000.0;

    let (gry_ms, gry_events, gry_sim) = gryphon_chain_latency(run_us);
    let (sf_ms, sf_events) = baseline_chain_latency(run_us);

    let mut report = Report::new("latency");
    let mut t = Table::new(
        "End-to-end latency, 5-hop network (paper: 50 ms total, 44 ms PHB logging)",
        &[
            "system",
            "mean latency (ms)",
            "logging component (ms)",
            "events measured",
        ],
    );
    t.row(&[
        "gryphon (log-once at PHB)".into(),
        format!("{gry_ms:.1}"),
        format!("{logging_ms:.1}"),
        gry_events.to_string(),
    ]);
    t.row(&[
        "store-and-forward (log every hop)".into(),
        format!("{sf_ms:.1}"),
        format!("{:.1} (×5 hops)", logging_ms * 5.0),
        sf_events.to_string(),
    ]);
    report.table(t);
    report.note(format!(
        "paper shape: logging dominates end-to-end latency ({:.0}% here, 88% in the paper); \
         store-and-forward pays it at every hop (×{:.1} total latency here)",
        logging_ms / gry_ms * 100.0,
        sf_ms / gry_ms
    ));
    report.attach_metrics(gry_sim.metrics());
    if let Some(t) = gry_sim.telemetry() {
        report.attach_telemetry(t.clone());
    }
    report.attach_trace(
        gry_sim
            .trace_records()
            .map(|r| r.render(gry_sim.node_name(r.node)))
            .collect(),
    );
    report
}
