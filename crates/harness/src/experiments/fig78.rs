//! Figures 7 and 8 — SHB failure and recovery.
//!
//! Paper setup (§5.3): the 2-broker network, 40 subscribers spread over 5
//! client machines (8 each), 800 ev/s over 4 pubends, 200 ev/s per
//! subscriber. The SHB is failed for 25 s; subscriber reconnection is
//! delayed until the recovering constream has caught up, so subscribers
//! are disconnected for ≈36–40 s and then all catch up simultaneously
//! through per-subscriber catchup streams.
//!
//! Shapes to reproduce:
//! * Fig. 7: `latestDelivered` flat during the crash → recovers at ≈5×
//!   the normal slope (nack-consolidated recovery over a bandwidth-
//!   limited uplink) → returns to normal. `released` stays flat until
//!   the subscribers reconnect, then advances slightly above normal
//!   until catchup completes.
//! * Fig. 8: per-client-machine rates exceed the nominal 1600 ev/s
//!   during catchup (with oscillation from synchronized PFS reads); the
//!   SHB's CPU idle drops sharply during catchup while the PHB's barely
//!   moves (nack consolidation).

use crate::report::{Report, Table};
use crate::topology::{System, TopologySpec};
use crate::workload::Workload;
use gryphon::SubscriberConfig;

struct CrashRun {
    sys: System,
    crash_at_us: u64,
    crash_dur_us: u64,
    run_us: u64,
}

fn crash_run(quick: bool) -> CrashRun {
    let (warmup, crash_dur, tail) = if quick {
        (10_000_000u64, 10_000_000u64, 60_000_000u64)
    } else {
        (30_000_000, 25_000_000, 180_000_000)
    };
    let crash_at_us = warmup;
    let run_us = warmup + crash_dur + tail;
    let spec = TopologySpec {
        seed: 78,
        n_shbs: 1,
        // PHB→SHB uplink: nominal knowledge traffic ≈ 800 ev/s × 330 B ≈
        // 260 KB/s; 5× headroom reproduces the paper's ≈5× recovery slope.
        broker_bw: Some(1_300_000),
        // Per-client links: nominal ≈ 71 KB/s on the wire; ~1.5× headroom
        // bounds catchup delivery (the flow-control effect), making the
        // simultaneous catchup of all 40 subscribers take several times
        // the outage (paper: 116 s for a ≈37 s absence).
        client_bw: Some(110_000),
        ..TopologySpec::default()
    };
    let workload = Workload {
        subs_per_shb: 40,
        sub_cfg: SubscriberConfig {
            probe_interval_us: 2_000_000,
            // The paper delays reconnection until the constream caught up.
            crash_reconnect_delay_us: crash_dur + 8_000_000,
            sample_rate: true,
            ..SubscriberConfig::default()
        },
        stagger: true,
        ..Workload::default()
    };
    let mut sys = System::build(&spec, &workload);
    let shb = sys.shbs[0].id();
    sys.sim.schedule_crash(shb, crash_at_us, crash_dur);
    sys.run_sampled(run_us, 500_000);
    assert_eq!(
        sys.total_order_violations(),
        0,
        "order violated across crash"
    );
    CrashRun {
        sys,
        crash_at_us,
        crash_dur_us: crash_dur,
        run_us,
    }
}

fn slope(series: &[(u64, f64)], from_us: u64, to_us: u64) -> f64 {
    let pts: Vec<&(u64, f64)> = series
        .iter()
        .filter(|&&(t, _)| t >= from_us && t <= to_us)
        .collect();
    match (pts.first(), pts.last()) {
        (Some(&&(t0, v0)), Some(&&(t1, v1))) if t1 > t0 => (v1 - v0) / ((t1 - t0) as f64 / 1e6),
        // No samples (e.g. the broker is down and records nothing): the
        // durable cursor is not advancing — flat.
        _ => 0.0,
    }
}

/// Sustained slope of the recovery phase: from restart until the cursor
/// is back within ~2 s of the virtual clock (the figure's steep segment).
fn recovery_slope(series: &[(u64, f64)], restart_us: u64) -> f64 {
    let pts: Vec<(u64, f64)> = series
        .iter()
        .copied()
        .filter(|&(t, _)| t >= restart_us)
        .collect();
    let Some(&(t0, v0)) = pts.first() else {
        return 0.0;
    };
    let end = pts
        .iter()
        .find(|&&(t, v)| (t / 1_000) as f64 - v < 2_000.0)
        .copied()
        .or_else(|| pts.last().copied());
    match end {
        Some((t1, v1)) if t1 > t0 => (v1 - v0) / ((t1 - t0) as f64 / 1e6),
        _ => 0.0,
    }
}

/// Figure 7: `latestDelivered` / `released` through the crash.
pub fn run_fig7(quick: bool) -> Report {
    let run = crash_run(quick);
    let mut report = Report::new("fig7");
    let ld = run.sys.sim.metrics().series("shb1.ld.0").to_vec();
    let rel = run.sys.sim.metrics().series("shb1.released.0").to_vec();
    let crash_end = run.crash_at_us + run.crash_dur_us;
    let normal = slope(&ld, run.crash_at_us / 2, run.crash_at_us);
    let during = slope(&ld, run.crash_at_us + 500_000, crash_end);
    // Recovery phase: sustained slope until the cursor is current again.
    let recovery = recovery_slope(&ld, crash_end);
    let tail = slope(&ld, run.run_us - run.run_us / 6, run.run_us);
    let rel_during = slope(&rel, run.crash_at_us, crash_end + 4_000_000);
    let rel_catchup = slope(
        &rel,
        crash_end + 10_000_000,
        (crash_end + 40_000_000).min(run.run_us),
    );
    let mut t = Table::new(
        "Figure 7: latestDelivered(p) and released(p) slopes (tick-ms per second)",
        &["phase", "latestDelivered slope", "released slope"],
    );
    t.row(&[
        "normal (pre-crash)".into(),
        format!("{normal:.0}"),
        format!("{:.0}", slope(&rel, run.crash_at_us / 2, run.crash_at_us)),
    ]);
    t.row(&[
        "SHB down (paper: flat)".into(),
        format!("{during:.0}"),
        format!("{rel_during:.0}"),
    ]);
    t.row(&[
        "constream recovery (paper: ≈5× normal)".into(),
        format!("{recovery:.0}"),
        "0 (subs still away)".into(),
    ]);
    t.row(&[
        "subscriber catchup (paper: released slightly above normal)".into(),
        format!("{tail:.0}"),
        format!("{rel_catchup:.0}"),
    ]);
    report.table(t);
    report.note(format!(
        "recovery/normal latestDelivered slope ratio: {:.1}× (paper: ≈5×)",
        recovery / normal
    ));
    report.series(
        "latestDelivered_tickms",
        ld.iter().map(|&(t, v)| (t as f64 / 1e6, v)).collect(),
    );
    report.series(
        "released_tickms",
        rel.iter().map(|&(t, v)| (t as f64 / 1e6, v)).collect(),
    );
    run.sys.attach_observability(&mut report);
    report
}

/// Figure 8: per-client-machine rates and CPU idle through the crash.
pub fn run_fig8(quick: bool) -> Report {
    let run = crash_run(quick);
    let mut report = Report::new("fig8");
    let crash_end = run.crash_at_us + run.crash_dur_us;

    // Group the 40 subscribers into 5 "client machines" of 8.
    let mut group_rates: Vec<Vec<(f64, f64)>> = Vec::new();
    for g in 0..5usize {
        let mut acc = std::collections::BTreeMap::<u64, f64>::new();
        for (i, &(h, _)) in run.sys.subscribers.iter().enumerate() {
            if i / 8 != g {
                continue;
            }
            let _ = h;
            let sub_no = (i + 1) as u64; // SubscriberId assigned in build order
            for &(t, v) in run
                .sys
                .sim
                .metrics()
                .series(&format!("client{sub_no}.rate"))
            {
                *acc.entry(t / 1_000_000).or_insert(0.0) += v;
            }
        }
        group_rates.push(acc.into_iter().map(|(t, v)| (t as f64, v)).collect());
    }
    let phase_mean = |pts: &[(f64, f64)], a: f64, b: f64| -> f64 {
        let vals: Vec<f64> = pts
            .iter()
            .filter(|&&(t, _)| t >= a && t < b)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let mut t = Table::new(
        "Figure 8a: per-client-machine event rate (paper: 1600 ev/s nominal; higher with oscillation during catchup)",
        &["machine", "normal (ev/s)", "during crash", "catchup (ev/s)"],
    );
    let reconnect_s = (crash_end + 8_000_000) as f64 / 1e6;
    for (g, pts) in group_rates.iter().enumerate() {
        t.row(&[
            format!("machine {}", g + 1),
            format!("{:.0}", phase_mean(pts, 2.0, run.crash_at_us as f64 / 1e6)),
            format!(
                "{:.0}",
                phase_mean(
                    pts,
                    run.crash_at_us as f64 / 1e6 + 1.0,
                    crash_end as f64 / 1e6
                )
            ),
            format!(
                "{:.0}",
                phase_mean(pts, reconnect_s + 2.0, reconnect_s + 20.0)
            ),
        ]);
    }
    report.table(t);
    for (g, pts) in group_rates.into_iter().enumerate() {
        report.series(format!("machine{}_rate", g + 1), pts);
    }

    // CPU idle per second for SHB and PHB from the sampled busy series.
    let idle_series = |node: gryphon_types::NodeId| -> Vec<(f64, f64)> {
        let name = format!("busy.{}", run.sys.sim.node_name(node));
        run.sys
            .sim
            .metrics()
            .series(&name)
            .windows(2)
            .map(|w| {
                let dt = (w[1].0 - w[0].0) as f64;
                let busy = (w[1].1 - w[0].1) / dt.max(1.0);
                (w[1].0 as f64 / 1e6, (1.0 - busy).clamp(0.0, 1.0) * 100.0)
            })
            .collect()
    };
    let shb_idle = idle_series(run.sys.shbs[0].id());
    let phb_idle = idle_series(run.sys.phb.id());
    let mut t2 = Table::new(
        "Figure 8b: CPU idle (paper: SHB idle drops sharply during catchup; PHB barely moves)",
        &["node", "normal idle", "catchup idle", "drop"],
    );
    for (name, series) in [("SHB", &shb_idle), ("PHB", &phb_idle)] {
        let normal = phase_mean(series, 2.0, run.crash_at_us as f64 / 1e6);
        let catchup = phase_mean(series, reconnect_s + 2.0, reconnect_s + 20.0);
        t2.row(&[
            name.into(),
            format!("{normal:.0}%"),
            format!("{catchup:.0}%"),
            format!("{:.0} pts", normal - catchup),
        ]);
    }
    report.table(t2);
    report.series("shb_idle_pct", shb_idle);
    report.series("phb_idle_pct", phb_idle);

    // Catchup durations + PFS read efficiency (paper: mean 116 s when all
    // 40 catch up together; 87 % of PFS reads are full reads).
    let durs: Vec<f64> = run
        .sys
        .sim
        .metrics()
        .series("client.catchup_ms")
        .iter()
        .map(|&(_, v)| v / 1_000.0)
        .collect();
    let reads = run.sys.sim.metrics().counter("shb.pfs_reads");
    let full_reads = run.sys.sim.metrics().counter("shb.pfs_full_reads");
    let mut t3 = Table::new(
        "Figure 8 context: catchup + PFS reads",
        &["metric", "value"],
    );
    if !durs.is_empty() {
        t3.row(&[
            "mean catchup duration (s)".into(),
            format!("{:.1}", durs.iter().sum::<f64>() / durs.len() as f64),
        ]);
        t3.row(&["catchups".into(), durs.len().to_string()]);
    }
    t3.row(&["PFS batch reads".into(), format!("{reads:.0}")]);
    t3.row(&[
        "full reads (paper: 87% reach lastTimestamp)".into(),
        format!("{:.0}%", full_reads / reads.max(1.0) * 100.0),
    ]);
    t3.row(&[
        "gaps delivered (early release disabled)".into(),
        run.sys.total_gaps().to_string(),
    ]);
    report.table(t3);
    report.note(
        "paper shape: simultaneous catchup of all subscribers is much slower than a lone \
         catchup (separate per-subscriber streams), the SHB bears the load, the PHB barely \
         notices (nack consolidation)",
    );
    run.sys.attach_observability(&mut report);
    report
}
