//! Ablations of the design decisions DESIGN.md calls out.

use crate::report::{fmt_rate, Report, Table};
use crate::topology::{System, TopologySpec};
use crate::workload::Workload;
use gryphon::{Pfs, PfsMode, SubscriberConfig};
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId, Timestamp};

/// §5 summary point 3 — stream consolidation: an SHB whose subscribers
/// are all served by the constream sustains ≈2× the rate of one where
/// every subscriber runs a private catchup stream (paper: 20 K vs 10 K
/// ev/s).
pub fn run_consolidation(quick: bool) -> Report {
    let run_us = if quick { 12_000_000 } else { 40_000_000 };
    let mut report = Report::new("ablation_consol");
    let mut t = Table::new(
        "Stream consolidation (paper: ~20K ev/s constream-only vs ~10K all-catchup)",
        &[
            "mode",
            "delivered (ev/s)",
            "SHB busy",
            "est. capacity (ev/s)",
            "catchup share",
        ],
    );
    let mut last_sys: Option<System> = None;
    for (label, disconnecting) in [("all constream", false), ("perpetual catchup", true)] {
        let spec = TopologySpec {
            seed: 61,
            n_shbs: 1,
            ..TopologySpec::default()
        };
        let workload = Workload {
            subs_per_shb: 100,
            sub_cfg: if disconnecting {
                SubscriberConfig {
                    // Short frequent absences keep most subscribers in
                    // catchup mode most of the time.
                    disconnect_period_us: Some(4_000_000),
                    disconnect_duration_us: 2_000_000,
                    ..SubscriberConfig::default()
                }
            } else {
                SubscriberConfig::default()
            },
            ..Workload::default()
        };
        let mut sys = System::build(&spec, &workload);
        let warmup = run_us / 4;
        sys.run_sampled(warmup, 500_000);
        let at_warmup = sys.total_events();
        sys.run_sampled(run_us, 500_000);
        assert_eq!(sys.total_order_violations(), 0);
        let delivered = (sys.total_events() - at_warmup) as f64 / ((run_us - warmup) as f64 / 1e6);
        let busy = sys.busy_fraction(sys.shbs[0].id(), warmup, run_us);
        let capacity = if busy > 0.0 {
            delivered / busy
        } else {
            f64::NAN
        };
        let catchup_share = sys.sim.metrics().counter("shb.catchup_delivered")
            / sys.sim.metrics().counter("shb.delivered").max(1.0);
        t.row(&[
            label.into(),
            fmt_rate(delivered),
            format!("{:.0}%", busy * 100.0),
            fmt_rate(capacity),
            format!("{:.0}%", catchup_share * 100.0),
        ]);
        last_sys = Some(sys);
    }
    report.table(t);
    report.note(
        "per-subscriber catchup streams double the per-delivery cost (separate knowledge \
         bookkeeping + PFS reads), halving SHB capacity — the reason the constream exists",
    );
    if let Some(sys) = &last_sys {
        sys.attach_observability(&mut report);
    }
    report
}

/// The paper's stated future work: "experimentally examining the effect
/// of different event cache sizes and management policies on the catchup
/// rate of reconnecting subscriptions" (§7). We sweep the broker cache
/// retention window against a fixed 10 s absence: a cache covering the
/// absence answers catchup locally; a smaller one pushes recovery to the
/// pubend (visible as PHB work and longer catchup).
pub fn run_cache_sweep(quick: bool) -> Report {
    let run_us: u64 = if quick { 30_000_000 } else { 90_000_000 };
    let mut report = Report::new("ablation_cache");
    let mut t = Table::new(
        "Future-work sweep: SHB cache window vs catchup behaviour (10 s absences)",
        &[
            "cache window",
            "mean catchup (s)",
            "PHB busy during catchup",
            "PHB answers (cache misses)",
        ],
    );
    let mut last_sys: Option<System> = None;
    for &(label, window_ticks) in &[("2 s", 2_000u64), ("5 s", 5_000), ("60 s", 60_000)] {
        let spec = TopologySpec {
            seed: 64,
            n_shbs: 1,
            broker_config: gryphon::BrokerConfig {
                cache_window_ticks: window_ticks,
                ..gryphon::BrokerConfig::default()
            },
            client_bw: Some(200_000),
            ..TopologySpec::default()
        };
        let workload = Workload {
            subs_per_shb: 20,
            sub_cfg: SubscriberConfig {
                disconnect_period_us: Some(run_us / 2),
                disconnect_duration_us: 10_000_000,
                ..SubscriberConfig::default()
            },
            ..Workload::default()
        };
        let mut sys = System::build(&spec, &workload);
        sys.run_sampled(run_us, 500_000);
        assert_eq!(sys.total_order_violations(), 0);
        let durs: Vec<f64> = sys
            .sim
            .metrics()
            .series("client.catchup_ms")
            .iter()
            .map(|&(_, v)| v / 1_000.0)
            .collect();
        let mean = if durs.is_empty() {
            f64::NAN
        } else {
            durs.iter().sum::<f64>() / durs.len() as f64
        };
        let phb_busy = sys.busy_fraction(sys.phb.id(), run_us / 3, run_us);
        // Knowledge responses the pubend had to produce authoritatively:
        // holes below the SHB cache window end up here.
        let phb_work = sys.sim.metrics().counter("phb.nack_responses");
        t.row(&[
            label.into(),
            format!("{mean:.1}"),
            format!("{:.1}%", phb_busy * 100.0),
            format!("{phb_work:.0}"),
        ]);
        last_sys = Some(sys);
    }
    report.table(t);
    report.note(
        "a cache window covering the absence keeps recovery local to the SHB; shrinking it \
         shifts recovery load to the pubend (authoritative nack responses) without affecting \
         correctness — exactly the trade the paper's future work asks about",
    );
    if let Some(sys) = &last_sys {
        sys.attach_observability(&mut report);
    }
    report
}

/// Extension ablation — precise vs imprecise PFS (paper §4.2 mentions the
/// trade-off; its implementation is precise).
pub fn run_pfs_mode(quick: bool) -> Report {
    let events: u64 = if quick { 4_000 } else { 80_000 };
    let subscribers = 100u64;
    let classes = 4u64;
    let mut report = Report::new("ablation_pfs_mode");
    let mut t = Table::new(
        "PFS precision ablation: write volume vs read amplification",
        &[
            "mode",
            "records",
            "bytes",
            "Q ticks returned for 1 sub",
            "true matches",
        ],
    );
    let mut metrics = gryphon_sim::Metrics::default();
    for (label, mode) in [
        ("precise (paper)", PfsMode::Precise),
        ("imprecise w=16", PfsMode::Imprecise { window_ticks: 16 }),
        ("imprecise w=64", PfsMode::Imprecise { window_ticks: 64 }),
    ] {
        let mut pfs = Pfs::open(Box::new(MemFactory::new()), "ab", mode).expect("pfs");
        for seq in 0..events {
            let ts = Timestamp(1 + seq * 1_250 / 1_000);
            let subs: Vec<SubscriberId> = (0..subscribers)
                .filter(|s| s % classes == seq % classes)
                .map(SubscriberId)
                .collect();
            pfs.write(PubendId(0), ts, &subs).expect("write");
        }
        pfs.sync().expect("sync");
        let stats = pfs.stats();
        let last = pfs.last_timestamp(PubendId(0));
        let read = pfs
            .read(
                PubendId(0),
                SubscriberId(0),
                Timestamp::ZERO,
                last,
                usize::MAX,
            )
            .expect("read");
        let true_matches = (0..events).filter(|seq| seq % classes == 0).count();
        metrics.observe(
            gryphon_sim::names::PFS_BATCH_READ_RECORDS,
            read.records_visited as f64,
        );
        metrics.observe(
            gryphon_sim::names::PFS_BATCH_READ_QTICKS,
            read.q_ticks.len() as f64,
        );
        t.row(&[
            label.into(),
            stats.records.to_string(),
            stats.payload_bytes.to_string(),
            read.q_ticks.len().to_string(),
            true_matches.to_string(),
        ]);
    }
    report.table(t);
    report.note(
        "imprecision writes fewer/larger records but inflates the Q set a catchup stream must \
         nack (each nack is then refiltered at the SHB) — correctness is unaffected, as §4.2 \
         argues",
    );
    report.attach_metrics(&metrics);
    report
}
