//! §5.2 — JMS auto-acknowledge throughput.
//!
//! Paper: with broker-managed checkpoint tokens committed per event
//! (auto-acknowledge), a single SHB peaks at 4 K ev/s with 25 subscribers
//! and 7.6 K ev/s with 200 — the bottleneck is the metadata-store commit
//! throughput, helped by batching all waiting updates of a worker thread
//! into one transaction (4 threads, subscriber-hashed).

use crate::report::{fmt_rate, Report, Table};
use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId};

struct JmsCell {
    subs: usize,
    delivered_rate: f64,
    commits: f64,
    mean_batch: f64,
}

fn run_jms(seed: u64, n_subs: usize, run_us: u64) -> (JmsCell, Sim) {
    let mut sim = Sim::new(seed);
    crate::topology::apply_sim_defaults(&mut sim);
    let b = sim.add_typed_node(
        "broker",
        Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
            .hosting_pubends([PubendId(0)])
            .hosting_subscribers(),
    );
    // Every subscriber matches every event: offered load per subscriber
    // equals the input rate, far above the commit-bound capacity.
    for i in 0..n_subs {
        let sub = sim.add_typed_node(
            &format!("jms{i}"),
            SubscriberClient::new(
                SubscriberId(i as u64 + 1),
                b.id(),
                "", // match-all
                SubscriberConfig {
                    broker_ct: true,
                    auto_ack: true,
                    connect_at_us: (i as u64 * 997) % 1_000_000,
                    ..SubscriberConfig::default()
                },
            ),
        );
        sim.connect(sub.id(), b.id(), 500);
    }
    let publisher = sim.add_typed_node("pub", PublisherClient::new(b.id(), PubendId(0), 800.0));
    sim.connect(publisher.id(), b.id(), 500);
    sim.run_until(run_us);
    let delivered = sim.metrics().counter("client.events");
    let commits = sim.metrics().counter("shb.ct_commits");
    let updates = sim.metrics().counter("shb.ct_commit_updates");
    let cell = JmsCell {
        subs: n_subs,
        delivered_rate: delivered / (run_us as f64 / 1e6),
        commits,
        mean_batch: if commits > 0.0 {
            updates / commits
        } else {
            0.0
        },
    };
    (cell, sim)
}

/// Runs the JMS experiment.
pub fn run(quick: bool) -> Report {
    let run_us = if quick { 8_000_000 } else { 30_000_000 };
    let mut report = Report::new("jms");
    let mut t = Table::new(
        "§5.2 JMS auto-acknowledge peak rate (paper: 25 subs → 4K ev/s, 200 subs → 7.6K ev/s)",
        &[
            "subscribers",
            "delivered (ev/s)",
            "checkpoint commits",
            "mean commit batch",
        ],
    );
    let mut cells = Vec::new();
    let mut last_sim: Option<Sim> = None;
    for (i, &n) in [25usize, 200].iter().enumerate() {
        let (cell, sim) = run_jms(90 + i as u64, n, run_us);
        last_sim = Some(sim);
        t.row(&[
            cell.subs.to_string(),
            fmt_rate(cell.delivered_rate),
            format!("{:.0}", cell.commits),
            format!("{:.1}", cell.mean_batch),
        ]);
        cells.push(cell);
    }
    report.table(t);
    if cells.len() == 2 {
        report.note(format!(
            "200/25-subscriber throughput ratio: {:.2}× (paper: 1.9×) — more subscribers mean \
             bigger commit batches ({:.1} vs {:.1} updates/commit), amortizing the per-commit cost",
            cells[1].delivered_rate / cells[0].delivered_rate,
            cells[1].mean_batch,
            cells[0].mean_batch,
        ));
    }
    report.note(
        "the bottleneck is the metadata table's commit throughput (4 hashed worker threads with \
         group commit), independent of the SHB delivery path — as the paper observes",
    );
    if let Some(sim) = &last_sim {
        report.attach_metrics(sim.metrics());
        if let Some(t) = sim.telemetry() {
            report.attach_telemetry(t.clone());
        }
        report.attach_trace(
            sim.trace_records()
                .map(|r| r.render(sim.node_name(r.node)))
                .collect(),
        );
    }
    report
}
