//! `mega_subs` — the million-durable-subscription memory workload
//! (DESIGN.md §15).
//!
//! The paper's motivating scale is "millions of durable subscriptions",
//! almost all of them *idle* at any moment. What bounds that scale is
//! not throughput but bytes-per-idle-subscription in the SHB: the slab
//! must hold a disconnected durable subscription in a compact record
//! (spec + filter + release cursors + parked stream positions), not a
//! live connection. This workload direct-drives one [`Shb`] (no
//! simulator — pfs_micro-style) through four phases and reports the
//! census after each:
//!
//! 1. **register** — N durable subscriptions (`--subs`, default 10^6;
//!    quick 20 000), all idle;
//! 2. **traffic** — a small fraction connects and the constream
//!    advances through a fully-known cache, proving delivery still
//!    flows while the idle mass sits in the slab;
//! 3. **churn** — `--churn-pct` percent of the population unsubscribes
//!    and re-registers, recycling slab slots (generation bumps);
//! 4. **storm** — a reconnect storm: a batch of idle subscribers
//!    connects with old checkpoints (catchup streams open), drops
//!    (streams park into compact records), and reconnects (parked
//!    records drain, counted by `shb.stream_rehydrations`).
//!
//! The headline figure is `telemetry.shb.bytes_per_idle_sub`, published
//! exactly as the broker publishes it (through
//! [`Shb::update_memory_gauges`]) and sampled onto the report timeline
//! so run bundles carry it and `xp doctor diff` can guard it.

use crate::report::{Report, Table};
use crate::topology;
use gryphon::broker::Shb;
use gryphon::config::BrokerConfig;
use gryphon_sim::telemetry::Sampler;
use gryphon_sim::{Metrics, NodeCtx, TimerKey};
use gryphon_storage::MemFactory;
use gryphon_streams::KnowledgeStream;
use gryphon_types::{
    CheckpointToken, Event, NetMsg, NodeId, PubendId, SubscriberId, SubscriptionSpec, Timestamp,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

const P: PubendId = PubendId(0);
const CLIENT: NodeId = NodeId(9);

struct WorkloadSpec {
    /// Durable subscription population (`--subs`).
    subs: u64,
    /// Subscribers connected during the traffic phase.
    connected: u64,
    /// Idle subscribers thrown into the reconnect storm.
    storm: u64,
    /// Constream ticks of traffic (one event per tick).
    ticks: u64,
    /// Filter classes (`class = i % classes`).
    classes: u64,
    /// Percent of the population churned (`--churn-pct`).
    churn_pct: f64,
}

/// Direct-drive context: counters/gauges land in a [`Metrics`] the
/// report snapshots, everything else is inert. `me()` is node 1, so the
/// gauge shards match a single-broker run (`telemetry.shb.*.n1`).
struct DriveCtx {
    now_us: u64,
    metrics: Metrics,
    rng: SmallRng,
}

impl NodeCtx for DriveCtx {
    fn now_us(&self) -> u64 {
        self.now_us
    }
    fn me(&self) -> NodeId {
        NodeId(1)
    }
    fn send(&mut self, _to: NodeId, _msg: NetMsg) {}
    fn set_timer(&mut self, _delay_us: u64, _key: TimerKey) {}
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
    fn work(&mut self, _cost_us: u64) {}
    fn record(&mut self, series: &str, value: f64) {
        let now = self.now_us;
        self.metrics.record(now, series, value);
    }
    fn count(&mut self, counter: &str, delta: f64) {
        self.metrics.count(counter, delta);
    }
    fn observe(&mut self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }
    fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.set_gauge(name, value);
    }
}

fn filter_for(i: u64, spec: &WorkloadSpec) -> SubscriptionSpec {
    SubscriptionSpec::new(format!("class = {}", i % spec.classes))
}

fn connect_one(
    shb: &mut Shb,
    sub: SubscriberId,
    ct: Option<CheckpointToken>,
    config: &BrokerConfig,
    ctx: &mut DriveCtx,
) {
    shb.connect(
        sub,
        CLIENT,
        ct,
        None,
        false,
        false,
        &HashMap::new(),
        None,
        config,
        ctx,
    )
    .expect("registered subscription must connect");
}

/// One census row: phase label, wall time, and the slab statistics the
/// phase left behind.
fn census(
    table: &mut Table,
    phase: &str,
    wall_ms: f64,
    shb: &mut Shb,
    ctx: &mut DriveCtx,
    sampler: &mut Sampler,
) -> f64 {
    // Publish through the broker's own gauge path, then sample the
    // timeline window — the bundle carries exactly what a live broker
    // would publish on its meta-persist timer.
    ctx.now_us += 500_000;
    shb.update_telemetry_gauges(ctx);
    shb.update_memory_gauges(ctx);
    sampler.sample(ctx.now_us, &ctx.metrics);
    let bytes = shb.slab_bytes();
    let idle = shb.idle_subs().max(1);
    let per_idle = bytes as f64 / idle as f64;
    table.row(&[
        phase.into(),
        format!("{wall_ms:.0}"),
        shb.sub_count().to_string(),
        shb.connected_count().to_string(),
        shb.catchup_streams().to_string(),
        shb.parked_streams().to_string(),
        format!("{:.1}", bytes as f64 / 1e6),
        format!("{per_idle:.0}"),
    ]);
    per_idle
}

/// Runs the workload. `--subs` / `--churn-pct` override the defaults
/// (see [`topology::default_mega_subs`]).
pub fn run(quick: bool) -> Report {
    let spec = WorkloadSpec {
        subs: topology::default_mega_subs().unwrap_or(if quick { 20_000 } else { 1_000_000 }),
        connected: if quick { 256 } else { 512 },
        storm: if quick { 128 } else { 256 },
        ticks: if quick { 128 } else { 256 },
        classes: if quick { 128 } else { 256 },
        churn_pct: topology::default_churn_pct().unwrap_or(1.0),
    };
    let config = BrokerConfig::default();
    let mut ctx = DriveCtx {
        now_us: 0,
        metrics: Metrics::default(),
        rng: SmallRng::seed_from_u64(7),
    };
    let mut sampler = Sampler::new(500_000);
    let mut shb = Shb::open(&MemFactory::new(), "mega", &config);
    let mut t = Table::new(
        format!(
            "§15 subscriber memory model ({} durable subs, {} classes, churn {:.1}%)",
            spec.subs, spec.classes, spec.churn_pct
        ),
        &[
            "phase",
            "wall (ms)",
            "subs",
            "connected",
            "catchup",
            "parked",
            "slab (MB)",
            "B/idle sub",
        ],
    );

    // Phase 1: register the idle mass.
    let start = Instant::now();
    for i in 0..spec.subs {
        shb.register_spec(
            SubscriberId(i + 1),
            CLIENT,
            Some(&filter_for(i, &spec)),
            false,
            false,
            &mut ctx,
        )
        .expect("register");
    }
    let register_ms = start.elapsed().as_secs_f64() * 1e3;
    let idle_bytes = census(
        &mut t,
        "register",
        register_ms,
        &mut shb,
        &mut ctx,
        &mut sampler,
    );

    // Phase 2: a small fraction connects and traffic flows through the
    // constream. Each tick's event matches `connected / classes` of the
    // connected batch (plus idle slots, which the deliver loop skips).
    let start = Instant::now();
    for i in 0..spec.connected {
        connect_one(&mut shb, SubscriberId(i + 1), None, &config, &mut ctx);
    }
    let mut cache = KnowledgeStream::new();
    for tick in 1..=spec.ticks {
        let e = Event::builder(P)
            .attr("class", (tick % spec.classes) as i64)
            .build_ref(Timestamp(tick));
        assert!(cache.set_data(e));
    }
    cache.set_silence(Timestamp(1), Timestamp(spec.ticks));
    shb.constream_advance(P, &cache, Timestamp(spec.ticks), &config, &mut ctx);
    let delivered = shb.delivered;
    assert_eq!(
        delivered,
        spec.ticks * (spec.connected / spec.classes),
        "traffic must reach every connected matching subscriber"
    );
    let traffic_ms = start.elapsed().as_secs_f64() * 1e3;
    census(
        &mut t,
        "traffic",
        traffic_ms,
        &mut shb,
        &mut ctx,
        &mut sampler,
    );

    // Phase 3: churn — unsubscribe + re-register recycles slab slots
    // (generation bumps keep stale handles dead). Drawn from the idle
    // region above the connected/storm batches.
    let churned = ((spec.subs as f64) * spec.churn_pct / 100.0) as u64;
    let churn_base = spec.connected + spec.storm;
    let churned = churned.min(spec.subs.saturating_sub(churn_base));
    let start = Instant::now();
    for k in 0..churned {
        let i = churn_base + k;
        let sub = SubscriberId(i + 1);
        shb.unsubscribe(sub);
        shb.register_spec(
            sub,
            CLIENT,
            Some(&filter_for(i, &spec)),
            false,
            false,
            &mut ctx,
        )
        .expect("re-register");
    }
    let churn_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        shb.sub_count() as u64,
        spec.subs,
        "churn preserves the population"
    );
    census(&mut t, "churn", churn_ms, &mut shb, &mut ctx, &mut sampler);

    // Phase 4: reconnect storm. A batch of idle subscribers presents an
    // old checkpoint, so each connect opens a PFS catchup stream; the
    // drop parks every stream into a compact record; the reconnect
    // drains the parked records (counted as rehydrations) and rebuilds
    // the streams from the checkpoint protocol.
    let storm_ct = || {
        let mut ct = CheckpointToken::new();
        ct.advance(P, Timestamp::ZERO);
        Some(ct)
    };
    let start = Instant::now();
    let storm_subs: Vec<SubscriberId> = (0..spec.storm)
        .map(|k| SubscriberId(spec.connected + k + 1))
        .collect();
    for &sub in &storm_subs {
        connect_one(&mut shb, sub, storm_ct(), &config, &mut ctx);
    }
    let streams_open = shb.catchup_streams();
    for &sub in &storm_subs {
        shb.disconnect(sub);
    }
    let parked_peak = shb.parked_streams();
    for &sub in &storm_subs {
        connect_one(&mut shb, sub, storm_ct(), &config, &mut ctx);
    }
    let storm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        streams_open as u64, spec.storm,
        "storm connects open catchup streams"
    );
    assert_eq!(
        parked_peak as u64, spec.storm,
        "disconnects park every stream"
    );
    assert_eq!(
        shb.parked_streams(),
        0,
        "reconnects drain the parked records"
    );
    census(&mut t, "storm", storm_ms, &mut shb, &mut ctx, &mut sampler);

    let rehydrations = ctx.metrics.counter("shb.stream_rehydrations");
    let mut report = Report::new("mega_subs");
    report.table(t);
    report.note(format!(
        "idle footprint after registration: {idle_bytes:.0} B per idle durable subscription \
         across {} subscribers (telemetry.shb.bytes_per_idle_sub — guarded by xp doctor diff)",
        spec.subs
    ));
    report.note(format!(
        "traffic: {delivered} deliveries to the {}-sub connected fraction while {} idle subs \
         sat in the slab",
        spec.connected,
        spec.subs - spec.connected
    ));
    report.note(format!(
        "storm: {} catchup streams opened, {} parked on disconnect, {rehydrations:.0} parked \
         records rehydrated on reconnect",
        streams_open, parked_peak
    ));
    report.attach_metrics(&ctx.metrics);
    report.attach_telemetry(sampler.into_timeline());
    report
}
