//! `mega_subs` — the million-durable-subscription memory workload
//! (DESIGN.md §15).
//!
//! The paper's motivating scale is "millions of durable subscriptions",
//! almost all of them *idle* at any moment. What bounds that scale is
//! not throughput but bytes-per-idle-subscription in the SHB: the slab
//! must hold a disconnected durable subscription in a compact record
//! (spec + filter + release cursors + parked stream positions), not a
//! live connection. This workload direct-drives one [`Shb`] (no
//! simulator — pfs_micro-style) through four phases and reports the
//! census after each:
//!
//! 1. **register** — N durable subscriptions (`--subs`, default 10^6;
//!    quick 20 000), all idle;
//! 2. **traffic** — a small fraction connects and the constream
//!    advances through a fully-known cache, proving delivery still
//!    flows while the idle mass sits in the slab;
//! 3. **churn** — `--churn-pct` percent of the population unsubscribes
//!    and re-registers, recycling slab slots (generation bumps);
//! 4. **storm** — a reconnect storm: a batch of idle subscribers
//!    connects with old checkpoints (catchup streams open), drops
//!    (streams park into compact records), and reconnects (parked
//!    records drain, counted by `shb.stream_rehydrations`).
//!
//! The headline figure is `telemetry.shb.bytes_per_idle_sub`, published
//! exactly as the broker publishes it (through
//! [`Shb::update_memory_gauges`]) and sampled onto the report timeline
//! so run bundles carry it and `xp doctor diff` can guard it.

use crate::report::{Report, Table};
use crate::topology;
use gryphon::broker::Shb;
use gryphon::config::BrokerConfig;
use gryphon_sim::sketch::{PopulationSketch, SketchConfig, DIM_SUB_BYTES, DIM_SUB_LAG};
use gryphon_sim::telemetry::Sampler;
use gryphon_sim::{default_rules, names, AlertState, HealthEngine, Metrics, NodeCtx, TimerKey};
use gryphon_storage::MemFactory;
use gryphon_streams::KnowledgeStream;
use gryphon_types::{
    CheckpointToken, Event, NetMsg, NodeId, PubendId, SubscriberId, SubscriptionSpec, Timestamp,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Instant;

const P: PubendId = PubendId(0);
const CLIENT: NodeId = NodeId(9);

struct WorkloadSpec {
    /// Durable subscription population (`--subs`).
    subs: u64,
    /// Subscribers connected during the traffic phase.
    connected: u64,
    /// Idle subscribers thrown into the reconnect storm.
    storm: u64,
    /// Constream ticks of traffic (one event per tick).
    ticks: u64,
    /// Filter classes (`class = i % classes`).
    classes: u64,
    /// Percent of the population churned (`--churn-pct`).
    churn_pct: f64,
}

/// Direct-drive context: counters/gauges land in a [`Metrics`] the
/// report snapshots, everything else is inert. `me()` is node 1, so the
/// gauge shards match a single-broker run (`telemetry.shb.*.n1`).
struct DriveCtx {
    now_us: u64,
    metrics: Metrics,
    rng: SmallRng,
    /// Population sketch fed by [`Shb::sweep_population`] through the
    /// `attribute` hook and drained at each census (DESIGN.md §18).
    sketch: PopulationSketch,
}

impl NodeCtx for DriveCtx {
    fn now_us(&self) -> u64 {
        self.now_us
    }
    fn me(&self) -> NodeId {
        NodeId(1)
    }
    fn send(&mut self, _to: NodeId, _msg: NetMsg) {}
    fn set_timer(&mut self, _delay_us: u64, _key: TimerKey) {}
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
    fn work(&mut self, _cost_us: u64) {}
    fn record(&mut self, series: &str, value: f64) {
        let now = self.now_us;
        self.metrics.record(now, series, value);
    }
    fn count(&mut self, counter: &str, delta: f64) {
        self.metrics.count(counter, delta);
    }
    fn observe(&mut self, name: &str, value: f64) {
        self.metrics.observe(name, value);
    }
    fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.set_gauge(name, value);
    }
    fn attribute(&mut self, dim: &'static str, entity: u64, weight: u64) {
        self.sketch.attribute(dim, entity, weight);
    }
}

fn filter_for(i: u64, spec: &WorkloadSpec) -> SubscriptionSpec {
    SubscriptionSpec::new(format!("class = {}", i % spec.classes))
}

fn connect_one(
    shb: &mut Shb,
    sub: SubscriberId,
    ct: Option<CheckpointToken>,
    config: &BrokerConfig,
    ctx: &mut DriveCtx,
) {
    shb.connect(
        sub,
        CLIENT,
        ct,
        None,
        false,
        false,
        &HashMap::new(),
        None,
        config,
        ctx,
    )
    .expect("registered subscription must connect");
}

/// One census row: phase label, wall time, and the slab statistics the
/// phase left behind.
fn census(
    table: &mut Table,
    phase: &str,
    wall_ms: f64,
    shb: &mut Shb,
    ctx: &mut DriveCtx,
    sampler: &mut Sampler,
    health: Option<&mut HealthEngine>,
) -> f64 {
    // Publish through the broker's own gauge path, then sample the
    // timeline window — the bundle carries exactly what a live broker
    // would publish on its meta-persist timer. The population sweep
    // runs first (the live broker runs it on the same timer), so the
    // window's sample carries the per-entity attribution it produced,
    // in the same drain→gauges→sample→alerts→topk order as the
    // simulator's sampler loop.
    ctx.now_us += 500_000;
    shb.sweep_population(ctx);
    shb.update_telemetry_gauges(ctx);
    shb.update_memory_gauges(ctx);
    let (snaps, stats) = ctx.sketch.drain(ctx.now_us);
    if let Some(stats) = stats {
        ctx.metrics
            .set_gauge(names::SKETCH_LAG_POPULATION, stats.population as f64);
        ctx.metrics
            .set_gauge(names::SKETCH_LAG_P50_US, stats.p50_us as f64);
        ctx.metrics
            .set_gauge(names::SKETCH_LAG_P99_US, stats.p99_us as f64);
        ctx.metrics
            .set_gauge(names::SKETCH_LAG_MAX_US, stats.max_us as f64);
        ctx.metrics.set_gauge(names::SKETCH_LAG_SKEW, stats.skew());
    }
    if let Some(bytes) = snaps.iter().find(|s| s.dim == DIM_SUB_BYTES) {
        ctx.metrics
            .set_gauge(names::SKETCH_DOMINANCE_SHARE, bytes.alarm_share());
    }
    sampler.sample(ctx.now_us, &ctx.metrics);
    if let Some(engine) = health {
        for mut alert in engine.evaluate(ctx.now_us, sampler.timeline()) {
            gryphon_sim::sketch::name_culprit(&mut alert.detail, &alert.series, &snaps);
            if alert.state == AlertState::Firing {
                ctx.metrics
                    .count(&format!("health.alert.{}", alert.rule), 1.0);
            }
            sampler.timeline_mut().push_alert(alert);
        }
    }
    for snap in snaps {
        sampler.timeline_mut().push_topk(snap);
    }
    let bytes = shb.slab_bytes();
    let idle = shb.idle_subs().max(1);
    let per_idle = bytes as f64 / idle as f64;
    table.row(&[
        phase.into(),
        format!("{wall_ms:.0}"),
        shb.sub_count().to_string(),
        shb.connected_count().to_string(),
        shb.catchup_streams().to_string(),
        shb.parked_streams().to_string(),
        format!("{:.1}", bytes as f64 / 1e6),
        format!("{per_idle:.0}"),
    ]);
    per_idle
}

/// Runs the workload. `--subs` / `--churn-pct` override the defaults
/// (see [`topology::default_mega_subs`]).
pub fn run(quick: bool) -> Report {
    let spec = WorkloadSpec {
        subs: topology::default_mega_subs().unwrap_or(if quick { 20_000 } else { 1_000_000 }),
        connected: if quick { 256 } else { 512 },
        storm: if quick { 128 } else { 256 },
        ticks: if quick { 128 } else { 256 },
        classes: if quick { 128 } else { 256 },
        churn_pct: topology::default_churn_pct().unwrap_or(1.0),
    };
    let config = BrokerConfig::default();
    let mut ctx = DriveCtx {
        now_us: 0,
        metrics: Metrics::default(),
        rng: SmallRng::seed_from_u64(7),
        sketch: PopulationSketch::new(SketchConfig::default()),
    };
    let slow_sub_mode = topology::default_slow_sub();
    // The health engine arms only for the slow-sub drill: the storm
    // phase legitimately opens short-lived catchup streams whose lag
    // would read as skew, and the drill is about the planted laggard.
    let mut health = slow_sub_mode.then(|| HealthEngine::new(default_rules()));
    let mut sampler = Sampler::new(500_000);
    let mut shb = Shb::open(&MemFactory::new(), "mega", &config);
    let mut t = Table::new(
        format!(
            "§15 subscriber memory model ({} durable subs, {} classes, churn {:.1}%)",
            spec.subs, spec.classes, spec.churn_pct
        ),
        &[
            "phase",
            "wall (ms)",
            "subs",
            "connected",
            "catchup",
            "parked",
            "slab (MB)",
            "B/idle sub",
        ],
    );

    // Phase 1: register the idle mass.
    let start = Instant::now();
    for i in 0..spec.subs {
        shb.register_spec(
            SubscriberId(i + 1),
            CLIENT,
            Some(&filter_for(i, &spec)),
            false,
            false,
            &mut ctx,
        )
        .expect("register");
    }
    let register_ms = start.elapsed().as_secs_f64() * 1e3;
    let idle_bytes = census(
        &mut t,
        "register",
        register_ms,
        &mut shb,
        &mut ctx,
        &mut sampler,
        None,
    );

    // Phase 2: a small fraction connects and traffic flows through the
    // constream. Each tick's event matches `connected / classes` of the
    // connected batch (plus idle slots, which the deliver loop skips).
    let start = Instant::now();
    for i in 0..spec.connected {
        connect_one(&mut shb, SubscriberId(i + 1), None, &config, &mut ctx);
    }
    let mut cache = KnowledgeStream::new();
    for tick in 1..=spec.ticks {
        let e = Event::builder(P)
            .attr("class", (tick % spec.classes) as i64)
            .build_ref(Timestamp(tick));
        assert!(cache.set_data(e));
    }
    cache.set_silence(Timestamp(1), Timestamp(spec.ticks));
    shb.constream_advance(P, &cache, Timestamp(spec.ticks), &config, &mut ctx);
    let delivered = shb.delivered;
    assert_eq!(
        delivered,
        spec.ticks * (spec.connected / spec.classes),
        "traffic must reach every connected matching subscriber"
    );
    let traffic_ms = start.elapsed().as_secs_f64() * 1e3;
    census(
        &mut t,
        "traffic",
        traffic_ms,
        &mut shb,
        &mut ctx,
        &mut sampler,
        None,
    );

    // Phase 3: churn — unsubscribe + re-register recycles slab slots
    // (generation bumps keep stale handles dead). Drawn from the idle
    // region above the connected/storm batches.
    let churned = ((spec.subs as f64) * spec.churn_pct / 100.0) as u64;
    let churn_base = spec.connected + spec.storm;
    let churned = churned.min(spec.subs.saturating_sub(churn_base));
    let start = Instant::now();
    for k in 0..churned {
        let i = churn_base + k;
        let sub = SubscriberId(i + 1);
        shb.unsubscribe(sub);
        shb.register_spec(
            sub,
            CLIENT,
            Some(&filter_for(i, &spec)),
            false,
            false,
            &mut ctx,
        )
        .expect("re-register");
    }
    let churn_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        shb.sub_count() as u64,
        spec.subs,
        "churn preserves the population"
    );
    census(
        &mut t,
        "churn",
        churn_ms,
        &mut shb,
        &mut ctx,
        &mut sampler,
        None,
    );

    // Phase 4: reconnect storm. A batch of idle subscribers presents an
    // old checkpoint, so each connect opens a PFS catchup stream; the
    // drop parks every stream into a compact record; the reconnect
    // drains the parked records (counted as rehydrations) and rebuilds
    // the streams from the checkpoint protocol.
    let storm_ct = || {
        let mut ct = CheckpointToken::new();
        ct.advance(P, Timestamp::ZERO);
        Some(ct)
    };
    let start = Instant::now();
    let storm_subs: Vec<SubscriberId> = (0..spec.storm)
        .map(|k| SubscriberId(spec.connected + k + 1))
        .collect();
    for &sub in &storm_subs {
        connect_one(&mut shb, sub, storm_ct(), &config, &mut ctx);
    }
    let streams_open = shb.catchup_streams();
    for &sub in &storm_subs {
        shb.disconnect(sub, ctx.now_us);
    }
    let parked_peak = shb.parked_streams();
    for &sub in &storm_subs {
        connect_one(&mut shb, sub, storm_ct(), &config, &mut ctx);
    }
    let storm_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        streams_open as u64, spec.storm,
        "storm connects open catchup streams"
    );
    assert_eq!(
        parked_peak as u64, spec.storm,
        "disconnects park every stream"
    );
    assert_eq!(
        shb.parked_streams(),
        0,
        "reconnects drain the parked records"
    );
    census(
        &mut t,
        "storm",
        storm_ms,
        &mut shb,
        &mut ctx,
        &mut sampler,
        None,
    );

    // Phase 5 (only under `--slow-sub`): plant one slow consumer and
    // prove the attribution path names it. The connected cohort
    // shrinks to 16 caught-up subscribers so the lag spectrum's p99
    // rank lands on the laggard; the last registered subscriber then
    // connects with an ancient checkpoint, opening a catchup stream
    // that never progresses. The next sweep attributes a full window
    // of lag to exactly that entity, the skew gauge jumps, and the
    // `lag_skew` health rule fires; reconnecting it caught-up clears
    // the alert at the following census.
    let mut slow_note = None;
    if slow_sub_mode {
        const KEEP: u64 = 16;
        let start = Instant::now();
        for i in KEEP..spec.connected {
            shb.disconnect(SubscriberId(i + 1), ctx.now_us);
        }
        for &sub in &storm_subs {
            shb.disconnect(sub, ctx.now_us);
        }
        let slow = SubscriberId(spec.subs);
        connect_one(&mut shb, slow, storm_ct(), &config, &mut ctx);
        let slow_ms = start.elapsed().as_secs_f64() * 1e3;
        census(
            &mut t,
            "slow-sub",
            slow_ms,
            &mut shb,
            &mut ctx,
            &mut sampler,
            health.as_mut(),
        );
        let (leader_entity, lag_us) = {
            let lag_top = sampler
                .timeline()
                .topks()
                .filter(|s| s.dim == DIM_SUB_LAG)
                .last()
                .expect("slow-sub census produces a lag snapshot");
            let leader = lag_top.entries.first().expect("lag snapshot has entries");
            (leader.entity, leader.count)
        };
        assert_eq!(
            leader_entity, slow.0,
            "the sketch must name the planted slow consumer"
        );

        // Hold the laggard for a second window: `lag_skew` is a
        // sustained-ceiling rule (two consecutive breaching windows)
        // so one-census transients like the reconnect storm stay
        // quiet, and the alert fires here.
        let start = Instant::now();
        let hold_ms = start.elapsed().as_secs_f64() * 1e3;
        census(
            &mut t,
            "slow-hold",
            hold_ms,
            &mut shb,
            &mut ctx,
            &mut sampler,
            health.as_mut(),
        );
        assert!(
            sampler
                .timeline()
                .alerts()
                .iter()
                .any(|a| a.rule == "lag_skew" && a.state == AlertState::Firing),
            "planted laggard must fire the lag_skew rule"
        );

        // Recovery: the laggard reconnects caught-up; the next census
        // sweeps a uniform population and the alert clears.
        let start = Instant::now();
        shb.disconnect(slow, ctx.now_us);
        connect_one(&mut shb, slow, None, &config, &mut ctx);
        let recover_ms = start.elapsed().as_secs_f64() * 1e3;
        census(
            &mut t,
            "recovered",
            recover_ms,
            &mut shb,
            &mut ctx,
            &mut sampler,
            health.as_mut(),
        );
        assert!(
            sampler
                .timeline()
                .alerts()
                .iter()
                .any(|a| a.rule == "lag_skew" && a.state == AlertState::Cleared),
            "caught-up laggard must clear the lag_skew rule"
        );
        slow_note = Some(format!(
            "slow-sub drill: subscriber {} planted at {lag_us} µs of catchup lag was named \
             by the top-K sketch and fired (then cleared) the lag_skew rule",
            slow.0
        ));
    }

    // The attribution layer's memory is O(K) per dimension no matter
    // how large the population is — the acceptance bound for running
    // this sketch at 10^6 subscribers.
    let sketch_bytes = ctx.sketch.approx_heap_bytes();
    assert!(
        sketch_bytes <= 4 * 1024,
        "population sketch must stay O(K): {sketch_bytes} B for {} subs",
        spec.subs
    );

    let rehydrations = ctx.metrics.counter("shb.stream_rehydrations");
    let mut report = Report::new("mega_subs");
    report.table(t);
    report.note(format!(
        "idle footprint after registration: {idle_bytes:.0} B per idle durable subscription \
         across {} subscribers (telemetry.shb.bytes_per_idle_sub — guarded by xp doctor diff)",
        spec.subs
    ));
    report.note(format!(
        "traffic: {delivered} deliveries to the {}-sub connected fraction while {} idle subs \
         sat in the slab",
        spec.connected,
        spec.subs - spec.connected
    ));
    report.note(format!(
        "storm: {} catchup streams opened, {} parked on disconnect, {rehydrations:.0} parked \
         records rehydrated on reconnect",
        streams_open, parked_peak
    ));
    report.note(format!(
        "population sketch: {sketch_bytes} B of attribution state for {} subscribers (O(K) \
         per dimension; DESIGN.md §18)",
        spec.subs
    ));
    if let Some(n) = slow_note {
        report.note(n);
    }
    report.attach_metrics(&ctx.metrics);
    report.attach_telemetry(sampler.into_timeline());
    report
}
