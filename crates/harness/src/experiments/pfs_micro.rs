//! §5.1.2 — the PFS microbenchmark.
//!
//! Paper: "800 events/s input rate, 100 subscribers, 200 events/s per
//! subscriber, 418 byte messages (250 byte payload). For each subscriber
//! both the PFS and the event log is synced every 200 events (every
//! second of the workload) and maintains information for the last 1000
//! events (the last 5 seconds). The benchmark represents 100 s of real
//! time. The PFS ran the benchmark in 11088 ms. Compared to event logging
//! for each subscriber, PFS logged 25× less data, and was over 5× faster."
//!
//! This is a *real-storage* benchmark: both sides run on actual files
//! (std::fs with `sync_data`) through the same `Media` abstraction.

use crate::report::{Report, Table};
use gryphon::{Pfs, PfsMode};
use gryphon_baseline::PerSubscriberLog;
use gryphon_storage::{FileFactory, MediaFactory};
use gryphon_types::{Event, EventRef, PubendId, SubscriberId, Timestamp};
use std::time::Instant;

struct WorkloadSpec {
    seconds: u64,
    input_rate: u64,
    subscribers: u64,
    classes: u64,
}

/// One synthetic event of the microbenchmark.
fn event_at(seq: u64, spec: &WorkloadSpec) -> EventRef {
    // 800 ev/s on the tick-ms line → 1.25 ms apart. The payload is 250
    // bytes and a header-filler attribute pads the wire size to the
    // paper's 418 bytes.
    let ts = Timestamp(1 + seq * 1_250 / 1_000);
    let e = Event::builder(PubendId(0))
        .attr("class", (seq % spec.classes) as i64)
        .attr("_hdr", "x".repeat(121))
        .payload(vec![0u8; 250])
        .build_ref(ts);
    debug_assert_eq!(e.encoded_len(), 418);
    e
}

/// Subscribers matching event `seq`: the class partition (25 of 100).
fn matching_subs(seq: u64, spec: &WorkloadSpec) -> Vec<SubscriberId> {
    (0..spec.subscribers)
        .filter(|s| s % spec.classes == seq % spec.classes)
        .map(SubscriberId)
        .collect()
}

fn run_pfs(dir: &std::path::Path, spec: &WorkloadSpec) -> (f64, u64, u64) {
    let factory = FileFactory::new(dir).expect("tmp dir");
    let mut pfs = Pfs::open(factory.clone_box(), "bench", PfsMode::Precise).expect("pfs");
    let total = spec.seconds * spec.input_rate;
    let sync_every = spec.input_rate; // once per workload second
    let retain_events = 1_000u64; // per subscriber ⇒ 5 s of stream
    let start = Instant::now();
    for seq in 0..total {
        let e = event_at(seq, spec);
        let subs = matching_subs(seq, spec);
        pfs.write(PubendId(0), e.ts, &subs).expect("pfs write");
        if (seq + 1) % sync_every == 0 {
            pfs.sync().expect("pfs sync");
            // Retention: drop information older than 5 s of stream time.
            let floor = e.ts - retain_events * 5; // 1000 events/sub ≈ 5000 ticks
            if floor > Timestamp::ZERO {
                pfs.chop_below(PubendId(0), floor).expect("pfs chop");
            }
        }
    }
    pfs.sync().expect("final sync");
    let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
    let stats = pfs.stats();
    (elapsed, stats.payload_bytes, stats.records)
}

fn run_event_log(dir: &std::path::Path, spec: &WorkloadSpec) -> (f64, u64, u64) {
    let factory = FileFactory::new(dir).expect("tmp dir");
    let mut log = PerSubscriberLog::open(Box::new(factory), "bench").expect("log");
    let total = spec.seconds * spec.input_rate;
    let sync_every = spec.input_rate;
    let start = Instant::now();
    for seq in 0..total {
        let e = event_at(seq, spec);
        for sub in matching_subs(seq, spec) {
            log.append(sub, &e).expect("append");
        }
        if (seq + 1) % sync_every == 0 {
            log.sync().expect("sync");
            // Retention: each subscriber keeps its last 1000 events.
            let floor = e.ts - 5_000;
            if floor > Timestamp::ZERO {
                for s in 0..spec.subscribers {
                    log.ack(SubscriberId(s), floor).expect("ack");
                }
            }
        }
    }
    log.sync().expect("final sync");
    let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
    let stats = log.stats();
    (elapsed, stats.payload_bytes, stats.records)
}

/// Runs the microbenchmark on real files.
pub fn run(quick: bool) -> Report {
    let spec = WorkloadSpec {
        seconds: if quick { 5 } else { 100 },
        input_rate: 800,
        subscribers: 100,
        classes: 4,
    };
    let base = std::env::temp_dir().join(format!("gryphon-pfs-micro-{}", std::process::id()));
    let pfs_dir = base.join("pfs");
    let log_dir = base.join("log");
    let (pfs_ms, pfs_bytes, pfs_records) = run_pfs(&pfs_dir, &spec);
    let (log_ms, log_bytes, log_records) = run_event_log(&log_dir, &spec);
    std::fs::remove_dir_all(&base).ok();

    let mut report = Report::new("pfs_micro");
    let mut t = Table::new(
        format!(
            "§5.1.2 PFS microbenchmark ({} s × 800 ev/s, 100 subscribers, real file I/O)",
            spec.seconds
        ),
        &["system", "wall time (ms)", "data logged (MB)", "records"],
    );
    t.row(&[
        "PFS (timestamp + matching-subscriber list)".into(),
        format!("{pfs_ms:.0}"),
        format!("{:.2}", pfs_bytes as f64 / 1e6),
        pfs_records.to_string(),
    ]);
    t.row(&[
        "per-subscriber event logging (418 B × n subscribers)".into(),
        format!("{log_ms:.0}"),
        format!("{:.2}", log_bytes as f64 / 1e6),
        log_records.to_string(),
    ]);
    report.table(t);
    report.note(format!(
        "data ratio: {:.1}× less data with the PFS (paper: 25×); wall-time ratio: {:.1}× faster \
         (paper: >5×)",
        log_bytes as f64 / pfs_bytes as f64,
        log_ms / pfs_ms,
    ));
    report.note(
        "record arithmetic: each event matches 25 subscribers ⇒ event logging writes \
         25 × 418 B ≈ 10.4 KB/event; the PFS writes one 8+16×25 = 408 B record",
    );
    // No simulator runs here (real file I/O); synthesize the metrics
    // snapshot so this experiment exports like the others.
    let mut metrics = gryphon_sim::Metrics::default();
    metrics.count("pfs_micro.pfs_wall_ms", pfs_ms);
    metrics.count("pfs_micro.pfs_bytes", pfs_bytes as f64);
    metrics.count("pfs_micro.pfs_records", pfs_records as f64);
    metrics.count("pfs_micro.log_wall_ms", log_ms);
    metrics.count("pfs_micro.log_bytes", log_bytes as f64);
    metrics.count("pfs_micro.log_records", log_records as f64);
    report.attach_metrics(&metrics);
    report
}
