//! Figures 5 and 6 — detailed SHB behaviour under periodic subscriber
//! disconnection (the 2-broker network of the scalability runs).
//!
//! * Figure 5: per-reconnect catchup durations — in the paper, usually
//!   5–6 s for 5 s disconnections (the catchup stream must recover the
//!   missed interval *and* the events published while it catches up, so
//!   the duration slightly exceeds the absence).
//! * Figure 6: the advance rate of `latestDelivered(p)` is steady at
//!   ≈1000 tick-ms per second regardless of disconnections, while
//!   `released(p)` stalls whenever any subscriber is disconnected and
//!   jumps on acknowledgment.

use crate::report::{Report, Table};
use crate::topology::{System, TopologySpec};
use crate::workload::Workload;

fn shared_run(quick: bool) -> (System, u64) {
    let run_us: u64 = if quick { 40_000_000 } else { 150_000_000 };
    let period = if quick { 20_000_000 } else { 30_000_000 };
    let spec = TopologySpec {
        seed: 56,
        n_shbs: 1,
        // Catchup delivery is bounded by the per-client link (the paper's
        // flow control keeps catchup from overwhelming the client):
        // nominal per-subscriber traffic is ≈64 KB/s on the wire; ~2×
        // headroom makes a 5 s absence take ≈5 s to recover, as in the
        // paper.
        client_bw: Some(118_000),
        ..TopologySpec::default()
    };
    let mut workload = Workload::paper_disconnecting(period, 5_000_000);
    workload.subs_per_shb = 88;
    let mut sys = System::build(&spec, &workload);
    sys.run_sampled(run_us, 500_000);
    assert_eq!(sys.total_order_violations(), 0);
    (sys, run_us)
}

/// Figure 5: catchup duration distribution.
pub fn run_fig5(quick: bool) -> Report {
    let (sys, _run_us) = shared_run(quick);
    let mut report = Report::new("fig5");
    let mut durations: Vec<(f64, f64)> = Vec::new();
    for &(h, _) in &sys.subscribers {
        let _ = h;
    }
    for &(t, v) in sys.sim.metrics().series("client.catchup_ms") {
        durations.push((t as f64 / 1e6, v / 1_000.0)); // → (s, s)
    }
    let vals: Vec<f64> = durations.iter().map(|&(_, v)| v).collect();
    let mut t = Table::new(
        "Figure 5: catchup durations for 5 s disconnections (paper: 5–6 s)",
        &["metric", "value"],
    );
    if vals.is_empty() {
        t.row(&["catchups observed".into(), "0".into()]);
    } else {
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        t.row(&["catchups observed".into(), vals.len().to_string()]);
        t.row(&["mean (s)".into(), format!("{mean:.2}")]);
        t.row(&["min (s)".into(), format!("{min:.2}")]);
        t.row(&["max (s)".into(), format!("{max:.2}")]);
        report.note(format!(
            "paper shape: catchup duration slightly exceeds the 5 s absence; measured mean {mean:.2} s"
        ));
    }
    report.table(t);
    report.series("catchup_duration_s", durations);
    sys.attach_observability(&mut report);
    report
}

/// Figure 6: `latestDelivered(p)` / `released(p)` advance rates.
pub fn run_fig6(quick: bool) -> Report {
    let (sys, run_us) = shared_run(quick);
    let mut report = Report::new("fig6");
    // The SHB is broker id 1 in this topology; pubend 0 is representative
    // (as in the paper's "1 of the 4 pubends").
    let ld = sys.sim.metrics().series("shb1.ld.0");
    let rel = sys.sim.metrics().series("shb1.released.0");
    let to_rate = |series: &[(u64, f64)]| -> Vec<(f64, f64)> {
        series
            .windows(2)
            .map(|w| {
                let dt_s = (w[1].0 - w[0].0) as f64 / 1e6;
                let dv = w[1].1 - w[0].1; // tick-ms advanced
                (
                    w[1].0 as f64 / 1e6,
                    if dt_s > 0.0 { dv / dt_s } else { 0.0 },
                )
            })
            .collect()
    };
    let ld_rate = to_rate(ld);
    let rel_rate = to_rate(rel);
    let stats = |r: &[(f64, f64)]| -> (f64, f64, f64) {
        // Skip the warmup quarter.
        let cut = run_us as f64 / 4e6;
        let vals: Vec<f64> = r
            .iter()
            .filter(|&&(t, _)| t > cut)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            return (f64::NAN, f64::NAN, f64::NAN);
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(0.0f64, f64::max);
        (mean, min, max)
    };
    let (ld_mean, ld_min, ld_max) = stats(&ld_rate);
    let (rel_mean, rel_min, rel_max) = stats(&rel_rate);
    let mut t = Table::new(
        "Figure 6: advance rate of latestDelivered(p) and released(p) (tick-ms per second)",
        &["series", "mean", "min", "max"],
    );
    t.row(&[
        "latestDelivered (paper: steady ≈1000)".into(),
        format!("{ld_mean:.0}"),
        format!("{ld_min:.0}"),
        format!("{ld_max:.0}"),
    ]);
    t.row(&[
        "released (paper: large variation, stalls on disconnect)".into(),
        format!("{rel_mean:.0}"),
        format!("{rel_min:.0}"),
        format!("{rel_max:.0}"),
    ]);
    report.table(t);
    report.note(format!(
        "shape check: latestDelivered variation ({:.0}..{:.0}) is much narrower than released's \
         ({:.0}..{:.0}) — disconnected subscribers stall release but not delivery",
        ld_min, ld_max, rel_min, rel_max
    ));
    report.series("latestDelivered_rate", ld_rate);
    report.series("released_rate", rel_rate);
    sys.attach_observability(&mut report);
    report
}
