//! Figure 4 — peak event rate as SHBs are added, with and without
//! subscriber disconnection/reconnection.
//!
//! Paper: 20 K ev/s (1 SHB) → 79.2 K ev/s (4 SHBs) with no disconnects;
//! 17.6 K → 69.6 K (≈88 % of peak) with each subscriber disconnecting
//! every 300 s for 5 s. The 1-broker and 1-SHB networks have similar
//! capacity. PHB idle drops only slightly (69 % → 59 %) as SHBs are
//! added.
//!
//! The simulator is not contention-limited, so "peak" is estimated the
//! way capacity planning does it: measured delivered rate divided by the
//! bottleneck SHB's busy fraction (the cost model anchors one SHB at
//! ≈20 K ev/s).

use crate::report::{fmt_rate, Report, Table};
use crate::topology::{System, TopologySpec};
use crate::workload::Workload;

struct Cell {
    label: &'static str,
    subs: usize,
    delivered_rate: f64,
    shb_busy: f64,
    phb_idle: f64,
    est_peak: f64,
}

fn run_config(
    seed: u64,
    combined: bool,
    n_shbs: usize,
    disconnecting: bool,
    run_us: u64,
    label: &'static str,
) -> (Cell, System) {
    let spec = TopologySpec {
        seed,
        combined,
        n_shbs,
        ..TopologySpec::default()
    };
    let workload = if disconnecting {
        // Compressed from the paper's 300 s period / 5 s down, keeping
        // roughly the paper's down-time duty cycle and fitting several
        // cycles into the run.
        Workload::paper_disconnecting(run_us / 2, run_us / 24)
    } else {
        Workload::paper_steady()
    };
    let mut sys = System::build(&spec, &workload);
    let warmup = run_us / 4;
    sys.run_sampled(warmup, 500_000);
    let events_at_warmup = sys.total_events();
    sys.run_sampled(run_us, 500_000);
    let window_s = (run_us - warmup) as f64 / 1e6;
    let delivered_rate = (sys.total_events() - events_at_warmup) as f64 / window_s;
    assert_eq!(sys.total_order_violations(), 0, "order violated in {label}");
    let shb_busy = sys
        .shbs
        .iter()
        .map(|h| sys.busy_fraction(h.id(), warmup, run_us))
        .fold(0.0f64, f64::max);
    let phb_busy = sys.busy_fraction(sys.phb.id(), warmup, run_us);
    let est_peak = if shb_busy > 0.0 {
        delivered_rate / shb_busy
    } else {
        f64::NAN
    };
    let cell = Cell {
        label,
        subs: workload.subs_per_shb * n_shbs,
        delivered_rate,
        shb_busy,
        phb_idle: (1.0 - phb_busy) * 100.0,
        est_peak,
    };
    (cell, sys)
}

/// Runs the Figure 4 reproduction.
pub fn run(quick: bool) -> Report {
    let run_us = if quick { 12_000_000 } else { 60_000_000 };
    let configs: Vec<(&'static str, bool, usize)> = vec![
        ("1 broker", true, 1),
        ("1 SHB", false, 1),
        ("2 SHB", false, 2),
        ("4 SHB", false, 4),
    ];
    let mut report = Report::new("fig4");
    let mut last_sys: Option<System> = None;
    for disconnecting in [false, true] {
        let title = if disconnecting {
            "Figure 4b: aggregate rate WITH disconnection/reconnection (paper: 17.6K → 69.6K ev/s)"
        } else {
            "Figure 4a: aggregate rate, no disconnection (paper: 20K → 79.2K ev/s)"
        };
        let mut t = Table::new(
            title,
            &[
                "topology",
                "subscribers",
                "delivered (ev/s)",
                "SHB busy",
                "est. peak (ev/s)",
                "PHB idle",
            ],
        );
        let mut cells = Vec::new();
        for (i, &(label, combined, n)) in configs.iter().enumerate() {
            let (cell, sys) = run_config(
                100 + i as u64 + if disconnecting { 50 } else { 0 },
                combined,
                n,
                disconnecting,
                run_us,
                label,
            );
            last_sys = Some(sys);
            t.row(&[
                cell.label.into(),
                cell.subs.to_string(),
                fmt_rate(cell.delivered_rate),
                format!("{:.0}%", cell.shb_busy * 100.0),
                fmt_rate(cell.est_peak),
                format!("{:.0}%", cell.phb_idle),
            ]);
            cells.push(cell);
        }
        // Linearity check across 1 → 4 SHBs (skip the combined broker).
        if let (Some(one), Some(four)) = (cells.get(1), cells.get(3)) {
            report.note(format!(
                "{}: est. peak scales {:.2}× from 1 SHB to 4 SHBs (paper: {:.2}×)",
                if disconnecting {
                    "disconnecting"
                } else {
                    "steady"
                },
                four.est_peak / one.est_peak,
                if disconnecting {
                    69.6 / 17.6
                } else {
                    79.2 / 20.0
                },
            ));
        }
        report.table(t);
    }
    report.note(
        "peaks are estimated as delivered-rate / bottleneck-SHB busy fraction; the cost model \
         anchors a single SHB at ≈20K ev/s (see EXPERIMENTS.md calibration note)",
    );
    // Observability snapshot from the last (4-SHB, disconnecting) run —
    // the configuration that exercises catchup and switchover hardest.
    if let Some(sys) = &last_sys {
        sys.attach_observability(&mut report);
    }
    report
}
