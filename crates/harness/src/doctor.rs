//! `xp doctor` — offline diagnosis over run bundles (DESIGN.md §14).
//!
//! Three verbs, all reading the bundle directories
//! [`crate::bundle::write_bundle`] produces:
//!
//! * `inspect BUNDLE [--exemplars] [--topk] [--json]` — human summary:
//!   manifest, slowest latency stages, the worst tail exemplars
//!   rendered end-to-end stage-by-stage, per-entity top-K attribution
//!   (`--topk` for the full ranked tables per dimension), key
//!   telemetry sparklines, the alert log; `--json` emits the same
//!   facts as one machine-readable JSON object instead;
//! * `diff A B` — per-histogram-percentile and per-counter deltas with
//!   configurable thresholds; exits nonzero naming every regressed
//!   series (the offline complement of `perf_gate`) plus the exemplar
//!   behind each regressed latency histogram when one was captured,
//!   and the top-K entity behind each regressed sketch gauge;
//! * `check BUNDLE` — replays the default health rules over the
//!   bundle's timeline (reproducing the online engine's alert log
//!   exactly — see [`gryphon_sim::health`]) and fails on any firing
//!   alert or recorded invariant violation, for CI;
//! * `export-trace BUNDLE -o OUT.json` — Chrome/Perfetto trace-event
//!   export of the forensics streams ([`crate::trace_export`]).

use crate::bundle::parse_flat_json;
use crate::report::HistogramSummary;
use gryphon_sim::forensics::BusyInterval;
use gryphon_sim::telemetry::{sparkline, Timeline};
use gryphon_sim::{default_rules, AlertRecord, AlertState, Exemplar, HealthEngine, TopKSnapshot};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A bundle loaded back into memory.
#[derive(Debug)]
pub struct Bundle {
    /// The bundle directory.
    pub dir: PathBuf,
    /// Flat manifest key/values.
    pub manifest: BTreeMap<String, String>,
    /// Counter snapshot from `metrics.csv`.
    pub counters: BTreeMap<String, f64>,
    /// Histogram percentile rows from `metrics.csv`.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// The re-parsed telemetry timeline.
    pub timeline: Timeline,
    /// The recorded alert log.
    pub alerts: Vec<AlertRecord>,
    /// Tail exemplars captured by the forensics reservoir (empty for
    /// bundles written before the artifact existed, or with forensics
    /// disarmed).
    pub exemplars: Vec<Exemplar>,
    /// Contention-profiler busy intervals (empty under the same
    /// conditions as the exemplars).
    pub intervals: Vec<BusyInterval>,
    /// Per-window top-K attribution snapshots (empty under the same
    /// conditions, or with the population sketch disarmed).
    pub topks: Vec<TopKSnapshot>,
}

fn read(dir: &Path, name: &str) -> Result<String, String> {
    std::fs::read_to_string(dir.join(name))
        .map_err(|e| format!("{}: cannot read {name}: {e}", dir.display()))
}

/// Splits one CSV row into fields, honouring the RFC-4180 quoting the
/// exporters use.
fn csv_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Loads a bundle directory written by [`crate::bundle::write_bundle`].
///
/// # Errors
///
/// Returns a description of the first missing or malformed artifact.
pub fn load_bundle(dir: &Path) -> Result<Bundle, String> {
    let manifest = parse_flat_json(&read(dir, "manifest.json")?)?;
    let interval_us: u64 = manifest
        .get("interval_us")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut counters = BTreeMap::new();
    let mut histograms = BTreeMap::new();
    let metrics_csv = read(dir, "metrics.csv")?;
    let mut rows = metrics_csv.lines();
    match rows.next() {
        Some("kind,name,count,value,min,p50,p95,p99,max") => {}
        other => return Err(format!("metrics.csv: bad header {other:?}")),
    }
    for line in rows {
        if line.is_empty() {
            continue;
        }
        let f = csv_fields(line);
        if f.len() != 9 {
            return Err(format!("metrics.csv: bad row {line}"));
        }
        let num = |s: &str| -> f64 { s.parse().unwrap_or(f64::NAN) };
        match f[0].as_str() {
            "counter" => {
                counters.insert(f[1].clone(), num(&f[3]));
            }
            "histogram" => {
                histograms.insert(
                    f[1].clone(),
                    HistogramSummary {
                        name: f[1].clone(),
                        count: f[2].parse().unwrap_or(0),
                        min: num(&f[4]),
                        p50: num(&f[5]),
                        p95: num(&f[6]),
                        p99: num(&f[7]),
                        max: num(&f[8]),
                    },
                );
            }
            "series" => {}
            other => return Err(format!("metrics.csv: unknown kind {other}")),
        }
    }
    let timeline = Timeline::from_ndjson(&read(dir, "timeline.ndjson")?, interval_us)?;
    let alerts = Timeline::alerts_from_ndjson(&read(dir, "alerts.ndjson")?)?;
    // Forensics artifacts are newer than the bundle schema itself:
    // tolerate their absence (pre-§17 bundles) but not malformation.
    let exemplars = match std::fs::read_to_string(dir.join("exemplars.ndjson")) {
        Ok(s) => Timeline::exemplars_from_ndjson(&s)?,
        Err(_) => Vec::new(),
    };
    let intervals = match std::fs::read_to_string(dir.join("intervals.ndjson")) {
        Ok(s) => Timeline::intervals_from_ndjson(&s)?,
        Err(_) => Vec::new(),
    };
    let topks = match std::fs::read_to_string(dir.join("topk.ndjson")) {
        Ok(s) => Timeline::topks_from_ndjson(&s)?,
        Err(_) => Vec::new(),
    };
    Ok(Bundle {
        dir: dir.to_path_buf(),
        manifest,
        counters,
        histograms,
        timeline,
        alerts,
        exemplars,
        intervals,
        topks,
    })
}

/// Replays the default health rules over a bundle's timeline at its
/// recorded sample times, reproducing the online engine's alert log
/// (the engine only ever reads samples at or before the evaluation
/// time, so offline replay over the complete timeline is exact).
pub fn replay_health(timeline: &Timeline) -> Vec<AlertRecord> {
    let mut times: Vec<u64> = timeline
        .series_names()
        .iter()
        .flat_map(|n| timeline.series(n).iter().map(|&(t, _)| t))
        .collect();
    times.sort_unstable();
    times.dedup();
    let mut engine = HealthEngine::new(default_rules());
    let mut out = Vec::new();
    for t in times {
        out.extend(engine.evaluate(t, timeline));
    }
    out
}

/// Entry point for `xp doctor <verb> …`; returns the process exit code
/// (0 healthy, 1 regression/alerts found, 2 usage or read error).
pub fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("inspect") if args.len() >= 2 => {
            let mut full_exemplars = false;
            let mut full_topk = false;
            let mut json = false;
            for flag in &args[2..] {
                match flag.as_str() {
                    "--exemplars" => full_exemplars = true,
                    "--topk" => full_topk = true,
                    "--json" => json = true,
                    other => {
                        eprintln!("error: unknown inspect option {other}");
                        return 2;
                    }
                }
            }
            match load_bundle(Path::new(&args[1])) {
                Ok(b) => {
                    if json {
                        print!("{}", inspect_json(&b));
                    } else {
                        print!("{}", inspect(&b, full_exemplars, full_topk));
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        Some("export-trace") if args.len() == 4 && args[2] == "-o" => {
            match load_bundle(Path::new(&args[1])) {
                Ok(b) => {
                    let json = crate::trace_export::chrome_trace_json(
                        &b.intervals,
                        &b.exemplars,
                        &b.alerts,
                    );
                    match std::fs::write(&args[3], json) {
                        Ok(()) => {
                            println!(
                                "wrote {} ({} intervals, {} exemplars, {} alerts)",
                                args[3],
                                b.intervals.len(),
                                b.exemplars.len(),
                                b.alerts.len()
                            );
                            0
                        }
                        Err(e) => {
                            eprintln!("error: cannot write {}: {e}", args[3]);
                            2
                        }
                    }
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        Some("check") if args.len() == 2 => match load_bundle(Path::new(&args[1])) {
            Ok(b) => check(&b),
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        },
        Some("diff") if args.len() >= 3 => {
            let mut threshold_pct = 25.0;
            let mut abs_floor_us = 1_000.0;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                let value = rest.next().and_then(|v| v.parse::<f64>().ok());
                match (flag.as_str(), value) {
                    ("--threshold-pct", Some(v)) => threshold_pct = v,
                    ("--abs-floor-us", Some(v)) => abs_floor_us = v,
                    _ => {
                        eprintln!("error: unknown diff option {flag}");
                        return 2;
                    }
                }
            }
            let (a, b) = match (
                load_bundle(Path::new(&args[1])),
                load_bundle(Path::new(&args[2])),
            ) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            diff(&a, &b, threshold_pct, abs_floor_us)
        }
        _ => {
            eprintln!(
                "usage: xp doctor inspect BUNDLE [--exemplars] [--topk] [--json]\n\
                 \x20      xp doctor check BUNDLE\n\
                 \x20      xp doctor diff A B [--threshold-pct P] [--abs-floor-us US]\n\
                 \x20      xp doctor export-trace BUNDLE -o OUT.json"
            );
            2
        }
    }
}

/// `true` for histograms `inspect` lists in its slowest-stage table.
/// Everything latency-shaped (`*_us`) plus the whole commit-pipeline
/// family (whose `batch_records`/`group_size` members are not µs but
/// explain *why* the `_us` members moved). The registry-coverage test
/// below keeps this predicate honest as histograms are added.
pub fn inspect_histogram(name: &str) -> bool {
    name.ends_with("_us") || name.starts_with("storage.commit.")
}

/// The latest top-K snapshot per dimension, in the order the
/// dimensions first appear in the bundle's snapshot log (which is the
/// sketch's fixed dimension order).
fn latest_topks(b: &Bundle) -> Vec<&TopKSnapshot> {
    let mut out: Vec<&TopKSnapshot> = Vec::new();
    for snap in &b.topks {
        match out.iter_mut().find(|s| s.dim == snap.dim) {
            Some(slot) => *slot = snap,
            None => out.push(snap),
        }
    }
    out
}

/// Renders the human `inspect` summary. `full_exemplars` lists every
/// captured tail exemplar instead of the three worst; `full_topk`
/// lists every ranked entity per attribution dimension instead of the
/// three heaviest.
pub fn inspect(b: &Bundle, full_exemplars: bool, full_topk: bool) -> String {
    let get = |k: &str| b.manifest.get(k).map(String::as_str).unwrap_or("?");
    let mut out = format!(
        "# bundle: {} ({})\n  version {}  git {}  quick {}  seed_offset {}  degrade {}\n  \
         sampling interval {} µs; {} timeline series; {} alert transitions\n",
        get("experiment"),
        b.dir.display(),
        get("version"),
        get("git"),
        get("quick"),
        get("seed_offset"),
        get("degrade"),
        get("interval_us"),
        b.timeline.series_names().len(),
        b.alerts.len(),
    );

    // Slowest pipeline stages first: the question inspect exists to
    // answer is "where did the time go".
    let mut stages: Vec<&HistogramSummary> = b
        .histograms
        .values()
        .filter(|h| inspect_histogram(&h.name))
        .collect();
    stages.sort_by(|x, y| y.p99.total_cmp(&x.p99));
    if !stages.is_empty() {
        out.push_str("\n## latency stages (slowest p99 first)\n");
        out.push_str(&format!(
            "  {:<36} {:>9} {:>12} {:>12} {:>12}\n",
            "histogram", "count", "p50", "p99", "max"
        ));
        for h in stages.iter().take(12) {
            out.push_str(&format!(
                "  {:<36} {:>9} {:>12.0} {:>12.0} {:>12.0}\n",
                h.name, h.count, h.p50, h.p99, h.max
            ));
        }
    }

    // The worst end-to-end spans, worst first: the exemplar reservoir
    // captured these *because* they landed in a stage histogram's tail,
    // so each renders the full timestamped→delivered walk.
    if !b.exemplars.is_empty() {
        let mut worst: Vec<&Exemplar> = b.exemplars.iter().collect();
        worst.sort_by(|x, y| y.value.total_cmp(&x.value));
        let shown = if full_exemplars {
            worst.len()
        } else {
            3.min(worst.len())
        };
        out.push_str(&format!(
            "\n## tail exemplars ({} captured, {shown} shown{})\n",
            b.exemplars.len(),
            if full_exemplars {
                ""
            } else {
                "; --exemplars for all"
            },
        ));
        for ex in worst.iter().take(shown) {
            for line in ex.render().lines() {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }

    // Per-entity attribution (DESIGN.md §18): the latest window's
    // top-K snapshot per dimension answers "who" the way the stage
    // table answers "where".
    let latest = latest_topks(b);
    if !latest.is_empty() {
        out.push_str(&format!(
            "\n## top-k attribution ({} snapshots{})\n",
            b.topks.len(),
            if full_topk {
                ""
            } else {
                "; --topk for all entries"
            },
        ));
        for snap in latest {
            out.push_str(&format!(
                "  {} (window at {:.3}s, total {}, dominance {:.1}%)\n",
                snap.dim,
                snap.t_us as f64 / 1e6,
                snap.total,
                snap.dominance_share() * 100.0,
            ));
            let shown = if full_topk {
                snap.entries.len()
            } else {
                3.min(snap.entries.len())
            };
            out.push_str(&format!(
                "    {:>4} {:>12} {:>12} {:>8} {:>7}\n",
                "rank", "entity", "count", "err", "share"
            ));
            for (i, e) in snap.entries.iter().take(shown).enumerate() {
                let share = if snap.total > 0 {
                    e.count as f64 / snap.total as f64 * 100.0
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "    {:>4} {:>12} {:>12} {:>8} {share:>6.1}%\n",
                    i + 1,
                    e.entity,
                    e.count,
                    e.err
                ));
            }
        }
    }

    let key_series: Vec<&str> = b
        .timeline
        .series_names()
        .into_iter()
        .filter(|n| {
            n.starts_with("telemetry.") && !n.contains(".w") && !n.contains(".n")
                || n.ends_with(".q99")
                || n.starts_with("sketch.")
        })
        .collect();
    if !key_series.is_empty() {
        out.push_str("\n## timeline\n");
        let width = key_series.iter().map(|n| n.len()).max().unwrap_or(0);
        for name in key_series {
            let values: Vec<f64> = b.timeline.series(name).iter().map(|&(_, v)| v).collect();
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!(
                "  {name:<width$}  {}  max {max:.1}\n",
                sparkline(&values, 40)
            ));
        }
    }

    out.push_str(&format!("\n## alerts ({})\n", b.alerts.len()));
    if b.alerts.is_empty() {
        out.push_str("  none\n");
    }
    for a in &b.alerts {
        out.push_str(&format!(
            "  [{:>9.3}s] {:<7} {} on {}: {}\n",
            a.t_us as f64 / 1e6,
            a.state.as_str().to_uppercase(),
            a.rule,
            a.series,
            a.detail
        ));
    }
    out
}

/// A finite f64 as a bare JSON number, non-finite as `null` (NaN from
/// a malformed CSV cell must not produce invalid JSON).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders the machine-readable `inspect --json` object: the manifest,
/// the slowest latency stages, the alert log, and the latest top-K
/// attribution snapshot per dimension — the same facts as the human
/// summary, for scripts that would otherwise scrape its tables.
pub fn inspect_json(b: &Bundle) -> String {
    use crate::bundle::json_escape;
    let mut out = String::from("{\n  \"manifest\": {");
    for (i, (k, v)) in b.manifest.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // The flat manifest parser unquotes everything; re-emit values
        // that were bare JSON tokens (numbers, bools) as bare tokens.
        let bare = v == "true" || v == "false" || v.parse::<f64>().is_ok();
        if bare {
            out.push_str(&format!("\n    \"{}\": {v}", json_escape(k)));
        } else {
            out.push_str(&format!(
                "\n    \"{}\": \"{}\"",
                json_escape(k),
                json_escape(v)
            ));
        }
    }
    out.push_str("\n  },\n  \"stages\": [");
    let mut stages: Vec<&HistogramSummary> = b
        .histograms
        .values()
        .filter(|h| inspect_histogram(&h.name))
        .collect();
    stages.sort_by(|x, y| y.p99.total_cmp(&x.p99));
    for (i, h) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
            json_escape(&h.name),
            h.count,
            json_num(h.p50),
            json_num(h.p99),
            json_num(h.max)
        ));
    }
    out.push_str("\n  ],\n  \"alerts\": [");
    for (i, a) in b.alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"t_us\": {}, \"state\": \"{}\", \"rule\": \"{}\", \"series\": \"{}\", \
             \"detail\": \"{}\"}}",
            a.t_us,
            a.state.as_str(),
            json_escape(&a.rule),
            json_escape(&a.series),
            json_escape(&a.detail)
        ));
    }
    out.push_str("\n  ],\n  \"topk\": [");
    for (i, snap) in latest_topks(b).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"t_us\": {}, \"dim\": \"{}\", \"total\": {}, \"dominance\": {}, \
             \"entries\": [",
            snap.t_us,
            json_escape(snap.dim),
            snap.total,
            json_num(snap.dominance_share())
        ));
        for (j, e) in snap.entries.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"entity\": {}, \"count\": {}, \"err\": {}}}",
                e.entity, e.count, e.err
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// `check`: replay the health rules and fail on firing alerts or
/// recorded invariant violations.
fn check(b: &Bundle) -> i32 {
    let replayed = replay_health(&b.timeline);
    let firing: Vec<&AlertRecord> = replayed
        .iter()
        .filter(|a| a.state == AlertState::Firing)
        .collect();
    let mut bad = false;
    for a in &firing {
        println!(
            "ALERT [{:.3}s] {} on {}: {}",
            a.t_us as f64 / 1e6,
            a.rule,
            a.series,
            a.detail
        );
        bad = true;
    }
    // Invariant counters must be zero regardless of rule thresholds.
    for (name, v) in &b.counters {
        let invariant = name.starts_with("watchdog.") || name.starts_with("lineage.ledger.");
        if invariant && *v > 0.0 {
            println!("VIOLATION {name} = {v:.0}");
            bad = true;
        }
    }
    if bad {
        println!("doctor check: UNHEALTHY ({} firing alerts)", firing.len());
        1
    } else {
        println!(
            "doctor check: OK — {} sample series, 0 firing alerts, all invariants clean",
            b.timeline.series_names().len()
        );
        0
    }
}

/// The largest-valued exemplar captured for `series` in bundle `b`.
fn worst_exemplar<'a>(b: &'a Bundle, series: &str) -> Option<&'a Exemplar> {
    b.exemplars
        .iter()
        .filter(|e| e.series == series)
        .max_by(|x, y| x.value.total_cmp(&y.value))
}

/// Timeline gauge series `diff` additionally guards (ISSUE 7): each is
/// compared at its final sample with the same relative threshold as the
/// histograms plus a small absolute floor.
const GUARDED_SERIES: &[&str] = &["telemetry.shb.bytes_per_idle_sub"];

/// Sketch gauge series whose regression `diff` attributes to a named
/// entity: each maps to the top-K dimension whose leading entry in
/// bundle B's latest snapshot is the population member driving the
/// gauge (DESIGN.md §18).
const ATTRIBUTED_SERIES: &[(&str, &str)] = &[
    (
        gryphon_sim::names::SKETCH_LAG_P99_US,
        gryphon_sim::sketch::DIM_SUB_LAG,
    ),
    (
        gryphon_sim::names::SKETCH_LAG_SKEW,
        gryphon_sim::sketch::DIM_SUB_LAG,
    ),
];

/// The leading entry of bundle `b`'s latest snapshot for `dim`.
fn top_entity<'a>(b: &'a Bundle, dim: &str) -> Option<(&'a TopKSnapshot, u64, u64, u64)> {
    b.topks
        .iter()
        .rev()
        .find(|s| s.dim == dim)
        .and_then(|s| s.entries.first().map(|e| (s, e.entity, e.count, e.err)))
}

/// `diff`: latency-histogram percentile and violation-counter deltas.
/// A `*_us` histogram regresses when p50 or p99 rises by more than
/// `threshold_pct` percent AND more than `abs_floor_us` µs (the floor
/// keeps µs-scale jitter from flagging); a violation or alert counter
/// regresses on any increase; the [`GUARDED_SERIES`] timeline gauges
/// regress when their final sample grows past the threshold.
fn diff(a: &Bundle, b: &Bundle, threshold_pct: f64, abs_floor_us: f64) -> i32 {
    println!(
        "diff: {} -> {}  (threshold {threshold_pct}% and {abs_floor_us} µs)",
        a.dir.display(),
        b.dir.display()
    );
    let mut regressions: Vec<String> = Vec::new();
    println!(
        "  {:<36} {:>6} {:>12} {:>12} {:>9}",
        "histogram", "pct", "A_us", "B_us", "delta%"
    );
    for (name, ha) in &a.histograms {
        if !name.ends_with("_us") {
            continue;
        }
        let Some(hb) = b.histograms.get(name) else {
            continue;
        };
        for (label, va, vb) in [("p50", ha.p50, hb.p50), ("p99", ha.p99, hb.p99)] {
            let delta = vb - va;
            let pct = if va > 0.0 { delta / va * 100.0 } else { 0.0 };
            println!("  {name:<36} {label:>6} {va:>12.0} {vb:>12.0} {pct:>+8.1}%");
            if pct > threshold_pct && delta > abs_floor_us {
                let mut r = format!("{name} {label}: {va:.0} µs -> {vb:.0} µs ({pct:+.1}%)");
                // Attribute the regression: the worst exemplar B
                // captured for this histogram shows where, stage by
                // stage, that tail latency was actually spent.
                if let Some(ex) = worst_exemplar(b, name) {
                    for line in ex.render().lines() {
                        r.push_str(&format!("\n    {line}"));
                    }
                }
                regressions.push(r);
            }
        }
    }
    // Guarded timeline gauges: gauges are sampled onto the timeline,
    // not into metrics.csv, so they diff here. The SHB memory model is
    // held by its final sample (the steady-state footprint after the
    // run): B regresses when it grows past the relative threshold AND
    // a 64-byte floor (allocator/capacity jitter stays quiet).
    for name in GUARDED_SERIES {
        let last = |x: &Bundle| x.timeline.series(name).last().map(|&(_, v)| v);
        let (Some(va), Some(vb)) = (last(a), last(b)) else {
            continue;
        };
        let delta = vb - va;
        let pct = if va > 0.0 { delta / va * 100.0 } else { 0.0 };
        println!(
            "  {name:<36} {:>6} {va:>12.0} {vb:>12.0} {pct:>+8.1}%",
            "last"
        );
        if pct > threshold_pct && delta > 64.0 {
            regressions.push(format!("{name}: {va:.0} B -> {vb:.0} B ({pct:+.1}%)"));
        }
    }
    // Attributed sketch gauges: a regressed population gauge names the
    // entity behind it — the leading entry of B's latest top-K
    // snapshot for the matching dimension.
    for (name, dim) in ATTRIBUTED_SERIES {
        let last = |x: &Bundle| x.timeline.series(name).last().map(|&(_, v)| v);
        let (Some(va), Some(vb)) = (last(a), last(b)) else {
            continue;
        };
        let delta = vb - va;
        let pct = if va > 0.0 { delta / va * 100.0 } else { 0.0 };
        // A zero baseline (fully caught-up run A) makes pct useless —
        // any meaningful growth from 0 is a regression on its own.
        let from_zero = va <= 0.0 && vb > 0.0;
        let shown = if from_zero {
            "new".to_string()
        } else {
            format!("{pct:+.1}%")
        };
        println!(
            "  {name:<36} {:>6} {va:>12.0} {vb:>12.0} {shown:>9}",
            "last"
        );
        // µs-valued gauges share the histogram floor; the skew ratio
        // uses a fixed 0.5 floor instead (it is dimensionless).
        let floor = if name.ends_with("_us") {
            abs_floor_us
        } else {
            0.5
        };
        if (pct > threshold_pct || from_zero) && delta > floor {
            let mut r = format!("{name}: {va:.0} -> {vb:.0} ({shown})");
            if let Some((snap, entity, count, err)) = top_entity(b, dim) {
                r.push_str(&format!(
                    "\n    top {dim} entity: {entity} (weight {count} ±{err} of {}, window at {:.3}s)",
                    snap.total,
                    snap.t_us as f64 / 1e6
                ));
            }
            regressions.push(r);
        }
    }
    for (name, va) in &a.counters {
        let guarded = name.starts_with("watchdog.")
            || name.starts_with("lineage.ledger.")
            || name.starts_with("health.alert.");
        if !guarded {
            continue;
        }
        let vb = b.counters.get(name).copied().unwrap_or(0.0);
        if vb > *va {
            regressions.push(format!("{name}: {va:.0} -> {vb:.0}"));
        }
    }
    // Counters guarded in B but absent from A are new failures too.
    for (name, vb) in &b.counters {
        let guarded = name.starts_with("watchdog.")
            || name.starts_with("lineage.ledger.")
            || name.starts_with("health.alert.");
        if guarded && !a.counters.contains_key(name) && *vb > 0.0 {
            regressions.push(format!("{name}: absent -> {vb:.0}"));
        }
    }
    if regressions.is_empty() {
        println!("doctor diff: OK — no regressions past thresholds");
        0
    } else {
        for r in &regressions {
            println!("REGRESSION: {r}");
        }
        println!("doctor diff: {} regression(s)", regressions.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{write_bundle, BundleMeta};
    use crate::report::Report;
    use gryphon_sim::Metrics;

    fn bundle_with(
        tag: &str,
        deliver_p: (f64, f64, f64),
        backlog: &[(u64, f64)],
    ) -> (PathBuf, Bundle) {
        let root =
            std::env::temp_dir().join(format!("gryphon-doctor-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut m = Metrics::default();
        m.count("shb.constream_delivered", 1_000.0);
        // Shape a histogram whose percentiles land near the requested
        // values by observing them directly.
        let (p50, p99, _max) = deliver_p;
        for _ in 0..98 {
            m.observe("lineage.stage.deliver_us", p50);
        }
        m.observe("lineage.stage.deliver_us", p99);
        m.observe("lineage.stage.deliver_us", p99 * 1.01);
        let mut t = gryphon_sim::telemetry::Timeline::new(500_000);
        for &(ts, v) in backlog {
            t.record(ts, "telemetry.catchup_backlog_ticks", v);
        }
        let mut r = Report::new("t");
        r.attach_metrics(&m);
        r.attach_telemetry(t);
        let dir = write_bundle(
            &root,
            &r,
            &BundleMeta {
                interval_us: 500_000,
                ..BundleMeta::default()
            },
        )
        .unwrap();
        let b = load_bundle(&dir).unwrap();
        (root, b)
    }

    #[test]
    fn load_round_trips_metrics_and_timeline() {
        let (root, b) = bundle_with("load", (1_000.0, 5_000.0, 5_050.0), &[(500_000, 3.0)]);
        assert_eq!(b.counters["shb.constream_delivered"], 1_000.0);
        assert!(b.histograms.contains_key("lineage.stage.deliver_us"));
        assert_eq!(
            b.timeline.series("telemetry.catchup_backlog_ticks"),
            &[(500_000, 3.0)]
        );
        assert!(b.alerts.is_empty());
        let text = inspect(&b, false, false);
        assert!(text.contains("lineage.stage.deliver_us"));
        assert!(text.contains("none"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn diff_flags_real_regressions_only() {
        let (ra, a) = bundle_with("diff-a", (1_000.0, 5_000.0, 5_050.0), &[]);
        // ~Equal run: inside thresholds.
        let (rb, b) = bundle_with("diff-b", (1_050.0, 5_200.0, 5_252.0), &[]);
        assert_eq!(diff(&a, &b, 25.0, 1_000.0), 0);
        // Clearly degraded run: 3× slower.
        let (rc, c) = bundle_with("diff-c", (3_000.0, 15_000.0, 15_150.0), &[]);
        assert_eq!(diff(&a, &c, 25.0, 1_000.0), 1);
        // Improvement is not a regression.
        assert_eq!(diff(&c, &a, 25.0, 1_000.0), 0);
        for r in [ra, rb, rc] {
            let _ = std::fs::remove_dir_all(&r);
        }
    }

    fn bundle_with_idle_bytes(tag: &str, bytes_per_idle: f64) -> (PathBuf, Bundle) {
        let root =
            std::env::temp_dir().join(format!("gryphon-doctor-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut t = gryphon_sim::telemetry::Timeline::new(500_000);
        t.record(
            500_000,
            "telemetry.shb.bytes_per_idle_sub",
            bytes_per_idle * 1.2,
        );
        t.record(
            1_000_000,
            "telemetry.shb.bytes_per_idle_sub",
            bytes_per_idle,
        );
        let mut r = Report::new("t");
        r.attach_metrics(&Metrics::default());
        r.attach_telemetry(t);
        let dir = write_bundle(
            &root,
            &r,
            &BundleMeta {
                interval_us: 500_000,
                ..BundleMeta::default()
            },
        )
        .unwrap();
        let b = load_bundle(&dir).unwrap();
        (root, b)
    }

    #[test]
    fn diff_guards_bytes_per_idle_sub_series() {
        let (ra, a) = bundle_with_idle_bytes("idle-a", 240.0);
        // Within threshold and floor: quiet (the final sample counts,
        // not the transient earlier one).
        let (rb, b) = bundle_with_idle_bytes("idle-b", 250.0);
        assert_eq!(diff(&a, &b, 25.0, 1_000.0), 0);
        // 2× the idle footprint: flagged.
        let (rc, c) = bundle_with_idle_bytes("idle-c", 480.0);
        assert_eq!(diff(&a, &c, 25.0, 1_000.0), 1);
        // Improvement is not a regression.
        assert_eq!(diff(&c, &a, 25.0, 1_000.0), 0);
        for r in [ra, rb, rc] {
            let _ = std::fs::remove_dir_all(&r);
        }
    }

    #[test]
    fn replay_health_fires_on_sustained_growth() {
        // Growing backlog across 5 windows by 2400 ticks: the
        // catchup_backlog rule must fire on replay.
        let samples: Vec<(u64, f64)> = (1..=8)
            .map(|i| (i * 500_000, (i as f64 - 1.0) * 600.0))
            .collect();
        let (root, b) = bundle_with("replay", (1_000.0, 5_000.0, 5_050.0), &samples);
        let alerts = replay_health(&b.timeline);
        assert!(
            alerts
                .iter()
                .any(|a| a.rule == "catchup_backlog" && a.state == AlertState::Firing),
            "got {alerts:?}"
        );
        assert_eq!(check(&b), 1);
        // Flat backlog: quiet.
        let (root2, quiet) = bundle_with(
            "replay-quiet",
            (1_000.0, 5_000.0, 5_050.0),
            &[(500_000, 10.0), (1_000_000, 10.0)],
        );
        assert!(replay_health(&quiet.timeline).is_empty());
        assert_eq!(check(&quiet), 0);
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&root2);
    }

    #[test]
    fn run_usage_errors() {
        assert_eq!(run(&[]), 2);
        assert_eq!(run(&["inspect".into(), "/nonexistent-bundle".into()]), 2);
        assert_eq!(run(&["inspect".into(), "x".into(), "--bogus".into()]), 2);
        assert_eq!(run(&["verb".into()]), 2);
        assert_eq!(run(&["export-trace".into(), "x".into()]), 2);
    }

    /// Registry-completeness guard (ISSUE 9): every latency-shaped or
    /// commit-pipeline histogram in the metric registry must pass the
    /// inspect filter, so newly registered histograms can't silently
    /// fall out of `doctor inspect`'s slowest-stage listing.
    #[test]
    fn inspect_filter_covers_registered_histograms() {
        for name in gryphon_sim::names::all() {
            if name.ends_with("_us") || name.starts_with("storage.commit.") {
                assert!(
                    inspect_histogram(name),
                    "{name} would fall out of doctor inspect"
                );
            }
        }
        // The two commit-family members that are *not* µs-valued are
        // exactly why the filter is broader than `ends_with("_us")`.
        assert!(inspect_histogram("storage.commit.batch_records"));
        assert!(inspect_histogram("storage.commit.group_size"));
        assert!(!inspect_histogram("phb.log_bytes"));
    }

    /// A bundle observing the PR-8 commit histograms must show them in
    /// the inspect listing end-to-end (not just pass the predicate).
    #[test]
    fn inspect_lists_commit_pipeline_histograms() {
        let root =
            std::env::temp_dir().join(format!("gryphon-doctor-test-{}-commit", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut m = Metrics::default();
        for name in [
            gryphon_sim::names::STORAGE_COMMIT_BATCH_RECORDS,
            gryphon_sim::names::STORAGE_COMMIT_GROUP_SIZE,
            gryphon_sim::names::STORAGE_COMMIT_SYNC_WAIT_US,
            gryphon_sim::names::STORAGE_COMMIT_SYNC_WAIT_LEADER_US,
            gryphon_sim::names::STORAGE_COMMIT_SYNC_WAIT_FOLLOWER_US,
            gryphon_sim::names::STORAGE_COMMIT_FSYNC_US,
        ] {
            m.observe(name, 42.0);
        }
        let mut r = Report::new("t");
        r.attach_metrics(&m);
        r.attach_telemetry(gryphon_sim::telemetry::Timeline::new(500_000));
        let dir = write_bundle(&root, &r, &BundleMeta::default()).unwrap();
        let text = inspect(&load_bundle(&dir).unwrap(), false, false);
        for name in ["storage.commit.batch_records", "storage.commit.fsync_us"] {
            assert!(text.contains(name), "{name} missing from:\n{text}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    fn forensic_bundle(tag: &str) -> (PathBuf, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("gryphon-doctor-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut m = Metrics::default();
        // Same 98 + 2 shape as `bundle_with`, so the p99 rank lands on
        // the tail values rather than the body.
        for _ in 0..98 {
            m.observe("lineage.stage.deliver_us", 1_000.0);
        }
        m.observe("lineage.stage.deliver_us", 50_000.0);
        m.observe("lineage.stage.deliver_us", 50_500.0);
        let mut t = gryphon_sim::telemetry::Timeline::new(500_000);
        t.record(500_000, "lineage.stage.deliver_us.q99", 50_000.0);
        t.push_exemplar(Exemplar {
            t_us: 451_000,
            series: "lineage.stage.deliver_us".into(),
            value: 50_000.0,
            pubend: 2,
            ts: 9,
            birth_us: Some(400_000),
            log_us: Some(402_000),
            forward_us: Some(405_000),
            ingest_us: Some(430_000),
        });
        t.push_interval(BusyInterval {
            track: 1,
            kind: gryphon_sim::forensics::KIND_BUSY,
            start_us: 400_000,
            dur_us: 2_000,
        });
        let mut r = Report::new("t");
        r.attach_metrics(&m);
        r.attach_telemetry(t);
        let dir = write_bundle(
            &root,
            &r,
            &BundleMeta {
                interval_us: 500_000,
                ..BundleMeta::default()
            },
        )
        .unwrap();
        (root, dir)
    }

    #[test]
    fn exemplars_and_intervals_round_trip_through_bundles() {
        let (root, dir) = forensic_bundle("forensic");
        let b = load_bundle(&dir).unwrap();
        assert_eq!(b.exemplars.len(), 1);
        assert_eq!(b.exemplars[0].value, 50_000.0);
        assert_eq!(b.intervals.len(), 1);
        assert_eq!(b.intervals[0].kind, "busy");
        let text = inspect(&b, false, false);
        assert!(text.contains("tail exemplars"), "{text}");
        assert!(text.contains("lineage.stage.deliver_us"), "{text}");
        // Stage walk renders from the resolved anchors.
        assert!(text.contains("timestamped"), "{text}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn diff_names_the_exemplar_behind_a_regressed_histogram() {
        let (ra, a) = bundle_with("exdiff-a", (1_000.0, 5_000.0, 5_050.0), &[]);
        let (rb, dir_b) = forensic_bundle("exdiff-b");
        let b = load_bundle(&dir_b).unwrap();
        // deliver_us p99 5_000 → ~50_000: regression, and the pushed
        // exemplar for that series is named in the regression output.
        assert_eq!(diff(&a, &b, 25.0, 1_000.0), 1);
        assert!(worst_exemplar(&b, "lineage.stage.deliver_us").is_some());
        assert!(worst_exemplar(&b, "lineage.stage.log_us").is_none());
        for r in [ra, rb] {
            let _ = std::fs::remove_dir_all(&r);
        }
    }

    fn topk_bundle(tag: &str, lag_p99_us: f64) -> (PathBuf, Bundle) {
        use gryphon_sim::TopKEntry;
        let root =
            std::env::temp_dir().join(format!("gryphon-doctor-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut t = gryphon_sim::telemetry::Timeline::new(500_000);
        t.record(500_000, "sketch.sub_lag.p99_us", lag_p99_us);
        let entry = |entity: u64, count: u64| TopKEntry {
            entity,
            count,
            err: 0,
        };
        t.push_topk(TopKSnapshot {
            t_us: 500_000,
            dim: gryphon_sim::sketch::DIM_SUB_LAG,
            total: 1_400,
            entries: vec![entry(42, 800), entry(7, 300), entry(9, 200), entry(1, 100)],
        });
        t.push_topk(TopKSnapshot {
            t_us: 500_000,
            dim: gryphon_sim::sketch::DIM_SUB_BYTES,
            total: 640,
            entries: vec![entry(42, 640)],
        });
        let mut r = Report::new("t");
        r.attach_metrics(&Metrics::default());
        r.attach_telemetry(t);
        let dir = write_bundle(
            &root,
            &r,
            &BundleMeta {
                interval_us: 500_000,
                ..BundleMeta::default()
            },
        )
        .unwrap();
        let b = load_bundle(&dir).unwrap();
        (root, b)
    }

    #[test]
    fn topk_round_trips_and_inspect_renders_ranked_tables() {
        let (root, b) = topk_bundle("topk", 1_000.0);
        assert_eq!(b.topks.len(), 2);
        assert_eq!(b.topks[0].dim, gryphon_sim::sketch::DIM_SUB_LAG);
        assert_eq!(b.topks[0].entries[0].entity, 42);
        let brief = inspect(&b, false, false);
        assert!(brief.contains("top-k attribution"), "{brief}");
        assert!(brief.contains("slowest_subs_by_lag"), "{brief}");
        assert!(brief.contains("42"), "{brief}");
        // Rank 4 (entity 1, count 100) only shows under --topk.
        assert!(!brief.contains("     100 "), "{brief}");
        let full = inspect(&b, false, true);
        assert!(full.contains("     100 "), "{full}");
        // The sketch gauge series joins the timeline sparklines.
        assert!(brief.contains("sketch.sub_lag.p99_us"), "{brief}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn inspect_json_emits_manifest_stages_alerts_and_topk() {
        let (root, b) = topk_bundle("json", 1_000.0);
        let json = inspect_json(&b);
        for needle in [
            "\"manifest\": {",
            "\"experiment\": \"t\"",
            "\"interval_us\": 500000",
            "\"stages\": [",
            "\"alerts\": [",
            "\"topk\": [",
            "\"dim\": \"slowest_subs_by_lag\"",
            "{\"entity\": 42, \"count\": 800, \"err\": 0}",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Braces and brackets balance: the output is one closed object.
        let count = |c: char| json.matches(c).count();
        assert_eq!(count('{'), count('}'), "{json}");
        assert_eq!(count('['), count(']'), "{json}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn diff_names_the_entity_behind_a_regressed_sketch_gauge() {
        let (ra, a) = topk_bundle("skdiff-a", 1_000.0);
        // 50× the lag p99: regression, attributed to entity 42 from
        // B's latest slowest_subs_by_lag snapshot.
        let (rb, b) = topk_bundle("skdiff-b", 50_000.0);
        assert_eq!(diff(&a, &b, 25.0, 1_000.0), 1);
        let (_, entity, count, _) = top_entity(&b, gryphon_sim::sketch::DIM_SUB_LAG).unwrap();
        assert_eq!((entity, count), (42, 800));
        // Improvement is not a regression.
        assert_eq!(diff(&b, &a, 25.0, 1_000.0), 0);
        // A zero baseline defeats the percent guard (0 -> anything is
        // +0.0%); growth from zero past the floor must still flag.
        let (rz, z) = topk_bundle("skdiff-z", 0.0);
        assert_eq!(diff(&z, &b, 25.0, 1_000.0), 1);
        assert_eq!(diff(&z, &z, 25.0, 1_000.0), 0);
        for r in [ra, rb, rz] {
            let _ = std::fs::remove_dir_all(&r);
        }
    }

    #[test]
    fn export_trace_writes_valid_event_json() {
        let (root, dir) = forensic_bundle("export");
        let out = root.join("trace.json");
        let code = run(&[
            "export-trace".into(),
            dir.display().to_string(),
            "-o".into(),
            out.display().to_string(),
        ]);
        assert_eq!(code, 0);
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.starts_with("[\n") && json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""), "worker slice present");
        assert!(json.contains("\"cat\":\"lineage\""), "async span present");
        assert_eq!(
            json.matches("\"ph\":\"b\"").count(),
            json.matches("\"ph\":\"e\"").count()
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
