//! Experiment harness: reproduces every table and figure of the paper's
//! evaluation (§5) on the deterministic simulator.
//!
//! Each experiment is a function returning a [`Report`] — a set of
//! printable tables (and optionally raw time series) mirroring what the
//! paper plots. The `xp` binary in `gryphon-bench` runs them:
//!
//! ```text
//! cargo run -p gryphon-bench --bin xp -- fig4
//! ```
//!
//! ## Scaling note
//!
//! The paper ran on 2003-era 6-way RS/6000 servers for hundreds of
//! seconds; we run compressed virtual-time versions (documented per
//! experiment) and reproduce *shapes and ratios*, not absolute numbers.
//! The CPU-cost model in [`gryphon::CostModel`] is calibrated so one SHB
//! saturates at ≈20 K deliveries/s, matching the paper's single-SHB
//! capacity anchor; everything else is emergent.

pub mod bundle;
pub mod doctor;
pub mod report;
pub mod topology;
pub mod trace_export;
pub mod workload;

pub mod experiments {
    //! One module per paper artefact.
    pub mod ablation;
    pub mod fig4;
    pub mod fig56;
    pub mod fig78;
    pub mod jms;
    pub mod latency;
    pub mod mega_subs;
    pub mod pfs_micro;
}

pub use report::{Report, Table};
pub use topology::{System, TopologySpec};
pub use workload::Workload;

/// Every experiment id known to the harness, with a one-line summary.
pub fn catalog() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "latency",
            "§5 result 1: 5-hop end-to-end latency; PHB logging dominates; vs store-and-forward",
        ),
        (
            "fig4",
            "Figure 4: peak event rate, 1 broker / 1–4 SHBs, with and without disconnections",
        ),
        (
            "fig5",
            "Figure 5: catchup durations under periodic disconnection",
        ),
        (
            "fig6",
            "Figure 6: latestDelivered/released advance rates under disconnection",
        ),
        (
            "pfs_micro",
            "§5.1.2: PFS vs per-subscriber event logging microbenchmark (bytes + wall time)",
        ),
        (
            "jms",
            "§5.2: JMS auto-acknowledge peak rates, 25 vs 200 subscribers",
        ),
        (
            "fig7",
            "Figure 7: latestDelivered/released through SHB crash and recovery",
        ),
        (
            "fig8",
            "Figure 8: per-client rates and CPU idle through SHB crash and recovery",
        ),
        (
            "ablation_consol",
            "§5 summary 3: constream consolidation vs all-catchup SHB cost",
        ),
        (
            "ablation_pfs_mode",
            "extension: precise vs imprecise PFS write/read trade-off",
        ),
        (
            "ablation_cache",
            "paper §7 future work: cache window vs catchup rate and PHB load",
        ),
        (
            "mega_subs",
            "DESIGN.md §15: 10^6 durable subscriptions — slab bytes/idle sub, churn, reconnect storm",
        ),
    ]
}

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error string for unknown ids.
pub fn run(id: &str, quick: bool) -> Result<Report, String> {
    match id {
        "latency" => Ok(experiments::latency::run(quick)),
        "fig4" => Ok(experiments::fig4::run(quick)),
        "fig5" => Ok(experiments::fig56::run_fig5(quick)),
        "fig6" => Ok(experiments::fig56::run_fig6(quick)),
        "pfs_micro" => Ok(experiments::pfs_micro::run(quick)),
        "jms" => Ok(experiments::jms::run(quick)),
        "fig7" => Ok(experiments::fig78::run_fig7(quick)),
        "fig8" => Ok(experiments::fig78::run_fig8(quick)),
        "ablation_consol" => Ok(experiments::ablation::run_consolidation(quick)),
        "ablation_pfs_mode" => Ok(experiments::ablation::run_pfs_mode(quick)),
        "ablation_cache" => Ok(experiments::ablation::run_cache_sweep(quick)),
        "mega_subs" => Ok(experiments::mega_subs::run(quick)),
        other => Err(format!(
            "unknown experiment '{other}'; known: {}",
            catalog()
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn catalog_ids_all_run() {
        for (id, _) in super::catalog() {
            // Quick mode keeps this test affordable; the point is that
            // every catalogued id dispatches.
            let report = super::run(id, true).unwrap_or_else(|e| panic!("{id}: {e}"));
            assert!(!report.tables.is_empty(), "{id} produced no tables");
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        assert!(super::run("nope", true).is_err());
    }
}
