//! Topology builder for the paper's Figure 3 networks.
//!
//! * **1 broker** — one node hosting pubends *and* subscribers;
//! * **1 / 2 / 4 SHB** — a PHB hosting all pubends with SHBs as children
//!   (optionally through an intermediate broker to exercise caching and
//!   nack consolidation at an interior node).

use crate::workload::Workload;
use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient};
use gryphon_sim::{Handle, LinkParams, Sim};
use gryphon_storage::MemFactory;
use gryphon_types::{NodeId, PubendId, SubscriberId};
use std::sync::Mutex;

/// Locks `m`, recovering the data if a previous holder panicked — the
/// process-wide defaults below are shared across the whole test binary,
/// and one panicking test must not poison them into cascading failures.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Process-wide flight-recorder directory applied to every [`Sim`] built
/// by [`System::build`] — the `xp --flight-dir` plumbing. `None` (the
/// default) disables post-mortem dumps.
static DEFAULT_FLIGHT_DIR: Mutex<Option<std::path::PathBuf>> = Mutex::new(None);

/// Sets the flight-recorder directory future [`System::build`] calls
/// hand to their simulator.
pub fn set_default_flight_dir(dir: Option<std::path::PathBuf>) {
    *lock_recover(&DEFAULT_FLIGHT_DIR) = dir;
}

/// Process-wide telemetry sampling interval (virtual µs) applied to
/// every [`Sim`] built by [`System::build`] — the `xp --sample-interval`
/// plumbing. `None` (the default) disables the windowed sampler.
static DEFAULT_SAMPLE_INTERVAL: Mutex<Option<u64>> = Mutex::new(None);

/// Sets the telemetry sampling interval future [`System::build`] calls
/// enable on their simulator (`None` disables sampling).
pub fn set_default_sample_interval(interval_us: Option<u64>) {
    *lock_recover(&DEFAULT_SAMPLE_INTERVAL) = interval_us;
}

/// The current process-wide sampling interval (`None` = sampling off).
pub fn default_sample_interval() -> Option<u64> {
    *lock_recover(&DEFAULT_SAMPLE_INTERVAL)
}

/// Process-wide seed offset added to every [`TopologySpec::seed`] at
/// build time — the `xp --seed-offset` plumbing that lets two runs of
/// the same experiment differ only in their RNG stream.
static DEFAULT_SEED_OFFSET: Mutex<u64> = Mutex::new(0);

/// Sets the seed offset future [`System::build`] calls add to the
/// spec's seed.
pub fn set_default_seed_offset(offset: u64) {
    *lock_recover(&DEFAULT_SEED_OFFSET) = offset;
}

/// The current process-wide seed offset.
pub fn default_seed_offset() -> u64 {
    *lock_recover(&DEFAULT_SEED_OFFSET)
}

/// Process-wide degrade switch (the `xp --degrade` plumbing): when set,
/// [`System::build`] deliberately worsens the broker configuration —
/// tripled PHB commit latency and a huge, slow-flushing knowledge batch
/// budget — so latency percentiles regress measurably. Exists to give
/// `xp doctor diff` a known-bad bundle to flag in CI.
static DEFAULT_DEGRADE: Mutex<bool> = Mutex::new(false);

/// Arms or disarms the deliberate config degrade.
pub fn set_default_degrade(on: bool) {
    *lock_recover(&DEFAULT_DEGRADE) = on;
}

/// Whether the deliberate config degrade is armed.
pub fn default_degrade() -> bool {
    *lock_recover(&DEFAULT_DEGRADE)
}

/// Process-wide subscriber-population override for the `mega_subs`
/// workload — the `xp --subs` plumbing. `None` (the default) uses the
/// workload's built-in scale (10^6, or 20 000 under `--quick`).
static DEFAULT_MEGA_SUBS: Mutex<Option<u64>> = Mutex::new(None);

/// Overrides the `mega_subs` subscriber population (`None` restores the
/// built-in default).
pub fn set_default_mega_subs(subs: Option<u64>) {
    *lock_recover(&DEFAULT_MEGA_SUBS) = subs;
}

/// The current `mega_subs` population override, if any.
pub fn default_mega_subs() -> Option<u64> {
    *lock_recover(&DEFAULT_MEGA_SUBS)
}

/// Process-wide churn-percentage override for the `mega_subs` workload
/// — the `xp --churn-pct` plumbing. `None` (the default) churns 1% of
/// the population.
static DEFAULT_CHURN_PCT: Mutex<Option<f64>> = Mutex::new(None);

/// Overrides the `mega_subs` churn percentage (`None` restores the
/// built-in default).
pub fn set_default_churn_pct(pct: Option<f64>) {
    *lock_recover(&DEFAULT_CHURN_PCT) = pct;
}

/// The current `mega_subs` churn-percentage override, if any.
pub fn default_churn_pct() -> Option<f64> {
    *lock_recover(&DEFAULT_CHURN_PCT)
}

/// Process-wide slow-subscriber switch for the `mega_subs` workload —
/// the `xp --slow-sub` plumbing. When set, the workload plants one
/// deliberately slow consumer in the population so the top-K
/// attribution path (DESIGN.md §18) has a known entity to name.
static DEFAULT_SLOW_SUB: Mutex<bool> = Mutex::new(false);

/// Arms or disarms the planted slow consumer in `mega_subs`.
pub fn set_default_slow_sub(on: bool) {
    *lock_recover(&DEFAULT_SLOW_SUB) = on;
}

/// Whether the planted slow consumer is armed.
pub fn default_slow_sub() -> bool {
    *lock_recover(&DEFAULT_SLOW_SUB)
}

/// Process-wide health-engine switch: when set (and sampling is
/// enabled), every [`Sim`] the harness builds arms the default health
/// rule set (`gryphon_sim::default_rules`).
static DEFAULT_HEALTH: Mutex<bool> = Mutex::new(false);

/// Arms or disarms the online health engine on future builds.
pub fn set_default_health(on: bool) {
    *lock_recover(&DEFAULT_HEALTH) = on;
}

/// Whether the online health engine is armed for future builds.
pub fn default_health() -> bool {
    *lock_recover(&DEFAULT_HEALTH)
}

/// Applies the process-wide observability defaults (flight-recorder
/// directory, telemetry sampling interval, health engine) to a freshly
/// built [`Sim`]. [`System::build`] calls this; experiments that
/// assemble a raw `Sim` themselves (latency, jms) call it too so `xp
/// --flight-dir` / `--sample-interval` / `--bundle-out` cover every
/// simulator a run builds.
pub fn apply_sim_defaults(sim: &mut Sim) {
    sim.set_flight_dir(lock_recover(&DEFAULT_FLIGHT_DIR).clone());
    if let Some(interval_us) = default_sample_interval() {
        sim.enable_telemetry(interval_us);
        if default_health() {
            sim.enable_health(gryphon_sim::default_rules());
        }
        // Tail forensics ride on the sampler: exemplar reservoirs and
        // the contention-profiler interval ring drain into the timeline
        // each window, so any sampled run can export a Perfetto trace.
        sim.enable_forensics(gryphon_sim::ForensicsConfig::default());
        // The population sketch rides the same cadence: per-entity
        // top-K attribution drains into the timeline each window
        // (DESIGN.md §18), so bundles carry topk.ndjson whenever a run
        // samples.
        sim.enable_sketch(gryphon_sim::sketch::SketchConfig::default());
    }
}

/// Structural parameters of a run.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// Simulation seed (identical seeds ⇒ identical runs).
    pub seed: u64,
    /// 1-broker topology (pubends + subscribers on one node).
    pub combined: bool,
    /// Number of SHBs (ignored when `combined`).
    pub n_shbs: usize,
    /// Insert one intermediate broker between the PHB and the SHBs.
    pub intermediate: bool,
    /// Number of pubends (all hosted at the PHB).
    pub pubends: u32,
    /// Broker configuration (shared by every broker).
    pub broker_config: BrokerConfig,
    /// One-way latency of broker↔broker links.
    pub link_latency_us: u64,
    /// Bandwidth of broker↔broker links (bounds recovery burst rates).
    pub broker_bw: Option<u64>,
    /// One-way latency of client links.
    pub client_latency_us: u64,
    /// Bandwidth of SHB→client links (bounds catchup delivery rates; the
    /// paper's flow-control effect).
    pub client_bw: Option<u64>,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            seed: 42,
            combined: false,
            n_shbs: 1,
            intermediate: false,
            pubends: 4,
            broker_config: BrokerConfig::default(),
            link_latency_us: 1_000,
            broker_bw: None,
            client_latency_us: 500,
            client_bw: None,
        }
    }
}

/// A built system ready to run.
pub struct System {
    /// The simulator.
    pub sim: Sim,
    /// The broker hosting every pubend (equals `shbs[0]` when combined).
    pub phb: Handle<Broker>,
    /// Optional interior broker.
    pub intermediates: Vec<Handle<Broker>>,
    /// Subscriber hosting brokers.
    pub shbs: Vec<Handle<Broker>>,
    /// One publisher per pubend.
    pub publishers: Vec<Handle<PublisherClient>>,
    /// All subscribers with their SHB index.
    pub subscribers: Vec<(Handle<SubscriberClient>, usize)>,
    /// The workload that was instantiated.
    pub workload: Workload,
}

impl System {
    /// Builds the system. The process-wide defaults apply here: the
    /// seed offset shifts the RNG stream, and the degrade switch swaps
    /// in a deliberately worsened broker configuration (see
    /// [`set_default_degrade`]).
    pub fn build(spec: &TopologySpec, workload: &Workload) -> System {
        let mut sim = Sim::new(spec.seed.wrapping_add(default_seed_offset()));
        apply_sim_defaults(&mut sim);
        let broker_config = if default_degrade() {
            let mut c = spec.broker_config.clone();
            c.phb_commit_latency_us *= 3;
            c.knowledge_flush_interval_us = c.knowledge_flush_interval_us.max(1) * 200;
            c.knowledge_batch_max_parts = c.knowledge_batch_max_parts.max(1) * 1_000;
            c
        } else {
            spec.broker_config.clone()
        };
        let broker_link = LinkParams {
            latency_us: spec.link_latency_us,
            jitter_us: 0,
            loss: 0.0,
            bytes_per_sec: spec.broker_bw,
        };
        let client_link = LinkParams {
            latency_us: spec.client_latency_us,
            jitter_us: 0,
            loss: 0.0,
            bytes_per_sec: spec.client_bw,
        };
        let pubend_ids: Vec<PubendId> = (0..spec.pubends).map(PubendId).collect();
        let mut next_broker = 0u32;
        let mut mk_broker = |sim: &mut Sim, name: &str, pubends: bool, subs: bool| {
            let mut b = Broker::new(
                next_broker,
                Box::new(MemFactory::new()),
                broker_config.clone(),
            );
            next_broker += 1;
            if pubends {
                b = b.hosting_pubends(pubend_ids.clone());
            }
            if subs {
                b = b.hosting_subscribers();
            }
            sim.add_typed_node(name, b)
        };

        let (phb, shbs, intermediates) = if spec.combined {
            let b = mk_broker(&mut sim, "broker", true, true);
            (b, vec![b], Vec::new())
        } else {
            let phb = mk_broker(&mut sim, "phb", true, false);
            let mut intermediates = Vec::new();
            let parent_of_shbs = if spec.intermediate {
                let mid = mk_broker(&mut sim, "mid", false, false);
                sim.node(phb).add_child(mid.id());
                sim.node(mid).set_parent(phb.id());
                sim.connect_with(phb.id(), mid.id(), broker_link);
                intermediates.push(mid);
                mid
            } else {
                phb
            };
            let mut shbs = Vec::new();
            for i in 0..spec.n_shbs {
                let shb = mk_broker(&mut sim, &format!("shb{i}"), false, true);
                sim.node(parent_of_shbs).add_child(shb.id());
                sim.node(shb).set_parent(parent_of_shbs.id());
                sim.connect_with(parent_of_shbs.id(), shb.id(), broker_link);
                shbs.push(shb);
            }
            (phb, shbs, intermediates)
        };

        // Publishers: one per pubend at input_rate / pubends.
        let per_pubend_rate = workload.input_rate / spec.pubends as f64;
        let classes = workload.classes;
        let payload = workload.payload;
        let mut publishers = Vec::new();
        for &p in &pubend_ids {
            let publisher = sim.add_typed_node(
                &format!("pub{}", p.0),
                PublisherClient::new(phb.id(), p, per_pubend_rate)
                    .with_attrs(move |seq, _| {
                        let mut a = gryphon_types::Attributes::new();
                        a.insert("class".into(), ((seq as i64) % classes).into());
                        a
                    })
                    .with_payload_len(payload),
            );
            sim.connect_with(publisher.id(), phb.id(), client_link);
            publishers.push(publisher);
        }

        // Subscribers, staggered.
        let mut subscribers = Vec::new();
        let mut sub_no = 0u64;
        for (shb_idx, &shb) in shbs.iter().enumerate() {
            for i in 0..workload.subs_per_shb {
                let mut cfg = workload.sub_cfg.clone();
                if workload.stagger {
                    // Connects trickle over the first second; first
                    // disconnects are phased uniformly across one period
                    // so the system always sees some subscriber catching
                    // up (as in the paper's runs).
                    cfg.connect_at_us += ((sub_no * 97) % 1_000) * 1_000;
                    if let Some(period) = cfg.disconnect_period_us {
                        cfg.disconnect_phase_us = Some(
                            ((sub_no * period) / workload.subs_per_shb.max(1) as u64) % period + 1,
                        );
                    }
                }
                sub_no += 1;
                let sub = sim.add_typed_node(
                    &format!("sub{sub_no}"),
                    SubscriberClient::new(
                        SubscriberId(sub_no),
                        shb.id(),
                        workload.filter_for(i).as_str(),
                        cfg,
                    ),
                );
                sim.connect_with(sub.id(), shb.id(), client_link);
                subscribers.push((sub, shb_idx));
            }
        }

        System {
            sim,
            phb,
            intermediates,
            shbs,
            publishers,
            subscribers,
            workload: workload.clone(),
        }
    }

    /// Runs to `until_us`, sampling every broker's cumulative CPU work
    /// into `busy.<name>` series every `sample_us` (for CPU-idle plots).
    pub fn run_sampled(&mut self, until_us: u64, sample_us: u64) {
        let mut t = self.sim.now_us();
        let brokers: Vec<(NodeId, String)> = self
            .broker_nodes()
            .into_iter()
            .map(|id| (id, self.sim.node_name(id).to_owned()))
            .collect();
        while t < until_us {
            t = (t + sample_us).min(until_us);
            self.sim.run_until(t);
            for (id, name) in &brokers {
                let busy = self.sim.busy_us(*id) as f64;
                self.sim
                    .metrics_mut()
                    .record(t, &format!("busy.{name}"), busy);
            }
        }
    }

    /// All broker node ids (PHB, intermediates, SHBs), deduplicated.
    pub fn broker_nodes(&self) -> Vec<NodeId> {
        let mut out = vec![self.phb.id()];
        for m in &self.intermediates {
            if !out.contains(&m.id()) {
                out.push(m.id());
            }
        }
        for s in &self.shbs {
            if !out.contains(&s.id()) {
                out.push(s.id());
            }
        }
        out
    }

    /// Total events received across all subscribers.
    pub fn total_events(&self) -> u64 {
        self.subscribers
            .iter()
            .map(|(h, _)| self.sim.node_ref(*h).events_received())
            .sum()
    }

    /// Total gaps received across all subscribers.
    pub fn total_gaps(&self) -> u64 {
        self.subscribers
            .iter()
            .map(|(h, _)| self.sim.node_ref(*h).gaps_received())
            .sum()
    }

    /// Total order violations (must be zero in every experiment).
    pub fn total_order_violations(&self) -> u64 {
        self.subscribers
            .iter()
            .map(|(h, _)| self.sim.node_ref(*h).order_violations())
            .sum()
    }

    /// Attaches this run's observability artefacts to `report`: the
    /// metrics snapshot (counters, histogram percentiles, series
    /// summaries), the rendered trace ring, and — should any protocol
    /// watchdog have fired — a loud note. Call once after the run.
    pub fn attach_observability(&self, report: &mut crate::Report) {
        report.attach_metrics(self.sim.metrics());
        if let Some(t) = self.sim.telemetry() {
            report.attach_telemetry(t.clone());
        }
        let lines: Vec<String> = self
            .sim
            .trace_records()
            .map(|r| r.render(self.sim.node_name(r.node)))
            .collect();
        report.attach_trace(lines);
        let violations = self.sim.watchdog_violations();
        if violations > 0 {
            report.note(format!(
                "WATCHDOG: {violations} protocol-invariant violations recorded — see watchdog.* counters"
            ));
        }
        let ledger = self.sim.ledger_violations();
        if ledger > 0 {
            report.note(format!(
                "LEDGER: {ledger} exactly-once delivery violations recorded — see lineage.ledger.* counters"
            ));
        }
        let dumps = self.sim.flight_dumps();
        if dumps > 0 {
            report.note(format!(
                "FLIGHT RECORDER: {dumps} post-mortem file(s) written — see the --flight-dir directory"
            ));
        }
    }

    /// Busy fraction of a node over `[from_us, to_us]`, from the sampled
    /// `busy.<name>` series.
    pub fn busy_fraction(&self, node: NodeId, from_us: u64, to_us: u64) -> f64 {
        let name = format!("busy.{}", self.sim.node_name(node));
        let series = self.sim.metrics().series(&name);
        let at = |t: u64| -> f64 {
            series
                .iter()
                .take_while(|&&(st, _)| st <= t)
                .last()
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        let span = to_us.saturating_sub(from_us) as f64;
        if span <= 0.0 {
            return 0.0;
        }
        // May exceed 1.0: the simulator accounts work without
        // backpressure, so an overloaded broker reports >100% "busy" —
        // exactly what capacity estimation needs.
        ((at(to_us) - at(from_us)) / span).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_paper_topologies() {
        for (combined, n_shbs) in [(true, 1), (false, 1), (false, 2), (false, 4)] {
            let spec = TopologySpec {
                combined,
                n_shbs,
                ..TopologySpec::default()
            };
            let workload = Workload {
                subs_per_shb: 4,
                ..Workload::default()
            };
            let mut sys = System::build(&spec, &workload);
            sys.sim.run_until(3_000_000);
            assert_eq!(sys.total_order_violations(), 0);
            assert!(
                sys.total_events() > 0,
                "no deliveries in topology combined={combined} shbs={n_shbs}"
            );
            assert_eq!(sys.shbs.len(), n_shbs);
        }
    }

    #[test]
    fn intermediate_topology_works() {
        let spec = TopologySpec {
            intermediate: true,
            n_shbs: 2,
            ..TopologySpec::default()
        };
        let workload = Workload {
            subs_per_shb: 2,
            ..Workload::default()
        };
        let mut sys = System::build(&spec, &workload);
        sys.sim.run_until(3_000_000);
        assert_eq!(sys.intermediates.len(), 1);
        assert!(sys.total_events() > 0);
        assert_eq!(sys.total_order_violations(), 0);
    }

    #[test]
    fn busy_sampling_produces_series() {
        let spec = TopologySpec::default();
        let workload = Workload {
            subs_per_shb: 2,
            ..Workload::default()
        };
        let mut sys = System::build(&spec, &workload);
        sys.run_sampled(2_000_000, 500_000);
        let busy = sys.busy_fraction(sys.shbs[0].id(), 0, 2_000_000);
        assert!(busy > 0.0, "SHB should have done some work");
        assert!(busy <= 1.0);
    }
}
