//! Offline stand-in for `criterion`.
//!
//! Exposes the `criterion_group!`/`criterion_main!` surface the workspace
//! benches use and actually runs every benchmark, printing a
//! per-iteration wall-clock estimate plus throughput when configured. It
//! performs a warmup pass and sizes the measured batch to a small time
//! budget; it does **not** do outlier rejection, bootstrapping or
//! HTML reports. Good enough to compare hot paths before/after a change
//! on the same machine, which is all the acceptance bar asks of it.

use std::time::{Duration, Instant};

/// Throughput annotation; scales the printed per-iteration rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop driver handed to benchmark closures.
pub struct Bencher {
    /// Total measured time of the last run.
    elapsed: Duration,
    /// Iterations measured in the last run.
    iters: u64,
    /// Per-bench time budget.
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill a small budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup + calibration: one untimed call, then scale the batch.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = t1.elapsed();
        self.iters = iters;
    }

    /// Times `routine(iters)`, which must return the measured duration
    /// of exactly `iters` iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        let probe = routine(1);
        let iters = if probe >= self.budget {
            1
        } else {
            (self.budget.as_nanos() / probe.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        self.elapsed = routine(iters);
        self.iters = iters;
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    budget: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-bench time budget the stub sizes its measured batch
    /// to (the default is 50 ms; slow wall-clock benches raise it so
    /// they still get more than one measured iteration).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = Some(d);
        self
    }

    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, self.budget, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&full, self.throughput, self.budget, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; printing happens per bench).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            budget: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, None, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        tp: Option<Throughput>,
        budget: Option<Duration>,
        mut f: F,
    ) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget: budget.unwrap_or(Duration::from_millis(50)),
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<48} (no measurement)");
            return;
        }
        let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
        let rate = match tp {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / per_iter_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / per_iter_ns)
            }
            None => String::new(),
        };
        println!(
            "{name:<48} {:>12.1} ns/iter ({} iters){rate}",
            per_iter_ns, b.iters
        );
        emit_json(name, per_iter_ns, b.iters);
    }
}

/// Appends one NDJSON record per bench to the file named by the
/// `CRITERION_JSON` env var (no-op when unset). `scripts/bench.sh`
/// gathers these lines into the checked-in `BENCH_*.json` baselines.
fn emit_json(name: &str, per_iter_ns: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let line =
        format!("{{\"name\":\"{escaped}\",\"ns_per_iter\":{per_iter_ns:.1},\"iters\":{iters}}}\n");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Declares a group function runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn json_lines_are_appended_when_env_set() {
        let path =
            std::env::temp_dir().join(format!("criterion_json_{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CRITERION_JSON", &path);
        let mut c = Criterion::default();
        c.bench_function("json_probe", |b| b.iter(|| std::hint::black_box(1 + 1)));
        std::env::remove_var("CRITERION_JSON");
        let body = std::fs::read_to_string(&path).expect("json file written");
        let line = body
            .lines()
            .find(|l| l.contains("\"json_probe\""))
            .expect("probe line present");
        assert!(line.starts_with("{\"name\":\"json_probe\",\"ns_per_iter\":"));
        assert!(line.ends_with('}'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                std::hint::black_box(iters);
                Duration::from_millis(60)
            })
        });
    }
}
