//! Proves reads from sealed, cached segments allocate nothing (ISSUE 8).
//!
//! Once a segment seals, [`LogVolume`] may pin it as one immutable
//! [`bytes::Bytes`] buffer; every `read` of a record inside it is then a
//! reference-counted window (`Bytes::slice`) — pointer math plus an
//! atomic increment, no copy, no heap. This test warms the cache and
//! asserts a burst of reads leaves the process-wide allocation counter
//! untouched.
//!
//! Single `#[test]` on purpose: the counter is process-wide and the
//! default harness is multi-threaded, so sibling tests would be noise
//! (same pattern as `zero_alloc_deliver.rs` in crates/core).

use gryphon_storage::{LogIndex, LogVolume, MemFactory, StreamId, VolumeConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter update has no effect
// on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn sealed_segment_reads_allocate_nothing() {
    const RECORDS: u64 = 48;
    const SEALED_PREFIX: u64 = 32; // comfortably below the active segment
    let s = StreamId(0);
    let mut vol = LogVolume::create(
        Box::new(MemFactory::new()),
        "v",
        VolumeConfig {
            // ~61-byte frames: a handful of records per segment, so the
            // first SEALED_PREFIX records span many sealed segments.
            segment_bytes: 256,
            cached_segments: 32,
            ..VolumeConfig::default()
        },
    )
    .unwrap();
    for i in 0..RECORDS {
        vol.append(s, &[i as u8; 40]).unwrap();
    }
    vol.sync().unwrap();

    // Warm-up: the first read of each sealed segment materializes its
    // cache buffer (one allocation per segment, amortized over its life).
    let mut warm = 0u64;
    for i in 0..SEALED_PREFIX {
        let b = vol.read(s, LogIndex(i)).unwrap().expect("record");
        warm += b.len() as u64;
    }
    assert!(vol.cached_segment_count() > 0, "cache must have engaged");

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut read_bytes = 0u64;
    for _round in 0..50 {
        for i in 0..SEALED_PREFIX {
            let b = vol.read(s, LogIndex(i)).unwrap().expect("record");
            read_bytes += b.len() as u64;
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(read_bytes, warm * 50, "workload must match");
    assert_eq!(
        after - before,
        0,
        "cached sealed-segment reads allocated on the warm path"
    );
}
