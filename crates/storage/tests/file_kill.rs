//! Kill-style recovery tests against the real file backend.
//!
//! The in-crate property tests exercise torn tails on [`MemFactory`];
//! these tests repeat the story on actual files: a process that dies
//! mid-append leaves a partially written frame on disk (simulated here by
//! truncating / bit-flipping the segment file out-of-band with `std::fs`),
//! and `open()` must come back with exactly the synced prefix and accept
//! new appends.

use gryphon_storage::{
    EventLog, FileFactory, LogIndex, LogVolume, StreamId, VolumeConfig, VolumeStats,
};
use gryphon_types::{Event, PubendId, Timestamp};
use std::path::PathBuf;
use std::sync::Arc;

/// A scratch dir that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "gryphon-kill-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        Scratch(dir)
    }

    fn factory(&self) -> FileFactory {
        FileFactory::new(&self.0).unwrap()
    }

    fn file_len(&self, name: &str) -> u64 {
        std::fs::metadata(self.0.join(name)).unwrap().len()
    }

    fn truncate_file(&self, name: &str, len: u64) {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.0.join(name))
            .unwrap();
        f.set_len(len).unwrap();
    }

    fn flip_bit(&self, name: &str, offset: u64) {
        use std::io::{Read, Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(self.0.join(name))
            .unwrap();
        let mut b = [0u8; 1];
        f.seek(SeekFrom::Start(offset)).unwrap();
        f.read_exact(&mut b).unwrap();
        b[0] ^= 0x10;
        f.seek(SeekFrom::Start(offset)).unwrap();
        f.write_all(&b).unwrap();
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

const S: StreamId = StreamId(0);

fn cfg() -> VolumeConfig {
    VolumeConfig {
        segment_bytes: 4096,
        ..VolumeConfig::default()
    }
}

/// Kill mid-append: the tail frame is half on disk. Recovery truncates
/// back to the synced prefix and the volume keeps working.
#[test]
fn killed_mid_append_recovers_synced_prefix() {
    let scratch = Scratch::new("midappend");
    {
        let mut vol = LogVolume::create(Box::new(scratch.factory()), "vol", cfg()).unwrap();
        for i in 0..8u8 {
            vol.append(S, &[i; 32]).unwrap();
        }
        vol.sync().unwrap();
        // Unsynced appends the "kill" will tear.
        vol.append(S, &[8; 32]).unwrap();
        vol.append(S, &[9; 32]).unwrap();
    }
    // The synced prefix is 8 equal-sized frames; chop the file mid-way
    // through the 9th frame (a torn final write).
    let seg = "vol-00000000.seg";
    let full = scratch.file_len(seg);
    let frame = full / 10;
    scratch.truncate_file(seg, frame * 8 + frame / 2);

    let mut vol = LogVolume::open(Box::new(scratch.factory()), "vol", cfg()).unwrap();
    for i in 0..8u8 {
        assert_eq!(
            vol.read(S, LogIndex(i as u64)).unwrap().as_deref(),
            Some(&[i; 32][..]),
            "synced record {i}"
        );
    }
    assert_eq!(vol.read(S, LogIndex(8)).unwrap(), None, "torn record");
    assert_eq!(vol.next_index(S), LogIndex(8));
    let idx = vol.append(S, b"after recovery").unwrap();
    vol.sync().unwrap();
    assert_eq!(idx, LogIndex(8));
    assert_eq!(
        vol.read(S, idx).unwrap().as_deref(),
        Some(&b"after recovery"[..])
    );
}

/// A bit rots inside the unsealed tail: the CRC catches it and recovery
/// keeps exactly the frames before the rotten one.
#[test]
fn bit_flip_in_tail_truncates_from_bad_frame() {
    let scratch = Scratch::new("bitflip");
    {
        let mut vol = LogVolume::create(Box::new(scratch.factory()), "vol", cfg()).unwrap();
        for i in 0..6u8 {
            vol.append(S, &[i; 48]).unwrap();
        }
        vol.sync().unwrap();
    }
    let seg = "vol-00000000.seg";
    let full = scratch.file_len(seg);
    let frame = full / 6;
    // Flip a payload bit inside frame 4.
    scratch.flip_bit(seg, frame * 4 + frame - 3);

    let mut vol = LogVolume::open(Box::new(scratch.factory()), "vol", cfg()).unwrap();
    for i in 0..4u8 {
        assert!(vol.read(S, LogIndex(i as u64)).unwrap().is_some());
    }
    assert_eq!(vol.read(S, LogIndex(4)).unwrap(), None);
    assert_eq!(vol.read(S, LogIndex(5)).unwrap(), None);
    assert_eq!(vol.next_index(S), LogIndex(4));
    vol.append(S, b"fresh").unwrap();
    vol.sync().unwrap();
}

/// Killed right after a segment sealed but before anything landed in the
/// next one: reopen continues in a fresh segment after the seal.
#[test]
fn killed_after_seal_reopens_next_segment() {
    let scratch = Scratch::new("seal");
    let small = VolumeConfig {
        segment_bytes: 256,
        ..VolumeConfig::default()
    };
    let n = {
        let mut vol = LogVolume::create(Box::new(scratch.factory()), "vol", small).unwrap();
        // Enough records to roll (and therefore seal) at least two
        // segments; every roll syncs the sealed segment.
        for i in 0..24u8 {
            vol.append(S, &[i; 40]).unwrap();
        }
        vol.sync().unwrap();
        let stats: VolumeStats = vol.stats();
        assert!(stats.segments_created >= 3, "expected rolls, got {stats:?}");
        vol.next_index(S)
    };
    let small2 = VolumeConfig {
        segment_bytes: 256,
        ..VolumeConfig::default()
    };
    let mut vol = LogVolume::open(Box::new(scratch.factory()), "vol", small2).unwrap();
    assert_eq!(vol.next_index(S), n);
    for i in 0..24u8 {
        assert_eq!(
            vol.read(S, LogIndex(i as u64)).unwrap().as_deref(),
            Some(&[i; 40][..])
        );
    }
    let idx = vol.append(S, b"resumed").unwrap();
    vol.sync().unwrap();
    assert_eq!(idx, n);
}

/// The event log on real files: a torn tail after the last sync must
/// never resurrect as answerable data — lost ticks read as absent.
#[test]
fn event_log_torn_tail_reads_absent_after_recovery() {
    let scratch = Scratch::new("eventlog");
    let p = PubendId(1);
    let ev = |ts: u64| {
        Arc::new(
            Event::builder(p)
                .payload(vec![ts as u8; 24])
                .build(Timestamp(ts)),
        )
    };
    {
        let mut log = EventLog::open(Box::new(scratch.factory()), "el", cfg()).unwrap();
        for ts in 1..=6 {
            log.append(&ev(ts)).unwrap();
        }
        log.sync().unwrap();
        log.append(&ev(7)).unwrap(); // the kill tears this one
    }
    let seg = "el-00000000.seg";
    let full = scratch.file_len(seg);
    scratch.truncate_file(seg, full - 11);

    let mut log = EventLog::open(Box::new(scratch.factory()), "el", cfg()).unwrap();
    for ts in 1..=6 {
        assert!(
            log.read_at(p, Timestamp(ts)).unwrap().is_some(),
            "synced ts {ts}"
        );
    }
    assert!(
        log.read_at(p, Timestamp(7)).unwrap().is_none(),
        "torn tick must be absent (the broker answers L, never S)"
    );
    log.append(&ev(7)).unwrap();
    log.sync().unwrap();
    assert!(log.read_at(p, Timestamp(7)).unwrap().is_some());
}
