//! CI gate for the group-commit win (ISSUE 8 acceptance): with 8
//! concurrent committers on a device with a fixed modeled flush latency,
//! the pipeline must beat serialized per-caller sync by ≥ 3× in
//! committed-batches/sec.
//!
//! The modeled latency (800 µs per flush, slept outside the media's
//! namespace lock) dominates every other cost, so the ratio is stable
//! even on loaded CI machines: serial pays `commits × latency`, grouped
//! pays `fsyncs × latency` with `fsyncs ≪ commits`. The fsync count is
//! asserted too, as a scheduler-independent backstop.

use gryphon_storage::{CommitPipeline, LogVolume, MemFactory, StreamId, VolumeConfig};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const THREADS: usize = 8;
const COMMITS_PER_THREAD: usize = 16;
const LATENCY_US: u64 = 800;

fn volume(factory: MemFactory) -> LogVolume {
    LogVolume::create(Box::new(factory), "v", VolumeConfig::default()).unwrap()
}

fn run_threads(f: impl Fn(usize) + Send + Sync + 'static) {
    let f = Arc::new(f);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || f(t))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn eight_committers_beat_serial_sync_by_3x() {
    let total = (THREADS * COMMITS_PER_THREAD) as u64;

    // Baseline: every committer locks the volume and pays its own flush.
    let serial = Arc::new(Mutex::new(volume(MemFactory::with_sync_latency_us(
        LATENCY_US,
    ))));
    let t0 = Instant::now();
    {
        let serial = Arc::clone(&serial);
        run_threads(move |t| {
            for i in 0..COMMITS_PER_THREAD {
                let mut vol = serial.lock().unwrap();
                vol.append(StreamId(t as u32), &[i as u8; 64]).unwrap();
                vol.sync().unwrap();
            }
        });
    }
    let serial_elapsed = t0.elapsed();

    // Pipeline: same workload, same modeled device, group commit.
    let pipe = CommitPipeline::new(volume(MemFactory::with_sync_latency_us(LATENCY_US)));
    let t1 = Instant::now();
    {
        let pipe = pipe.clone();
        run_threads(move |t| {
            for i in 0..COMMITS_PER_THREAD {
                pipe.commit_with(|vol| vol.append(StreamId(t as u32), &[i as u8; 64]))
                    .unwrap();
            }
        });
    }
    let grouped_elapsed = t1.elapsed();

    let stats = pipe.stats();
    assert_eq!(stats.commits, total);
    assert!(
        stats.fsyncs * 3 <= total,
        "grouping must cut flushes ≥ 3×: {} fsyncs for {} commits",
        stats.fsyncs,
        total
    );
    let speedup = serial_elapsed.as_secs_f64() / grouped_elapsed.as_secs_f64();
    assert!(
        speedup >= 3.0,
        "expected ≥ 3× committed-batches/sec: serial {:?}, grouped {:?} ({speedup:.2}×, \
         {} fsyncs, max group {})",
        serial_elapsed,
        grouped_elapsed,
        stats.fsyncs,
        stats.max_group
    );
}
