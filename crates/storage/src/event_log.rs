//! The pubend's persistent event log — the **only** place an event is
//! persistently logged in the whole system (paper contribution #1).
//!
//! One [`EventLog`] serves all pubends of a PHB by mapping each pubend to
//! a [`LogVolume`] stream and keeping a timestamp → index map so nacks can
//! be answered by timestamp range. The release protocol chops the prefix
//! (`t ≤ Tr(p)` or early-released) which reclaims whole segments.

use crate::log_volume::{LogIndex, LogVolume, StreamId, VolumeConfig};
use crate::{codec, StorageError};
#[cfg(test)]
use gryphon_types::Event;
use gryphon_types::{EventRef, PubendId, Timestamp};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Reserved stream holding chop-boundary markers so the lost prefix is
/// recoverable after a crash (a chopped tick must answer `L`, never `S`).
const CHOP_META_STREAM: StreamId = StreamId(u32::MAX);

/// Persistent, timestamp-indexed event streams for a PHB's pubends.
///
/// # Examples
///
/// ```
/// use gryphon_storage::{EventLog, MemFactory};
/// use gryphon_types::{Event, PubendId, Timestamp};
///
/// let mut log = EventLog::open(Box::new(MemFactory::new()), "phb0", Default::default())?;
/// let e = Event::builder(PubendId(0)).attr("class", 1i64).build_ref(Timestamp(10));
/// log.append(&e)?;
/// log.sync()?;
/// let got = log.read_range(PubendId(0), Timestamp(1), Timestamp(100))?;
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].ts, Timestamp(10));
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
pub struct EventLog {
    volume: LogVolume,
    /// pubend → (timestamp → record index)
    by_ts: HashMap<PubendId, BTreeMap<Timestamp, LogIndex>>,
    /// pubend → everything strictly below this timestamp is chopped.
    chopped_below: HashMap<PubendId, Timestamp>,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("pubends", &self.by_ts.len())
            .field("volume", &self.volume)
            .finish()
    }
}

fn stream_for(pubend: PubendId) -> StreamId {
    debug_assert_ne!(pubend.0, u32::MAX, "pubend id reserved for chop markers");
    StreamId(pubend.0)
}

impl EventLog {
    /// Opens (recovering) or creates the event log named `name`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or corrupt non-tail records.
    pub fn open(
        factory: Box<dyn crate::MediaFactory>,
        name: &str,
        config: VolumeConfig,
    ) -> Result<Self, StorageError> {
        let volume = LogVolume::open(factory, name, config)?;
        let mut log = EventLog {
            volume,
            by_ts: HashMap::new(),
            chopped_below: HashMap::new(),
        };
        log.rebuild_index()?;
        Ok(log)
    }

    fn rebuild_index(&mut self) -> Result<(), StorageError> {
        // Chop markers first: they bound the lost prefix per pubend.
        for (_, data) in self.volume.read_all(CHOP_META_STREAM)? {
            if data.len() == 12 {
                let p = PubendId(u32::from_le_bytes(data[..4].try_into().expect("len 4")));
                let t = Timestamp(u64::from_le_bytes(data[4..12].try_into().expect("len 8")));
                let e = self.chopped_below.entry(p).or_insert(Timestamp::ZERO);
                *e = (*e).max(t);
            }
        }
        // Streams present in the volume are discoverable by probing the
        // pubend ids that have live records; LogVolume tracks streams
        // internally, so scan all u32 streams it knows about via read_all
        // on the ids we find. We reconstruct lazily: the volume exposes
        // next_index per stream, so probe pubends 0..=max seen in records.
        // Simpler and robust: iterate all streams by scanning every live
        // record of every stream id the volume has state for.
        for stream in self.volume.stream_ids() {
            if stream == CHOP_META_STREAM {
                continue;
            }
            let pubend = PubendId(stream.0);
            let records = self.volume.read_all(stream)?;
            let map = self.by_ts.entry(pubend).or_default();
            for (idx, data) in records {
                let event = codec::decode_event(&data)?;
                map.insert(event.ts, idx);
            }
        }
        Ok(())
    }

    /// Appends `event` to its pubend's stream.
    ///
    /// Durability requires a subsequent [`EventLog::sync`] (the PHB group
    /// commits: one sync covers a batch of appends — this is the 44 ms of
    /// the paper's latency budget).
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    pub fn append(&mut self, event: &EventRef) -> Result<LogIndex, StorageError> {
        let data = codec::encode_event(event);
        let idx = self.volume.append(stream_for(event.pubend), &data)?;
        self.by_ts
            .entry(event.pubend)
            .or_default()
            .insert(event.ts, idx);
        Ok(idx)
    }

    /// Group-commit point: flushes all appended events.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.volume.sync()
    }

    /// Reads events of `pubend` with `from ≤ ts ≤ to`, ascending.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails or a record fails
    /// to decode.
    pub fn read_range(
        &mut self,
        pubend: PubendId,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<EventRef>, StorageError> {
        let Some(map) = self.by_ts.get(&pubend) else {
            return Ok(Vec::new());
        };
        let indexes: Vec<LogIndex> = map.range(from..=to).map(|(_, &i)| i).collect();
        let stream = stream_for(pubend);
        let mut out = Vec::with_capacity(indexes.len());
        for idx in indexes {
            if let Some(data) = self.volume.read(stream, idx)? {
                out.push(Arc::new(codec::decode_event(&data)?));
            }
        }
        Ok(out)
    }

    /// Reads the single event at `ts`, if present and not chopped.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    pub fn read_at(
        &mut self,
        pubend: PubendId,
        ts: Timestamp,
    ) -> Result<Option<EventRef>, StorageError> {
        let Some(&idx) = self.by_ts.get(&pubend).and_then(|m| m.get(&ts)) else {
            return Ok(None);
        };
        match self.volume.read(stream_for(pubend), idx)? {
            Some(data) => Ok(Some(Arc::new(codec::decode_event(&data)?))),
            None => Ok(None),
        }
    }

    /// Discards all events of `pubend` with `ts < below` (release/early
    /// release). Reclaims fully-dead segments.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    pub fn chop_below(&mut self, pubend: PubendId, below: Timestamp) -> Result<(), StorageError> {
        let Some(map) = self.by_ts.get_mut(&pubend) else {
            return Ok(());
        };
        let cur = self.chopped_below.entry(pubend).or_insert(Timestamp::ZERO);
        if below <= *cur {
            return Ok(());
        }
        *cur = below;
        // The first surviving record's index bounds the volume chop.
        let chop_to = map
            .range(below..)
            .next()
            .map(|(_, &i)| i)
            .unwrap_or_else(|| self.volume.next_index(stream_for(pubend)));
        let dead: Vec<Timestamp> = map.range(..below).map(|(&t, _)| t).collect();
        for t in dead {
            map.remove(&t);
        }
        // Persist the boundary *before* the volume chop: if the chop GCs
        // a whole segment it syncs first, and the marker must ride that
        // sync — otherwise a crash leaves the events deleted but the
        // boundary forgotten, and recovery would report the range as `S`
        // instead of `L`.
        let mut marker = Vec::with_capacity(12);
        marker.extend_from_slice(&pubend.0.to_le_bytes());
        marker.extend_from_slice(&below.0.to_le_bytes());
        self.volume.append(CHOP_META_STREAM, &marker)?;
        self.volume.chop(stream_for(pubend), chop_to)?;
        // Bound marker-stream growth: re-emit the newest marker of every
        // pubend, then drop everything older.
        let boundary = self.volume.next_index(CHOP_META_STREAM);
        if boundary.0 > 1024 {
            let snapshot: Vec<(PubendId, Timestamp)> =
                self.chopped_below.iter().map(|(&p, &t)| (p, t)).collect();
            for (p, t) in snapshot {
                let mut m = Vec::with_capacity(12);
                m.extend_from_slice(&p.0.to_le_bytes());
                m.extend_from_slice(&t.0.to_le_bytes());
                self.volume.append(CHOP_META_STREAM, &m)?;
            }
            self.volume.chop(CHOP_META_STREAM, boundary)?;
        }
        Ok(())
    }

    /// Number of live (unchopped) events for `pubend`.
    pub fn live_events(&self, pubend: PubendId) -> usize {
        self.by_ts.get(&pubend).map(|m| m.len()).unwrap_or(0)
    }

    /// Timestamp of the newest logged event for `pubend`.
    pub fn latest_ts(&self, pubend: PubendId) -> Option<Timestamp> {
        self.by_ts.get(&pubend)?.keys().next_back().copied()
    }

    /// Everything strictly below this timestamp has been chopped.
    pub fn chopped_below_ts(&self, pubend: PubendId) -> Timestamp {
        self.chopped_below
            .get(&pubend)
            .copied()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Underlying volume counters (bytes logged, syncs, ...).
    pub fn stats(&self) -> crate::VolumeStats {
        self.volume.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemFactory;

    fn ev(p: u32, ts: u64) -> EventRef {
        Event::builder(PubendId(p))
            .attr("n", ts as i64)
            .payload(vec![0u8; 32])
            .build_ref(Timestamp(ts))
    }

    fn fresh() -> (MemFactory, EventLog) {
        let f = MemFactory::new();
        let log = EventLog::open(Box::new(f.clone()), "el", VolumeConfig::default()).unwrap();
        (f, log)
    }

    #[test]
    fn append_and_range_read() {
        let (_f, mut log) = fresh();
        for ts in [5u64, 10, 15, 20] {
            log.append(&ev(0, ts)).unwrap();
        }
        let got = log
            .read_range(PubendId(0), Timestamp(6), Timestamp(15))
            .unwrap();
        assert_eq!(got.iter().map(|e| e.ts.0).collect::<Vec<_>>(), vec![10, 15]);
        assert_eq!(log.latest_ts(PubendId(0)), Some(Timestamp(20)));
        assert_eq!(log.live_events(PubendId(0)), 4);
    }

    #[test]
    fn pubends_are_isolated() {
        let (_f, mut log) = fresh();
        log.append(&ev(0, 5)).unwrap();
        log.append(&ev(1, 5)).unwrap();
        assert_eq!(
            log.read_range(PubendId(0), Timestamp(0), Timestamp::MAX)
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            log.read_range(PubendId(2), Timestamp(0), Timestamp::MAX)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn chop_below_discards_prefix() {
        let (_f, mut log) = fresh();
        for ts in 1..=10u64 {
            log.append(&ev(0, ts)).unwrap();
        }
        log.chop_below(PubendId(0), Timestamp(6)).unwrap();
        assert_eq!(log.live_events(PubendId(0)), 5);
        assert!(log.read_at(PubendId(0), Timestamp(5)).unwrap().is_none());
        assert!(log.read_at(PubendId(0), Timestamp(6)).unwrap().is_some());
        assert_eq!(log.chopped_below_ts(PubendId(0)), Timestamp(6));
        // Chop regressions are ignored.
        log.chop_below(PubendId(0), Timestamp(2)).unwrap();
        assert_eq!(log.chopped_below_ts(PubendId(0)), Timestamp(6));
    }

    #[test]
    fn recovery_restores_events_and_chops() {
        let f = MemFactory::new();
        {
            let mut log =
                EventLog::open(Box::new(f.clone()), "el", VolumeConfig::default()).unwrap();
            for ts in 1..=6u64 {
                log.append(&ev(0, ts)).unwrap();
            }
            log.chop_below(PubendId(0), Timestamp(3)).unwrap();
            log.sync().unwrap();
        }
        let mut log = EventLog::open(Box::new(f), "el", VolumeConfig::default()).unwrap();
        assert_eq!(log.live_events(PubendId(0)), 4);
        assert!(log.read_at(PubendId(0), Timestamp(2)).unwrap().is_none());
        let e = log.read_at(PubendId(0), Timestamp(4)).unwrap().unwrap();
        assert_eq!(e.attr("n"), Some(&gryphon_types::AttrValue::Int(4)));
    }

    #[test]
    fn unsynced_tail_lost_on_crash() {
        let f = MemFactory::new();
        {
            let mut log =
                EventLog::open(Box::new(f.clone()), "el", VolumeConfig::default()).unwrap();
            log.append(&ev(0, 1)).unwrap();
            log.sync().unwrap();
            log.append(&ev(0, 2)).unwrap(); // not synced
        }
        f.crash_lose_unsynced();
        let mut log = EventLog::open(Box::new(f), "el", VolumeConfig::default()).unwrap();
        assert!(log.read_at(PubendId(0), Timestamp(1)).unwrap().is_some());
        assert!(log.read_at(PubendId(0), Timestamp(2)).unwrap().is_none());
    }
}
