//! Storage substrates for the Gryphon durable-subscription reproduction.
//!
//! The paper relies on three storage subsystems, all rebuilt here:
//!
//! * [`LogVolume`] — the logger of Bagchi et al. \[8\] used by the
//!   Persistent Filtering Subsystem: multiple append-only *log streams*
//!   multiplexed onto one volume, with per-record monotone indexes,
//!   prefix *chopping*, and efficient retrieval by index;
//! * [`EventLog`] — the pubend's persistent ordered event stream, indexed
//!   by timestamp (the *only* place an event is persistently logged);
//! * [`MetaTable`] — a durable key-value table standing in for the DB2
//!   tables that hold `latestDelivered(p)`, `released(s, p)`, PFS metadata
//!   and JMS checkpoint tokens, with **group commit** (many updates, one
//!   sync) because the JMS auto-acknowledge experiment is bottlenecked on
//!   exactly that.
//!
//! All three sit on a [`Media`] abstraction with a real-file backend
//! ([`FileFactory`]) for wall-clock microbenchmarks and an in-memory
//! durable backend ([`MemFactory`]) whose contents survive simulated
//! crashes, so recovery paths are tested deterministically.
//!
//! # Examples
//!
//! ```
//! use gryphon_storage::{LogVolume, MemFactory, StreamId, VolumeConfig};
//!
//! let factory = MemFactory::new();
//! let mut vol = LogVolume::create(Box::new(factory.clone()), "pfs", VolumeConfig::default())?;
//! let s = StreamId(0);
//! let i0 = vol.append(s, b"hello")?;
//! let i1 = vol.append(s, b"world")?;
//! vol.sync()?;
//! assert_eq!(vol.read(s, i0)?.as_deref(), Some(&b"hello"[..]));
//! vol.chop(s, i1)?; // discard records with index < i1
//! assert_eq!(vol.read(s, i0)?, None);
//! assert_eq!(vol.read(s, i1)?.as_deref(), Some(&b"world"[..]));
//! # Ok::<(), gryphon_storage::StorageError>(())
//! ```

mod codec;
mod commit;
mod event_log;
mod log_volume;
mod media;
mod meta_table;
#[cfg(test)]
mod prop_tests;
mod segment;

pub use codec::{decode_event, encode_event, CodecError};
pub use commit::{CommitPipeline, CommitPipelineStats, CommitReceipt, Commitable};
pub use event_log::EventLog;
pub use log_volume::{LogIndex, LogVolume, StreamId, VolumeConfig, VolumeStats};
pub use media::{FileFactory, Media, MediaFactory, MediaStats, MemFactory};
pub use meta_table::{MetaTable, SharedMetaTable, TableConfig, TableStats};

impl Commitable for LogVolume {
    fn sync_commit(&mut self) -> Result<(), StorageError> {
        self.sync()
    }
}

impl Commitable for EventLog {
    fn sync_commit(&mut self) -> Result<(), StorageError> {
        self.sync()
    }
}

impl Commitable for MetaTable {
    fn sync_commit(&mut self) -> Result<(), StorageError> {
        self.sync_wal()?;
        // Compaction rides the flush, never the staging path: an error
        // from a committer's stage() therefore always means "batch not
        // applied", and a compaction failure only surfaces (poisoning the
        // pipeline) when the table itself became poisoned.
        self.compact_if_needed()
    }
}

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed its CRC or framing check during recovery or read.
    Corrupt {
        /// Which media the corruption was found in.
        media: String,
        /// Byte offset of the bad frame.
        offset: u64,
        /// Description of the failed check.
        detail: String,
    },
    /// Value decoding failed (event codec, metadata value).
    Codec(CodecError),
    /// An operation referenced an unknown named media.
    MissingMedia(String),
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<CodecError> for StorageError {
    fn from(e: CodecError) -> Self {
        StorageError::Codec(e)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o error: {e}"),
            StorageError::Corrupt {
                media,
                offset,
                detail,
            } => write!(f, "corrupt record in '{media}' at {offset}: {detail}"),
            StorageError::Codec(e) => write!(f, "codec error: {e}"),
            StorageError::MissingMedia(name) => write!(f, "missing media '{name}'"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

/// CRC-32 (Castagnoli polynomial, software implementation) used to frame
/// every record on disk.
pub(crate) fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78;
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        // "123456789" -> 0xE3069283 for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let a = crc32c(b"some record payload");
        let b = crc32c(b"some record pbyload");
        assert_ne!(a, b);
    }

    #[test]
    fn errors_display() {
        let e = StorageError::Corrupt {
            media: "seg-0".into(),
            offset: 12,
            detail: "bad crc".into(),
        };
        assert!(e.to_string().contains("seg-0"));
        assert!(StorageError::MissingMedia("x".into())
            .to_string()
            .contains('x'));
    }
}
