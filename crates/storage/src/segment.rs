//! On-media segment format: CRC-framed records and sealed-segment footers.
//!
//! Every segment is a sequence of frames:
//!
//! ```text
//! ┌──────┬────────┬─────────┬───────┬───────┬─────────────┐
//! │ type │ stream │ index   │ len   │ crc   │ payload     │
//! │ 1 B  │ 4 B LE │ 8 B LE  │ 4 B LE│ 4 B LE│ `len` bytes │
//! └──────┴────────┴─────────┴───────┴───────┴─────────────┘
//! ```
//!
//! The CRC-32C covers the header fields (type, stream, index, len) and the
//! payload, so a torn or bit-flipped frame is always detectable. Frame
//! types:
//!
//! * [`FRAME_DATA`] — a record of `stream` at `index`;
//! * [`FRAME_CHOP`] — a logged chop: `stream` discarded indexes `< index`;
//! * [`FRAME_SEAL`] — the segment footer, written (and synced) when the
//!   volume rolls to a new segment. `stream` and `index` are reserved
//!   (zero). A sealed segment is immutable: recovery treats *any*
//!   irregularity inside it as corruption rather than a torn tail, and
//!   read paths may cache it as one immutable buffer.
//!
//! [`scan`] walks a segment frame by frame and reports how it ended, which
//! is the whole recovery story: a clean end, a seal, or a torn tail with
//! the last valid offset to truncate back to.

use crate::media::Media;
use crate::{crc32c, StorageError};

pub(crate) const FRAME_DATA: u8 = 0xA7;
pub(crate) const FRAME_CHOP: u8 = 0xA8;
pub(crate) const FRAME_SEAL: u8 = 0xA9;
/// frame-type (1) + stream (4) + index (8) + len (4) + crc (4)
pub(crate) const HEADER_LEN: usize = 21;

/// One decoded frame header (payload not materialized).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    pub ftype: u8,
    pub stream: u32,
    pub index: u64,
    /// Offset of the payload within the segment.
    pub payload_offset: u64,
    pub payload_len: u32,
}

/// How a segment scan ended.
#[derive(Debug)]
pub(crate) enum ScanEnd {
    /// Every byte belongs to a valid frame and the last frame is not a
    /// seal — the segment is still open for appends. `valid_end` is
    /// carried for debug output; clean scans never truncate.
    CleanOpen {
        #[allow(dead_code)]
        valid_end: u64,
    },
    /// The segment ends with a valid [`FRAME_SEAL`] footer.
    Sealed {
        #[allow(dead_code)]
        valid_end: u64,
    },
    /// Scanning stopped early: bytes from `valid_end` on do not form a
    /// valid frame.
    Torn {
        valid_end: u64,
        offset: u64,
        detail: String,
    },
}

/// Encodes one frame (header + CRC + payload) ready to append.
pub(crate) fn encode_frame(ftype: u8, stream: u32, index: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.push(ftype);
    frame.extend_from_slice(&stream.to_le_bytes());
    frame.extend_from_slice(&index.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(17 + payload.len());
    crc_input.extend_from_slice(&frame);
    crc_input.extend_from_slice(payload);
    frame.extend_from_slice(&crc32c(&crc_input).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Walks `media` frame by frame, invoking `on_frame` for every valid
/// frame (including the seal footer, if present), and reports how the
/// segment ends. Frames after a seal footer are reported as torn — a
/// sealed segment never grows.
///
/// # Errors
///
/// Returns an error only on I/O failure; framing problems are reported
/// through [`ScanEnd::Torn`] so the caller decides whether they are a
/// recoverable torn tail or hard corruption.
pub(crate) fn scan(
    media: &mut dyn Media,
    mut on_frame: impl FnMut(Frame),
) -> Result<ScanEnd, StorageError> {
    let len = media.len();
    let mut offset = 0u64;
    let mut sealed = false;
    loop {
        if sealed {
            return if offset == len {
                Ok(ScanEnd::Sealed { valid_end: offset })
            } else {
                Ok(ScanEnd::Torn {
                    valid_end: offset,
                    offset,
                    detail: "bytes after seal footer".into(),
                })
            };
        }
        if offset == len {
            return Ok(ScanEnd::CleanOpen { valid_end: offset });
        }
        if offset + HEADER_LEN as u64 > len {
            return Ok(ScanEnd::Torn {
                valid_end: offset,
                offset,
                detail: "truncated header".into(),
            });
        }
        let mut header = [0u8; HEADER_LEN];
        media.read_at(offset, &mut header)?;
        let ftype = header[0];
        let stream = u32::from_le_bytes(header[1..5].try_into().expect("slice"));
        let index = u64::from_le_bytes(header[5..13].try_into().expect("slice"));
        let plen = u32::from_le_bytes(header[13..17].try_into().expect("slice"));
        let crc = u32::from_le_bytes(header[17..21].try_into().expect("slice"));
        if ftype != FRAME_DATA && ftype != FRAME_CHOP && ftype != FRAME_SEAL {
            return Ok(ScanEnd::Torn {
                valid_end: offset,
                offset,
                detail: format!("bad frame type {ftype:#x}"),
            });
        }
        let body_end = offset + HEADER_LEN as u64 + plen as u64;
        if body_end > len {
            return Ok(ScanEnd::Torn {
                valid_end: offset,
                offset,
                detail: "frame extends past segment".into(),
            });
        }
        let mut payload = vec![0u8; plen as usize];
        media.read_at(offset + HEADER_LEN as u64, &mut payload)?;
        let mut crc_input = Vec::with_capacity(17 + payload.len());
        crc_input.push(ftype);
        crc_input.extend_from_slice(&header[1..17]);
        crc_input.extend_from_slice(&payload);
        if crc32c(&crc_input) != crc {
            return Ok(ScanEnd::Torn {
                valid_end: offset,
                offset,
                detail: "crc mismatch".into(),
            });
        }
        on_frame(Frame {
            ftype,
            stream,
            index,
            payload_offset: offset + HEADER_LEN as u64,
            payload_len: plen,
        });
        if ftype == FRAME_SEAL {
            sealed = true;
        }
        offset = body_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{MediaFactory, MemFactory};

    fn collect(media: &mut dyn Media) -> (Vec<Frame>, ScanEnd) {
        let mut frames = Vec::new();
        let end = scan(media, |f| frames.push(f)).unwrap();
        (frames, end)
    }

    #[test]
    fn scan_roundtrips_frames_and_detects_seal() {
        let f = MemFactory::new();
        let mut m = f.open("seg").unwrap();
        m.append(&encode_frame(FRAME_DATA, 7, 0, b"hello")).unwrap();
        m.append(&encode_frame(FRAME_CHOP, 7, 1, &[])).unwrap();
        let (frames, end) = collect(m.as_mut());
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].stream, 7);
        assert_eq!(frames[0].payload_len, 5);
        assert!(matches!(end, ScanEnd::CleanOpen { .. }));

        m.append(&encode_frame(FRAME_SEAL, 0, 3, &[])).unwrap();
        let (frames, end) = collect(m.as_mut());
        assert_eq!(frames.len(), 3);
        assert!(matches!(end, ScanEnd::Sealed { .. }));
    }

    #[test]
    fn scan_reports_torn_tail_and_bytes_after_seal() {
        let f = MemFactory::new();
        let mut m = f.open("seg").unwrap();
        let frame = encode_frame(FRAME_DATA, 1, 0, b"abc");
        m.append(&frame).unwrap();
        m.append(&frame[..10]).unwrap(); // torn second frame
        let (frames, end) = collect(m.as_mut());
        assert_eq!(frames.len(), 1);
        match end {
            ScanEnd::Torn { valid_end, .. } => assert_eq!(valid_end, frame.len() as u64),
            other => panic!("expected torn tail, got {other:?}"),
        }

        let mut s = f.open("sealed").unwrap();
        s.append(&encode_frame(FRAME_SEAL, 0, 0, &[])).unwrap();
        s.append(b"garbage").unwrap();
        let (_, end) = collect(s.as_mut());
        assert!(matches!(end, ScanEnd::Torn { .. }));
    }
}
