//! The `Media` abstraction: an append-only, randomly readable byte device.
//!
//! Two backends are provided:
//!
//! * [`FileFactory`] — real files in a directory, with `sync_data` on
//!   [`Media::sync`] and a directory fsync after every file creation and
//!   removal (so the namespace survives power loss, not just a process
//!   kill); used by the wall-clock microbenchmarks;
//! * [`MemFactory`] — named in-memory byte buffers that **outlive the
//!   `Media` handle**: reopening a name after dropping the handle sees the
//!   previously written bytes, which is exactly the durability model a
//!   simulated crash needs.

use crate::StorageError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

/// Write/sync counters for a media instance.
///
/// The PFS microbenchmark's headline ("25× less data logged") is read off
/// these counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaStats {
    /// Total bytes appended.
    pub bytes_written: u64,
    /// Number of `sync` calls that actually flushed.
    pub syncs: u64,
}

/// An append-only byte device with random reads.
///
/// Implementations must guarantee that after [`Media::sync`] returns, all
/// previously appended bytes survive a crash of the process (for
/// [`MemFactory`], survival of the *handle* — the factory plays the role
/// of the disk).
pub trait Media: Send {
    /// Current length in bytes (all appended data, synced or not).
    fn len(&self) -> u64;

    /// `true` if nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `data` at the end.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying device fails.
    fn append(&mut self, data: &[u8]) -> Result<(), StorageError>;

    /// Reads exactly `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns an error if the range is out of bounds or the device fails.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError>;

    /// Forces appended bytes to durable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Discards all bytes at and after `len` (torn-tail repair during
    /// recovery). Growing is not supported; `len` past the end is a no-op.
    ///
    /// # Errors
    ///
    /// Returns an error if the device fails.
    fn truncate(&mut self, len: u64) -> Result<(), StorageError>;

    /// Write/sync counters.
    fn stats(&self) -> MediaStats;
}

/// Creates, reopens, lists and deletes named [`Media`] instances.
///
/// A factory models a directory on a disk: media survive handle drops and
/// are enumerable for recovery.
pub trait MediaFactory: Send {
    /// Boxed clone sharing the same namespace (both backends are cheap
    /// handles onto shared state).
    fn clone_box(&self) -> Box<dyn MediaFactory>;

    /// Opens (creating if absent) the media called `name`.
    ///
    /// # Errors
    ///
    /// Returns an error if the device cannot be created or opened.
    fn open(&self, name: &str) -> Result<Box<dyn Media>, StorageError>;

    /// Deletes the media called `name` (idempotent).
    ///
    /// # Errors
    ///
    /// Returns an error if deletion fails for a reason other than absence.
    fn remove(&self, name: &str) -> Result<(), StorageError>;

    /// Names of all existing media, in unspecified order.
    ///
    /// # Errors
    ///
    /// Returns an error if the namespace cannot be listed.
    fn list(&self) -> Result<Vec<String>, StorageError>;

    /// `true` if the media exists.
    fn exists(&self, name: &str) -> bool {
        self.list()
            .map(|l| l.iter().any(|n| n == name))
            .unwrap_or(false)
    }
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    /// name → (bytes, synced_len). Bytes beyond `synced_len` are lost by
    /// [`MemFactory::crash_lose_unsynced`].
    media: HashMap<String, (Vec<u8>, usize)>,
}

/// Factory of named in-memory media. Cloning shares the namespace.
///
/// # Examples
///
/// ```
/// use gryphon_storage::{MediaFactory, MemFactory, Media};
///
/// let f = MemFactory::new();
/// {
///     let mut m = f.open("wal")?;
///     m.append(b"abc")?;
///     m.sync()?;
/// } // handle dropped — simulated process crash
/// let mut m = f.open("wal")?;
/// assert_eq!(m.len(), 3);
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemFactory {
    inner: Arc<Mutex<MemInner>>,
    /// Modeled device flush latency in microseconds (0 = instantaneous).
    sync_latency_us: Arc<std::sync::atomic::AtomicU64>,
}

impl MemFactory {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a namespace whose media sleep `us` microseconds on every
    /// [`Media::sync`], modeling a device flush round-trip. The sleep
    /// happens *outside* the namespace lock, so other media (and reads of
    /// this one) proceed during the modeled flush. Keep this at the
    /// default 0 anywhere determinism matters — the simulator models
    /// commit latency with its own timers.
    pub fn with_sync_latency_us(us: u64) -> Self {
        let f = Self::default();
        f.sync_latency_us
            .store(us, std::sync::atomic::Ordering::Relaxed);
        f
    }

    /// Simulates a crash: every media loses bytes appended after its last
    /// sync. Used by recovery tests to produce torn tails.
    pub fn crash_lose_unsynced(&self) {
        let mut inner = self.inner.lock();
        for (bytes, synced) in inner.media.values_mut() {
            bytes.truncate(*synced);
        }
    }

    /// Flips one bit at `offset` in `name` (corruption injection).
    ///
    /// # Panics
    ///
    /// Panics if the media or offset does not exist — corruption tests
    /// should fail loudly when aimed at the wrong place.
    pub fn corrupt_bit(&self, name: &str, offset: u64) {
        let mut inner = self.inner.lock();
        let (bytes, _) = inner
            .media
            .get_mut(name)
            .expect("corrupt_bit: no such media");
        bytes[offset as usize] ^= 1;
    }

    /// Total bytes across all media (storage-footprint accounting).
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .media
            .values()
            .map(|(b, _)| b.len() as u64)
            .sum()
    }
}

struct MemMedia {
    factory: Arc<Mutex<MemInner>>,
    name: String,
    sync_latency_us: Arc<std::sync::atomic::AtomicU64>,
    stats: MediaStats,
}

impl Media for MemMedia {
    fn len(&self) -> u64 {
        self.factory
            .lock()
            .media
            .get(&self.name)
            .map(|(b, _)| b.len() as u64)
            .unwrap_or(0)
    }

    fn append(&mut self, data: &[u8]) -> Result<(), StorageError> {
        let mut inner = self.factory.lock();
        let (bytes, _) = inner
            .media
            .get_mut(&self.name)
            .ok_or_else(|| StorageError::MissingMedia(self.name.clone()))?;
        bytes.extend_from_slice(data);
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        let inner = self.factory.lock();
        let (bytes, _) = inner
            .media
            .get(&self.name)
            .ok_or_else(|| StorageError::MissingMedia(self.name.clone()))?;
        let start = offset as usize;
        let end = start + buf.len();
        if end > bytes.len() {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("read_at {start}..{end} beyond len {}", bytes.len()),
            )));
        }
        buf.copy_from_slice(&bytes[start..end]);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        // Capture the durable horizon, then model the device round-trip
        // without holding the namespace lock.
        let horizon = {
            let inner = self.factory.lock();
            inner
                .media
                .get(&self.name)
                .ok_or_else(|| StorageError::MissingMedia(self.name.clone()))?
                .0
                .len()
        };
        let latency = self
            .sync_latency_us
            .load(std::sync::atomic::Ordering::Relaxed);
        if latency > 0 {
            std::thread::sleep(std::time::Duration::from_micros(latency));
        }
        let mut inner = self.factory.lock();
        let (bytes, synced) = inner
            .media
            .get_mut(&self.name)
            .ok_or_else(|| StorageError::MissingMedia(self.name.clone()))?;
        *synced = (*synced).max(horizon.min(bytes.len()));
        self.stats.syncs += 1;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        let mut inner = self.factory.lock();
        let (bytes, synced) = inner
            .media
            .get_mut(&self.name)
            .ok_or_else(|| StorageError::MissingMedia(self.name.clone()))?;
        if (len as usize) < bytes.len() {
            bytes.truncate(len as usize);
        }
        *synced = (*synced).min(bytes.len());
        Ok(())
    }

    fn stats(&self) -> MediaStats {
        self.stats
    }
}

impl MediaFactory for MemFactory {
    fn clone_box(&self) -> Box<dyn MediaFactory> {
        Box::new(self.clone())
    }

    fn open(&self, name: &str) -> Result<Box<dyn Media>, StorageError> {
        self.inner
            .lock()
            .media
            .entry(name.to_owned())
            .or_insert_with(|| (Vec::new(), 0));
        Ok(Box::new(MemMedia {
            factory: Arc::clone(&self.inner),
            name: name.to_owned(),
            sync_latency_us: Arc::clone(&self.sync_latency_us),
            stats: MediaStats::default(),
        }))
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        self.inner.lock().media.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.inner.lock().media.keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------------

/// Factory of real files under a directory.
///
/// # Examples
///
/// ```no_run
/// use gryphon_storage::{FileFactory, MediaFactory};
/// let f = FileFactory::new("/tmp/gryphon-vol")?;
/// let media = f.open("seg-0")?;
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FileFactory {
    dir: PathBuf,
}

impl FileFactory {
    /// Creates the directory if needed and returns a factory rooted there.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileFactory { dir })
    }

    fn path(&self, name: &str) -> PathBuf {
        // Media names are generated internally and never contain
        // separators, but be defensive anyway.
        debug_assert!(!name.contains('/') && !name.contains(".."));
        self.dir.join(name)
    }

    /// Flushes the directory itself, making file creation/removal durable
    /// against power loss (a synced file's *bytes* surviving is useless if
    /// its directory entry vanishes, and a deleted segment that reappears
    /// would resurrect chopped records).
    fn sync_dir(&self) -> Result<(), StorageError> {
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }
}

struct FileMedia {
    file: File,
    len: u64,
    stats: MediaStats,
}

impl Media for FileMedia {
    fn len(&self) -> u64 {
        self.len
    }

    fn append(&mut self, data: &[u8]) -> Result<(), StorageError> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.file.sync_data()?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> Result<(), StorageError> {
        if len < self.len {
            self.file.set_len(len)?;
            self.len = len;
        }
        Ok(())
    }

    fn stats(&self) -> MediaStats {
        self.stats
    }
}

impl MediaFactory for FileFactory {
    fn clone_box(&self) -> Box<dyn MediaFactory> {
        Box::new(self.clone())
    }

    fn open(&self, name: &str) -> Result<Box<dyn Media>, StorageError> {
        let path = self.path(name);
        let existed = path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if !existed {
            self.sync_dir()?;
        }
        let len = file.metadata()?.len();
        Ok(Box::new(FileMedia {
            file,
            len,
            stats: MediaStats::default(),
        }))
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(factory: &dyn MediaFactory) {
        let mut m = factory.open("a").unwrap();
        assert!(m.is_empty());
        m.append(b"hello ").unwrap();
        m.append(b"world").unwrap();
        assert_eq!(m.len(), 11);
        let mut buf = [0u8; 5];
        m.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        m.sync().unwrap();
        assert_eq!(m.stats().bytes_written, 11);
        assert_eq!(m.stats().syncs, 1);
        drop(m);
        // Reopen sees the data.
        let mut m2 = factory.open("a").unwrap();
        assert_eq!(m2.len(), 11);
        let mut buf = [0u8; 11];
        m2.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(&MemFactory::new());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gry-media-{}", std::process::id()));
        let f = FileFactory::new(&dir).unwrap();
        roundtrip(&f);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_crash_loses_unsynced_tail() {
        let f = MemFactory::new();
        let mut m = f.open("wal").unwrap();
        m.append(b"synced").unwrap();
        m.sync().unwrap();
        m.append(b"-lost").unwrap();
        drop(m);
        f.crash_lose_unsynced();
        let m2 = f.open("wal").unwrap();
        assert_eq!(m2.len(), 6);
    }

    #[test]
    fn mem_out_of_bounds_read_errors() {
        let f = MemFactory::new();
        let mut m = f.open("x").unwrap();
        m.append(b"ab").unwrap();
        let mut buf = [0u8; 3];
        assert!(m.read_at(0, &mut buf).is_err());
        assert!(m.read_at(9, &mut buf[..1]).is_err());
    }

    #[test]
    fn factory_list_and_remove() {
        let f = MemFactory::new();
        f.open("a").unwrap();
        f.open("b").unwrap();
        let mut names = f.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert!(f.exists("a"));
        f.remove("a").unwrap();
        assert!(!f.exists("a"));
        f.remove("a").unwrap(); // idempotent
    }

    #[test]
    fn corrupt_bit_flips_data() {
        let f = MemFactory::new();
        let mut m = f.open("x").unwrap();
        m.append(&[0u8]).unwrap();
        f.corrupt_bit("x", 0);
        let mut buf = [0u8; 1];
        m.read_at(0, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
    }

    #[test]
    fn file_factory_reopen_preserves_and_removes() {
        let dir = std::env::temp_dir().join(format!("gry-media2-{}", std::process::id()));
        let f = FileFactory::new(&dir).unwrap();
        {
            let mut m = f.open("seg").unwrap();
            m.append(b"xyz").unwrap();
            m.sync().unwrap();
        }
        assert!(f.exists("seg"));
        f.remove("seg").unwrap();
        assert!(!f.exists("seg"));
        f.remove("seg").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
