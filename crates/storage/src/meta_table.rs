//! A durable key-value table with group commit — the stand-in for the DB2
//! tables of the paper.
//!
//! The SHB keeps `latestDelivered(p)`, `released(s, p)`, PFS metadata and
//! (for JMS subscribers) checkpoint tokens here. The JMS auto-acknowledge
//! experiment (paper §5.2) is bottlenecked on *commit throughput* of this
//! table, and improves when many waiting updates are batched into one
//! transaction — so [`MetaTable::commit`] takes a batch and performs
//! exactly one sync, and [`MetaTable::stage`] lets a
//! [`CommitPipeline`](crate::CommitPipeline) (see [`SharedMetaTable`])
//! fold many batches into one flush.
//!
//! Atomicity: a batch is applied on recovery only if its commit marker was
//! durable; a torn tail (crash between append and sync) rolls the whole
//! batch back.
//!
//! Compaction is driven by **dirty bytes**, not WAL length: the table
//! tracks how many WAL bytes have been superseded by later writes and
//! only rewrites the snapshot once that garbage passes a threshold scaled
//! to the live population. A workload that only *adds* keys never
//! compacts (its WAL has no garbage), which is what keeps large-population
//! churn (the `shb_scale` bench) off the old O(population)-per-window
//! rewrite cliff.

use crate::commit::{CommitPipeline, CommitPipelineStats, CommitReceipt};
use crate::media::{Media, MediaFactory};
use crate::{crc32c, StorageError};
use std::collections::{BTreeMap, HashMap};

const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;
const OP_COMMIT: u8 = 3;
const SNAP_MAGIC: u8 = 0xC3;

/// Tuning knobs for a [`MetaTable`].
#[derive(Debug, Clone, Copy)]
pub struct TableConfig {
    /// Compact (snapshot + fresh WAL) once this many WAL bytes are
    /// *garbage* — superseded by later writes or deletes. The effective
    /// threshold is `max(compact_wal_bytes, live_bytes / 4)`, so a big
    /// table amortizes its O(population) snapshot rewrite over
    /// proportionally more reclaimed garbage.
    pub compact_wal_bytes: u64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            compact_wal_bytes: 1024 * 1024,
        }
    }
}

/// Counters for commit-throughput experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Committed batches (each at most one sync).
    pub commits: u64,
    /// Individual key updates across all batches.
    pub updates: u64,
    /// WAL bytes written (excluding snapshots).
    pub wal_bytes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Compactions that failed before their generation switch. The table
    /// stays consistent and retries at the next threshold crossing.
    pub compaction_errors: u64,
}

/// A durable string-keyed map with atomic batched commits.
///
/// # Examples
///
/// ```
/// use gryphon_storage::{MemFactory, MetaTable};
///
/// let f = MemFactory::new();
/// let mut t = MetaTable::open(Box::new(f.clone()), "shb-meta", Default::default())?;
/// t.commit(&[
///     ("latestDelivered/0".into(), Some(100u64.to_le_bytes().to_vec())),
///     ("released/7/0".into(), Some(90u64.to_le_bytes().to_vec())),
/// ])?;
/// drop(t); // crash
/// let t = MetaTable::open(Box::new(f), "shb-meta", Default::default())?;
/// assert_eq!(t.get_u64("latestDelivered/0"), Some(100));
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
pub struct MetaTable {
    factory: Box<dyn MediaFactory>,
    name: String,
    config: TableConfig,
    map: BTreeMap<String, Vec<u8>>,
    wal: Box<dyn Media>,
    generation: u64,
    /// Encoded size of every live pair (what a snapshot would write).
    live_bytes: u64,
    /// WAL bytes superseded since the last compaction.
    wal_garbage: u64,
    /// key → size of its most recent entry in the *current* WAL, so an
    /// overwrite knows how much garbage it creates.
    wal_entry: HashMap<String, u32>,
    /// Set when a compaction failed *after* its snapshot became durable:
    /// recovery would prefer that snapshot and ignore the old WAL, so
    /// further commits cannot be guaranteed to survive. All subsequent
    /// staging fails until the table is reopened.
    poisoned: bool,
    stats: TableStats,
}

impl std::fmt::Debug for MetaTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaTable")
            .field("name", &self.name)
            .field("keys", &self.map.len())
            .field("generation", &self.generation)
            .field("live_bytes", &self.live_bytes)
            .field("wal_garbage", &self.wal_garbage)
            .field("poisoned", &self.poisoned)
            .field("stats", &self.stats)
            .finish()
    }
}

fn pair_bytes(key: &str, value: &[u8]) -> u64 {
    2 + key.len() as u64 + 4 + value.len() as u64
}

fn poisoned_table_error() -> StorageError {
    StorageError::Io(std::io::Error::other(
        "meta table poisoned by a failed generation switch",
    ))
}

impl MetaTable {
    /// Opens (recovering) or creates the table named `name`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure. Torn WAL tails and torn snapshots
    /// are rolled back, not reported.
    pub fn open(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: TableConfig,
    ) -> Result<Self, StorageError> {
        // Find the newest generation with a valid snapshot (gen 0 has an
        // implicit empty snapshot).
        let mut gens: Vec<u64> = factory
            .list()?
            .iter()
            .filter_map(|n| {
                n.strip_prefix(&format!("{name}-snap-"))
                    .and_then(|g| g.parse().ok())
            })
            .collect();
        gens.sort_unstable();
        gens.reverse();
        let mut map = BTreeMap::new();
        let mut generation = 0;
        for g in gens {
            if let Some(snap) = Self::load_snapshot(factory.as_ref(), name, g)? {
                map = snap;
                generation = g;
                break;
            }
        }
        let wal_name = format!("{name}-wal-{generation}");
        let mut wal = factory.open(&wal_name)?;
        let mut wal_entry = HashMap::new();
        let mut wal_garbage = 0;
        Self::replay_wal(wal.as_mut(), &mut map, &mut wal_entry, &mut wal_garbage)?;
        let live_bytes = map.iter().map(|(k, v)| pair_bytes(k, v)).sum();
        let mut table = MetaTable {
            factory,
            name: name.to_owned(),
            config,
            map,
            wal,
            generation,
            live_bytes,
            wal_garbage,
            wal_entry,
            poisoned: false,
            stats: TableStats::default(),
        };
        table.gc_stale_generations()?;
        Ok(table)
    }

    fn load_snapshot(
        factory: &dyn MediaFactory,
        name: &str,
        generation: u64,
    ) -> Result<Option<BTreeMap<String, Vec<u8>>>, StorageError> {
        let snap_name = format!("{name}-snap-{generation}");
        if !factory.exists(&snap_name) {
            return Ok(None);
        }
        let mut media = factory.open(&snap_name)?;
        let len = media.len();
        if len < 5 {
            return Ok(None);
        }
        let mut body = vec![0u8; (len - 5) as usize];
        media.read_at(0, &mut body)?;
        let mut tail = [0u8; 5];
        media.read_at(len - 5, &mut tail)?;
        if tail[0] != SNAP_MAGIC
            || u32::from_le_bytes(tail[1..5].try_into().expect("len 4")) != crc32c(&body)
        {
            return Ok(None); // torn snapshot: fall back to older generation
        }
        let mut map = BTreeMap::new();
        let mut pos = 0usize;
        while pos < body.len() {
            let Some((key, value, next)) = Self::parse_pair(&body, pos) else {
                return Ok(None);
            };
            map.insert(key, value);
            pos = next;
        }
        Ok(Some(map))
    }

    fn parse_pair(data: &[u8], pos: usize) -> Option<(String, Vec<u8>, usize)> {
        if pos + 2 > data.len() {
            return None;
        }
        let klen = u16::from_le_bytes(data[pos..pos + 2].try_into().ok()?) as usize;
        let kstart = pos + 2;
        if kstart + klen + 4 > data.len() {
            return None;
        }
        let key = String::from_utf8(data[kstart..kstart + klen].to_vec()).ok()?;
        let vstart = kstart + klen + 4;
        let vlen = u32::from_le_bytes(data[kstart + klen..vstart].try_into().ok()?) as usize;
        if vstart + vlen > data.len() {
            return None;
        }
        let value = data[vstart..vstart + vlen].to_vec();
        Some((key, value, vstart + vlen))
    }

    fn replay_wal(
        wal: &mut dyn Media,
        map: &mut BTreeMap<String, Vec<u8>>,
        wal_entry: &mut HashMap<String, u32>,
        wal_garbage: &mut u64,
    ) -> Result<(), StorageError> {
        let len = wal.len();
        if len == 0 {
            return Ok(());
        }
        let mut data = vec![0u8; len as usize];
        wal.read_at(0, &mut data)?;
        let mut pos = 0usize;
        let mut pending: Vec<(String, Option<Vec<u8>>, u32)> = Vec::new();
        let mut committed_end = 0u64;
        while pos < data.len() {
            match data[pos] {
                OP_COMMIT => {
                    for (k, v, entry_size) in pending.drain(..) {
                        match v {
                            Some(v) => {
                                if let Some(old) = wal_entry.insert(k.clone(), entry_size) {
                                    *wal_garbage += old as u64;
                                }
                                map.insert(k, v);
                            }
                            None => {
                                if let Some(old) = wal_entry.remove(&k) {
                                    *wal_garbage += old as u64;
                                }
                                // The delete entry itself is garbage once
                                // the key is gone from the snapshot view.
                                *wal_garbage += entry_size as u64;
                                map.remove(&k);
                            }
                        }
                    }
                    pos += 1;
                    committed_end = pos as u64;
                }
                OP_SET => {
                    let Some((key, value, next)) = Self::parse_pair(&data, pos + 1) else {
                        break;
                    };
                    let entry_size = (next - pos) as u32;
                    pending.push((key, Some(value), entry_size));
                    pos = next;
                }
                OP_DEL => {
                    let p = pos + 1;
                    if p + 2 > data.len() {
                        break;
                    }
                    let klen =
                        u16::from_le_bytes(data[p..p + 2].try_into().expect("len 2")) as usize;
                    if p + 2 + klen > data.len() {
                        break;
                    }
                    let Ok(key) = String::from_utf8(data[p + 2..p + 2 + klen].to_vec()) else {
                        break;
                    };
                    let entry_size = (1 + 2 + klen) as u32;
                    pending.push((key, None, entry_size));
                    pos = p + 2 + klen;
                }
                _ => break, // torn/garbage tail
            }
        }
        // Drop the uncommitted tail so future appends don't interleave
        // with garbage.
        wal.truncate(committed_end)?;
        Ok(())
    }

    /// Appends a batch of updates (`None` deletes the key) to the WAL and
    /// applies it in memory **without flushing** — the building block a
    /// [`CommitPipeline`] uses to fold many batches into one sync. The
    /// batch becomes durable at the next [`MetaTable::sync_wal`]; a crash
    /// before that rolls the whole batch back atomically.
    ///
    /// # Errors
    ///
    /// Returns an error if the WAL write fails or the table is poisoned;
    /// in both cases the batch was **not** applied (no compaction runs on
    /// this path — see [`MetaTable::compact_if_needed`]).
    pub fn stage(&mut self, batch: &[(String, Option<Vec<u8>>)]) -> Result<(), StorageError> {
        if self.poisoned {
            return Err(poisoned_table_error());
        }
        let mut buf = Vec::new();
        let mut entry_sizes = Vec::with_capacity(batch.len());
        for (k, v) in batch {
            let start = buf.len();
            match v {
                Some(v) => {
                    buf.push(OP_SET);
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k.as_bytes());
                    buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    buf.extend_from_slice(v);
                }
                None => {
                    buf.push(OP_DEL);
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k.as_bytes());
                }
            }
            entry_sizes.push((buf.len() - start) as u32);
        }
        buf.push(OP_COMMIT);
        self.wal.append(&buf)?;
        self.stats.commits += 1;
        self.stats.updates += batch.len() as u64;
        self.stats.wal_bytes += buf.len() as u64;
        for ((k, v), entry_size) in batch.iter().zip(entry_sizes) {
            match v {
                Some(v) => {
                    if let Some(old) = self.wal_entry.insert(k.clone(), entry_size) {
                        self.wal_garbage += old as u64;
                    }
                    self.live_bytes += pair_bytes(k, v);
                    if let Some(old) = self.map.insert(k.clone(), v.clone()) {
                        self.live_bytes -= pair_bytes(k, &old);
                    }
                }
                None => {
                    if let Some(old) = self.wal_entry.remove(k) {
                        self.wal_garbage += old as u64;
                    }
                    self.wal_garbage += entry_size as u64;
                    if let Some(old) = self.map.remove(k) {
                        self.live_bytes -= pair_bytes(k, &old);
                    }
                }
            }
        }
        Ok(())
    }

    /// Flushes all staged batches to durable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync_wal(&mut self) -> Result<(), StorageError> {
        self.wal.sync()
    }

    /// Atomically applies a batch of updates (`None` deletes the key) with
    /// **one** sync — the group-commit primitive.
    ///
    /// # Errors
    ///
    /// Returns an error if the WAL write or sync fails (batch not
    /// durable), or if the post-commit compaction poisoned the table — in
    /// that case the batch *is* durable but the table must be reopened.
    pub fn commit(&mut self, batch: &[(String, Option<Vec<u8>>)]) -> Result<(), StorageError> {
        self.stage(batch)?;
        self.sync_wal()?;
        self.compact_if_needed()
    }

    /// Convenience single-key set (its own commit).
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`].
    pub fn put(&mut self, key: &str, value: Vec<u8>) -> Result<(), StorageError> {
        self.commit(&[(key.to_owned(), Some(value))])
    }

    /// Convenience single-key delete (its own commit).
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`].
    pub fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        self.commit(&[(key.to_owned(), None)])
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Reads a key as little-endian `u64` (`None` if absent or mis-sized).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let v = self.map.get(key)?;
        Some(u64::from_le_bytes(v.as_slice().try_into().ok()?))
    }

    /// Single-key `u64` write.
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`].
    pub fn put_u64(&mut self, key: &str, value: u64) -> Result<(), StorageError> {
        self.put(key, value.to_le_bytes().to_vec())
    }

    /// Iterates keys starting with `prefix` (recovery scans, e.g. all
    /// `released/` entries).
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a [u8])> + 'a {
        self.map
            .range(prefix.to_owned()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the table has no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Commit counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Encoded size of the live population (what a snapshot would write).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// WAL bytes superseded since the last compaction — the quantity the
    /// compaction policy watches.
    pub fn wal_garbage_bytes(&self) -> u64 {
        self.wal_garbage
    }

    /// Runs the dirty-bytes compaction policy: rewrite the snapshot once
    /// the reclaimed garbage pays for the O(live) rewrite. Called *after*
    /// a successful flush — never from the staging path — so an error
    /// from [`MetaTable::stage`] always means the batch was not applied.
    ///
    /// A compaction failure before the generation switch leaves the table
    /// fully consistent and is only counted
    /// ([`TableStats::compaction_errors`]); the garbage threshold still
    /// holds, so the next flush retries. A failure *after* the new
    /// snapshot became durable poisons the table, and only that error is
    /// returned.
    ///
    /// # Errors
    ///
    /// Returns an error only when the table became poisoned.
    pub fn compact_if_needed(&mut self) -> Result<(), StorageError> {
        if self.wal_garbage < self.config.compact_wal_bytes.max(self.live_bytes / 4) {
            return Ok(());
        }
        match self.compact() {
            Ok(()) => Ok(()),
            Err(e) if self.poisoned => Err(e),
            Err(_) => {
                self.stats.compaction_errors += 1;
                Ok(())
            }
        }
    }

    fn compact(&mut self) -> Result<(), StorageError> {
        let next = self.generation + 1;
        let snap_name = format!("{}-snap-{next}", self.name);
        // A compaction that crashed mid-write can leave a partial file
        // under this name (written-but-unsynced bytes survive a process
        // kill on the file backend); appending after that garbage would
        // make the snapshot permanently CRC-invalid. Clear it first.
        self.factory.remove(&snap_name)?;
        let mut snap = self.factory.open(&snap_name)?;
        let mut body = Vec::new();
        for (k, v) in &self.map {
            body.extend_from_slice(&(k.len() as u16).to_le_bytes());
            body.extend_from_slice(k.as_bytes());
            body.extend_from_slice(&(v.len() as u32).to_le_bytes());
            body.extend_from_slice(v);
        }
        let crc = crc32c(&body);
        body.push(SNAP_MAGIC);
        body.extend_from_slice(&crc.to_le_bytes());
        snap.append(&body)?;
        snap.sync()?;
        // Point of no return: the new snapshot is durable and recovery
        // will prefer it. Failing to switch WALs now would send future
        // commits to a WAL recovery ignores — poison the table rather
        // than lose them silently.
        let wal_name = format!("{}-wal-{next}", self.name);
        self.wal = match self
            .factory
            .remove(&wal_name)
            .and_then(|()| self.factory.open(&wal_name))
        {
            Ok(w) => w,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        self.generation = next;
        self.wal_entry.clear();
        self.wal_garbage = 0;
        self.stats.compactions += 1;
        // Best effort: stale files only cost space; the next open or
        // compaction retries their removal.
        let _ = self.gc_stale_generations();
        Ok(())
    }

    /// Removes snapshot/WAL files of every generation other than the
    /// current one: older generations are superseded, newer ones are
    /// partial leftovers of a crashed compaction (a *valid* newer
    /// snapshot would have been chosen at open).
    fn gc_stale_generations(&mut self) -> Result<(), StorageError> {
        let snap_prefix = format!("{}-snap-", self.name);
        let wal_prefix = format!("{}-wal-", self.name);
        for n in self.factory.list()? {
            let stale = n
                .strip_prefix(&snap_prefix)
                .or_else(|| n.strip_prefix(&wal_prefix))
                .and_then(|g| g.parse::<u64>().ok())
                .map(|g| g != self.generation)
                .unwrap_or(false);
            if stale {
                self.factory.remove(&n)?;
            }
        }
        Ok(())
    }
}

/// A [`MetaTable`] behind a [`CommitPipeline`]: concurrent committers
/// stage batches and share device flushes (leader/follower group commit).
/// Cloning shares the table.
///
/// Single-threaded callers get the same semantics as a bare table — every
/// commit is a group of one — so the simulator can use it without losing
/// determinism.
#[derive(Clone, Debug)]
pub struct SharedMetaTable {
    pipe: CommitPipeline<MetaTable>,
}

impl SharedMetaTable {
    /// Opens (recovering) or creates the shared table named `name` with
    /// timing disabled (deterministic receipts).
    ///
    /// # Errors
    ///
    /// See [`MetaTable::open`].
    pub fn open(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: TableConfig,
    ) -> Result<Self, StorageError> {
        Ok(SharedMetaTable {
            pipe: CommitPipeline::new(MetaTable::open(factory, name, config)?),
        })
    }

    /// Like [`SharedMetaTable::open`] but with wall-clock timing of waits
    /// and flushes in the [`CommitReceipt`]s (threaded runtime only).
    ///
    /// # Errors
    ///
    /// See [`MetaTable::open`].
    pub fn open_with_timing(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: TableConfig,
    ) -> Result<Self, StorageError> {
        Ok(SharedMetaTable {
            pipe: CommitPipeline::with_timing(MetaTable::open(factory, name, config)?),
        })
    }

    /// Commits a batch through the group-commit pipeline: the batch is
    /// staged under the table lock and this call returns once a flush —
    /// ours or a concurrent committer's — covers it.
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`] and
    /// [`CommitPipeline::commit_with`](crate::CommitPipeline::commit_with).
    pub fn commit(
        &self,
        batch: &[(String, Option<Vec<u8>>)],
    ) -> Result<CommitReceipt, StorageError> {
        let ((), receipt) = self.pipe.commit_with(|t| t.stage(batch))?;
        Ok(receipt)
    }

    /// Single-key set through the pipeline.
    ///
    /// # Errors
    ///
    /// See [`SharedMetaTable::commit`].
    pub fn put(&self, key: &str, value: Vec<u8>) -> Result<CommitReceipt, StorageError> {
        self.commit(&[(key.to_owned(), Some(value))])
    }

    /// Single-key `u64` set through the pipeline.
    ///
    /// # Errors
    ///
    /// See [`SharedMetaTable::commit`].
    pub fn put_u64(&self, key: &str, value: u64) -> Result<CommitReceipt, StorageError> {
        self.put(key, value.to_le_bytes().to_vec())
    }

    /// Single-key delete through the pipeline.
    ///
    /// # Errors
    ///
    /// See [`SharedMetaTable::commit`].
    pub fn delete(&self, key: &str) -> Result<CommitReceipt, StorageError> {
        self.commit(&[(key.to_owned(), None)])
    }

    /// Reads a key (copied out of the shared table).
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.pipe.with(|t| t.get(key).map(|v| v.to_vec()))
    }

    /// Reads a key as little-endian `u64`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.pipe.with(|t| t.get_u64(key))
    }

    /// Runs `f` with exclusive access to the table — for prefix scans and
    /// other multi-key reads.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetaTable) -> R) -> R {
        self.pipe.with(f)
    }

    /// Table counters.
    pub fn stats(&self) -> TableStats {
        self.pipe.with(|t| t.stats())
    }

    /// Group-commit pipeline counters.
    pub fn commit_stats(&self) -> CommitPipelineStats {
        self.pipe.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemFactory;

    fn fresh() -> (MemFactory, MetaTable) {
        let f = MemFactory::new();
        let t = MetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap();
        (f, t)
    }

    fn reopen(f: &MemFactory) -> MetaTable {
        MetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let (_f, mut t) = fresh();
        t.put("a", vec![1]).unwrap();
        t.put_u64("n", 42).unwrap();
        assert_eq!(t.get("a"), Some(&[1][..]));
        assert_eq!(t.get_u64("n"), Some(42));
        t.delete("a").unwrap();
        assert_eq!(t.get("a"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn committed_batches_survive_crash() {
        let (f, mut t) = fresh();
        t.commit(&[("x".into(), Some(vec![1])), ("y".into(), Some(vec![2]))])
            .unwrap();
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get("x"), Some(&[1][..]));
        assert_eq!(t.get("y"), Some(&[2][..]));
    }

    #[test]
    fn staged_but_unsynced_batch_rolls_back() {
        let (f, mut t) = fresh();
        t.put("stable", vec![7]).unwrap();
        t.stage(&[("x".into(), Some(vec![9]))]).unwrap();
        // Visible in memory immediately…
        assert_eq!(t.get("x"), Some(&[9][..]));
        // …but a crash before sync_wal loses it atomically.
        drop(t);
        f.crash_lose_unsynced();
        let t = reopen(&f);
        assert_eq!(t.get("stable"), Some(&[7][..]));
        assert_eq!(t.get("x"), None, "unsynced staged batch must roll back");
    }

    #[test]
    fn staged_batch_survives_after_sync_wal() {
        let (f, mut t) = fresh();
        t.stage(&[("x".into(), Some(vec![1]))]).unwrap();
        t.stage(&[("y".into(), Some(vec![2]))]).unwrap();
        t.sync_wal().unwrap();
        drop(t);
        f.crash_lose_unsynced();
        let t = reopen(&f);
        assert_eq!(t.get("x"), Some(&[1][..]));
        assert_eq!(t.get("y"), Some(&[2][..]));
    }

    #[test]
    fn torn_batch_rolls_back_atomically() {
        let (f, mut t) = fresh();
        t.put("stable", vec![7]).unwrap();
        // Append a batch but crash before sync.
        t.wal
            .append(&{
                let mut b = vec![OP_SET];
                b.extend_from_slice(&1u16.to_le_bytes());
                b.push(b'x');
                b.extend_from_slice(&1u32.to_le_bytes());
                b.push(9);
                b // note: no OP_COMMIT
            })
            .unwrap();
        drop(t);
        f.crash_lose_unsynced();
        let t = reopen(&f);
        assert_eq!(t.get("stable"), Some(&[7][..]));
        assert_eq!(t.get("x"), None, "uncommitted batch must roll back");
    }

    #[test]
    fn uncommitted_tail_without_marker_is_dropped() {
        let (f, mut t) = fresh();
        t.put("a", vec![1]).unwrap();
        // Synced but marker-less records also roll back (crash between the
        // record sync and the commit marker does not exist in our format —
        // marker is in the same batch — but garbage tails can).
        t.wal.append(&[OP_SET, 0xFF]).unwrap();
        t.wal.sync().unwrap();
        drop(t);
        let mut t = reopen(&f);
        assert_eq!(t.get("a"), Some(&[1][..]));
        // And the table remains writable after tail truncation.
        t.put("b", vec![2]).unwrap();
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get("b"), Some(&[2][..]));
    }

    #[test]
    fn batch_delete_applies() {
        let (f, mut t) = fresh();
        t.put("k", vec![1]).unwrap();
        t.commit(&[("k".into(), None), ("m".into(), Some(vec![3]))])
            .unwrap();
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get("k"), None);
        assert_eq!(t.get("m"), Some(&[3][..]));
    }

    #[test]
    fn insert_only_workload_never_compacts() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: 64,
            },
        )
        .unwrap();
        // Distinct keys create no WAL garbage, so the dirty-bytes policy
        // never pays the O(population) snapshot rewrite — this workload
        // used to compact dozens of times under the old WAL-length policy.
        for i in 0..200u64 {
            t.put_u64(&format!("key-{i}"), i).unwrap();
        }
        assert_eq!(t.stats().compactions, 0);
        assert_eq!(t.wal_garbage_bytes(), 0);
        assert!(t.live_bytes() > 0);
    }

    #[test]
    fn churn_compacts_and_preserves_data_and_gcs_old_generations() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: 64,
            },
        )
        .unwrap();
        for i in 0..20u64 {
            t.put_u64(&format!("cold-{i}"), i).unwrap();
        }
        // Overwriting the same key turns earlier WAL entries into garbage;
        // once past the dirty-bytes threshold the table compacts.
        for i in 0..200u64 {
            t.put_u64("hot", i).unwrap();
        }
        assert!(t.stats().compactions > 0);
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get_u64("hot"), Some(199));
        for i in 0..20u64 {
            assert_eq!(t.get_u64(&format!("cold-{i}")), Some(i), "cold-{i}");
        }
        // Old generations are removed.
        let names = f.list().unwrap();
        let snaps = names.iter().filter(|n| n.contains("-snap-")).count();
        assert_eq!(snaps, 1, "exactly one snapshot generation: {names:?}");
    }

    #[test]
    fn garbage_accounting_survives_reopen() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: u64::MAX,
            },
        )
        .unwrap();
        for i in 0..10u64 {
            t.put_u64("hot", i).unwrap();
        }
        t.delete("hot").unwrap();
        let garbage = t.wal_garbage_bytes();
        assert!(garbage > 0);
        let live = t.live_bytes();
        drop(t);
        let t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: u64::MAX,
            },
        )
        .unwrap();
        assert_eq!(t.wal_garbage_bytes(), garbage, "garbage rebuilt by replay");
        assert_eq!(t.live_bytes(), live);
    }

    #[test]
    fn open_clears_stale_future_generation_files() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap();
        t.put_u64("stable", 7).unwrap();
        drop(t);
        // A compaction that crashed mid-write leaves a partial (CRC-less)
        // snapshot for the next generation; the file backend keeps
        // written-but-unsynced bytes after a process kill.
        f.open("t-snap-1")
            .unwrap()
            .append(b"partial snapshot garbage")
            .unwrap();
        f.open("t-wal-9").unwrap();
        let t = MetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap();
        assert_eq!(t.get_u64("stable"), Some(7));
        assert!(!f.exists("t-snap-1"), "stale future snapshot must be GC'd");
        assert!(!f.exists("t-wal-9"), "stale future WAL must be GC'd");
    }

    #[test]
    fn compaction_overwrites_stale_partial_snapshot() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: 64,
            },
        )
        .unwrap();
        t.put_u64("stable", 7).unwrap();
        // Simulate an in-process compaction that failed mid-write (after
        // open's GC ran): the retry must not append after its garbage.
        f.open("t-snap-1")
            .unwrap()
            .append(b"partial snapshot garbage")
            .unwrap();
        for i in 0..200u64 {
            t.put_u64("hot", i).unwrap();
        }
        assert!(t.stats().compactions > 0, "churn must have compacted");
        drop(t);
        // The snapshot written over the stale file must be valid: nothing
        // may be lost on reopen (before the fix the garbage prefix made
        // every generation-1 snapshot permanently CRC-invalid while GC
        // deleted generation 0, silently emptying the table).
        let t = MetaTable::open(Box::new(f), "t", TableConfig::default()).unwrap();
        assert_eq!(t.get_u64("stable"), Some(7));
        assert_eq!(t.get_u64("hot"), Some(199));
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_generation() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: 64,
            },
        )
        .unwrap();
        for i in 0..50u64 {
            t.put_u64("hot", i).unwrap();
        }
        t.put_u64("stable", 7).unwrap();
        let gen = t.generation;
        assert!(gen > 0, "churn must have compacted");
        drop(t);
        // Corrupt the newest snapshot.
        f.corrupt_bit(&format!("t-snap-{gen}"), 0);
        let t = reopen(&f);
        // Data from the corrupted generation's snapshot may be lost, but
        // the table must open and be internally consistent (keys either
        // present with correct value or absent).
        if let Some(v) = t.get_u64("stable") {
            assert_eq!(v, 7);
        }
        if let Some(v) = t.get_u64("hot") {
            assert!(v <= 49);
        }
    }

    #[test]
    fn iter_prefix_scans_range() {
        let (_f, mut t) = fresh();
        t.put("rel/1/0", vec![1]).unwrap();
        t.put("rel/2/0", vec![2]).unwrap();
        t.put("zzz", vec![3]).unwrap();
        let keys: Vec<&str> = t.iter_prefix("rel/").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["rel/1/0", "rel/2/0"]);
    }

    #[test]
    fn stats_count_commits_and_updates() {
        let (_f, mut t) = fresh();
        t.commit(&[("a".into(), Some(vec![])), ("b".into(), Some(vec![]))])
            .unwrap();
        t.put("c", vec![]).unwrap();
        let s = t.stats();
        assert_eq!(s.commits, 2);
        assert_eq!(s.updates, 3);
        assert!(s.wal_bytes > 0);
    }

    #[test]
    fn shared_table_commits_concurrently() {
        let f = MemFactory::with_sync_latency_us(200);
        let shared =
            SharedMetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|th| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..20u64 {
                        shared.put_u64(&format!("k/{th}/{i}"), i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let cs = shared.commit_stats();
        assert_eq!(cs.commits, 80);
        assert!(
            cs.fsyncs < cs.commits,
            "grouping expected: {} fsyncs for {} commits",
            cs.fsyncs,
            cs.commits
        );
        drop(shared);
        // Everything committed is durable.
        let t = reopen(&f);
        for th in 0..4 {
            for i in 0..20u64 {
                assert_eq!(t.get_u64(&format!("k/{th}/{i}")), Some(i));
            }
        }
    }
}
