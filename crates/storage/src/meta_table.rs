//! A durable key-value table with group commit — the stand-in for the DB2
//! tables of the paper.
//!
//! The SHB keeps `latestDelivered(p)`, `released(s, p)`, PFS metadata and
//! (for JMS subscribers) checkpoint tokens here. The JMS auto-acknowledge
//! experiment (paper §5.2) is bottlenecked on *commit throughput* of this
//! table, and improves when many waiting updates are batched into one
//! transaction — so [`MetaTable::commit`] takes a batch and performs
//! exactly one sync, and the table counts commits/bytes for the harness.
//!
//! Atomicity: a batch is applied on recovery only if its commit marker was
//! durable; a torn tail (crash between append and sync) rolls the whole
//! batch back. Compaction snapshots the map and starts a fresh WAL.

use crate::media::{Media, MediaFactory};
use crate::{crc32c, StorageError};
use std::collections::BTreeMap;

const OP_SET: u8 = 1;
const OP_DEL: u8 = 2;
const OP_COMMIT: u8 = 3;
const SNAP_MAGIC: u8 = 0xC3;

/// Tuning knobs for a [`MetaTable`].
#[derive(Debug, Clone, Copy)]
pub struct TableConfig {
    /// Compact (snapshot + fresh WAL) once the WAL exceeds this size.
    pub compact_wal_bytes: u64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            compact_wal_bytes: 1024 * 1024,
        }
    }
}

/// Counters for commit-throughput experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Committed batches (each one sync).
    pub commits: u64,
    /// Individual key updates across all batches.
    pub updates: u64,
    /// WAL bytes written (excluding snapshots).
    pub wal_bytes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

/// A durable string-keyed map with atomic batched commits.
///
/// # Examples
///
/// ```
/// use gryphon_storage::{MemFactory, MetaTable};
///
/// let f = MemFactory::new();
/// let mut t = MetaTable::open(Box::new(f.clone()), "shb-meta", Default::default())?;
/// t.commit(&[
///     ("latestDelivered/0".into(), Some(100u64.to_le_bytes().to_vec())),
///     ("released/7/0".into(), Some(90u64.to_le_bytes().to_vec())),
/// ])?;
/// drop(t); // crash
/// let t = MetaTable::open(Box::new(f), "shb-meta", Default::default())?;
/// assert_eq!(t.get_u64("latestDelivered/0"), Some(100));
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
pub struct MetaTable {
    factory: Box<dyn MediaFactory>,
    name: String,
    config: TableConfig,
    map: BTreeMap<String, Vec<u8>>,
    wal: Box<dyn Media>,
    generation: u64,
    stats: TableStats,
}

impl std::fmt::Debug for MetaTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaTable")
            .field("name", &self.name)
            .field("keys", &self.map.len())
            .field("generation", &self.generation)
            .field("stats", &self.stats)
            .finish()
    }
}

impl MetaTable {
    /// Opens (recovering) or creates the table named `name`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure. Torn WAL tails and torn snapshots
    /// are rolled back, not reported.
    pub fn open(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: TableConfig,
    ) -> Result<Self, StorageError> {
        // Find the newest generation with a valid snapshot (gen 0 has an
        // implicit empty snapshot).
        let mut gens: Vec<u64> = factory
            .list()?
            .iter()
            .filter_map(|n| {
                n.strip_prefix(&format!("{name}-snap-"))
                    .and_then(|g| g.parse().ok())
            })
            .collect();
        gens.sort_unstable();
        gens.reverse();
        let mut map = BTreeMap::new();
        let mut generation = 0;
        for g in gens {
            if let Some(snap) = Self::load_snapshot(factory.as_ref(), name, g)? {
                map = snap;
                generation = g;
                break;
            }
        }
        let wal_name = format!("{name}-wal-{generation}");
        let mut wal = factory.open(&wal_name)?;
        Self::replay_wal(wal.as_mut(), &mut map)?;
        let mut table = MetaTable {
            factory,
            name: name.to_owned(),
            config,
            map,
            wal,
            generation,
            stats: TableStats::default(),
        };
        table.gc_old_generations()?;
        Ok(table)
    }

    fn load_snapshot(
        factory: &dyn MediaFactory,
        name: &str,
        generation: u64,
    ) -> Result<Option<BTreeMap<String, Vec<u8>>>, StorageError> {
        let snap_name = format!("{name}-snap-{generation}");
        if !factory.exists(&snap_name) {
            return Ok(None);
        }
        let mut media = factory.open(&snap_name)?;
        let len = media.len();
        if len < 5 {
            return Ok(None);
        }
        let mut body = vec![0u8; (len - 5) as usize];
        media.read_at(0, &mut body)?;
        let mut tail = [0u8; 5];
        media.read_at(len - 5, &mut tail)?;
        if tail[0] != SNAP_MAGIC
            || u32::from_le_bytes(tail[1..5].try_into().expect("len 4")) != crc32c(&body)
        {
            return Ok(None); // torn snapshot: fall back to older generation
        }
        let mut map = BTreeMap::new();
        let mut pos = 0usize;
        while pos < body.len() {
            let Some((key, value, next)) = Self::parse_pair(&body, pos) else {
                return Ok(None);
            };
            map.insert(key, value);
            pos = next;
        }
        Ok(Some(map))
    }

    fn parse_pair(data: &[u8], pos: usize) -> Option<(String, Vec<u8>, usize)> {
        if pos + 2 > data.len() {
            return None;
        }
        let klen = u16::from_le_bytes(data[pos..pos + 2].try_into().ok()?) as usize;
        let kstart = pos + 2;
        if kstart + klen + 4 > data.len() {
            return None;
        }
        let key = String::from_utf8(data[kstart..kstart + klen].to_vec()).ok()?;
        let vstart = kstart + klen + 4;
        let vlen = u32::from_le_bytes(data[kstart + klen..vstart].try_into().ok()?) as usize;
        if vstart + vlen > data.len() {
            return None;
        }
        let value = data[vstart..vstart + vlen].to_vec();
        Some((key, value, vstart + vlen))
    }

    fn replay_wal(
        wal: &mut dyn Media,
        map: &mut BTreeMap<String, Vec<u8>>,
    ) -> Result<(), StorageError> {
        let len = wal.len();
        if len == 0 {
            return Ok(());
        }
        let mut data = vec![0u8; len as usize];
        wal.read_at(0, &mut data)?;
        let mut pos = 0usize;
        let mut pending: Vec<(String, Option<Vec<u8>>)> = Vec::new();
        let mut committed_end = 0u64;
        while pos < data.len() {
            match data[pos] {
                OP_COMMIT => {
                    for (k, v) in pending.drain(..) {
                        match v {
                            Some(v) => {
                                map.insert(k, v);
                            }
                            None => {
                                map.remove(&k);
                            }
                        }
                    }
                    pos += 1;
                    committed_end = pos as u64;
                }
                OP_SET => {
                    let Some((key, value, next)) = Self::parse_pair(&data, pos + 1) else {
                        break;
                    };
                    pending.push((key, Some(value)));
                    pos = next;
                }
                OP_DEL => {
                    let p = pos + 1;
                    if p + 2 > data.len() {
                        break;
                    }
                    let klen =
                        u16::from_le_bytes(data[p..p + 2].try_into().expect("len 2")) as usize;
                    if p + 2 + klen > data.len() {
                        break;
                    }
                    let Ok(key) = String::from_utf8(data[p + 2..p + 2 + klen].to_vec()) else {
                        break;
                    };
                    pending.push((key, None));
                    pos = p + 2 + klen;
                }
                _ => break, // torn/garbage tail
            }
        }
        // Drop the uncommitted tail so future appends don't interleave
        // with garbage.
        wal.truncate(committed_end)?;
        Ok(())
    }

    /// Atomically applies a batch of updates (`None` deletes the key) with
    /// **one** sync — the group-commit primitive.
    ///
    /// # Errors
    ///
    /// Returns an error if the WAL write or sync fails; the in-memory map
    /// is only updated after the WAL is durable.
    pub fn commit(&mut self, batch: &[(String, Option<Vec<u8>>)]) -> Result<(), StorageError> {
        let mut buf = Vec::new();
        for (k, v) in batch {
            match v {
                Some(v) => {
                    buf.push(OP_SET);
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k.as_bytes());
                    buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    buf.extend_from_slice(v);
                }
                None => {
                    buf.push(OP_DEL);
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k.as_bytes());
                }
            }
        }
        buf.push(OP_COMMIT);
        self.wal.append(&buf)?;
        self.wal.sync()?;
        self.stats.commits += 1;
        self.stats.updates += batch.len() as u64;
        self.stats.wal_bytes += buf.len() as u64;
        for (k, v) in batch {
            match v {
                Some(v) => {
                    self.map.insert(k.clone(), v.clone());
                }
                None => {
                    self.map.remove(k);
                }
            }
        }
        if self.wal.len() > self.config.compact_wal_bytes {
            self.compact()?;
        }
        Ok(())
    }

    /// Convenience single-key set (its own commit).
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`].
    pub fn put(&mut self, key: &str, value: Vec<u8>) -> Result<(), StorageError> {
        self.commit(&[(key.to_owned(), Some(value))])
    }

    /// Convenience single-key delete (its own commit).
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`].
    pub fn delete(&mut self, key: &str) -> Result<(), StorageError> {
        self.commit(&[(key.to_owned(), None)])
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Reads a key as little-endian `u64` (`None` if absent or mis-sized).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let v = self.map.get(key)?;
        Some(u64::from_le_bytes(v.as_slice().try_into().ok()?))
    }

    /// Single-key `u64` write.
    ///
    /// # Errors
    ///
    /// See [`MetaTable::commit`].
    pub fn put_u64(&mut self, key: &str, value: u64) -> Result<(), StorageError> {
        self.put(key, value.to_le_bytes().to_vec())
    }

    /// Iterates keys starting with `prefix` (recovery scans, e.g. all
    /// `released/` entries).
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a [u8])> + 'a {
        self.map
            .range(prefix.to_owned()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the table has no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Commit counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    fn compact(&mut self) -> Result<(), StorageError> {
        let next = self.generation + 1;
        let snap_name = format!("{}-snap-{next}", self.name);
        let mut snap = self.factory.open(&snap_name)?;
        let mut body = Vec::new();
        for (k, v) in &self.map {
            body.extend_from_slice(&(k.len() as u16).to_le_bytes());
            body.extend_from_slice(k.as_bytes());
            body.extend_from_slice(&(v.len() as u32).to_le_bytes());
            body.extend_from_slice(v);
        }
        let crc = crc32c(&body);
        body.push(SNAP_MAGIC);
        body.extend_from_slice(&crc.to_le_bytes());
        snap.append(&body)?;
        snap.sync()?;
        // Point of no return: the new snapshot is durable. Switch WALs.
        self.wal = self.factory.open(&format!("{}-wal-{next}", self.name))?;
        self.generation = next;
        self.stats.compactions += 1;
        self.gc_old_generations()?;
        Ok(())
    }

    fn gc_old_generations(&mut self) -> Result<(), StorageError> {
        let snap_prefix = format!("{}-snap-", self.name);
        let wal_prefix = format!("{}-wal-", self.name);
        for n in self.factory.list()? {
            let old = n
                .strip_prefix(&snap_prefix)
                .or_else(|| n.strip_prefix(&wal_prefix))
                .and_then(|g| g.parse::<u64>().ok())
                .map(|g| g < self.generation)
                .unwrap_or(false);
            if old {
                self.factory.remove(&n)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemFactory;

    fn fresh() -> (MemFactory, MetaTable) {
        let f = MemFactory::new();
        let t = MetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap();
        (f, t)
    }

    fn reopen(f: &MemFactory) -> MetaTable {
        MetaTable::open(Box::new(f.clone()), "t", TableConfig::default()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let (_f, mut t) = fresh();
        t.put("a", vec![1]).unwrap();
        t.put_u64("n", 42).unwrap();
        assert_eq!(t.get("a"), Some(&[1][..]));
        assert_eq!(t.get_u64("n"), Some(42));
        t.delete("a").unwrap();
        assert_eq!(t.get("a"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn committed_batches_survive_crash() {
        let (f, mut t) = fresh();
        t.commit(&[("x".into(), Some(vec![1])), ("y".into(), Some(vec![2]))])
            .unwrap();
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get("x"), Some(&[1][..]));
        assert_eq!(t.get("y"), Some(&[2][..]));
    }

    #[test]
    fn torn_batch_rolls_back_atomically() {
        let (f, mut t) = fresh();
        t.put("stable", vec![7]).unwrap();
        // Append a batch but crash before sync.
        t.wal
            .append(&{
                let mut b = vec![OP_SET];
                b.extend_from_slice(&1u16.to_le_bytes());
                b.push(b'x');
                b.extend_from_slice(&1u32.to_le_bytes());
                b.push(9);
                b // note: no OP_COMMIT
            })
            .unwrap();
        drop(t);
        f.crash_lose_unsynced();
        let t = reopen(&f);
        assert_eq!(t.get("stable"), Some(&[7][..]));
        assert_eq!(t.get("x"), None, "uncommitted batch must roll back");
    }

    #[test]
    fn uncommitted_tail_without_marker_is_dropped() {
        let (f, mut t) = fresh();
        t.put("a", vec![1]).unwrap();
        // Synced but marker-less records also roll back (crash between the
        // record sync and the commit marker does not exist in our format —
        // marker is in the same batch — but garbage tails can).
        t.wal.append(&[OP_SET, 0xFF]).unwrap();
        t.wal.sync().unwrap();
        drop(t);
        let mut t = reopen(&f);
        assert_eq!(t.get("a"), Some(&[1][..]));
        // And the table remains writable after tail truncation.
        t.put("b", vec![2]).unwrap();
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get("b"), Some(&[2][..]));
    }

    #[test]
    fn batch_delete_applies() {
        let (f, mut t) = fresh();
        t.put("k", vec![1]).unwrap();
        t.commit(&[("k".into(), None), ("m".into(), Some(vec![3]))])
            .unwrap();
        drop(t);
        let t = reopen(&f);
        assert_eq!(t.get("k"), None);
        assert_eq!(t.get("m"), Some(&[3][..]));
    }

    #[test]
    fn compaction_preserves_data_and_gcs_old_generations() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: 64,
            },
        )
        .unwrap();
        for i in 0..50u64 {
            t.put_u64(&format!("key-{i}"), i).unwrap();
        }
        assert!(t.stats().compactions > 0);
        drop(t);
        let t = reopen(&f);
        for i in 0..50u64 {
            assert_eq!(t.get_u64(&format!("key-{i}")), Some(i), "key-{i}");
        }
        // Old generations are removed.
        let names = f.list().unwrap();
        let snaps = names.iter().filter(|n| n.contains("-snap-")).count();
        assert_eq!(snaps, 1, "exactly one snapshot generation: {names:?}");
    }

    #[test]
    fn torn_snapshot_falls_back_to_previous_generation() {
        let f = MemFactory::new();
        let mut t = MetaTable::open(
            Box::new(f.clone()),
            "t",
            TableConfig {
                compact_wal_bytes: 64,
            },
        )
        .unwrap();
        for i in 0..50u64 {
            t.put_u64(&format!("key-{i}"), i).unwrap();
        }
        let gen = t.generation;
        drop(t);
        // Corrupt the newest snapshot.
        f.corrupt_bit(&format!("t-snap-{gen}"), 0);
        let t = reopen(&f);
        // Data from the corrupted generation's snapshot may be lost, but
        // the table must open and be internally consistent (keys either
        // present with correct value or absent).
        for i in 0..50u64 {
            if let Some(v) = t.get_u64(&format!("key-{i}")) {
                assert_eq!(v, i);
            }
        }
    }

    #[test]
    fn iter_prefix_scans_range() {
        let (_f, mut t) = fresh();
        t.put("rel/1/0", vec![1]).unwrap();
        t.put("rel/2/0", vec![2]).unwrap();
        t.put("zzz", vec![3]).unwrap();
        let keys: Vec<&str> = t.iter_prefix("rel/").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["rel/1/0", "rel/2/0"]);
    }

    #[test]
    fn stats_count_commits_and_updates() {
        let (_f, mut t) = fresh();
        t.commit(&[("a".into(), Some(vec![])), ("b".into(), Some(vec![]))])
            .unwrap();
        t.put("c", vec![]).unwrap();
        let s = t.stats();
        assert_eq!(s.commits, 2);
        assert_eq!(s.updates, 3);
        assert!(s.wal_bytes > 0);
    }
}
