//! Property tests: storage structures against reference models, with
//! crash injection.

use crate::{
    decode_event, encode_event, EventLog, LogIndex, LogVolume, MediaFactory, MemFactory, MetaTable,
    StreamId, TableConfig, VolumeConfig,
};
use gryphon_types::{AttrValue, Event, PubendId, Timestamp};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum VolOp {
    Append { stream: u8, len: u8 },
    Chop { stream: u8, upto: u8 },
    Sync,
    CrashRecover,
}

fn arb_vol_op() -> impl Strategy<Value = VolOp> {
    prop_oneof![
        4 => (0u8..3, 1u8..60).prop_map(|(stream, len)| VolOp::Append { stream, len }),
        1 => (0u8..3, 0u8..40).prop_map(|(stream, upto)| VolOp::Chop { stream, upto }),
        1 => Just(VolOp::Sync),
        1 => Just(VolOp::CrashRecover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LogVolume ≡ a per-stream map model, including across
    /// crash-and-recover cycles (unsynced appends may be lost, but only
    /// as a contiguous tail; chops and synced data survive).
    #[test]
    fn log_volume_equals_model(ops in prop::collection::vec(arb_vol_op(), 1..60)) {
        let factory = MemFactory::new();
        let mut vol = LogVolume::create(
            Box::new(factory.clone()),
            "v",
            VolumeConfig { segment_bytes: 512, ..VolumeConfig::default() },
        ).unwrap();
        // Model: per stream, (index → payload) of records; `synced_next`
        // = next index as of last sync; `chopped_to` per stream.
        let mut model: BTreeMap<u8, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        let mut next: BTreeMap<u8, u64> = BTreeMap::new();
        let mut synced: BTreeMap<u8, u64> = BTreeMap::new(); // next idx at last sync
        let mut chopped: BTreeMap<u8, u64> = BTreeMap::new();
        for op in ops {
            match op {
                VolOp::Append { stream, len } => {
                    let idx = vol.append(StreamId(stream as u32), &vec![stream; len as usize]).unwrap();
                    let n = next.entry(stream).or_insert(0);
                    prop_assert_eq!(idx, LogIndex(*n), "index assignment");
                    model.entry(stream).or_default().insert(*n, vec![stream; len as usize]);
                    *n += 1;
                }
                VolOp::Chop { stream, upto } => {
                    vol.chop(StreamId(stream as u32), LogIndex(upto as u64)).unwrap();
                    if !next.contains_key(&stream) {
                        // Chopping a stream that never existed is a no-op.
                        continue;
                    }
                    let c = chopped.entry(stream).or_insert(0);
                    if (upto as u64) > *c {
                        *c = upto as u64;
                        let m = model.entry(stream).or_default();
                        let dead: Vec<u64> = m.range(..*c).map(|(&i, _)| i).collect();
                        for i in dead { m.remove(&i); }
                        let n = next.entry(stream).or_insert(0);
                        *n = (*n).max(*c);
                        // Chops are logged immediately but only durable
                        // after the next sync; MemFactory's crash keeps
                        // synced bytes only. We conservatively treat chop
                        // as durable-after-sync like appends.
                    }
                }
                VolOp::Sync => {
                    vol.sync().unwrap();
                    for (&s, &n) in &next { synced.insert(s, n); }
                }
                VolOp::CrashRecover => {
                    // A crash may lose any unsynced suffix; to keep the
                    // model deterministic, sync first (tail-loss behaviour
                    // is covered by unit tests).
                    vol.sync().unwrap();
                    for (&s, &n) in &next { synced.insert(s, n); }
                    drop(vol);
                    vol = LogVolume::open(
                        Box::new(factory.clone()),
                        "v",
                        VolumeConfig { segment_bytes: 512, ..VolumeConfig::default() },
                    ).unwrap();
                }
            }
            // Full equivalence check.
            for s in 0u8..3 {
                let m = model.get(&s).cloned().unwrap_or_default();
                let got = vol.read_all(StreamId(s as u32)).unwrap();
                let got_map: BTreeMap<u64, Vec<u8>> =
                    got.into_iter().map(|(i, d)| (i.0, d.to_vec())).collect();
                prop_assert_eq!(&got_map, &m, "stream {} contents", s);
                prop_assert_eq!(
                    vol.next_index(StreamId(s as u32)).0,
                    next.get(&s).copied().unwrap_or(0),
                    "stream {} next index", s
                );
            }
        }
    }

    /// Event codec round-trips arbitrary events.
    #[test]
    fn event_codec_roundtrip(
        pubend in 0u32..8,
        ts in 0u64..1_000_000,
        attrs in prop::collection::btree_map(
            "[a-z_][a-z0-9_.]{0,12}",
            prop_oneof![
                any::<i64>().prop_map(AttrValue::Int),
                (-1e12f64..1e12).prop_map(AttrValue::Float),
                "[ -~]{0,24}".prop_map(AttrValue::Str),
                any::<bool>().prop_map(AttrValue::Bool),
            ],
            0..6,
        ),
        payload in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut b = Event::builder(PubendId(pubend));
        for (k, v) in attrs {
            b = b.attr(k, v);
        }
        let e = b.payload(payload).build(Timestamp(ts));
        let decoded = decode_event(&encode_event(&e)).unwrap();
        prop_assert_eq!(decoded, e);
    }

    /// MetaTable: committed state always equals the model after recovery;
    /// uncommitted tails never partially apply.
    #[test]
    fn meta_table_recovery_equals_model(
        batches in prop::collection::vec(
            prop::collection::vec(("k[0-9]{1,2}", prop::option::of(0u64..100)), 1..5),
            1..20,
        ),
        crash_at in 0usize..20,
    ) {
        let factory = MemFactory::new();
        let mut table = MetaTable::open(
            Box::new(factory.clone()),
            "t",
            TableConfig { compact_wal_bytes: 256 },
        ).unwrap();
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        for (i, batch) in batches.iter().enumerate() {
            let updates: Vec<(String, Option<Vec<u8>>)> = batch
                .iter()
                .map(|(k, v)| (k.clone(), v.map(|x| x.to_le_bytes().to_vec())))
                .collect();
            table.commit(&updates).unwrap();
            for (k, v) in batch {
                match v {
                    Some(x) => { model.insert(k.clone(), *x); }
                    None => { model.remove(k); }
                }
            }
            if i == crash_at {
                drop(table);
                factory.crash_lose_unsynced();
                table = MetaTable::open(
                    Box::new(factory.clone()),
                    "t",
                    TableConfig { compact_wal_bytes: 256 },
                ).unwrap();
            }
        }
        drop(table);
        let table = MetaTable::open(
            Box::new(factory),
            "t",
            TableConfig { compact_wal_bytes: 256 },
        ).unwrap();
        for (k, v) in &model {
            prop_assert_eq!(table.get_u64(k), Some(*v), "key {}", k);
        }
        prop_assert_eq!(table.len(), model.len());
    }

    /// Torn-write safety: any truncation or single-bit corruption of the
    /// unsealed tail recovers to *exactly* the longest valid frame prefix
    /// — records before the tamper point survive byte-for-byte, records
    /// at/after it are gone, and the volume accepts new appends.
    #[test]
    fn tampered_tail_recovers_to_durable_prefix(
        lens in prop::collection::vec(1usize..60, 1..20),
        tamper_seed in 0usize..1_000_000,
        flip_bit in any::<bool>(),
    ) {
        const HDR: usize = 21; // segment frame header (type+stream+index+len+crc)
        let factory = MemFactory::new();
        let s = StreamId(0);
        {
            let mut vol = LogVolume::create(
                Box::new(factory.clone()),
                "v",
                VolumeConfig::default(), // 4 MiB segments: everything in segment 0
            ).unwrap();
            for (i, &len) in lens.iter().enumerate() {
                vol.append(s, &vec![i as u8; len]).unwrap();
            }
            vol.sync().unwrap();
        }
        // Frame i occupies [ends[i-1], ends[i]) in the segment.
        let mut ends = Vec::with_capacity(lens.len());
        let mut off = 0usize;
        for &len in &lens {
            off += HDR + len;
            ends.push(off);
        }
        let total = off;
        let pos = tamper_seed % total;
        if flip_bit {
            factory.corrupt_bit("v-00000000.seg", pos as u64);
        } else {
            let mut m = factory.open("v-00000000.seg").unwrap();
            m.truncate(pos as u64).unwrap();
        }
        // Exactly the frames that end at or before the tamper point must
        // survive recovery (the frame containing `pos` and everything
        // after it is the torn tail).
        let k = ends.iter().filter(|&&e| e <= pos).count();
        let mut vol = LogVolume::open(
            Box::new(factory.clone()),
            "v",
            VolumeConfig::default(),
        ).unwrap();
        for (i, &len) in lens.iter().enumerate() {
            let got = vol.read(s, LogIndex(i as u64)).unwrap();
            if i < k {
                prop_assert_eq!(got.as_deref(), Some(&vec![i as u8; len][..]), "record {}", i);
            } else {
                prop_assert!(got.is_none(), "record {} should be truncated", i);
            }
        }
        prop_assert_eq!(vol.next_index(s), LogIndex(k as u64));
        // The recovered volume is immediately writable again.
        let idx = vol.append(s, b"post-recovery").unwrap();
        prop_assert_eq!(idx, LogIndex(k as u64));
        vol.sync().unwrap();
        prop_assert_eq!(vol.read(s, idx).unwrap().as_deref(), Some(&b"post-recovery"[..]));
    }

    /// A synced chop boundary survives a crash that loses the unsynced
    /// tail: chopped events stay gone (never re-surface), synced live
    /// events stay readable, and lost-tail events read as absent — the
    /// broker answers `L`, never a wrong `S`, for both.
    #[test]
    fn event_log_chop_boundary_survives_crash(
        n in 2u64..24,
        chop_seed in 1u64..24,
        extra in 0u64..4,
    ) {
        let chop_ts = chop_seed.min(n);
        let p = PubendId(3);
        let factory = MemFactory::new();
        let config = || VolumeConfig { segment_bytes: 256, ..VolumeConfig::default() };
        let ev = |ts: u64| {
            std::sync::Arc::new(
                Event::builder(p).payload(vec![ts as u8; 8]).build(Timestamp(ts)),
            )
        };
        {
            let mut log = EventLog::open(Box::new(factory.clone()), "el", config()).unwrap();
            for ts in 1..=n {
                log.append(&ev(ts)).unwrap();
            }
            log.chop_below(p, Timestamp(chop_ts)).unwrap();
            log.sync().unwrap();
            for ts in n + 1..=n + extra {
                log.append(&ev(ts)).unwrap(); // unsynced tail, lost below
            }
        }
        factory.crash_lose_unsynced();
        let mut log = EventLog::open(Box::new(factory), "el", config()).unwrap();
        prop_assert_eq!(log.chopped_below_ts(p), Timestamp(chop_ts));
        for ts in 1..chop_ts {
            prop_assert!(log.read_at(p, Timestamp(ts)).unwrap().is_none(), "chopped ts {}", ts);
        }
        for ts in chop_ts..=n {
            let got = log.read_at(p, Timestamp(ts)).unwrap();
            prop_assert!(got.is_some(), "synced ts {}", ts);
            prop_assert_eq!(got.unwrap().ts, Timestamp(ts));
        }
        // The unsynced tail may be partially durable (a segment roll
        // seals — and therefore syncs — the filled segment), but what
        // survives must be a contiguous prefix: no holes, no reordering.
        let mut lost_from = None;
        for ts in n + 1..=n + extra {
            match log.read_at(p, Timestamp(ts)).unwrap() {
                Some(got) => {
                    prop_assert!(lost_from.is_none(), "hole before ts {}", ts);
                    prop_assert_eq!(got.ts, Timestamp(ts));
                }
                None => {
                    lost_from.get_or_insert(ts);
                }
            }
        }
    }

    /// Every strict prefix of an encoded event is rejected — a torn event
    /// record can never decode to a different valid event.
    #[test]
    fn codec_rejects_every_truncation(
        pubend in 0u32..8,
        ts in 0u64..1_000_000,
        key in "[a-z]{1,8}",
        payload in prop::collection::vec(any::<u8>(), 0..120),
        cut_seed in 0usize..1_000_000,
    ) {
        let e = Event::builder(PubendId(pubend))
            .attr(key, AttrValue::Int(ts as i64))
            .payload(payload)
            .build(Timestamp(ts));
        let bytes = encode_event(&e);
        let cut = cut_seed % bytes.len(); // strict prefix: 0 ≤ cut < len
        prop_assert!(decode_event(&bytes[..cut]).is_err());
    }

    /// The decoder never panics on arbitrary input, only errors.
    #[test]
    fn codec_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_event(&bytes);
    }
}
