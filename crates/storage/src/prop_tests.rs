//! Property tests: storage structures against reference models, with
//! crash injection.

use crate::{
    decode_event, encode_event, LogIndex, LogVolume, MemFactory, MetaTable, StreamId, TableConfig,
    VolumeConfig,
};
use gryphon_types::{AttrValue, Event, PubendId, Timestamp};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum VolOp {
    Append { stream: u8, len: u8 },
    Chop { stream: u8, upto: u8 },
    Sync,
    CrashRecover,
}

fn arb_vol_op() -> impl Strategy<Value = VolOp> {
    prop_oneof![
        4 => (0u8..3, 1u8..60).prop_map(|(stream, len)| VolOp::Append { stream, len }),
        1 => (0u8..3, 0u8..40).prop_map(|(stream, upto)| VolOp::Chop { stream, upto }),
        1 => Just(VolOp::Sync),
        1 => Just(VolOp::CrashRecover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LogVolume ≡ a per-stream map model, including across
    /// crash-and-recover cycles (unsynced appends may be lost, but only
    /// as a contiguous tail; chops and synced data survive).
    #[test]
    fn log_volume_equals_model(ops in prop::collection::vec(arb_vol_op(), 1..60)) {
        let factory = MemFactory::new();
        let mut vol = LogVolume::create(
            Box::new(factory.clone()),
            "v",
            VolumeConfig { segment_bytes: 512, sync_every_append: false },
        ).unwrap();
        // Model: per stream, (index → payload) of records; `synced_next`
        // = next index as of last sync; `chopped_to` per stream.
        let mut model: BTreeMap<u8, BTreeMap<u64, Vec<u8>>> = BTreeMap::new();
        let mut next: BTreeMap<u8, u64> = BTreeMap::new();
        let mut synced: BTreeMap<u8, u64> = BTreeMap::new(); // next idx at last sync
        let mut chopped: BTreeMap<u8, u64> = BTreeMap::new();
        for op in ops {
            match op {
                VolOp::Append { stream, len } => {
                    let idx = vol.append(StreamId(stream as u32), &vec![stream; len as usize]).unwrap();
                    let n = next.entry(stream).or_insert(0);
                    prop_assert_eq!(idx, LogIndex(*n), "index assignment");
                    model.entry(stream).or_default().insert(*n, vec![stream; len as usize]);
                    *n += 1;
                }
                VolOp::Chop { stream, upto } => {
                    vol.chop(StreamId(stream as u32), LogIndex(upto as u64)).unwrap();
                    if !next.contains_key(&stream) {
                        // Chopping a stream that never existed is a no-op.
                        continue;
                    }
                    let c = chopped.entry(stream).or_insert(0);
                    if (upto as u64) > *c {
                        *c = upto as u64;
                        let m = model.entry(stream).or_default();
                        let dead: Vec<u64> = m.range(..*c).map(|(&i, _)| i).collect();
                        for i in dead { m.remove(&i); }
                        let n = next.entry(stream).or_insert(0);
                        *n = (*n).max(*c);
                        // Chops are logged immediately but only durable
                        // after the next sync; MemFactory's crash keeps
                        // synced bytes only. We conservatively treat chop
                        // as durable-after-sync like appends.
                    }
                }
                VolOp::Sync => {
                    vol.sync().unwrap();
                    for (&s, &n) in &next { synced.insert(s, n); }
                }
                VolOp::CrashRecover => {
                    // A crash may lose any unsynced suffix; to keep the
                    // model deterministic, sync first (tail-loss behaviour
                    // is covered by unit tests).
                    vol.sync().unwrap();
                    for (&s, &n) in &next { synced.insert(s, n); }
                    drop(vol);
                    vol = LogVolume::open(
                        Box::new(factory.clone()),
                        "v",
                        VolumeConfig { segment_bytes: 512, sync_every_append: false },
                    ).unwrap();
                }
            }
            // Full equivalence check.
            for s in 0u8..3 {
                let m = model.get(&s).cloned().unwrap_or_default();
                let got = vol.read_all(StreamId(s as u32)).unwrap();
                let got_map: BTreeMap<u64, Vec<u8>> =
                    got.into_iter().map(|(i, d)| (i.0, d)).collect();
                prop_assert_eq!(&got_map, &m, "stream {} contents", s);
                prop_assert_eq!(
                    vol.next_index(StreamId(s as u32)).0,
                    next.get(&s).copied().unwrap_or(0),
                    "stream {} next index", s
                );
            }
        }
    }

    /// Event codec round-trips arbitrary events.
    #[test]
    fn event_codec_roundtrip(
        pubend in 0u32..8,
        ts in 0u64..1_000_000,
        attrs in prop::collection::btree_map(
            "[a-z_][a-z0-9_.]{0,12}",
            prop_oneof![
                any::<i64>().prop_map(AttrValue::Int),
                (-1e12f64..1e12).prop_map(AttrValue::Float),
                "[ -~]{0,24}".prop_map(AttrValue::Str),
                any::<bool>().prop_map(AttrValue::Bool),
            ],
            0..6,
        ),
        payload in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut b = Event::builder(PubendId(pubend));
        for (k, v) in attrs {
            b = b.attr(k, v);
        }
        let e = b.payload(payload).build(Timestamp(ts));
        let decoded = decode_event(&encode_event(&e)).unwrap();
        prop_assert_eq!(decoded, e);
    }

    /// MetaTable: committed state always equals the model after recovery;
    /// uncommitted tails never partially apply.
    #[test]
    fn meta_table_recovery_equals_model(
        batches in prop::collection::vec(
            prop::collection::vec(("k[0-9]{1,2}", prop::option::of(0u64..100)), 1..5),
            1..20,
        ),
        crash_at in 0usize..20,
    ) {
        let factory = MemFactory::new();
        let mut table = MetaTable::open(
            Box::new(factory.clone()),
            "t",
            TableConfig { compact_wal_bytes: 256 },
        ).unwrap();
        let mut model: BTreeMap<String, u64> = BTreeMap::new();
        for (i, batch) in batches.iter().enumerate() {
            let updates: Vec<(String, Option<Vec<u8>>)> = batch
                .iter()
                .map(|(k, v)| (k.clone(), v.map(|x| x.to_le_bytes().to_vec())))
                .collect();
            table.commit(&updates).unwrap();
            for (k, v) in batch {
                match v {
                    Some(x) => { model.insert(k.clone(), *x); }
                    None => { model.remove(k); }
                }
            }
            if i == crash_at {
                drop(table);
                factory.crash_lose_unsynced();
                table = MetaTable::open(
                    Box::new(factory.clone()),
                    "t",
                    TableConfig { compact_wal_bytes: 256 },
                ).unwrap();
            }
        }
        drop(table);
        let table = MetaTable::open(
            Box::new(factory),
            "t",
            TableConfig { compact_wal_bytes: 256 },
        ).unwrap();
        for (k, v) in &model {
            prop_assert_eq!(table.get_u64(k), Some(*v), "key {}", k);
        }
        prop_assert_eq!(table.len(), model.len());
    }
}
