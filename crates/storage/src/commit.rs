//! Group-commit pipeline: one device flush per round-trip, shared by
//! every committer that appended in the meantime.
//!
//! The paper's latency budget (§5: 44 of 50 ms is PHB logging) and its
//! JMS throughput curve (§5.2) are both stories about how many fsyncs the
//! hot path pays. [`CommitPipeline`] implements the classic
//! leader/follower group commit:
//!
//! 1. A committer locks the target, appends its records, and takes a
//!    *commit sequence number* — its position in the append order.
//! 2. It then waits for the *durability horizon* to reach its sequence.
//!    If nobody is flushing, it becomes the **leader**: it snapshots the
//!    current append horizon, performs **one** `sync` covering every
//!    record appended so far, advances the durable horizon, and wakes all
//!    **followers** — whose commits became durable without paying a
//!    flush of their own.
//!
//! With `n` concurrent committers and device latency `L`, throughput goes
//! from `1/L` commits per second (everyone flushes alone) to `n/L` — the
//! `log_volume_commit` bench measures exactly this ratio.
//!
//! A failed flush **poisons** the pipeline: there is no way to know which
//! bytes reached the platter, so every in-flight and subsequent commit
//! reports an error (the post-fsyncgate discipline — never retry an
//! fsync and pretend).
//!
//! Timing fields in [`CommitReceipt`] are only populated when the
//! pipeline is built with [`CommitPipeline::with_timing`]; the default
//! reports zeros so deterministic runs (the simulator's golden tests)
//! never observe wall-clock jitter.

use crate::StorageError;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A target a [`CommitPipeline`] can make durable: anything with a
/// "flush everything appended so far" operation.
pub trait Commitable: Send {
    /// Flushes all previously appended records to durable storage.
    ///
    /// # Errors
    ///
    /// Returns an error if the device flush fails — which poisons the
    /// pipeline (see module docs).
    fn sync_commit(&mut self) -> Result<(), StorageError>;
}

/// Aggregate counters for a pipeline (monotone; read via
/// [`CommitPipeline::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitPipelineStats {
    /// Commits completed (leaders + followers).
    pub commits: u64,
    /// Device flushes performed.
    pub fsyncs: u64,
    /// Largest number of commits covered by one flush.
    pub max_group: u64,
    /// Total microseconds committers spent waiting for durability
    /// (zero unless timing is enabled).
    pub sync_wait_us_total: u64,
    /// Total microseconds spent inside device flushes (zero unless
    /// timing is enabled).
    pub fsync_us_total: u64,
}

/// What one commit observed on its way through the pipeline — the raw
/// material for the `storage.commit.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitReceipt {
    /// This commit's sequence number in the append order.
    pub seq: u64,
    /// How many commits the flush that made this one durable covered.
    pub group_size: u64,
    /// Whether this commit performed the flush itself.
    pub leader: bool,
    /// Microseconds from append completion to durability (0 without
    /// timing).
    pub sync_wait_us: u64,
    /// Microseconds the covering flush took (0 without timing, and for
    /// followers that joined after the flush completed).
    pub fsync_us: u64,
}

#[derive(Debug, Default)]
struct CommitState {
    appended_seq: u64,
    durable_seq: u64,
    /// Commits covered by the most recent successful flush — what a
    /// follower reports as its covering group size.
    last_group: u64,
    syncing: bool,
    poisoned: bool,
    stats: CommitPipelineStats,
}

struct PipelineInner<T> {
    /// Lock order: `target` before `state`, never the reverse while
    /// holding `state` (the leader re-locks `target` only after
    /// releasing `state`).
    target: Mutex<T>,
    state: Mutex<CommitState>,
    cv: Condvar,
    /// Committers that entered the pipeline (append pending or done);
    /// the leader's group window waits for `appended_seq` to catch up
    /// to this before flushing.
    entered: std::sync::atomic::AtomicU64,
    measure_time: bool,
}

/// How many times a leader yields waiting for already-entered committers
/// to land their appends. Bounded so one stalled appender cannot delay
/// everyone else's durability indefinitely; in the single-threaded case
/// the window is zero iterations.
const GROUP_WINDOW_SPINS: usize = 64;

/// Concurrent group-commit coordinator around a [`Commitable`] target.
///
/// Cloning is cheap and shares the pipeline; each clone can commit from
/// its own thread.
///
/// # Examples
///
/// ```
/// use gryphon_storage::{CommitPipeline, LogVolume, MemFactory, StreamId, VolumeConfig};
///
/// let vol = LogVolume::create(Box::new(MemFactory::new()), "v", VolumeConfig::default())?;
/// let pipe = CommitPipeline::new(vol);
/// let (idx, receipt) = pipe.commit_with(|v| v.append(StreamId(0), b"hello"))?;
/// assert_eq!(idx.0, 0);
/// assert!(receipt.group_size >= 1);
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
pub struct CommitPipeline<T> {
    inner: Arc<PipelineInner<T>>,
}

impl<T> Clone for CommitPipeline<T> {
    fn clone(&self) -> Self {
        CommitPipeline {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for CommitPipeline<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("state lock");
        f.debug_struct("CommitPipeline")
            .field("appended_seq", &st.appended_seq)
            .field("durable_seq", &st.durable_seq)
            .field("poisoned", &st.poisoned)
            .field("stats", &st.stats)
            .finish()
    }
}

impl<T: Commitable> CommitPipeline<T> {
    /// Wraps `target` with timing disabled (deterministic receipts).
    pub fn new(target: T) -> Self {
        Self::build(target, false)
    }

    /// Wraps `target` with wall-clock timing of waits and flushes —
    /// for the threaded runtime and benches, never for the simulator.
    pub fn with_timing(target: T) -> Self {
        Self::build(target, true)
    }

    fn build(target: T, measure_time: bool) -> Self {
        CommitPipeline {
            inner: Arc::new(PipelineInner {
                target: Mutex::new(target),
                state: Mutex::new(CommitState::default()),
                cv: Condvar::new(),
                entered: std::sync::atomic::AtomicU64::new(0),
                measure_time,
            }),
        }
    }

    /// Runs `f` with exclusive access to the target — for reads and
    /// non-durable mutations that need no flush.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut t = self.inner.target.lock().expect("target lock");
        f(&mut t)
    }

    /// Appends via `f`, then waits until a flush covers the append.
    ///
    /// `f` runs under the target lock; if it succeeds, the commit takes a
    /// sequence number and this call blocks until the durability horizon
    /// reaches it — either by performing the flush itself (leader) or by
    /// riding on another committer's flush (follower).
    ///
    /// # Errors
    ///
    /// Returns `f`'s error (nothing was enqueued), or an error if the
    /// covering flush failed or the pipeline is poisoned.
    pub fn commit_with<R>(
        &self,
        f: impl FnOnce(&mut T) -> Result<R, StorageError>,
    ) -> Result<(R, CommitReceipt), StorageError> {
        use std::sync::atomic::Ordering;
        let inner = &*self.inner;
        // Phase 1: append under the target lock, take a sequence number.
        // The `entered` ticket is taken before the lock so a concurrent
        // leader knows this append is coming and can wait for it.
        inner.entered.fetch_add(1, Ordering::AcqRel);
        let (result, seq) = {
            let mut t = inner.target.lock().expect("target lock");
            let r = match f(&mut t) {
                Ok(r) => r,
                Err(e) => {
                    inner.entered.fetch_sub(1, Ordering::AcqRel);
                    return Err(e);
                }
            };
            let mut st = inner.state.lock().expect("state lock");
            if st.poisoned {
                inner.entered.fetch_sub(1, Ordering::AcqRel);
                return Err(poisoned_error());
            }
            st.appended_seq += 1;
            (r, st.appended_seq)
        };
        // Phase 2: wait for durability, flushing ourselves if nobody is.
        let wait_start = self.now();
        let mut st = inner.state.lock().expect("state lock");
        loop {
            if st.poisoned {
                return Err(poisoned_error());
            }
            if st.durable_seq >= seq {
                let sync_wait_us = self.elapsed_us(wait_start);
                st.stats.commits += 1;
                st.stats.sync_wait_us_total += sync_wait_us;
                let receipt = CommitReceipt {
                    seq,
                    // The flush that advanced `durable_seq` past us set
                    // `last_group`; reporting the distance to the horizon
                    // instead would skew the group-size histogram low for
                    // early members of a group.
                    group_size: st.last_group,
                    leader: false,
                    sync_wait_us,
                    fsync_us: 0,
                };
                return Ok((result, receipt));
            }
            if !st.syncing {
                st.syncing = true;
                let prev_durable = st.durable_seq;
                drop(st);
                // Group window: committers that already took a ticket are
                // about to append — yield until they land (bounded) so one
                // flush covers the whole burst instead of racing them to
                // the target lock.
                for _ in 0..GROUP_WINDOW_SPINS {
                    let entered = inner.entered.load(Ordering::Acquire);
                    let appended = inner.state.lock().expect("state lock").appended_seq;
                    if appended >= entered {
                        break;
                    }
                    std::thread::yield_now();
                }
                let fsync_start = self.now();
                // Snapshot the horizon only after winning the target lock:
                // every committer queued ahead of us has appended by then,
                // so this flush covers them all (that queue *is* the
                // group). Lock order target → state, held briefly.
                let (flush, horizon) = {
                    let mut t = inner.target.lock().expect("target lock");
                    let horizon = inner.state.lock().expect("state lock").appended_seq;
                    (t.sync_commit(), horizon)
                };
                let fsync_us = self.elapsed_us(fsync_start);
                st = inner.state.lock().expect("state lock");
                st.syncing = false;
                match flush {
                    Ok(()) => {
                        st.durable_seq = st.durable_seq.max(horizon);
                        let group = horizon - prev_durable;
                        st.last_group = group;
                        let sync_wait_us = self.elapsed_us(wait_start);
                        st.stats.commits += 1;
                        st.stats.fsyncs += 1;
                        st.stats.max_group = st.stats.max_group.max(group);
                        st.stats.sync_wait_us_total += sync_wait_us;
                        st.stats.fsync_us_total += fsync_us;
                        inner.cv.notify_all();
                        return Ok((
                            result,
                            CommitReceipt {
                                seq,
                                group_size: group,
                                leader: true,
                                sync_wait_us,
                                fsync_us,
                            },
                        ));
                    }
                    Err(e) => {
                        st.poisoned = true;
                        inner.cv.notify_all();
                        return Err(e);
                    }
                }
            }
            st = inner.cv.wait(st).expect("state lock");
        }
    }

    /// Aggregate pipeline counters.
    pub fn stats(&self) -> CommitPipelineStats {
        self.inner.state.lock().expect("state lock").stats
    }

    /// Unwraps the target if this is the last handle.
    pub fn try_into_inner(self) -> Result<T, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.target.into_inner().expect("target lock")),
            Err(inner) => Err(CommitPipeline { inner }),
        }
    }

    fn now(&self) -> Option<Instant> {
        self.inner.measure_time.then(Instant::now)
    }

    fn elapsed_us(&self, start: Option<Instant>) -> u64 {
        start.map(|s| s.elapsed().as_micros() as u64).unwrap_or(0)
    }
}

fn poisoned_error() -> StorageError {
    StorageError::Io(std::io::Error::other(
        "commit pipeline poisoned by a failed flush",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A commitable that records how many flushes happened and can be
    /// told to fail.
    struct FakeLog {
        appended: u64,
        synced: Arc<AtomicU64>,
        fail: bool,
        sleep_us: u64,
    }

    impl Commitable for FakeLog {
        fn sync_commit(&mut self) -> Result<(), StorageError> {
            if self.fail {
                return Err(StorageError::Io(std::io::Error::other("boom")));
            }
            if self.sleep_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(self.sleep_us));
            }
            self.synced.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn fake(sleep_us: u64) -> (CommitPipeline<FakeLog>, Arc<AtomicU64>) {
        let synced = Arc::new(AtomicU64::new(0));
        let pipe = CommitPipeline::new(FakeLog {
            appended: 0,
            synced: Arc::clone(&synced),
            fail: false,
            sleep_us,
        });
        (pipe, synced)
    }

    #[test]
    fn single_commit_is_a_group_of_one() {
        let (pipe, synced) = fake(0);
        let ((), receipt) = pipe
            .commit_with(|l| {
                l.appended += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(receipt.seq, 1);
        assert_eq!(receipt.group_size, 1);
        assert!(receipt.leader);
        assert_eq!(receipt.sync_wait_us, 0, "timing disabled by default");
        assert_eq!(synced.load(Ordering::SeqCst), 1);
        let st = pipe.stats();
        assert_eq!(st.commits, 1);
        assert_eq!(st.fsyncs, 1);
    }

    #[test]
    fn concurrent_commits_share_flushes() {
        const THREADS: usize = 8;
        const COMMITS: usize = 25;
        // A slow device forces groups to form.
        let (pipe, synced) = fake(300);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let pipe = pipe.clone();
                std::thread::spawn(move || {
                    let mut max_group = 0u64;
                    for _ in 0..COMMITS {
                        let ((), r) = pipe
                            .commit_with(|l| {
                                l.appended += 1;
                                Ok(())
                            })
                            .unwrap();
                        max_group = max_group.max(r.group_size);
                    }
                    max_group
                })
            })
            .collect();
        let max_group = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .max()
            .unwrap();
        let total = (THREADS * COMMITS) as u64;
        let st = pipe.stats();
        assert_eq!(st.commits, total);
        assert_eq!(pipe.with(|l| l.appended), total);
        let fsyncs = synced.load(Ordering::SeqCst);
        assert_eq!(st.fsyncs, fsyncs);
        assert!(
            fsyncs < total,
            "group commit must coalesce flushes ({fsyncs} fsyncs for {total} commits)"
        );
        assert!(max_group > 1, "at least one multi-commit group expected");
        assert_eq!(st.max_group, max_group);
    }

    #[test]
    fn failed_flush_poisons_the_pipeline() {
        let (pipe, _synced) = fake(0);
        pipe.with(|l| l.fail = true);
        let err = pipe.commit_with(|l| {
            l.appended += 1;
            Ok(())
        });
        assert!(err.is_err());
        // Every later commit fails fast, even though the device "works"
        // again — durability of the earlier batch is unknowable.
        pipe.with(|l| l.fail = false);
        assert!(pipe
            .commit_with(|l| {
                l.appended += 1;
                Ok(())
            })
            .is_err());
    }

    #[test]
    fn append_error_does_not_consume_a_sequence() {
        let (pipe, synced) = fake(0);
        let r: Result<((), CommitReceipt), _> =
            pipe.commit_with(|_| Err(StorageError::MissingMedia("nope".into())));
        assert!(r.is_err());
        assert_eq!(
            synced.load(Ordering::SeqCst),
            0,
            "no flush for a failed append"
        );
        let ((), receipt) = pipe
            .commit_with(|l| {
                l.appended += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(receipt.seq, 1);
    }

    #[test]
    fn timing_mode_reports_nonzero_fsync_time() {
        let synced = Arc::new(AtomicU64::new(0));
        let pipe = CommitPipeline::with_timing(FakeLog {
            appended: 0,
            synced,
            fail: false,
            sleep_us: 1500,
        });
        let ((), receipt) = pipe.commit_with(|_| Ok(())).unwrap();
        assert!(receipt.leader);
        assert!(receipt.fsync_us >= 1000, "slept 1.5ms: {receipt:?}");
        assert!(pipe.stats().fsync_us_total >= 1000);
    }
}
