//! The Log Volume: multiple log streams multiplexed onto one volume.
//!
//! This is the substrate of Bagchi, Das and Kaplan \[8\] that the paper's
//! Persistent Filtering Subsystem is built on. A volume multiplexes many
//! *log streams* onto a sequence of append-only segments. Each stream
//! supports:
//!
//! * `append(record) → index` — indexes are unique and monotone per stream;
//! * `chop(up_to)` — discard all records with smaller indexes;
//! * `read(index)` — retrieve a record by index.
//!
//! Segments whose records are all chopped are deleted, so storage is
//! reclaimed in log order — the access pattern durable subscriptions
//! produce (old filtering information becomes garbage as `released(p)`
//! advances).
//!
//! Chops are themselves logged (tiny control frames), so recovery replays
//! them and a crash never resurrects reclaimed records.
//!
//! Rolling writes a synced [`seal footer`](crate::segment) into the old
//! segment. Sealed segments are immutable, which recovery exploits
//! (corruption inside one is an error, never a "torn tail") and the read
//! path exploits too: a sealed segment is cached as one immutable
//! [`Bytes`] buffer and reads hand out zero-copy slices of it.

use crate::media::{Media, MediaFactory};
use crate::segment::{encode_frame, scan, ScanEnd, FRAME_CHOP, FRAME_DATA, HEADER_LEN};
use crate::StorageError;
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Identifies one log stream within a volume (the PFS uses one per pubend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

/// Monotone per-stream record index assigned by [`LogVolume::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogIndex(pub u64);

impl LogIndex {
    /// The index before any record; also the "no previous record" marker
    /// used by PFS backpointers (the paper's `⊥` index).
    pub const NONE: LogIndex = LogIndex(u64::MAX);
}

impl std::fmt::Display for LogIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == LogIndex::NONE {
            f.write_str("⊥")
        } else {
            write!(f, "i{}", self.0)
        }
    }
}

/// Tuning knobs for a [`LogVolume`].
#[derive(Debug, Clone, Copy)]
pub struct VolumeConfig {
    /// Roll to a new segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// Sync after every append (useful for tests; real deployments group
    /// commit by calling [`LogVolume::sync`] on a policy).
    pub sync_every_append: bool,
    /// How many sealed segments to keep cached in memory for zero-copy
    /// reads (0 disables caching).
    pub cached_segments: usize,
}

impl Default for VolumeConfig {
    fn default() -> Self {
        VolumeConfig {
            segment_bytes: 4 * 1024 * 1024,
            sync_every_append: false,
            cached_segments: 4,
        }
    }
}

/// Aggregate counters for a volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolumeStats {
    /// Data records appended.
    pub records: u64,
    /// Payload bytes appended (what the paper's "data logged" counts).
    pub payload_bytes: u64,
    /// Total bytes appended including frame headers and control frames.
    pub total_bytes: u64,
    /// Explicit sync calls.
    pub syncs: u64,
    /// Chop operations.
    pub chops: u64,
    /// Segments created (including the initial one).
    pub segments_created: u64,
    /// Segments reclaimed after full chop.
    pub segments_deleted: u64,
}

#[derive(Debug, Clone, Copy)]
struct RecLoc {
    seg: u64,
    offset: u64,
    len: u32,
}

struct Segment {
    media: Box<dyn Media>,
    live: u64,
    sealed: bool,
    cache: Option<Bytes>,
}

#[derive(Debug, Default)]
struct StreamState {
    next_index: u64,
    locs: BTreeMap<u64, RecLoc>,
    chopped_to: u64,
}

/// A multiplexed, segmented, recoverable log volume.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct LogVolume {
    factory: Box<dyn MediaFactory>,
    name: String,
    config: VolumeConfig,
    segments: BTreeMap<u64, Segment>,
    active: u64,
    streams: HashMap<u32, StreamState>,
    cache_fifo: VecDeque<u64>,
    stats: VolumeStats,
}

impl std::fmt::Debug for LogVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogVolume")
            .field("name", &self.name)
            .field("segments", &self.segments.keys().collect::<Vec<_>>())
            .field("streams", &self.streams.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl LogVolume {
    /// Creates a fresh volume named `name`, removing any existing segments
    /// with that name.
    ///
    /// # Errors
    ///
    /// Returns an error if old segments cannot be removed or the first
    /// segment cannot be created.
    pub fn create(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: VolumeConfig,
    ) -> Result<Self, StorageError> {
        for seg in Self::segment_names(factory.as_ref(), name)? {
            factory.remove(&seg)?;
        }
        let mut vol = LogVolume {
            factory,
            name: name.to_owned(),
            config,
            segments: BTreeMap::new(),
            active: 0,
            streams: HashMap::new(),
            cache_fifo: VecDeque::new(),
            stats: VolumeStats::default(),
        };
        vol.open_segment(0)?;
        Ok(vol)
    }

    /// Opens `name`, recovering state from existing segments (or creating
    /// a fresh volume when none exist).
    ///
    /// Recovery scans every segment in order, verifies each frame's CRC,
    /// rebuilds per-stream indexes and replays chop frames. A torn tail in
    /// the *last, unsealed* segment is truncated away; corruption anywhere
    /// else — including inside a sealed segment — is reported as
    /// [`StorageError::Corrupt`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or non-tail corruption.
    pub fn open(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: VolumeConfig,
    ) -> Result<Self, StorageError> {
        let mut seg_nos: Vec<u64> = factory
            .list()?
            .iter()
            .filter_map(|n| Self::segment_no(name, n))
            .collect();
        seg_nos.sort_unstable();
        if seg_nos.is_empty() {
            return Self::create(factory, name, config);
        }
        let mut vol = LogVolume {
            factory,
            name: name.to_owned(),
            config,
            segments: BTreeMap::new(),
            active: *seg_nos.last().expect("nonempty"),
            streams: HashMap::new(),
            cache_fifo: VecDeque::new(),
            stats: VolumeStats::default(),
        };
        let last = vol.active;
        for &no in &seg_nos {
            vol.recover_segment(no, no == last)?;
        }
        // Drop segments that ended up fully dead (every record chopped by a
        // later-replayed chop frame), except the active one.
        let dead: Vec<u64> = vol
            .segments
            .iter()
            .filter(|&(&no, seg)| no != vol.active && seg.live == 0)
            .map(|(&no, _)| no)
            .collect();
        for no in dead {
            vol.delete_segment(no)?;
        }
        // A crash between sealing and creating the next segment can leave
        // the last segment sealed; appends need an open one.
        if vol
            .segments
            .get(&vol.active)
            .map(|s| s.sealed)
            .unwrap_or(false)
        {
            vol.open_segment(vol.active + 1)?;
        }
        Ok(vol)
    }

    /// Parses the segment number out of `{volume}-{no:08}.seg`. `None`
    /// for anything else — in particular segments of a volume whose name
    /// shares a prefix: `v-x-00000001.seg` is *not* a segment of volume
    /// `v`, so creating or recovering `v` never touches `v-x`'s files.
    fn segment_no(volume: &str, file: &str) -> Option<u64> {
        let digits = file
            .strip_prefix(volume)?
            .strip_prefix('-')?
            .strip_suffix(".seg")?;
        if digits.len() < 8 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    }

    fn segment_names(factory: &dyn MediaFactory, name: &str) -> Result<Vec<String>, StorageError> {
        Ok(factory
            .list()?
            .into_iter()
            .filter(|n| Self::segment_no(name, n).is_some())
            .collect())
    }

    fn segment_name(&self, no: u64) -> String {
        format!("{}-{:08}.seg", self.name, no)
    }

    fn open_segment(&mut self, no: u64) -> Result<(), StorageError> {
        let media = self.factory.open(&self.segment_name(no))?;
        self.segments.insert(
            no,
            Segment {
                media,
                live: 0,
                sealed: false,
                cache: None,
            },
        );
        self.active = no;
        self.stats.segments_created += 1;
        Ok(())
    }

    fn delete_segment(&mut self, no: u64) -> Result<(), StorageError> {
        self.segments.remove(&no);
        self.cache_fifo.retain(|&n| n != no);
        self.factory.remove(&self.segment_name(no))?;
        self.stats.segments_deleted += 1;
        Ok(())
    }

    fn recover_segment(&mut self, no: u64, is_last: bool) -> Result<(), StorageError> {
        let media_name = self.segment_name(no);
        let mut media = self.factory.open(&media_name)?;
        let mut live = 0u64;
        let streams = &mut self.streams;
        let segments = &mut self.segments;
        let end = scan(media.as_mut(), |frame| {
            let state = streams.entry(frame.stream).or_default();
            match frame.ftype {
                FRAME_DATA => {
                    state.next_index = state.next_index.max(frame.index + 1);
                    if frame.index >= state.chopped_to {
                        state.locs.insert(
                            frame.index,
                            RecLoc {
                                seg: no,
                                offset: frame.payload_offset,
                                len: frame.payload_len,
                            },
                        );
                        live += 1;
                    }
                }
                FRAME_CHOP => {
                    state.chopped_to = state.chopped_to.max(frame.index);
                    state.next_index = state.next_index.max(frame.index);
                    // Remove resurrected earlier records (and fix live
                    // counts in their segments).
                    let dead: Vec<u64> = state.locs.range(..frame.index).map(|(&i, _)| i).collect();
                    for i in dead {
                        let loc = state.locs.remove(&i).expect("key from range");
                        if loc.seg == no {
                            live -= 1;
                        } else if let Some(seg) = segments.get_mut(&loc.seg) {
                            seg.live -= 1;
                        }
                    }
                }
                _ => {} // seal footer carries no stream state
            }
        })?;
        let sealed = match end {
            ScanEnd::Sealed { .. } => true,
            ScanEnd::CleanOpen { .. } => false,
            ScanEnd::Torn {
                valid_end,
                offset,
                detail,
            } => {
                if !is_last {
                    return Err(StorageError::Corrupt {
                        media: media_name,
                        offset,
                        detail,
                    });
                }
                media.truncate(valid_end)?;
                false
            }
        };
        self.segments.insert(
            no,
            Segment {
                media,
                live,
                sealed,
                cache: None,
            },
        );
        Ok(())
    }

    /// Appends the seal footer to the active segment and flushes it; the
    /// segment is immutable from here on.
    fn seal_active(&mut self) -> Result<(), StorageError> {
        let seg = self.segments.get_mut(&self.active).expect("active segment");
        let frame = encode_frame(crate::segment::FRAME_SEAL, 0, 0, &[]);
        seg.media.append(&frame)?;
        seg.media.sync()?;
        seg.sealed = true;
        self.stats.total_bytes += frame.len() as u64;
        Ok(())
    }

    fn write_frame(
        &mut self,
        ftype: u8,
        stream: u32,
        index: u64,
        payload: &[u8],
    ) -> Result<(u64, u64), StorageError> {
        // Roll the active segment if it is full: seal it (synced footer),
        // then open the next one.
        let active_len = self
            .segments
            .get(&self.active)
            .expect("active segment exists")
            .media
            .len();
        if active_len > 0
            && active_len + (HEADER_LEN + payload.len()) as u64 > self.config.segment_bytes
        {
            self.seal_active()?;
            let old = self.active;
            self.open_segment(old + 1)?;
            // The just-sealed segment may already be fully dead.
            if self.segments.get(&old).map(|s| s.live) == Some(0) {
                self.delete_segment(old)?;
            }
        }
        let frame = encode_frame(ftype, stream, index, payload);
        let seg = self.segments.get_mut(&self.active).expect("active segment");
        let offset = seg.media.len();
        seg.media.append(&frame)?;
        self.stats.total_bytes += frame.len() as u64;
        if self.config.sync_every_append {
            seg.media.sync()?;
            self.stats.syncs += 1;
        }
        Ok((self.active, offset + HEADER_LEN as u64))
    }

    /// Appends a record to `stream`, returning its monotone index.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn append(&mut self, stream: StreamId, payload: &[u8]) -> Result<LogIndex, StorageError> {
        let index = self.streams.entry(stream.0).or_default().next_index;
        let (seg, offset) = self.write_frame(FRAME_DATA, stream.0, index, payload)?;
        let state = self.streams.get_mut(&stream.0).expect("inserted above");
        state.next_index = index + 1;
        state.locs.insert(
            index,
            RecLoc {
                seg,
                offset,
                len: payload.len() as u32,
            },
        );
        self.segments.get_mut(&seg).expect("segment exists").live += 1;
        self.stats.records += 1;
        self.stats.payload_bytes += payload.len() as u64;
        Ok(LogIndex(index))
    }

    fn read_loc(&mut self, loc: RecLoc) -> Result<Bytes, StorageError> {
        let want_cache = self.config.cached_segments > 0;
        {
            let seg = self
                .segments
                .get_mut(&loc.seg)
                .ok_or_else(|| StorageError::MissingMedia(format!("segment {}", loc.seg)))?;
            if want_cache && seg.sealed && seg.cache.is_none() {
                let len = seg.media.len() as usize;
                let mut buf = vec![0u8; len];
                seg.media.read_at(0, &mut buf)?;
                seg.cache = Some(Bytes::from(buf));
                self.cache_fifo.push_back(loc.seg);
                while self.cache_fifo.len() > self.config.cached_segments {
                    let evict = self.cache_fifo.pop_front().expect("nonempty fifo");
                    if let Some(s) = self.segments.get_mut(&evict) {
                        s.cache = None;
                    }
                }
            }
        }
        let seg = self.segments.get_mut(&loc.seg).expect("checked above");
        if let Some(cache) = &seg.cache {
            let start = loc.offset as usize;
            Ok(cache.slice(start..start + loc.len as usize))
        } else {
            let mut buf = vec![0u8; loc.len as usize];
            seg.media.read_at(loc.offset, &mut buf)?;
            Ok(Bytes::from(buf))
        }
    }

    /// Reads the record at `index` in `stream`; `None` if it was chopped
    /// or never written. Records in sealed segments are served as
    /// zero-copy slices of the cached segment buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn read(
        &mut self,
        stream: StreamId,
        index: LogIndex,
    ) -> Result<Option<Bytes>, StorageError> {
        let Some(state) = self.streams.get(&stream.0) else {
            return Ok(None);
        };
        let Some(loc) = state.locs.get(&index.0).copied() else {
            return Ok(None);
        };
        self.read_loc(loc).map(Some)
    }

    /// Discards all records of `stream` with index `< up_to`.
    ///
    /// The chop is logged, so it survives crashes. Segments left without
    /// any live record are deleted.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn chop(&mut self, stream: StreamId, up_to: LogIndex) -> Result<(), StorageError> {
        let Some(state) = self.streams.get_mut(&stream.0) else {
            return Ok(());
        };
        if up_to.0 <= state.chopped_to {
            return Ok(());
        }
        state.chopped_to = up_to.0;
        state.next_index = state.next_index.max(up_to.0);
        // Log the chop *before* touching live counts: a segment roll
        // inside this append may GC a fully-dead segment, and that is
        // only safe for deaths already on (durable) record.
        self.write_frame(FRAME_CHOP, stream.0, up_to.0, &[])?;
        let state = self.streams.get_mut(&stream.0).expect("checked above");
        let dead: Vec<u64> = state.locs.range(..up_to.0).map(|(&i, _)| i).collect();
        let mut touched = Vec::new();
        for i in dead {
            let loc = state.locs.remove(&i).expect("key from range");
            let seg = self.segments.get_mut(&loc.seg).expect("segment exists");
            seg.live -= 1;
            if seg.live == 0 && loc.seg != self.active {
                touched.push(loc.seg);
            }
        }
        self.stats.chops += 1;
        touched.sort_unstable();
        touched.dedup();
        if !touched.is_empty() {
            // Deleting a segment file is immediately durable; the chop
            // frame justifying it must be too, or a crash between the two
            // resurrects the chopped range as silence (`S`) instead of
            // lost (`L`).
            self.sync()?;
        }
        for no in touched {
            if self.segments.get(&no).map(|s| s.live) == Some(0) && no != self.active {
                self.delete_segment(no)?;
            }
        }
        Ok(())
    }

    /// Flushes the active segment to durable storage (group commit point).
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.segments
            .get_mut(&self.active)
            .expect("active segment")
            .media
            .sync()?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// The next index [`LogVolume::append`] will assign for `stream`.
    pub fn next_index(&self, stream: StreamId) -> LogIndex {
        LogIndex(
            self.streams
                .get(&stream.0)
                .map(|s| s.next_index)
                .unwrap_or(0),
        )
    }

    /// The lowest index still readable for `stream` (`None` when empty).
    pub fn first_live_index(&self, stream: StreamId) -> Option<LogIndex> {
        self.streams
            .get(&stream.0)?
            .locs
            .keys()
            .next()
            .map(|&i| LogIndex(i))
    }

    /// Live record count for `stream`.
    pub fn live_records(&self, stream: StreamId) -> usize {
        self.streams
            .get(&stream.0)
            .map(|s| s.locs.len())
            .unwrap_or(0)
    }

    /// Reads all live records of `stream` in index order (recovery helper).
    /// Like [`LogVolume::read`], sealed-segment records are zero-copy.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn read_all(&mut self, stream: StreamId) -> Result<Vec<(LogIndex, Bytes)>, StorageError> {
        let locs: Vec<(u64, RecLoc)> = match self.streams.get(&stream.0) {
            Some(s) => s.locs.iter().map(|(&i, &loc)| (i, loc)).collect(),
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::with_capacity(locs.len());
        for (i, loc) in locs {
            out.push((LogIndex(i), self.read_loc(loc)?));
        }
        Ok(out)
    }

    /// All streams the volume has state for (including fully chopped
    /// ones), in unspecified order.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.streams.keys().map(|&k| StreamId(k)).collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> VolumeStats {
        self.stats
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of sealed segments currently cached for zero-copy reads.
    pub fn cached_segment_count(&self) -> usize {
        self.cache_fifo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemFactory;

    fn mem_volume(config: VolumeConfig) -> (MemFactory, LogVolume) {
        let f = MemFactory::new();
        let vol = LogVolume::create(Box::new(f.clone()), "vol", config).unwrap();
        (f, vol)
    }

    #[test]
    fn append_read_roundtrip_multiple_streams() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let a = StreamId(1);
        let b = StreamId(2);
        let ia0 = vol.append(a, b"a0").unwrap();
        let ib0 = vol.append(b, b"b0").unwrap();
        let ia1 = vol.append(a, b"a1").unwrap();
        assert_eq!(ia0, LogIndex(0));
        assert_eq!(ib0, LogIndex(0));
        assert_eq!(ia1, LogIndex(1));
        assert_eq!(vol.read(a, ia1).unwrap().as_deref(), Some(&b"a1"[..]));
        assert_eq!(vol.read(b, ib0).unwrap().as_deref(), Some(&b"b0"[..]));
        assert_eq!(vol.read(b, LogIndex(5)).unwrap(), None);
    }

    #[test]
    fn chop_removes_prefix_only() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let s = StreamId(0);
        for i in 0..10u64 {
            vol.append(s, format!("r{i}").as_bytes()).unwrap();
        }
        vol.chop(s, LogIndex(5)).unwrap();
        assert_eq!(vol.read(s, LogIndex(4)).unwrap(), None);
        assert_eq!(
            vol.read(s, LogIndex(5)).unwrap().as_deref(),
            Some(&b"r5"[..])
        );
        assert_eq!(vol.live_records(s), 5);
        assert_eq!(vol.first_live_index(s), Some(LogIndex(5)));
        // Indexes keep increasing after a chop.
        assert_eq!(vol.append(s, b"r10").unwrap(), LogIndex(10));
    }

    #[test]
    fn segments_roll_and_are_reclaimed() {
        let (f, mut vol) = mem_volume(VolumeConfig {
            segment_bytes: 256,
            ..VolumeConfig::default()
        });
        let s = StreamId(0);
        let mut last = LogIndex(0);
        for _ in 0..50 {
            last = vol.append(s, &[7u8; 40]).unwrap();
        }
        assert!(vol.segment_count() > 1, "expected rolling");
        let before = f.list().unwrap().len();
        vol.chop(s, last).unwrap();
        let after = f.list().unwrap().len();
        assert!(
            after < before,
            "chop should reclaim segments ({before} -> {after})"
        );
        assert_eq!(vol.read(s, last).unwrap().as_deref(), Some(&[7u8; 40][..]));
    }

    #[test]
    fn sealed_segments_serve_cached_zero_copy_reads() {
        let (_f, mut vol) = mem_volume(VolumeConfig {
            segment_bytes: 256,
            cached_segments: 2,
            ..VolumeConfig::default()
        });
        let s = StreamId(0);
        let mut idx = Vec::new();
        for i in 0..20u8 {
            idx.push(vol.append(s, &[i; 40]).unwrap());
        }
        assert!(vol.segment_count() > 3, "expected several sealed segments");
        assert_eq!(vol.cached_segment_count(), 0);
        // Reads across all segments stay correct while the FIFO caps the
        // cache at 2 sealed segments.
        for (i, &ix) in idx.iter().enumerate() {
            assert_eq!(
                vol.read(s, ix).unwrap().as_deref(),
                Some(&[i as u8; 40][..])
            );
        }
        assert!(vol.cached_segment_count() <= 2);
        // A second read of a cached record shares storage with the cache.
        let first = vol.read(s, idx[0]).unwrap().unwrap();
        let again = vol.read(s, idx[0]).unwrap().unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn recovery_rebuilds_streams() {
        let f = MemFactory::new();
        {
            let mut vol =
                LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
            vol.append(StreamId(0), b"x").unwrap();
            vol.append(StreamId(1), b"y").unwrap();
            vol.append(StreamId(0), b"z").unwrap();
            vol.chop(StreamId(0), LogIndex(1)).unwrap();
            vol.sync().unwrap();
        }
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(
            vol.read(StreamId(0), LogIndex(0)).unwrap(),
            None,
            "chop survives"
        );
        assert_eq!(
            vol.read(StreamId(0), LogIndex(1)).unwrap().as_deref(),
            Some(&b"z"[..])
        );
        assert_eq!(
            vol.read(StreamId(1), LogIndex(0)).unwrap().as_deref(),
            Some(&b"y"[..])
        );
        assert_eq!(vol.next_index(StreamId(0)), LogIndex(2));
        // New appends continue the index sequence.
        assert_eq!(vol.append(StreamId(0), b"w").unwrap(), LogIndex(2));
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let f = MemFactory::new();
        {
            let mut vol =
                LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
            vol.append(StreamId(0), b"good").unwrap();
            vol.sync().unwrap();
            vol.append(StreamId(0), b"lost-after-crash").unwrap();
            // no sync
        }
        f.crash_lose_unsynced();
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(
            vol.read(StreamId(0), LogIndex(0)).unwrap().as_deref(),
            Some(&b"good"[..])
        );
        assert_eq!(vol.read(StreamId(0), LogIndex(1)).unwrap(), None);
        assert_eq!(vol.next_index(StreamId(0)), LogIndex(1));
    }

    #[test]
    fn recovery_detects_corruption_via_crc() {
        let f = MemFactory::new();
        {
            let mut vol =
                LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
            vol.append(StreamId(0), b"payload-bytes").unwrap();
            vol.append(StreamId(0), b"second").unwrap();
            vol.sync().unwrap();
        }
        // Flip a payload bit of the first record (inside the frame body).
        f.corrupt_bit("v-00000000.seg", HEADER_LEN as u64 + 2);
        // The first record is not the tail, but scanning stops at the first
        // bad frame in the last segment: since this IS the last (unsealed)
        // segment the volume treats it as torn tail and truncates — both
        // records lost but the volume stays usable.
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(vol.read(StreamId(0), LogIndex(0)).unwrap(), None);
        assert_eq!(vol.read(StreamId(0), LogIndex(1)).unwrap(), None);
        vol.append(StreamId(0), b"fresh").unwrap();
    }

    #[test]
    fn corruption_in_non_last_segment_is_an_error() {
        let f = MemFactory::new();
        {
            let mut vol = LogVolume::create(
                Box::new(f.clone()),
                "v",
                VolumeConfig {
                    segment_bytes: 64,
                    sync_every_append: true,
                    ..VolumeConfig::default()
                },
            )
            .unwrap();
            for _ in 0..6 {
                vol.append(StreamId(0), &[9u8; 40]).unwrap();
            }
            assert!(vol.segment_count() >= 2);
        }
        f.corrupt_bit("v-00000000.seg", 3);
        let res = LogVolume::open(Box::new(f), "v", VolumeConfig::default());
        assert!(matches!(res, Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn recovery_reopens_after_seal_crash() {
        // Crash immediately after a roll: the last on-media segment is the
        // fresh empty one; delete it to simulate dying between seal and
        // segment creation — recovery must open a new active segment past
        // the sealed tail.
        let f = MemFactory::new();
        {
            let mut vol = LogVolume::create(
                Box::new(f.clone()),
                "v",
                VolumeConfig {
                    segment_bytes: 64,
                    ..VolumeConfig::default()
                },
            )
            .unwrap();
            for _ in 0..3 {
                vol.append(StreamId(0), &[5u8; 40]).unwrap();
            }
            assert!(vol.segment_count() >= 2);
        }
        let mut names = f.list().unwrap();
        names.sort();
        let newest = names.last().unwrap().clone();
        f.remove(&newest).unwrap();
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        // The sealed segment's record is intact and appends still work.
        assert_eq!(
            vol.read(StreamId(0), LogIndex(0)).unwrap().as_deref(),
            Some(&[5u8; 40][..])
        );
        vol.append(StreamId(0), b"after-recovery").unwrap();
    }

    #[test]
    fn volume_names_sharing_a_prefix_do_not_collide() {
        let f = MemFactory::new();
        let mut inner =
            LogVolume::create(Box::new(f.clone()), "v-x", VolumeConfig::default()).unwrap();
        inner.append(StreamId(0), b"keep").unwrap();
        inner.sync().unwrap();
        drop(inner);
        // Creating (and thereby wiping) volume "v" must not delete
        // "v-x"'s segments…
        let mut outer =
            LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
        outer.append(StreamId(0), b"other").unwrap();
        outer.sync().unwrap();
        drop(outer);
        // …and recovery of each volume sees only its own segments.
        let mut inner =
            LogVolume::open(Box::new(f.clone()), "v-x", VolumeConfig::default()).unwrap();
        assert_eq!(
            inner.read(StreamId(0), LogIndex(0)).unwrap().as_deref(),
            Some(&b"keep"[..])
        );
        let mut outer = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(
            outer.read(StreamId(0), LogIndex(0)).unwrap().as_deref(),
            Some(&b"other"[..])
        );
    }

    #[test]
    fn stats_track_payload_and_records() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        vol.append(StreamId(0), &[0u8; 100]).unwrap();
        vol.append(StreamId(0), &[0u8; 24]).unwrap();
        vol.sync().unwrap();
        let st = vol.stats();
        assert_eq!(st.records, 2);
        assert_eq!(st.payload_bytes, 124);
        assert_eq!(st.total_bytes, 124 + 2 * HEADER_LEN as u64);
        assert_eq!(st.syncs, 1);
    }

    #[test]
    fn read_all_in_index_order() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let s = StreamId(3);
        for i in 0..5u8 {
            vol.append(s, &[i]).unwrap();
        }
        vol.chop(s, LogIndex(2)).unwrap();
        let all = vol.read_all(s).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, LogIndex(2));
        assert_eq!(all[0].1.as_ref(), &[2u8]);
        assert_eq!(all[2].0, LogIndex(4));
        assert_eq!(all[2].1.as_ref(), &[4u8]);
    }

    #[test]
    fn empty_stream_queries() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let s = StreamId(9);
        assert_eq!(vol.next_index(s), LogIndex(0));
        assert_eq!(vol.first_live_index(s), None);
        assert_eq!(vol.live_records(s), 0);
        assert!(vol.read_all(s).unwrap().is_empty());
        vol.chop(s, LogIndex(100)).unwrap(); // chop on unknown stream is a no-op
    }
}
