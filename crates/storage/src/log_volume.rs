//! The Log Volume: multiple log streams multiplexed onto one volume.
//!
//! This is the substrate of Bagchi, Das and Kaplan \[8\] that the paper's
//! Persistent Filtering Subsystem is built on. A volume multiplexes many
//! *log streams* onto a sequence of append-only segments. Each stream
//! supports:
//!
//! * `append(record) → index` — indexes are unique and monotone per stream;
//! * `chop(up_to)` — discard all records with smaller indexes;
//! * `read(index)` — retrieve a record by index.
//!
//! Segments whose records are all chopped are deleted, so storage is
//! reclaimed in log order — the access pattern durable subscriptions
//! produce (old filtering information becomes garbage as `released(p)`
//! advances).
//!
//! Chops are themselves logged (tiny control frames), so recovery replays
//! them and a crash never resurrects reclaimed records.

use crate::media::{Media, MediaFactory};
use crate::{crc32c, StorageError};
use std::collections::{BTreeMap, HashMap};

/// Identifies one log stream within a volume (the PFS uses one per pubend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(pub u32);

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream-{}", self.0)
    }
}

/// Monotone per-stream record index assigned by [`LogVolume::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogIndex(pub u64);

impl LogIndex {
    /// The index before any record; also the "no previous record" marker
    /// used by PFS backpointers (the paper's `⊥` index).
    pub const NONE: LogIndex = LogIndex(u64::MAX);
}

impl std::fmt::Display for LogIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == LogIndex::NONE {
            f.write_str("⊥")
        } else {
            write!(f, "i{}", self.0)
        }
    }
}

/// Tuning knobs for a [`LogVolume`].
#[derive(Debug, Clone, Copy)]
pub struct VolumeConfig {
    /// Roll to a new segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// Sync after every append (useful for tests; real deployments group
    /// commit by calling [`LogVolume::sync`] on a policy).
    pub sync_every_append: bool,
}

impl Default for VolumeConfig {
    fn default() -> Self {
        VolumeConfig {
            segment_bytes: 4 * 1024 * 1024,
            sync_every_append: false,
        }
    }
}

/// Aggregate counters for a volume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VolumeStats {
    /// Data records appended.
    pub records: u64,
    /// Payload bytes appended (what the paper's "data logged" counts).
    pub payload_bytes: u64,
    /// Total bytes appended including frame headers and chop frames.
    pub total_bytes: u64,
    /// Explicit sync calls.
    pub syncs: u64,
    /// Chop operations.
    pub chops: u64,
    /// Segments created (including the initial one).
    pub segments_created: u64,
    /// Segments reclaimed after full chop.
    pub segments_deleted: u64,
}

const FRAME_DATA: u8 = 0xA7;
const FRAME_CHOP: u8 = 0xA8;
/// frame-type (1) + stream (4) + index (8) + len (4) + crc (4)
const HEADER_LEN: usize = 21;

#[derive(Debug, Clone, Copy)]
struct RecLoc {
    seg: u64,
    offset: u64,
    len: u32,
}

struct Segment {
    media: Box<dyn Media>,
    live: u64,
}

#[derive(Debug, Default)]
struct StreamState {
    next_index: u64,
    locs: BTreeMap<u64, RecLoc>,
    chopped_to: u64,
}

/// A multiplexed, segmented, recoverable log volume.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct LogVolume {
    factory: Box<dyn MediaFactory>,
    name: String,
    config: VolumeConfig,
    segments: BTreeMap<u64, Segment>,
    active: u64,
    streams: HashMap<u32, StreamState>,
    stats: VolumeStats,
}

impl std::fmt::Debug for LogVolume {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogVolume")
            .field("name", &self.name)
            .field("segments", &self.segments.keys().collect::<Vec<_>>())
            .field("streams", &self.streams.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl LogVolume {
    /// Creates a fresh volume named `name`, removing any existing segments
    /// with that name.
    ///
    /// # Errors
    ///
    /// Returns an error if old segments cannot be removed or the first
    /// segment cannot be created.
    pub fn create(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: VolumeConfig,
    ) -> Result<Self, StorageError> {
        for seg in Self::segment_names(factory.as_ref(), name)? {
            factory.remove(&seg)?;
        }
        let mut vol = LogVolume {
            factory,
            name: name.to_owned(),
            config,
            segments: BTreeMap::new(),
            active: 0,
            streams: HashMap::new(),
            stats: VolumeStats::default(),
        };
        vol.open_segment(0)?;
        Ok(vol)
    }

    /// Opens `name`, recovering state from existing segments (or creating
    /// a fresh volume when none exist).
    ///
    /// Recovery scans every segment in order, verifies each frame's CRC,
    /// rebuilds per-stream indexes and replays chop frames. A torn tail in
    /// the *last* segment is truncated away; corruption anywhere else is
    /// reported as [`StorageError::Corrupt`].
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or non-tail corruption.
    pub fn open(
        factory: Box<dyn MediaFactory>,
        name: &str,
        config: VolumeConfig,
    ) -> Result<Self, StorageError> {
        let mut seg_nos: Vec<u64> = Self::segment_names(factory.as_ref(), name)?
            .iter()
            .filter_map(|n| n.rsplit('-').next()?.strip_suffix(".seg")?.parse().ok())
            .collect();
        seg_nos.sort_unstable();
        if seg_nos.is_empty() {
            return Self::create(factory, name, config);
        }
        let mut vol = LogVolume {
            factory,
            name: name.to_owned(),
            config,
            segments: BTreeMap::new(),
            active: *seg_nos.last().expect("nonempty"),
            streams: HashMap::new(),
            stats: VolumeStats::default(),
        };
        let last = vol.active;
        for &no in &seg_nos {
            vol.recover_segment(no, no == last)?;
        }
        // Drop segments that ended up fully dead (every record chopped by a
        // later-replayed chop frame), except the active one.
        let dead: Vec<u64> = vol
            .segments
            .iter()
            .filter(|&(&no, seg)| no != vol.active && seg.live == 0)
            .map(|(&no, _)| no)
            .collect();
        for no in dead {
            vol.delete_segment(no)?;
        }
        Ok(vol)
    }

    fn segment_names(factory: &dyn MediaFactory, name: &str) -> Result<Vec<String>, StorageError> {
        let prefix = format!("{name}-");
        Ok(factory
            .list()?
            .into_iter()
            .filter(|n| n.starts_with(&prefix) && n.ends_with(".seg"))
            .collect())
    }

    fn segment_name(&self, no: u64) -> String {
        format!("{}-{:08}.seg", self.name, no)
    }

    fn open_segment(&mut self, no: u64) -> Result<(), StorageError> {
        let media = self.factory.open(&self.segment_name(no))?;
        self.segments.insert(no, Segment { media, live: 0 });
        self.active = no;
        self.stats.segments_created += 1;
        Ok(())
    }

    fn delete_segment(&mut self, no: u64) -> Result<(), StorageError> {
        self.segments.remove(&no);
        self.factory.remove(&self.segment_name(no))?;
        self.stats.segments_deleted += 1;
        Ok(())
    }

    fn recover_segment(&mut self, no: u64, is_last: bool) -> Result<(), StorageError> {
        let media_name = self.segment_name(no);
        let mut media = self.factory.open(&media_name)?;
        let len = media.len();
        let mut offset = 0u64;
        let mut live = 0u64;
        let mut valid_end = 0u64;
        loop {
            if offset + HEADER_LEN as u64 > len {
                break;
            }
            let mut header = [0u8; HEADER_LEN];
            media.read_at(offset, &mut header)?;
            let ftype = header[0];
            let stream = u32::from_le_bytes(header[1..5].try_into().expect("slice"));
            let index = u64::from_le_bytes(header[5..13].try_into().expect("slice"));
            let plen = u32::from_le_bytes(header[13..17].try_into().expect("slice"));
            let crc = u32::from_le_bytes(header[17..21].try_into().expect("slice"));
            if ftype != FRAME_DATA && ftype != FRAME_CHOP {
                if is_last {
                    break; // torn tail
                }
                return Err(StorageError::Corrupt {
                    media: media_name,
                    offset,
                    detail: format!("bad frame type {ftype:#x}"),
                });
            }
            let body_end = offset + HEADER_LEN as u64 + plen as u64;
            if body_end > len {
                if is_last {
                    break;
                }
                return Err(StorageError::Corrupt {
                    media: media_name,
                    offset,
                    detail: "frame extends past segment".into(),
                });
            }
            let mut payload = vec![0u8; plen as usize];
            media.read_at(offset + HEADER_LEN as u64, &mut payload)?;
            let mut crc_input = Vec::with_capacity(13 + payload.len());
            crc_input.push(ftype);
            crc_input.extend_from_slice(&header[1..17]);
            crc_input.extend_from_slice(&payload);
            if crc32c(&crc_input) != crc {
                if is_last {
                    break;
                }
                return Err(StorageError::Corrupt {
                    media: media_name,
                    offset,
                    detail: "crc mismatch".into(),
                });
            }
            let state = self.streams.entry(stream).or_default();
            match ftype {
                FRAME_DATA => {
                    state.next_index = state.next_index.max(index + 1);
                    if index >= state.chopped_to {
                        state.locs.insert(
                            index,
                            RecLoc {
                                seg: no,
                                offset: offset + HEADER_LEN as u64,
                                len: plen,
                            },
                        );
                        live += 1;
                    }
                }
                FRAME_CHOP => {
                    state.chopped_to = state.chopped_to.max(index);
                    state.next_index = state.next_index.max(index);
                    // Remove resurrected earlier records (and fix live
                    // counts in their segments).
                    let dead: Vec<u64> = state.locs.range(..index).map(|(&i, _)| i).collect();
                    for i in dead {
                        let loc = state.locs.remove(&i).expect("key from range");
                        if loc.seg == no {
                            live -= 1;
                        } else if let Some(seg) = self.segments.get_mut(&loc.seg) {
                            seg.live -= 1;
                        }
                    }
                }
                _ => unreachable!(),
            }
            offset = body_end;
            valid_end = body_end;
        }
        if is_last && valid_end < len {
            media.truncate(valid_end)?;
        }
        self.segments.insert(no, Segment { media, live });
        Ok(())
    }

    fn write_frame(
        &mut self,
        ftype: u8,
        stream: u32,
        index: u64,
        payload: &[u8],
    ) -> Result<(u64, u64), StorageError> {
        // Roll the active segment if it is full.
        let active_len = self
            .segments
            .get(&self.active)
            .expect("active segment exists")
            .media
            .len();
        if active_len > 0
            && active_len + (HEADER_LEN + payload.len()) as u64 > self.config.segment_bytes
        {
            let old = self.active;
            self.segments
                .get_mut(&old)
                .expect("active segment exists")
                .media
                .sync()?;
            self.open_segment(old + 1)?;
            // The just-rolled segment may already be fully dead.
            if self.segments.get(&old).map(|s| s.live) == Some(0) {
                self.delete_segment(old)?;
            }
        }
        let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
        frame.push(ftype);
        frame.extend_from_slice(&stream.to_le_bytes());
        frame.extend_from_slice(&index.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc_input = Vec::with_capacity(17 + payload.len());
        crc_input.extend_from_slice(&frame);
        crc_input.extend_from_slice(payload);
        frame.extend_from_slice(&crc32c(&crc_input).to_le_bytes());
        frame.extend_from_slice(payload);
        let seg = self.segments.get_mut(&self.active).expect("active segment");
        let offset = seg.media.len();
        seg.media.append(&frame)?;
        self.stats.total_bytes += frame.len() as u64;
        if self.config.sync_every_append {
            seg.media.sync()?;
            self.stats.syncs += 1;
        }
        Ok((self.active, offset + HEADER_LEN as u64))
    }

    /// Appends a record to `stream`, returning its monotone index.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn append(&mut self, stream: StreamId, payload: &[u8]) -> Result<LogIndex, StorageError> {
        let index = self.streams.entry(stream.0).or_default().next_index;
        let (seg, offset) = self.write_frame(FRAME_DATA, stream.0, index, payload)?;
        let state = self.streams.get_mut(&stream.0).expect("inserted above");
        state.next_index = index + 1;
        state.locs.insert(
            index,
            RecLoc {
                seg,
                offset,
                len: payload.len() as u32,
            },
        );
        self.segments.get_mut(&seg).expect("segment exists").live += 1;
        self.stats.records += 1;
        self.stats.payload_bytes += payload.len() as u64;
        Ok(LogIndex(index))
    }

    /// Reads the record at `index` in `stream`; `None` if it was chopped
    /// or never written.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn read(
        &mut self,
        stream: StreamId,
        index: LogIndex,
    ) -> Result<Option<Vec<u8>>, StorageError> {
        let Some(state) = self.streams.get(&stream.0) else {
            return Ok(None);
        };
        let Some(loc) = state.locs.get(&index.0).copied() else {
            return Ok(None);
        };
        let seg = self
            .segments
            .get_mut(&loc.seg)
            .ok_or_else(|| StorageError::MissingMedia(format!("segment {}", loc.seg)))?;
        let mut buf = vec![0u8; loc.len as usize];
        seg.media.read_at(loc.offset, &mut buf)?;
        Ok(Some(buf))
    }

    /// Discards all records of `stream` with index `< up_to`.
    ///
    /// The chop is logged, so it survives crashes. Segments left without
    /// any live record are deleted.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn chop(&mut self, stream: StreamId, up_to: LogIndex) -> Result<(), StorageError> {
        let Some(state) = self.streams.get_mut(&stream.0) else {
            return Ok(());
        };
        if up_to.0 <= state.chopped_to {
            return Ok(());
        }
        state.chopped_to = up_to.0;
        state.next_index = state.next_index.max(up_to.0);
        let dead: Vec<u64> = state.locs.range(..up_to.0).map(|(&i, _)| i).collect();
        let mut touched = Vec::new();
        for i in dead {
            let loc = state.locs.remove(&i).expect("key from range");
            let seg = self.segments.get_mut(&loc.seg).expect("segment exists");
            seg.live -= 1;
            if seg.live == 0 && loc.seg != self.active {
                touched.push(loc.seg);
            }
        }
        self.write_frame(FRAME_CHOP, stream.0, up_to.0, &[])?;
        self.stats.chops += 1;
        touched.sort_unstable();
        touched.dedup();
        for no in touched {
            // Re-check: the chop frame may have rolled segments.
            if self.segments.get(&no).map(|s| s.live) == Some(0) && no != self.active {
                self.delete_segment(no)?;
            }
        }
        Ok(())
    }

    /// Flushes the active segment to durable storage (group commit point).
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        self.segments
            .get_mut(&self.active)
            .expect("active segment")
            .media
            .sync()?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// The next index [`LogVolume::append`] will assign for `stream`.
    pub fn next_index(&self, stream: StreamId) -> LogIndex {
        LogIndex(
            self.streams
                .get(&stream.0)
                .map(|s| s.next_index)
                .unwrap_or(0),
        )
    }

    /// The lowest index still readable for `stream` (`None` when empty).
    pub fn first_live_index(&self, stream: StreamId) -> Option<LogIndex> {
        self.streams
            .get(&stream.0)?
            .locs
            .keys()
            .next()
            .map(|&i| LogIndex(i))
    }

    /// Live record count for `stream`.
    pub fn live_records(&self, stream: StreamId) -> usize {
        self.streams
            .get(&stream.0)
            .map(|s| s.locs.len())
            .unwrap_or(0)
    }

    /// Reads all live records of `stream` in index order (recovery helper).
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying media fails.
    pub fn read_all(&mut self, stream: StreamId) -> Result<Vec<(LogIndex, Vec<u8>)>, StorageError> {
        let indexes: Vec<u64> = match self.streams.get(&stream.0) {
            Some(s) => s.locs.keys().copied().collect(),
            None => return Ok(Vec::new()),
        };
        let mut out = Vec::with_capacity(indexes.len());
        for i in indexes {
            if let Some(data) = self.read(stream, LogIndex(i))? {
                out.push((LogIndex(i), data));
            }
        }
        Ok(out)
    }

    /// All streams the volume has state for (including fully chopped
    /// ones), in unspecified order.
    pub fn stream_ids(&self) -> Vec<StreamId> {
        self.streams.keys().map(|&k| StreamId(k)).collect()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> VolumeStats {
        self.stats
    }

    /// Number of live segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemFactory;

    fn mem_volume(config: VolumeConfig) -> (MemFactory, LogVolume) {
        let f = MemFactory::new();
        let vol = LogVolume::create(Box::new(f.clone()), "vol", config).unwrap();
        (f, vol)
    }

    #[test]
    fn append_read_roundtrip_multiple_streams() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let a = StreamId(1);
        let b = StreamId(2);
        let ia0 = vol.append(a, b"a0").unwrap();
        let ib0 = vol.append(b, b"b0").unwrap();
        let ia1 = vol.append(a, b"a1").unwrap();
        assert_eq!(ia0, LogIndex(0));
        assert_eq!(ib0, LogIndex(0));
        assert_eq!(ia1, LogIndex(1));
        assert_eq!(vol.read(a, ia1).unwrap().as_deref(), Some(&b"a1"[..]));
        assert_eq!(vol.read(b, ib0).unwrap().as_deref(), Some(&b"b0"[..]));
        assert_eq!(vol.read(b, LogIndex(5)).unwrap(), None);
    }

    #[test]
    fn chop_removes_prefix_only() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let s = StreamId(0);
        for i in 0..10u64 {
            vol.append(s, format!("r{i}").as_bytes()).unwrap();
        }
        vol.chop(s, LogIndex(5)).unwrap();
        assert_eq!(vol.read(s, LogIndex(4)).unwrap(), None);
        assert_eq!(
            vol.read(s, LogIndex(5)).unwrap().as_deref(),
            Some(&b"r5"[..])
        );
        assert_eq!(vol.live_records(s), 5);
        assert_eq!(vol.first_live_index(s), Some(LogIndex(5)));
        // Indexes keep increasing after a chop.
        assert_eq!(vol.append(s, b"r10").unwrap(), LogIndex(10));
    }

    #[test]
    fn segments_roll_and_are_reclaimed() {
        let (f, mut vol) = mem_volume(VolumeConfig {
            segment_bytes: 256,
            sync_every_append: false,
        });
        let s = StreamId(0);
        let mut last = LogIndex(0);
        for _ in 0..50 {
            last = vol.append(s, &[7u8; 40]).unwrap();
        }
        assert!(vol.segment_count() > 1, "expected rolling");
        let before = f.list().unwrap().len();
        vol.chop(s, last).unwrap();
        let after = f.list().unwrap().len();
        assert!(
            after < before,
            "chop should reclaim segments ({before} -> {after})"
        );
        assert_eq!(vol.read(s, last).unwrap().as_deref(), Some(&[7u8; 40][..]));
    }

    #[test]
    fn recovery_rebuilds_streams() {
        let f = MemFactory::new();
        {
            let mut vol =
                LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
            vol.append(StreamId(0), b"x").unwrap();
            vol.append(StreamId(1), b"y").unwrap();
            vol.append(StreamId(0), b"z").unwrap();
            vol.chop(StreamId(0), LogIndex(1)).unwrap();
            vol.sync().unwrap();
        }
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(
            vol.read(StreamId(0), LogIndex(0)).unwrap(),
            None,
            "chop survives"
        );
        assert_eq!(
            vol.read(StreamId(0), LogIndex(1)).unwrap().as_deref(),
            Some(&b"z"[..])
        );
        assert_eq!(
            vol.read(StreamId(1), LogIndex(0)).unwrap().as_deref(),
            Some(&b"y"[..])
        );
        assert_eq!(vol.next_index(StreamId(0)), LogIndex(2));
        // New appends continue the index sequence.
        assert_eq!(vol.append(StreamId(0), b"w").unwrap(), LogIndex(2));
    }

    #[test]
    fn recovery_truncates_torn_tail() {
        let f = MemFactory::new();
        {
            let mut vol =
                LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
            vol.append(StreamId(0), b"good").unwrap();
            vol.sync().unwrap();
            vol.append(StreamId(0), b"lost-after-crash").unwrap();
            // no sync
        }
        f.crash_lose_unsynced();
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(
            vol.read(StreamId(0), LogIndex(0)).unwrap().as_deref(),
            Some(&b"good"[..])
        );
        assert_eq!(vol.read(StreamId(0), LogIndex(1)).unwrap(), None);
        assert_eq!(vol.next_index(StreamId(0)), LogIndex(1));
    }

    #[test]
    fn recovery_detects_corruption_via_crc() {
        let f = MemFactory::new();
        {
            let mut vol =
                LogVolume::create(Box::new(f.clone()), "v", VolumeConfig::default()).unwrap();
            vol.append(StreamId(0), b"payload-bytes").unwrap();
            vol.append(StreamId(0), b"second").unwrap();
            vol.sync().unwrap();
        }
        // Flip a payload bit of the first record (inside the frame body).
        f.corrupt_bit("v-00000000.seg", HEADER_LEN as u64 + 2);
        // The first record is not the tail, but scanning stops at the first
        // bad frame in the last segment: since this IS the last segment the
        // volume treats it as torn tail and truncates — both records lost
        // but the volume stays usable.
        let mut vol = LogVolume::open(Box::new(f), "v", VolumeConfig::default()).unwrap();
        assert_eq!(vol.read(StreamId(0), LogIndex(0)).unwrap(), None);
        assert_eq!(vol.read(StreamId(0), LogIndex(1)).unwrap(), None);
        vol.append(StreamId(0), b"fresh").unwrap();
    }

    #[test]
    fn corruption_in_non_last_segment_is_an_error() {
        let f = MemFactory::new();
        {
            let mut vol = LogVolume::create(
                Box::new(f.clone()),
                "v",
                VolumeConfig {
                    segment_bytes: 64,
                    sync_every_append: true,
                },
            )
            .unwrap();
            for _ in 0..6 {
                vol.append(StreamId(0), &[9u8; 40]).unwrap();
            }
            assert!(vol.segment_count() >= 2);
        }
        f.corrupt_bit("v-00000000.seg", 3);
        let res = LogVolume::open(Box::new(f), "v", VolumeConfig::default());
        assert!(matches!(res, Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn stats_track_payload_and_records() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        vol.append(StreamId(0), &[0u8; 100]).unwrap();
        vol.append(StreamId(0), &[0u8; 24]).unwrap();
        vol.sync().unwrap();
        let st = vol.stats();
        assert_eq!(st.records, 2);
        assert_eq!(st.payload_bytes, 124);
        assert_eq!(st.total_bytes, 124 + 2 * HEADER_LEN as u64);
        assert_eq!(st.syncs, 1);
    }

    #[test]
    fn read_all_in_index_order() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let s = StreamId(3);
        for i in 0..5u8 {
            vol.append(s, &[i]).unwrap();
        }
        vol.chop(s, LogIndex(2)).unwrap();
        let all = vol.read_all(s).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], (LogIndex(2), vec![2u8]));
        assert_eq!(all[2], (LogIndex(4), vec![4u8]));
    }

    #[test]
    fn empty_stream_queries() {
        let (_f, mut vol) = mem_volume(VolumeConfig::default());
        let s = StreamId(9);
        assert_eq!(vol.next_index(s), LogIndex(0));
        assert_eq!(vol.first_live_index(s), None);
        assert_eq!(vol.live_records(s), 0);
        assert!(vol.read_all(s).unwrap().is_empty());
        vol.chop(s, LogIndex(100)).unwrap(); // chop on unknown stream is a no-op
    }
}
