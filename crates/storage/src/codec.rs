//! Compact binary codec for persisting events.
//!
//! The workspace deliberately avoids a serde wire format dependency (the
//! offline dependency policy in DESIGN.md); events are small, flat records
//! and this hand-rolled codec doubles as the "418-byte event" accounting
//! of the paper's experiments.

use bytes::Bytes;
use gryphon_types::{AttrValue, Event, PubendId, Timestamp};

/// Error decoding a persisted event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for CodecError {}

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BOOL: u8 = 3;

/// Encodes an event into a fresh buffer.
///
/// # Examples
///
/// ```
/// use gryphon_storage::{decode_event, encode_event};
/// use gryphon_types::{Event, PubendId, Timestamp};
///
/// let e = Event::builder(PubendId(1)).attr("k", 3i64).payload(vec![9]).build(Timestamp(7));
/// let bytes = encode_event(&e);
/// assert_eq!(decode_event(&bytes)?, e);
/// # Ok::<(), gryphon_storage::CodecError>(())
/// ```
pub fn encode_event(event: &Event) -> Vec<u8> {
    let mut out = Vec::with_capacity(event.encoded_len());
    out.extend_from_slice(&event.pubend.0.to_le_bytes());
    out.extend_from_slice(&event.ts.0.to_le_bytes());
    out.extend_from_slice(&(event.attrs.len() as u16).to_le_bytes());
    for (k, v) in &event.attrs {
        out.extend_from_slice(&(k.as_str().len() as u16).to_le_bytes());
        out.extend_from_slice(k.as_str().as_bytes());
        match v {
            AttrValue::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            AttrValue::Float(x) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            AttrValue::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            AttrValue::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
        }
    }
    out.extend_from_slice(&(event.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&event.payload);
    out
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.data.len() {
            return Err(CodecError {
                offset: self.pos,
                message: format!("need {n} bytes, have {}", self.data.len() - self.pos),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn str(&mut self, n: usize) -> Result<String, CodecError> {
        let pos = self.pos;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| CodecError {
            offset: pos,
            message: "invalid utf-8".into(),
        })
    }
}

/// Decodes an event previously produced by [`encode_event`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed input.
pub fn decode_event(data: &[u8]) -> Result<Event, CodecError> {
    let mut c = Cursor { data, pos: 0 };
    let pubend = PubendId(c.u32()?);
    let ts = Timestamp(c.u64()?);
    let nattrs = c.u16()?;
    let mut b = Event::builder(pubend);
    for _ in 0..nattrs {
        let klen = c.u16()? as usize;
        let key = c.str(klen)?;
        let tag = c.u8()?;
        let value = match tag {
            TAG_INT => AttrValue::Int(c.u64()? as i64),
            TAG_FLOAT => AttrValue::Float(f64::from_bits(c.u64()?)),
            TAG_STR => {
                let n = c.u32()? as usize;
                AttrValue::Str(c.str(n)?)
            }
            TAG_BOOL => AttrValue::Bool(c.u8()? != 0),
            other => {
                return Err(CodecError {
                    offset: c.pos - 1,
                    message: format!("unknown attr tag {other}"),
                })
            }
        };
        b = b.attr(key, value);
    }
    let plen = c.u32()? as usize;
    let payload = Bytes::copy_from_slice(c.take(plen)?);
    if c.pos != data.len() {
        return Err(CodecError {
            offset: c.pos,
            message: "trailing bytes".into(),
        });
    }
    Ok(b.payload(payload).build(ts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Event {
        Event::builder(PubendId(3))
            .attr("class", 2i64)
            .attr("price", 10.5f64)
            .attr("sym", "IBM")
            .attr("urgent", true)
            .payload(vec![0xAB; 250])
            .build(Timestamp(12345))
    }

    #[test]
    fn roundtrip_full_event() {
        let e = sample();
        assert_eq!(decode_event(&encode_event(&e)).unwrap(), e);
    }

    #[test]
    fn roundtrip_empty_event() {
        let e = Event::builder(PubendId(0)).build(Timestamp(0));
        assert_eq!(decode_event(&encode_event(&e)).unwrap(), e);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let bytes = encode_event(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_event(&bytes[..cut]).is_err(),
                "truncation at {cut} went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = encode_event(&sample());
        bytes.push(0);
        assert!(decode_event(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_detected() {
        let e = Event::builder(PubendId(0))
            .attr("k", 1i64)
            .build(Timestamp(1));
        let mut bytes = encode_event(&e);
        // attr tag offset: 4 (pubend) + 8 (ts) + 2 (count) + 2 (klen) + 1 ('k')
        bytes[17] = 99;
        let err = decode_event(&bytes).unwrap_err();
        assert!(err.message.contains("unknown attr tag"));
    }

    #[test]
    fn negative_int_and_nan_roundtrip() {
        let e = Event::builder(PubendId(0))
            .attr("neg", -42i64)
            .attr("nan", f64::NAN)
            .build(Timestamp(1));
        let d = decode_event(&encode_event(&e)).unwrap();
        assert_eq!(d.attr("neg"), Some(&AttrValue::Int(-42)));
        match d.attr("nan") {
            Some(AttrValue::Float(x)) => assert!(x.is_nan()),
            other => panic!("expected NaN float, got {other:?}"),
        }
    }
}
