//! JMS-style durable topic subscriptions on top of the Gryphon model
//! (paper §5.2).
//!
//! The paper implements the Java Message Service durable-subscription API
//! over its own model. The JMS contract differs in two ways:
//!
//! * the subscriber's resumption point (checkpoint token) is stored **by
//!   the broker**, not the client — so every acknowledgment becomes a
//!   database commit at the SHB;
//! * in **auto-acknowledge** mode the client acknowledges after consuming
//!   *each* message, so the SHB commits the checkpoint per event. This is
//!   the most severe mode: the paper measures 4 K ev/s with 25
//!   subscribers and 7.6 K ev/s with 200 (the bottleneck is commit
//!   throughput, improved by batching concurrent updates into one
//!   transaction across 4 worker threads).
//!
//! This crate is a thin, typed facade: it derives stable subscription
//! identities from `(client id, subscription name)` and configures the
//! underlying [`SubscriberClient`] / [`PublisherClient`] to speak the
//! broker's `broker_ct` protocol.
//!
//! # Examples
//!
//! ```
//! use gryphon_jms::{AckMode, Session, Topic};
//! use gryphon_types::NodeId;
//!
//! let session = Session::new("trading-app", NodeId(3));
//! let topic = Topic::new("orders.us");
//! let sub = session.create_durable_subscriber(&topic, "audit", AckMode::AutoAcknowledge);
//! assert!(sub.name() == "audit");
//! ```

use gryphon::{PublisherClient, SubscriberClient, SubscriberConfig};
use gryphon_types::{NodeId, PubendId, SubscriberId, SubscriptionSpec};

/// JMS acknowledgment modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Acknowledge (and commit the broker-side checkpoint) after every
    /// message — the paper's stress case.
    AutoAcknowledge,
    /// Lazy acknowledgment: duplicates allowed after failures; the client
    /// acknowledges on a timer.
    DupsOkAcknowledge,
    /// The application acknowledges explicitly (here: periodic, like
    /// `DupsOk`, but the broker still owns the checkpoint).
    ClientAcknowledge,
}

/// A named topic. Published messages carry `topic = '<name>'`; durable
/// subscribers filter on it (plus an optional selector conjunction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topic {
    name: String,
}

impl Topic {
    /// Creates a topic handle.
    pub fn new(name: impl Into<String>) -> Self {
        Topic { name: name.into() }
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The filter expression selecting this topic.
    pub fn filter(&self) -> String {
        format!("topic = '{}'", self.name)
    }

    /// Filter with an additional JMS-selector-style conjunction.
    ///
    /// # Examples
    ///
    /// ```
    /// # use gryphon_jms::Topic;
    /// let t = Topic::new("orders");
    /// assert_eq!(t.filter_with("qty > 100"), "topic = 'orders' && qty > 100");
    /// ```
    pub fn filter_with(&self, selector: &str) -> String {
        if selector.trim().is_empty() {
            self.filter()
        } else {
            format!("{} && {}", self.filter(), selector)
        }
    }
}

/// Stable 64-bit identity for a durable subscription, derived from the
/// JMS `(clientID, subscriptionName)` pair (FNV-1a).
pub fn subscription_id(client_id: &str, name: &str) -> SubscriberId {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in client_id.bytes().chain([0u8]).chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SubscriberId(h)
}

/// A JMS-ish session bound to one SHB: a factory for durable subscribers
/// and topic publishers.
#[derive(Debug, Clone)]
pub struct Session {
    client_id: String,
    shb: NodeId,
}

impl Session {
    /// Creates a session for `client_id` talking to the broker node
    /// `shb`.
    pub fn new(client_id: impl Into<String>, shb: NodeId) -> Self {
        Session {
            client_id: client_id.into(),
            shb,
        }
    }

    /// The JMS client id.
    pub fn client_id(&self) -> &str {
        &self.client_id
    }

    /// Creates a durable topic subscriber (register the returned
    /// [`DurableSubscriber::into_node`] with the runtime).
    pub fn create_durable_subscriber(
        &self,
        topic: &Topic,
        name: &str,
        mode: AckMode,
    ) -> DurableSubscriber {
        DurableSubscriber {
            id: subscription_id(&self.client_id, name),
            name: name.to_owned(),
            shb: self.shb,
            filter: topic.filter(),
            mode,
            ack_interval_us: 250_000,
        }
    }

    /// Creates a durable topic subscriber with a message selector.
    pub fn create_durable_subscriber_with_selector(
        &self,
        topic: &Topic,
        name: &str,
        selector: &str,
        mode: AckMode,
    ) -> DurableSubscriber {
        let mut s = self.create_durable_subscriber(topic, name, mode);
        s.filter = topic.filter_with(selector);
        s
    }

    /// Creates a publisher for `topic` targeting pubend `pubend` hosted
    /// at broker node `phb`.
    pub fn create_publisher(
        &self,
        topic: &Topic,
        phb: NodeId,
        pubend: PubendId,
        rate: f64,
    ) -> PublisherClient {
        let name = topic.name.clone();
        PublisherClient::new(phb, pubend, rate).with_attrs(move |_, _| {
            let mut a = gryphon_types::Attributes::new();
            a.insert("topic".into(), name.clone().into());
            a
        })
    }
}

/// A configured durable subscription, convertible into a runtime node.
#[derive(Debug, Clone)]
pub struct DurableSubscriber {
    id: SubscriberId,
    name: String,
    shb: NodeId,
    filter: String,
    mode: AckMode,
    ack_interval_us: u64,
}

impl DurableSubscriber {
    /// The derived stable subscription id.
    pub fn id(&self) -> SubscriberId {
        self.id
    }

    /// The subscription name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The effective filter expression.
    pub fn filter(&self) -> &str {
        &self.filter
    }

    /// Overrides the acknowledgment period (non-auto modes).
    pub fn with_ack_interval_us(mut self, us: u64) -> Self {
        self.ack_interval_us = us;
        self
    }

    /// Builds the runtime node implementing this subscription.
    pub fn into_node(self) -> SubscriberClient {
        let cfg = SubscriberConfig {
            broker_ct: true,
            auto_ack: self.mode == AckMode::AutoAcknowledge,
            ack_interval_us: self.ack_interval_us,
            ..SubscriberConfig::default()
        };
        SubscriberClient::new(self.id, self.shb, SubscriptionSpec::new(self.filter), cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscription_ids_are_stable_and_distinct() {
        let a = subscription_id("app", "audit");
        let b = subscription_id("app", "audit");
        assert_eq!(a, b);
        assert_ne!(a, subscription_id("app", "other"));
        assert_ne!(a, subscription_id("app2", "audit"));
        // The (clientID, name) boundary matters: "ab"+"c" ≠ "a"+"bc".
        assert_ne!(subscription_id("ab", "c"), subscription_id("a", "bc"));
    }

    #[test]
    fn topic_filters() {
        let t = Topic::new("orders.us");
        assert_eq!(t.filter(), "topic = 'orders.us'");
        assert_eq!(t.filter_with(""), "topic = 'orders.us'");
        assert_eq!(
            t.filter_with("qty >= 10"),
            "topic = 'orders.us' && qty >= 10"
        );
    }

    #[test]
    fn subscriber_builder_configures_modes() {
        let session = Session::new("app", NodeId(1));
        let topic = Topic::new("t");
        let auto = session.create_durable_subscriber(&topic, "a", AckMode::AutoAcknowledge);
        let lazy = session.create_durable_subscriber(&topic, "b", AckMode::DupsOkAcknowledge);
        assert_ne!(auto.id(), lazy.id());
        // Auto mode builds a node (smoke: construction succeeds and the
        // filter parses at the broker later).
        let _node = auto.into_node();
        let _node2 = lazy.into_node();
    }
}
