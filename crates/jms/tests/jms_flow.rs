//! JMS behaviour tests: broker-managed checkpoints, auto-ack
//! serialization, and commit-bound throughput.

use gryphon::{Broker, BrokerConfig};
use gryphon_jms::{AckMode, Session, Topic};
use gryphon_sim::Sim;
use gryphon_storage::MemFactory;
use gryphon_types::PubendId;

fn one_broker(sim: &mut Sim, config: BrokerConfig) -> gryphon_sim::Handle<Broker> {
    sim.add_typed_node(
        "b",
        Broker::new(0, Box::new(MemFactory::new()), config)
            .hosting_pubends([PubendId(0)])
            .hosting_subscribers(),
    )
}

#[test]
fn auto_ack_delivers_exactly_once_in_order() {
    let mut sim = Sim::new(1);
    let b = one_broker(&mut sim, BrokerConfig::default());
    let session = Session::new("app", b.id());
    let topic = Topic::new("orders");
    let sub = sim.add_typed_node(
        "sub",
        session
            .create_durable_subscriber(&topic, "audit", AckMode::AutoAcknowledge)
            .into_node(),
    );
    sim.connect(sub.id(), b.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        session.create_publisher(&topic, b.id(), PubendId(0), 100.0),
    );
    sim.connect(publisher.id(), b.id(), 500);
    sim.run_until(10_000_000);
    let client = sim.node_ref(sub);
    assert_eq!(client.order_violations(), 0);
    assert_eq!(client.gaps_received(), 0);
    assert!(
        client.events_received() > 200,
        "{}",
        client.events_received()
    );
    // Auto-ack: every event produced a checkpoint commit at the broker.
    assert!(sim.metrics().counter("shb.ct_commits") > 0.0);
}

#[test]
fn auto_ack_throughput_is_commit_bound() {
    // Commits take ~2.5 ms plus the ack round trip: one serialized
    // subscriber consumes a few hundred ev/s no matter the offered load.
    let mut sim = Sim::new(2);
    let b = one_broker(&mut sim, BrokerConfig::default());
    let session = Session::new("app", b.id());
    let topic = Topic::new("fast");
    let sub = sim.add_typed_node(
        "sub",
        session
            .create_durable_subscriber(&topic, "slowpoke", AckMode::AutoAcknowledge)
            .into_node(),
    );
    sim.connect(sub.id(), b.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        session.create_publisher(&topic, b.id(), PubendId(0), 800.0),
    );
    sim.connect(publisher.id(), b.id(), 500);
    sim.run_until(10_000_000);
    let got = sim.node_ref(sub).events_received();
    // Offered ≈ 8000 over 10 s; the commit round trip bounds consumption
    // way below that.
    assert!(got < 4_000, "commit-bound subscriber consumed {got}");
    assert!(got > 500, "subscriber should still make progress: {got}");
}

#[test]
fn broker_stores_checkpoint_across_reconnect() {
    // A JMS subscriber reconnects presenting NO checkpoint; the broker
    // must resume from its own stored one (no duplicates).
    let mut sim = Sim::new(3);
    let b = one_broker(&mut sim, BrokerConfig::default());
    let session = Session::new("app", b.id());
    let topic = Topic::new("t");
    // A JMS auto-ack subscriber that also collects deliveries and cycles
    // through voluntary disconnections (built directly since the facade
    // does not expose test-only knobs).
    let cfg = gryphon::SubscriberConfig {
        broker_ct: true,
        auto_ack: true,
        collect: true,
        disconnect_period_us: Some(4_000_000),
        disconnect_duration_us: 1_500_000,
        ..gryphon::SubscriberConfig::default()
    };
    let node = gryphon::SubscriberClient::new(
        gryphon_jms::subscription_id("app", "durable"),
        b.id(),
        gryphon_types::SubscriptionSpec::new(topic.filter()),
        cfg,
    );
    let sub = sim.add_typed_node("sub", node);
    sim.connect(sub.id(), b.id(), 500);
    let publisher = sim.add_typed_node(
        "pub",
        session.create_publisher(&topic, b.id(), PubendId(0), 50.0),
    );
    sim.connect(publisher.id(), b.id(), 500);
    sim.run_until(20_000_000);
    let client = sim.node_ref(sub);
    assert_eq!(client.order_violations(), 0, "duplicates after reconnect");
    let seqs: Vec<i64> = client
        .received()
        .iter()
        .filter(|r| r.kind == "event")
        .filter_map(|r| r.seq)
        .collect();
    let mut dedup = seqs.clone();
    dedup.dedup();
    assert_eq!(seqs, dedup, "no adjacent duplicates");
    assert!(seqs.len() > 300, "{}", seqs.len());
    // Strictly increasing = exactly-once in order.
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "out of order: {seqs:?}"
    );
}
