//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain
//! data types but never serializes through a format crate (the wire codec
//! in `gryphon-storage` is hand-rolled), so the derives can expand to
//! nothing: the attribute compiles away and no trait bound anywhere
//! requires the generated impls.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
