//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer backed
//! by an `Arc<[u8]>`. Clones are reference-count bumps, so sharing a
//! payload across thousands of subscribers never copies it — the one
//! property of the real crate this workspace relies on. Slicing views
//! and `BytesMut` are not needed here and are omitted.

use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Creates a buffer from a static slice (copies; the real crate
    /// borrows, but nothing here is length-critical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…(+{})", self.data.len() - 32)?;
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(std::sync::Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
        assert_eq!(Bytes::from("ab").as_ref(), b"ab");
        let deref: &[u8] = &Bytes::from(vec![9u8]);
        assert_eq!(deref, &[9u8]);
    }
}
