//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable byte buffer backed
//! by an `Arc<[u8]>` plus an (offset, len) window. Clones and
//! [`Bytes::slice`] views are reference-count bumps, so sharing a payload
//! across thousands of subscribers — or handing out sub-ranges of a log
//! segment — never copies it. `BytesMut` is not needed here and is
//! omitted.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (possibly a view into a
/// larger shared allocation).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            offset: 0,
            len: data.len(),
            data: data.into(),
        }
    }

    /// Creates a buffer from a static slice (copies; the real crate
    /// borrows, but nothing here is length-critical).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a view of `range` within this buffer sharing the same
    /// backing allocation — no copy, just a reference-count bump.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted, matching the
    /// real crate's behaviour.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            offset: self.offset + start,
            len: end - start,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            offset: 0,
            len: v.len(),
            data: v.into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(32) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len > 32 {
            write!(f, "…(+{})", self.len - 32)?;
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(std::sync::Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn constructors() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
        assert_eq!(Bytes::from("ab").as_ref(), b"ab");
        let deref: &[u8] = &Bytes::from(vec![9u8]);
        assert_eq!(deref, &[9u8]);
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let mid = a.slice(2..5);
        assert_eq!(mid.as_ref(), &[2, 3, 4]);
        assert!(std::sync::Arc::ptr_eq(&a.data, &mid.data));
        // Slicing a slice composes offsets.
        let inner = mid.slice(1..);
        assert_eq!(inner.as_ref(), &[3, 4]);
        assert!(std::sync::Arc::ptr_eq(&a.data, &inner.data));
        // Equality compares the visible window, not the allocation.
        assert_eq!(inner, Bytes::from(vec![3u8, 4]));
        assert_eq!(a.slice(..), a);
        assert!(a.slice(3..3).is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::from(vec![1u8, 2]).slice(1..4);
    }
}
