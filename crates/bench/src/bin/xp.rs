//! `xp` — regenerates the paper's tables and figures.
//!
//! ```text
//! xp [--quick] [--csv DIR] [--trace] [--metrics-out DIR] [--prom-out DIR]
//!    [--flight-dir DIR] [--telemetry-out DIR] [--sample-interval MS]
//!    [--metrics-addr ADDR] [--bundle-out DIR] [--chrome-trace DIR]
//!    [--seed-offset N] [--degrade] [--slow-sub] [--subs N] [--churn-pct P]
//!    <experiment>|all|list
//! xp doctor inspect BUNDLE [--exemplars]
//! xp doctor check BUNDLE
//! xp doctor diff A B [--threshold-pct P] [--abs-floor-us US]
//! xp doctor export-trace BUNDLE -o trace.json
//! ```
//!
//! * `list` prints the catalog;
//! * `all` runs every experiment in order;
//! * `--quick` runs shortened virtual-time versions (CI-friendly);
//! * `--csv DIR` additionally dumps each experiment's raw series as CSV
//!   files for plotting;
//! * `--trace` prints the full structured trace ring after each report
//!   (the report itself only shows the tail);
//! * `--metrics-out DIR` writes each experiment's metrics snapshot as
//!   `<id>.metrics.csv` and `<id>.metrics.json` (see DESIGN.md
//!   "Observability" for the name registry);
//! * `--prom-out DIR` writes each experiment's metrics snapshot as
//!   `<id>.prom` in Prometheus text exposition format;
//! * `--flight-dir DIR` arms the violation flight recorder: any watchdog
//!   or delivery-ledger violation dumps a post-mortem file
//!   (`postmortem-N.txt`) with the offending event's lineage, a metrics
//!   snapshot, and the trace-ring tail (see DESIGN.md §12);
//! * `--sample-interval MS` arms the windowed telemetry sampler on every
//!   simulator at the given virtual-time interval (milliseconds; see
//!   DESIGN.md §13) — reports then include a sparkline timeline section;
//! * `--telemetry-out DIR` writes each experiment's telemetry timeline
//!   as `<id>.telemetry.ndjson` and `<id>.telemetry.csv` (implies
//!   `--sample-interval 500` unless one was given);
//! * `--metrics-addr ADDR` serves the most recent experiment's
//!   Prometheus snapshot live at `http://ADDR/metrics` (e.g.
//!   `127.0.0.1:9090`) until xp exits;
//! * `--bundle-out DIR` writes a complete self-describing run bundle per
//!   experiment under `DIR/<id>/` (manifest, metrics, timeline, alerts,
//!   Prometheus snapshot, report, flight recorder — DESIGN.md §14). It
//!   subsumes the scattered `--*-out` flags, arms the sampler (500 ms
//!   unless `--sample-interval` says otherwise) and the online health
//!   engine, and points the flight recorder into the bundle;
//! * `--chrome-trace DIR` writes each experiment's forensics streams as
//!   `<id>.trace.json` in Chrome trace-event format — open it in
//!   Perfetto or chrome://tracing (implies `--sample-interval 500`
//!   unless one was given; see DESIGN.md §17);
//! * `--seed-offset N` shifts every simulator seed by N (same workload,
//!   different randomness — for A/B bundles fed to `xp doctor diff`);
//! * `--degrade` deliberately worsens broker latency/batching config
//!   (CI uses it to prove `xp doctor diff` catches real regressions);
//! * `--subs N` overrides the `mega_subs` durable-subscription
//!   population (default 10^6, or 20 000 under `--quick`);
//! * `--churn-pct P` overrides the `mega_subs` churn percentage
//!   (default 1);
//! * `xp doctor inspect|diff|check` analyses bundles offline — see
//!   `gryphon_harness::doctor`.

use std::io::Write;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("doctor") {
        std::process::exit(gryphon_harness::doctor::run(&argv[1..]));
    }
    let mut quick = false;
    let mut trace = false;
    let mut csv_dir: Option<String> = None;
    let mut metrics_dir: Option<String> = None;
    let mut prom_dir: Option<String> = None;
    let mut flight_dir: Option<String> = None;
    let mut telemetry_dir: Option<String> = None;
    let mut bundle_dir: Option<String> = None;
    let mut chrome_trace_dir: Option<String> = None;
    let mut sample_interval_ms: Option<u64> = None;
    let mut metrics_addr: Option<String> = None;
    let mut seed_offset: u64 = 0;
    let mut degrade = false;
    let mut slow_sub = false;
    let mut subs: Option<u64> = None;
    let mut churn_pct: Option<f64> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--trace" => trace = true,
            "--telemetry-out" => {
                telemetry_dir = args.next();
                if telemetry_dir.is_none() {
                    eprintln!("--telemetry-out requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--sample-interval" => {
                sample_interval_ms = args.next().and_then(|v| v.parse().ok());
                if sample_interval_ms.is_none() {
                    eprintln!("--sample-interval requires a milliseconds argument");
                    std::process::exit(2);
                }
            }
            "--metrics-addr" => {
                metrics_addr = args.next();
                if metrics_addr.is_none() {
                    eprintln!("--metrics-addr requires an address argument (e.g. 127.0.0.1:9090)");
                    std::process::exit(2);
                }
            }
            "--csv" => {
                csv_dir = args.next();
                if csv_dir.is_none() {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--metrics-out" => {
                metrics_dir = args.next();
                if metrics_dir.is_none() {
                    eprintln!("--metrics-out requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--prom-out" => {
                prom_dir = args.next();
                if prom_dir.is_none() {
                    eprintln!("--prom-out requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--flight-dir" => {
                flight_dir = args.next();
                if flight_dir.is_none() {
                    eprintln!("--flight-dir requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--bundle-out" => {
                bundle_dir = args.next();
                if bundle_dir.is_none() {
                    eprintln!("--bundle-out requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--chrome-trace" => {
                chrome_trace_dir = args.next();
                if chrome_trace_dir.is_none() {
                    eprintln!("--chrome-trace requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--seed-offset" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed-offset requires an integer argument");
                    std::process::exit(2);
                };
                seed_offset = n;
            }
            "--degrade" => degrade = true,
            "--slow-sub" => slow_sub = true,
            "--subs" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--subs requires an integer argument");
                    std::process::exit(2);
                };
                subs = Some(n);
            }
            "--churn-pct" => {
                let Some(p) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--churn-pct requires a numeric argument");
                    std::process::exit(2);
                };
                churn_pct = Some(p);
            }
            "--help" | "-h" => {
                println!(
                    "usage: xp [--quick] [--csv DIR] [--trace] [--metrics-out DIR] \
                     [--prom-out DIR] [--flight-dir DIR] [--bundle-out DIR] \
                     [--chrome-trace DIR] [--seed-offset N] [--degrade] [--slow-sub] \
                     [--subs N] [--churn-pct P] <experiment>|all|list\n\
                     \x20      xp doctor inspect BUNDLE [--exemplars] [--topk] [--json]\n\
                     \x20      xp doctor check BUNDLE\n\
                     \x20      xp doctor diff A B [--threshold-pct P] [--abs-floor-us US]\n\
                     \x20      xp doctor export-trace BUNDLE -o trace.json"
                );
                print_catalog();
                return;
            }
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: xp [--quick] [--csv DIR] [--trace] [--metrics-out DIR] [--prom-out DIR] \
             [--flight-dir DIR] <experiment>|all|list"
        );
        print_catalog();
        std::process::exit(2);
    }
    gryphon_harness::topology::set_default_flight_dir(
        flight_dir.as_deref().map(std::path::PathBuf::from),
    );
    // --telemetry-out / --bundle-out without an explicit interval still
    // need the sampler armed; 500 ms windows match the experiments'
    // timescales. A bundle additionally arms the online health engine.
    if (telemetry_dir.is_some() || bundle_dir.is_some() || chrome_trace_dir.is_some())
        && sample_interval_ms.is_none()
    {
        sample_interval_ms = Some(500);
    }
    if bundle_dir.is_some() {
        gryphon_harness::topology::set_default_health(true);
    }
    gryphon_harness::topology::set_default_seed_offset(seed_offset);
    gryphon_harness::topology::set_default_degrade(degrade);
    gryphon_harness::topology::set_default_slow_sub(slow_sub);
    gryphon_harness::topology::set_default_mega_subs(subs);
    gryphon_harness::topology::set_default_churn_pct(churn_pct);
    gryphon_harness::topology::set_default_sample_interval(
        sample_interval_ms.map(|ms| ms.saturating_mul(1_000).max(1)),
    );
    // Live scrape endpoint: serves the latest completed experiment's
    // Prometheus snapshot (empty until the first one finishes).
    let live_prom: std::sync::Arc<std::sync::Mutex<String>> = Default::default();
    let _scrape = metrics_addr.as_deref().map(|addr| {
        let prom = std::sync::Arc::clone(&live_prom);
        let server = gryphon_sim::telemetry::TextServer::serve(addr, move || {
            prom.lock().map(|s| s.clone()).unwrap_or_default()
        })
        .unwrap_or_else(|e| {
            eprintln!("error: cannot bind --metrics-addr {addr}: {e}");
            std::process::exit(1);
        });
        println!(
            "[serving live metrics at http://{}/metrics]",
            server.local_addr()
        );
        server
    });
    let opts = Options {
        quick,
        trace,
        csv_dir,
        metrics_dir,
        prom_dir,
        telemetry_dir,
        bundle_dir,
        chrome_trace_dir,
        explicit_flight_dir: flight_dir.is_some(),
        seed_offset,
        degrade,
        sample_interval_ms,
        live_prom,
    };
    for target in targets {
        match target.as_str() {
            "list" => print_catalog(),
            "all" => {
                for (id, _) in gryphon_harness::catalog() {
                    run_one(id, &opts);
                }
            }
            id => run_one(id, &opts),
        }
    }
}

struct Options {
    quick: bool,
    trace: bool,
    csv_dir: Option<String>,
    metrics_dir: Option<String>,
    prom_dir: Option<String>,
    telemetry_dir: Option<String>,
    bundle_dir: Option<String>,
    chrome_trace_dir: Option<String>,
    explicit_flight_dir: bool,
    seed_offset: u64,
    degrade: bool,
    sample_interval_ms: Option<u64>,
    live_prom: std::sync::Arc<std::sync::Mutex<String>>,
}

fn print_catalog() {
    println!("experiments:");
    for (id, summary) in gryphon_harness::catalog() {
        println!("  {id:<18} {summary}");
    }
}

fn write_file(dir: &str, name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(dir).join(name);
    let result = std::fs::create_dir_all(dir).and_then(|()| {
        std::fs::File::create(&path).and_then(|mut f| f.write_all(contents.as_bytes()))
    });
    if let Err(e) = result {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    path
}

fn run_one(id: &str, opts: &Options) {
    let started = std::time::Instant::now();
    if let Some(root) = opts.bundle_dir.as_deref() {
        // Flight-recorder post-mortems belong inside this run's bundle
        // (unless the user pinned them elsewhere with --flight-dir).
        if !opts.explicit_flight_dir {
            gryphon_harness::topology::set_default_flight_dir(Some(
                gryphon_harness::bundle::flight_dir(std::path::Path::new(root), id),
            ));
        }
    }
    match gryphon_harness::run(id, opts.quick) {
        Ok(report) => {
            println!("{}", report.render());
            if opts.trace && !report.trace.is_empty() {
                println!("full trace ({} records):", report.trace.len());
                for line in &report.trace {
                    println!("{line}");
                }
            }
            println!(
                "[{} completed in {:.1} s wall{}]\n",
                id,
                started.elapsed().as_secs_f64(),
                if opts.quick { ", --quick" } else { "" }
            );
            if let Some(dir) = opts.csv_dir.as_deref() {
                if !report.series.is_empty() {
                    let path = write_file(dir, &format!("{id}.csv"), &report.series_csv());
                    println!("[series written to {}]", path.display());
                }
            }
            if let Some(dir) = opts.metrics_dir.as_deref() {
                let csv = write_file(dir, &format!("{id}.metrics.csv"), &report.metrics_csv());
                let json = write_file(dir, &format!("{id}.metrics.json"), &report.metrics_json());
                println!(
                    "[metrics written to {} and {}]",
                    csv.display(),
                    json.display()
                );
            }
            if let Some(dir) = opts.prom_dir.as_deref() {
                if let Some(prom) = report.prom.as_deref() {
                    let path = write_file(dir, &format!("{id}.prom"), prom);
                    println!("[prometheus snapshot written to {}]", path.display());
                }
            }
            if let Some(dir) = opts.telemetry_dir.as_deref() {
                if report.telemetry.is_some() {
                    let nd = write_file(
                        dir,
                        &format!("{id}.telemetry.ndjson"),
                        &report.telemetry_ndjson(),
                    );
                    let csv =
                        write_file(dir, &format!("{id}.telemetry.csv"), &report.telemetry_csv());
                    println!(
                        "[telemetry written to {} and {}]",
                        nd.display(),
                        csv.display()
                    );
                }
            }
            if let Some(dir) = opts.chrome_trace_dir.as_deref() {
                let (intervals, exemplars): (Vec<_>, Vec<_>) = report
                    .telemetry
                    .as_ref()
                    .map(|t| {
                        (
                            t.intervals().copied().collect(),
                            t.exemplars().cloned().collect(),
                        )
                    })
                    .unwrap_or_default();
                let json = gryphon_harness::trace_export::chrome_trace_json(
                    &intervals,
                    &exemplars,
                    report.alerts(),
                );
                let path = write_file(dir, &format!("{id}.trace.json"), &json);
                println!(
                    "[chrome trace written to {} — open in https://ui.perfetto.dev]",
                    path.display()
                );
            }
            if let Some(root) = opts.bundle_dir.as_deref() {
                let meta = gryphon_harness::bundle::BundleMeta {
                    quick: opts.quick,
                    interval_us: opts
                        .sample_interval_ms
                        .map(|ms| ms.saturating_mul(1_000).max(1))
                        .unwrap_or(0),
                    seed_offset: opts.seed_offset,
                    degrade: opts.degrade,
                };
                match gryphon_harness::bundle::write_bundle(
                    std::path::Path::new(root),
                    &report,
                    &meta,
                ) {
                    Ok(dir) => println!("[bundle written to {}]", dir.display()),
                    Err(e) => {
                        eprintln!("error: cannot write bundle for {id}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            if let Some(prom) = report.prom.as_deref() {
                if let Ok(mut live) = opts.live_prom.lock() {
                    *live = prom.to_owned();
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
