//! `xp` — regenerates the paper's tables and figures.
//!
//! ```text
//! xp [--quick] [--csv DIR] <experiment>|all|list
//! ```
//!
//! * `list` prints the catalog;
//! * `all` runs every experiment in order;
//! * `--quick` runs shortened virtual-time versions (CI-friendly);
//! * `--csv DIR` additionally dumps each experiment's raw series as CSV
//!   files for plotting.

use std::io::Write;

fn main() {
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--csv" => {
                csv_dir = args.next();
                if csv_dir.is_none() {
                    eprintln!("--csv requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: xp [--quick] [--csv DIR] <experiment>|all|list");
                print_catalog();
                return;
            }
            other => targets.push(other.to_owned()),
        }
    }
    if targets.is_empty() {
        eprintln!("usage: xp [--quick] [--csv DIR] <experiment>|all|list");
        print_catalog();
        std::process::exit(2);
    }
    for target in targets {
        match target.as_str() {
            "list" => print_catalog(),
            "all" => {
                for (id, _) in gryphon_harness::catalog() {
                    run_one(id, quick, csv_dir.as_deref());
                }
            }
            id => run_one(id, quick, csv_dir.as_deref()),
        }
    }
}

fn print_catalog() {
    println!("experiments:");
    for (id, summary) in gryphon_harness::catalog() {
        println!("  {id:<18} {summary}");
    }
}

fn run_one(id: &str, quick: bool, csv_dir: Option<&str>) {
    let started = std::time::Instant::now();
    match gryphon_harness::run(id, quick) {
        Ok(report) => {
            println!("{}", report.render());
            println!(
                "[{} completed in {:.1} s wall{}]\n",
                id,
                started.elapsed().as_secs_f64(),
                if quick { ", --quick" } else { "" }
            );
            if let Some(dir) = csv_dir {
                if !report.series.is_empty() {
                    std::fs::create_dir_all(dir).expect("create csv dir");
                    let path = std::path::Path::new(dir).join(format!("{id}.csv"));
                    let mut f = std::fs::File::create(&path).expect("create csv");
                    f.write_all(report.series_csv().as_bytes()).expect("write csv");
                    println!("[series written to {}]", path.display());
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
