//! `perf_gate` — compares fresh criterion JSON against the checked-in
//! `BENCH_*.json` baselines and flags regressions.
//!
//! ```text
//! perf_gate [--strict] [--threshold-pct N] BASELINE FRESH [BASELINE FRESH ...]
//! ```
//!
//! Each `BASELINE FRESH` pair is two JSON arrays of
//! `{"name": ..., "ns_per_iter": ..., "iters": ...}` records (the shape
//! `scripts/bench.sh` writes). For every benchmark present in the
//! baseline, the gate computes the per-iteration slowdown and compares
//! it against a per-benchmark threshold:
//!
//! * in-process CPU benches get `--threshold-pct` (default 100, i.e.
//!   fail beyond 2× the baseline — generous because baselines are
//!   machine-relative);
//! * wall-clock thread benches (names starting with `rt_`, and the
//!   `log_volume_commit/` committer fan-out) get twice that, since
//!   thread scheduling adds real variance.
//!
//! Without `--strict` regressions are printed as warnings and the exit
//! code stays 0 (the local workflow); with `--strict` any regression —
//! or a baseline benchmark missing from the fresh run — exits 1 (the CI
//! workflow, wired up in `scripts/ci.sh`).

use std::process::ExitCode;

/// One `(name, ns_per_iter)` measurement from a criterion JSON file.
#[derive(Debug, Clone, PartialEq)]
struct Measurement {
    name: String,
    ns_per_iter: f64,
}

/// Extracts the string value of `"key": "..."` from one JSON object.
fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => out.push(chars.next()?),
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key": N` from one JSON object.
fn json_num_field(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Parses a criterion JSON array (`[{...}, {...}]`) into measurements.
/// Tolerant of whitespace and line breaks; objects missing either field
/// are skipped.
fn parse_bench_json(body: &str) -> Vec<Measurement> {
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('{') {
        let Some(end) = rest[start..].find('}') else {
            break;
        };
        let obj = &rest[start..start + end + 1];
        if let (Some(name), Some(ns)) = (
            json_str_field(obj, "name"),
            json_num_field(obj, "ns_per_iter"),
        ) {
            out.push(Measurement {
                name,
                ns_per_iter: ns,
            });
        }
        rest = &rest[start + end + 1..];
    }
    out
}

/// The gate's verdict on one baseline benchmark.
#[derive(Debug, Clone, PartialEq)]
struct Verdict {
    name: String,
    baseline_ns: f64,
    fresh_ns: Option<f64>,
    delta_pct: f64,
    limit_pct: f64,
    regressed: bool,
}

/// Per-benchmark regression threshold: wall-clock thread benches (the
/// `rt_*` groups and the `log_volume_commit` committer fan-out both run
/// real threads) are allowed twice the slack of in-process CPU benches.
fn limit_for(name: &str, base_threshold_pct: f64) -> f64 {
    if name.starts_with("rt_") || name.starts_with("log_volume_commit/") {
        base_threshold_pct * 2.0
    } else {
        base_threshold_pct
    }
}

/// Compares `fresh` against `baseline`; one verdict per baseline entry.
/// A baseline benchmark absent from the fresh run is reported as
/// regressed (a silently vanished benchmark must not pass a gate).
fn evaluate(baseline: &[Measurement], fresh: &[Measurement], threshold_pct: f64) -> Vec<Verdict> {
    baseline
        .iter()
        .map(|b| {
            let limit_pct = limit_for(&b.name, threshold_pct);
            match fresh.iter().find(|f| f.name == b.name) {
                Some(f) => {
                    let delta_pct = if b.ns_per_iter > 0.0 {
                        (f.ns_per_iter - b.ns_per_iter) / b.ns_per_iter * 100.0
                    } else {
                        0.0
                    };
                    Verdict {
                        name: b.name.clone(),
                        baseline_ns: b.ns_per_iter,
                        fresh_ns: Some(f.ns_per_iter),
                        delta_pct,
                        limit_pct,
                        regressed: delta_pct > limit_pct,
                    }
                }
                None => Verdict {
                    name: b.name.clone(),
                    baseline_ns: b.ns_per_iter,
                    fresh_ns: None,
                    delta_pct: f64::INFINITY,
                    limit_pct,
                    regressed: true,
                },
            }
        })
        .collect()
}

fn render_table(verdicts: &[Verdict]) -> String {
    let name_w = verdicts
        .iter()
        .map(|v| v.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = format!(
        "{:<name_w$}  {:>14}  {:>14}  {:>8}  {:>7}  status\n",
        "name", "baseline ns", "fresh ns", "delta", "limit"
    );
    for v in verdicts {
        let fresh = v
            .fresh_ns
            .map(|f| format!("{f:.0}"))
            .unwrap_or_else(|| "MISSING".to_owned());
        let delta = if v.delta_pct.is_finite() {
            format!("{:+.1}%", v.delta_pct)
        } else {
            "--".to_owned()
        };
        out.push_str(&format!(
            "{:<name_w$}  {:>14.0}  {:>14}  {:>8}  {:>6.0}%  {}\n",
            v.name,
            v.baseline_ns,
            fresh,
            delta,
            v.limit_pct,
            if v.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    out
}

fn read_measurements(path: &str) -> Vec<Measurement> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let parsed = parse_bench_json(&body);
    if parsed.is_empty() {
        eprintln!("error: no benchmark records parsed from {path}");
        std::process::exit(2);
    }
    parsed
}

fn main() -> ExitCode {
    let mut strict = false;
    let mut threshold_pct = 100.0f64;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--threshold-pct" => {
                threshold_pct = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold-pct requires a numeric argument");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: perf_gate [--strict] [--threshold-pct N] \
                     BASELINE FRESH [BASELINE FRESH ...]"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_owned()),
        }
    }
    if files.is_empty() || !files.len().is_multiple_of(2) {
        eprintln!(
            "usage: perf_gate [--strict] [--threshold-pct N] \
             BASELINE FRESH [BASELINE FRESH ...]"
        );
        return ExitCode::from(2);
    }
    let mut any_regressed = false;
    for pair in files.chunks(2) {
        let baseline = read_measurements(&pair[0]);
        let fresh = read_measurements(&pair[1]);
        let verdicts = evaluate(&baseline, &fresh, threshold_pct);
        println!("== {} vs {} ==", pair[0], pair[1]);
        print!("{}", render_table(&verdicts));
        for v in verdicts.iter().filter(|v| v.regressed) {
            any_regressed = true;
            eprintln!(
                "{}: {} regressed ({:+.1}% > {:.0}% limit)",
                if strict { "error" } else { "warning" },
                v.name,
                v.delta_pct,
                v.limit_pct
            );
        }
    }
    if any_regressed && strict {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(name: &str, ns: f64) -> Measurement {
        Measurement {
            name: name.to_owned(),
            ns_per_iter: ns,
        }
    }

    #[test]
    fn parses_bench_sh_output_shape() {
        let body = "[\n{\"name\":\"rt_pipeline/burst\",\"ns_per_iter\":33127681.4,\"iters\":8},\
                    {\"name\":\"matching/hot\",\"ns_per_iter\":512.3,\"iters\":97000}\n]\n";
        let parsed = parse_bench_json(body);
        assert_eq!(
            parsed,
            vec![m("rt_pipeline/burst", 33127681.4), m("matching/hot", 512.3)]
        );
    }

    #[test]
    fn parse_skips_malformed_objects() {
        let body = "[{\"name\":\"ok\",\"ns_per_iter\":10},{\"iters\":3},{\"name\":\"no_ns\"}]";
        assert_eq!(parse_bench_json(body), vec![m("ok", 10.0)]);
    }

    #[test]
    fn ten_x_slowdown_fails_ten_pct_passes() {
        let baseline = vec![m("matching/hot", 100.0)];
        let slow = evaluate(&baseline, &[m("matching/hot", 1_000.0)], 100.0);
        assert!(slow[0].regressed, "10× slowdown must regress");
        let ok = evaluate(&baseline, &[m("matching/hot", 110.0)], 100.0);
        assert!(!ok[0].regressed, "+10% is inside the threshold");
        assert!((ok[0].delta_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_benches_get_double_slack() {
        let baseline = vec![m("rt_pipeline/burst", 100.0)];
        // +150% would fail a CPU bench at threshold 100, but rt_* gets 200.
        let v = evaluate(&baseline, &[m("rt_pipeline/burst", 250.0)], 100.0);
        assert!(!v[0].regressed);
        let v = evaluate(&baseline, &[m("rt_pipeline/burst", 350.0)], 100.0);
        assert!(v[0].regressed, "+250% exceeds even the doubled limit");
    }

    #[test]
    fn missing_fresh_benchmark_regresses() {
        let baseline = vec![m("matching/hot", 100.0)];
        let v = evaluate(&baseline, &[], 100.0);
        assert!(v[0].regressed);
        assert_eq!(v[0].fresh_ns, None);
        assert!(render_table(&v).contains("MISSING"));
    }

    #[test]
    fn speedups_never_regress() {
        let baseline = vec![m("matching/hot", 100.0)];
        let v = evaluate(&baseline, &[m("matching/hot", 1.0)], 100.0);
        assert!(!v[0].regressed);
        assert!(v[0].delta_pct < -90.0);
    }

    #[test]
    fn table_renders_status_column() {
        let baseline = vec![m("a", 100.0), m("b", 100.0)];
        let fresh = vec![m("a", 100.0), m("b", 900.0)];
        let table = render_table(&evaluate(&baseline, &fresh, 100.0));
        assert!(table.contains("ok"));
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("+800.0%"));
    }
}
