//! `scrape_smoke` — end-to-end smoke test of the live `/metrics`
//! endpoint, wired into `scripts/ci.sh`.
//!
//! Starts a real threaded PHB → SHB → subscriber pipeline
//! (`gryphon-net`), arms the telemetry sampler and the scrape endpoint,
//! pushes a burst of publishes through, then fetches `/metrics` over
//! TCP **while the net is still running** (the curl-equivalent) and
//! prints the response body to stdout. CI pipes that body through the
//! same awk Prometheus-grammar validator it applies to `xp --prom-out`
//! snapshots. Also probes `/healthz` (must answer 200 with an `alerts N`
//! body) and, after `net.stop()`, asserts the endpoint actually went
//! away — the accept thread is joined, not leaked. Exits non-zero if
//! the pipeline delivers nothing, a fetch fails, or the body is missing
//! the telemetry gauge families.

use gryphon::{Broker, BrokerConfig, SubscriberClient, SubscriberConfig};
use gryphon_net::NetBuilder;
use gryphon_storage::MemFactory;
use gryphon_types::{NetMsg, PubendId, PublishMsg, SubscriberId};
use std::io::{Read, Write};
use std::time::Duration;

fn main() {
    const BURST: u64 = 500;
    let config = BrokerConfig {
        phb_commit_interval_us: 500,
        phb_commit_latency_us: 100,
        pfs_sync_interval_us: 1_000,
        ..BrokerConfig::default()
    };
    // Registration order fixes node ids: phb=0, shb=1, sub=2.
    let mut builder = NetBuilder::new();
    let mut phb_node =
        Broker::new(0, Box::new(MemFactory::new()), config.clone()).hosting_pubends([PubendId(0)]);
    phb_node.add_child(gryphon_types::NodeId(1));
    let phb = builder.add_node("phb", phb_node);
    let mut shb_node = Broker::new(1, Box::new(MemFactory::new()), config).hosting_subscribers();
    shb_node.set_parent(phb.id());
    let shb = builder.add_node("shb", shb_node);
    builder.add_node(
        "sub",
        SubscriberClient::new(SubscriberId(1), shb.id(), "", SubscriberConfig::default()),
    );
    let mut net = builder.start();
    net.start_sampler(Duration::from_millis(10));
    let addr = net.serve_metrics("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("error: cannot bind scrape endpoint: {e}");
        std::process::exit(1);
    });
    std::thread::sleep(Duration::from_millis(30)); // connect
    for seq in 0..BURST {
        net.inject(
            phb.id(),
            NetMsg::Publish(PublishMsg {
                pubend: PubendId(0),
                attrs: [("_seq".into(), (seq as i64).into())].into(),
                payload: bytes::Bytes::from(vec![0u8; 128]),
            }),
        );
    }
    // Wait for the pipeline to make visible progress (bounded).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while net.counter("shb.delivered") < BURST as f64 {
        if std::time::Instant::now() > deadline {
            eprintln!(
                "error: pipeline failed to drain {BURST} deliveries in 10 s (got {})",
                net.counter("shb.delivered")
            );
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // The curl-equivalent: raw HTTP GET against the live endpoint.
    let body = fetch(&addr.to_string(), "/metrics", true).unwrap_or_else(|e| {
        eprintln!("error: scrape failed: {e}");
        std::process::exit(1);
    });
    // Liveness probe: 200 with a machine-readable alert count.
    let health = fetch(&addr.to_string(), "/healthz", false).unwrap_or_else(|e| {
        eprintln!("error: health probe failed: {e}");
        std::process::exit(1);
    });
    if !health.starts_with("alerts ") {
        eprintln!("error: /healthz body is not an alert count: {health:?}");
        std::process::exit(1);
    }
    net.stop();
    // Clean shutdown: the accept thread is joined, so the port must
    // refuse further connections (no half-dead endpoint lingering).
    if std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_ok() {
        eprintln!("error: scrape endpoint still accepting after net.stop()");
        std::process::exit(1);
    }
    // The aggregate queue depth is unsuffixed (merged_snapshot derives
    // it); per-worker gauges keep their shard suffix (`.w0` → `_w0`).
    for family in [
        "# TYPE telemetry_queue_depth gauge",
        "# TYPE telemetry_worker_utilization_w0 gauge",
        "# TYPE shb_delivered counter",
    ] {
        if !body.contains(family) {
            eprintln!("error: scrape body is missing '{family}'");
            std::process::exit(1);
        }
    }
    // Body (not headers) to stdout for the grammar validator.
    print!("{body}");
}

/// Minimal HTTP GET: one request, `Connection: close`, returns the body.
/// `prom` additionally enforces the Prometheus exposition headers.
fn fetch(addr: &str, path: &str, prom: bool) -> std::io::Result<String> {
    let mut sock = std::net::TcpStream::connect(addr)?;
    sock.set_read_timeout(Some(Duration::from_secs(5)))?;
    sock.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut resp = String::new();
    sock.read_to_string(&mut resp)?;
    if !resp.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected response: {}", resp.lines().next().unwrap_or("")),
        ));
    }
    let (headers, body) = resp.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    // Prometheus scrapers key on these; assert the server sets them.
    if prom && !headers.contains("Content-Type: text/plain; version=0.0.4") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "missing Prometheus Content-Type header",
        ));
    }
    let declared: usize = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing Content-Length")
        })?;
    if declared != body.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("Content-Length {declared} != body {}", body.len()),
        ));
    }
    Ok(body.to_owned())
}
