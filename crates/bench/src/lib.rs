//! Benchmark support library.
//!
//! The interesting entry points are:
//!
//! * the `xp` binary — regenerates every table and figure of the paper's
//!   evaluation (`cargo run -p gryphon-bench --release --bin xp -- all`);
//! * the Criterion benches (`cargo bench -p gryphon-bench`) covering the
//!   matching engine, log volume, PFS-vs-event-logging, knowledge-stream
//!   algebra, metadata group commit, and the threaded broker pipeline.

/// Standard workload constants shared by benches (the paper's §5.1.2
/// microbenchmark setup).
pub mod constants {
    /// Input events per second.
    pub const INPUT_RATE: u64 = 800;
    /// Durable subscribers at the SHB.
    pub const SUBSCRIBERS: u64 = 100;
    /// Event classes (each subscriber matches one ⇒ 200 ev/s each).
    pub const CLASSES: u64 = 4;
    /// Application payload bytes (418 B on the wire with headers).
    pub const PAYLOAD: usize = 250;
}

/// Builds the synthetic event `seq` of the microbenchmark workload.
pub fn bench_event(seq: u64) -> gryphon_types::EventRef {
    // Padded to the paper's 418 wire bytes (250-byte payload + headers).
    gryphon_types::Event::builder(gryphon_types::PubendId(0))
        .attr("class", (seq % constants::CLASSES) as i64)
        .attr("_seq", seq as i64)
        .attr("_hdr", "x".repeat(103))
        .payload(vec![0u8; constants::PAYLOAD])
        .build_ref(gryphon_types::Timestamp(1 + seq * 1_250 / 1_000))
}

/// The subscribers matching event `seq` under the class partition.
pub fn bench_matches(seq: u64) -> Vec<gryphon_types::SubscriberId> {
    (0..constants::SUBSCRIBERS)
        .filter(|s| s % constants::CLASSES == seq % constants::CLASSES)
        .map(gryphon_types::SubscriberId)
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn workload_matches_quarter() {
        assert_eq!(super::bench_matches(0).len(), 25);
        assert_eq!(super::bench_matches(3).len(), 25);
        let e = super::bench_event(7);
        assert!(e.encoded_len() >= 274);
    }
}
