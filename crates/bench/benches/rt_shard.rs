//! Sharded-runtime scaling bench: one logical combined broker backed by
//! 1 vs 4 worker shards (`NetBuilder::add_sharded_node`), measuring
//! wall-clock time to push a burst of publishes spread over four
//! pubends through publish → commit → constream → delivery.
//!
//! The interesting number is the ratio between the two configurations:
//! work is keyed by pubend, so four shards should approach 4× the
//! single-shard throughput *given four cores*. On a single-core
//! container (typical CI) the shards time-slice one CPU and the ratio
//! stays near 1× — run this on a multi-core host to see the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gryphon::{Broker, BrokerConfig, SubscriberClient, SubscriberConfig};
use gryphon_net::NetBuilder;
use gryphon_storage::MemFactory;
use gryphon_types::{NetMsg, PubendId, PublishMsg, SubscriberId};
use std::time::{Duration, Instant};

const PUBENDS: u32 = 4;
const BURST: u64 = 4_000;

fn run_burst(shards: usize) -> Duration {
    let config = BrokerConfig {
        phb_commit_interval_us: 500,
        phb_commit_latency_us: 100,
        pfs_sync_interval_us: 1_000,
        pubend_silence_interval_us: 2_000,
        ..BrokerConfig::default()
    };
    let mut builder = NetBuilder::new();
    let broker_shards: Vec<Broker> = (0..shards)
        .map(|i| {
            let hosted: Vec<PubendId> = (0..PUBENDS)
                .filter(|p| *p as usize % shards == i)
                .map(PubendId)
                .collect();
            Broker::new(i as u32, Box::new(MemFactory::new()), config.clone())
                .hosting_pubends(hosted)
                .hosting_subscribers()
        })
        .collect();
    let broker = builder.add_sharded_node("broker", broker_shards);
    builder.add_node(
        "sub",
        SubscriberClient::new(
            SubscriberId(1),
            broker.id(),
            "",
            SubscriberConfig::default(),
        ),
    );
    let net = builder.start();
    // The subscriber's Connect is broadcast; wait until every shard has
    // registered it before timing the burst.
    let deadline = Instant::now() + Duration::from_millis(500);
    while net.counter("shb.connects") < shards as f64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let start = Instant::now();
    for seq in 0..BURST {
        net.inject(
            broker.id(),
            NetMsg::Publish(PublishMsg {
                pubend: PubendId(seq as u32 % PUBENDS),
                attrs: [("_seq".into(), (seq as i64).into())].into(),
                payload: bytes::Bytes::from(vec![0u8; 250]),
            }),
        );
    }
    // Drain: the live counter sums across all shard workers.
    let deadline = Instant::now() + Duration::from_secs(5);
    while net.counter("shb.constream_delivered") < BURST as f64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = start.elapsed();
    let result = net.stop();
    assert_eq!(
        result.watchdog_violations(),
        0.0,
        "protocol watchdogs must stay silent under {shards} shards"
    );
    elapsed
}

fn bench_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_shard");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BURST));
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("publish_burst", shards),
            &shards,
            |b, &shards| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += run_burst(shards);
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shards);
criterion_main!(benches);
