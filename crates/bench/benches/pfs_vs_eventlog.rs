//! The paper's §5.1.2 comparison as a Criterion bench: writing one
//! matched timestamp through the PFS vs logging the full event once per
//! matching subscriber, plus the batch-read path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gryphon::{Pfs, PfsMode};
use gryphon_baseline::PerSubscriberLog;
use gryphon_bench::{bench_event, bench_matches};
use gryphon_storage::MemFactory;
use gryphon_types::{PubendId, SubscriberId, Timestamp};

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfs_vs_eventlog_write");
    // Each "element" is one published event matched by 25 subscribers.
    group.throughput(Throughput::Elements(1));

    group.bench_function("pfs_write_event", |b| {
        let mut pfs =
            Pfs::open(Box::new(MemFactory::new()), "bench", PfsMode::Precise).expect("pfs");
        let mut seq = 0u64;
        b.iter(|| {
            let e = bench_event(seq);
            let subs = bench_matches(seq);
            seq += 1;
            pfs.write(PubendId(0), e.ts, &subs).expect("write");
            if seq.is_multiple_of(800) {
                pfs.sync().expect("sync");
            }
        });
    });

    group.bench_function("eventlog_write_event", |b| {
        let mut log = PerSubscriberLog::open(Box::new(MemFactory::new()), "bench").expect("log");
        let mut seq = 0u64;
        b.iter(|| {
            let e = bench_event(seq);
            for sub in bench_matches(seq) {
                log.append(sub, &e).expect("append");
            }
            seq += 1;
            if seq.is_multiple_of(800) {
                log.sync().expect("sync");
            }
        });
    });

    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfs_vs_eventlog_read");
    const EVENTS: u64 = 8_000; // 10 s of workload

    group.bench_function("pfs_batch_read_5000", |b| {
        let mut pfs =
            Pfs::open(Box::new(MemFactory::new()), "bench", PfsMode::Precise).expect("pfs");
        for seq in 0..EVENTS {
            let e = bench_event(seq);
            pfs.write(PubendId(0), e.ts, &bench_matches(seq))
                .expect("write");
        }
        pfs.sync().expect("sync");
        let last = pfs.last_timestamp(PubendId(0));
        b.iter(|| {
            std::hint::black_box(
                pfs.read(PubendId(0), SubscriberId(0), Timestamp::ZERO, last, 5_000)
                    .expect("read")
                    .q_ticks
                    .len(),
            )
        });
    });

    group.bench_function("eventlog_read_all", |b| {
        let mut log = PerSubscriberLog::open(Box::new(MemFactory::new()), "bench").expect("log");
        for seq in 0..EVENTS {
            let e = bench_event(seq);
            for sub in bench_matches(seq) {
                log.append(sub, &e).expect("append");
            }
        }
        log.sync().expect("sync");
        b.iter(|| {
            std::hint::black_box(
                log.read_from(SubscriberId(0), Timestamp::ZERO)
                    .expect("read")
                    .len(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_writes, bench_reads);
criterion_main!(benches);
