//! Threaded end-to-end pipeline bench: the same broker state machines as
//! the simulator, on real threads (gryphon-net), measuring wall-clock
//! time to push a burst of publishes through PHB → SHB → subscriber.
//!
//! Each iteration times the burst until the live `shb.delivered` counter
//! reports the whole burst drained (not a fixed sleep — an earlier
//! version slept a flat 500 ms per iteration, which floored every
//! variant at the same wall time and hid real regressions). With the
//! `Throughput::Elements` annotation criterion reports work-normalized
//! events/sec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gryphon::{Broker, BrokerConfig, SubscriberClient, SubscriberConfig};
use gryphon_net::NetBuilder;
use gryphon_storage::MemFactory;
use gryphon_types::{NetMsg, PubendId, PublishMsg, SubscriberId};
use std::time::Duration;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_pipeline");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(300));
    const BURST: u64 = 2_000;
    group.throughput(Throughput::Elements(BURST));
    group.bench_function("publish_to_delivery_burst", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                // Fast commit intervals so wall-clock latency is dominated
                // by real processing, not the modeled disk.
                let config = BrokerConfig {
                    phb_commit_interval_us: 500,
                    phb_commit_latency_us: 100,
                    pfs_sync_interval_us: 1_000,
                    ..BrokerConfig::default()
                };
                // Node ids are assigned in registration order, so the
                // tree can be wired before the nodes move into the
                // runtime: phb=0, shb=1, sub=2.
                let mut builder = NetBuilder::new();
                let mut phb_node = Broker::new(0, Box::new(MemFactory::new()), config.clone())
                    .hosting_pubends([PubendId(0)]);
                phb_node.add_child(gryphon_types::NodeId(1));
                let phb = builder.add_node("phb", phb_node);
                let mut shb_node =
                    Broker::new(1, Box::new(MemFactory::new()), config).hosting_subscribers();
                shb_node.set_parent(phb.id());
                let shb = builder.add_node("shb", shb_node);
                let sub = builder.add_node(
                    "sub",
                    SubscriberClient::new(
                        SubscriberId(1),
                        shb.id(),
                        "",
                        SubscriberConfig::default(),
                    ),
                );
                let net = builder.start();
                std::thread::sleep(Duration::from_millis(30)); // connect
                let start = std::time::Instant::now();
                for seq in 0..BURST {
                    net.inject(
                        phb.id(),
                        NetMsg::Publish(PublishMsg {
                            pubend: PubendId(0),
                            attrs: [("_seq".into(), (seq as i64).into())].into(),
                            payload: bytes::Bytes::from(vec![0u8; 250]),
                        }),
                    );
                }
                // Wait until the SHB has delivered the whole burst,
                // polling the live counter (deadline-bounded so a stuck
                // pipeline fails loudly instead of hanging the bench).
                let deadline = start + Duration::from_secs(10);
                while net.counter("shb.delivered") < BURST as f64 {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "pipeline failed to drain {BURST} deliveries in 10 s \
                         (got {})",
                        net.counter("shb.delivered")
                    );
                    std::thread::sleep(Duration::from_micros(200));
                }
                total += start.elapsed();
                let result = net.stop();
                let got = result.node(sub).events_received();
                assert!(got > 0, "pipeline delivered nothing");
            }
            total
        });
    });
    group.finish();
}

/// Fan-out variant: one PHB feeding two SHBs, each with a subscriber.
/// This is the path the per-child knowledge batcher serves — every
/// committed batch fans out to both children, so coalescing and batching
/// (or their absence, with `knowledge_flush_interval_us = 0`) shows up
/// directly in wall-clock drain time.
fn bench_pipeline_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("rt_pipeline");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(300));
    const BURST: u64 = 2_000;
    group.throughput(Throughput::Elements(BURST));
    for (name, flush_us) in [("fanout2_batched", 1_000u64), ("fanout2_unbatched", 0)] {
        group.bench_function(name, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let config = BrokerConfig {
                        phb_commit_interval_us: 500,
                        phb_commit_latency_us: 100,
                        pfs_sync_interval_us: 1_000,
                        knowledge_flush_interval_us: flush_us,
                        ..BrokerConfig::default()
                    };
                    // Registration order fixes node ids: phb=0, shb_a=1,
                    // shb_b=2, sub_a=3, sub_b=4.
                    let mut builder = NetBuilder::new();
                    let mut phb_node = Broker::new(0, Box::new(MemFactory::new()), config.clone())
                        .hosting_pubends([PubendId(0)]);
                    phb_node.add_child(gryphon_types::NodeId(1));
                    phb_node.add_child(gryphon_types::NodeId(2));
                    let phb = builder.add_node("phb", phb_node);
                    let mut shb_a = Broker::new(1, Box::new(MemFactory::new()), config.clone())
                        .hosting_subscribers();
                    shb_a.set_parent(phb.id());
                    let shb_a = builder.add_node("shb_a", shb_a);
                    let mut shb_b =
                        Broker::new(2, Box::new(MemFactory::new()), config).hosting_subscribers();
                    shb_b.set_parent(phb.id());
                    let shb_b = builder.add_node("shb_b", shb_b);
                    let sub_a = builder.add_node(
                        "sub_a",
                        SubscriberClient::new(
                            SubscriberId(1),
                            shb_a.id(),
                            "",
                            SubscriberConfig::default(),
                        ),
                    );
                    let sub_b = builder.add_node(
                        "sub_b",
                        SubscriberClient::new(
                            SubscriberId(2),
                            shb_b.id(),
                            "",
                            SubscriberConfig::default(),
                        ),
                    );
                    let net = builder.start();
                    std::thread::sleep(Duration::from_millis(30)); // connect
                    let start = std::time::Instant::now();
                    for seq in 0..BURST {
                        net.inject(
                            phb.id(),
                            NetMsg::Publish(PublishMsg {
                                pubend: PubendId(0),
                                attrs: [("_seq".into(), (seq as i64).into())].into(),
                                payload: bytes::Bytes::from(vec![0u8; 250]),
                            }),
                        );
                    }
                    // Both SHBs must drain the burst: 2 × BURST total.
                    let expected = 2 * BURST;
                    let deadline = start + Duration::from_secs(10);
                    while net.counter("shb.delivered") < expected as f64 {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "fan-out pipeline failed to drain {expected} \
                             deliveries in 10 s (got {})",
                            net.counter("shb.delivered")
                        );
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    total += start.elapsed();
                    let result = net.stop();
                    for sub in [sub_a, sub_b] {
                        let got = result.node(sub).events_received();
                        assert!(got > 0, "fan-out pipeline delivered nothing");
                    }
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_pipeline_fanout);
criterion_main!(benches);
