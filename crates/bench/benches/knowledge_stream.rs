//! Knowledge-stream algebra benchmarks: the interval-map representation
//! against a dense per-tick vector (the representation ablation from
//! DESIGN.md).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gryphon_bench::bench_event;
use gryphon_streams::KnowledgeStream;
use gryphon_types::{TickKind, Timestamp};

fn bench_stream_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("knowledge_stream");
    group.throughput(Throughput::Elements(1));

    group.bench_function("ingest_event_plus_silence", |b| {
        let mut ks = KnowledgeStream::new();
        let mut seq = 0u64;
        b.iter(|| {
            let e = bench_event(seq);
            let ts = e.ts;
            ks.set_silence(Timestamp(seq * 2 + 1).min(ts.prev()), ts.prev());
            ks.set_data(e);
            seq += 1;
            if seq.is_multiple_of(4_096) {
                ks.advance_base(ts - 2_048); // steady-state trimming
            }
            std::hint::black_box(ks.data_len())
        });
    });

    group.bench_function("doubt_horizon_steady", |b| {
        let mut ks = KnowledgeStream::new();
        for seq in 0..8_192u64 {
            let e = bench_event(seq);
            let prev = ks.doubt_horizon(Timestamp::ZERO);
            ks.set_silence(prev.next(), e.ts.prev());
            ks.set_data(e);
        }
        b.iter(|| std::hint::black_box(ks.doubt_horizon(Timestamp::ZERO)));
    });

    group.bench_function("q_ranges_sparse", |b| {
        let mut ks = KnowledgeStream::new();
        // Knowledge with periodic holes (loss pattern).
        for i in 0..4_096u64 {
            let base = i * 10;
            ks.set_silence(Timestamp(base + 1), Timestamp(base + 8));
            // ticks base+9, base+10 stay Q
        }
        b.iter(|| std::hint::black_box(ks.q_ranges(Timestamp(1), Timestamp(40_960)).len()));
    });

    // Dense-vector strawman for comparison: one entry per tick.
    group.bench_function("dense_vector_strawman_ingest", |b| {
        let mut dense: Vec<TickKind> = Vec::new();
        let mut seq = 0u64;
        b.iter(|| {
            let ts = 1 + seq * 1_250 / 1_000;
            if dense.len() <= ts as usize {
                dense.resize(ts as usize + 1, TickKind::Q);
            }
            for t in dense.len().saturating_sub(2)..ts as usize {
                dense[t] = TickKind::S;
            }
            dense[ts as usize] = TickKind::D;
            seq += 1;
            std::hint::black_box(dense.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_stream_ops);
criterion_main!(benches);
