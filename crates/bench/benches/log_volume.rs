//! Log Volume benchmarks: append / read-by-index / chop on the in-memory
//! media (isolates the data-structure cost from disk latency).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gryphon_storage::{LogIndex, LogVolume, MemFactory, StreamId, VolumeConfig};

fn bench_log_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_volume");
    group.throughput(Throughput::Elements(1));

    group.bench_function("append_408B", |b| {
        let mut vol = LogVolume::create(
            Box::new(MemFactory::new()),
            "bench",
            VolumeConfig::default(),
        )
        .expect("volume");
        let payload = vec![7u8; 408]; // a 25-subscriber PFS record
        b.iter(|| std::hint::black_box(vol.append(StreamId(0), &payload).expect("append")));
    });

    group.bench_function("read_by_index", |b| {
        let mut vol = LogVolume::create(
            Box::new(MemFactory::new()),
            "bench",
            VolumeConfig::default(),
        )
        .expect("volume");
        let payload = vec![7u8; 408];
        let n = 10_000u64;
        for _ in 0..n {
            vol.append(StreamId(0), &payload).expect("append");
        }
        let mut i = 0u64;
        b.iter(|| {
            let idx = LogIndex(i % n);
            i = i.wrapping_add(2_654_435_761); // stride the index space
            std::hint::black_box(vol.read(StreamId(0), idx).expect("read"))
        });
    });

    group.bench_function("append_chop_cycle", |b| {
        let mut vol = LogVolume::create(
            Box::new(MemFactory::new()),
            "bench",
            VolumeConfig {
                segment_bytes: 64 * 1024,
                ..VolumeConfig::default()
            },
        )
        .expect("volume");
        let payload = vec![7u8; 408];
        b.iter(|| {
            let idx = vol.append(StreamId(0), &payload).expect("append");
            if idx.0 % 64 == 63 {
                vol.chop(StreamId(0), LogIndex(idx.0 - 32)).expect("chop");
            }
            std::hint::black_box(idx)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_log_volume);
criterion_main!(benches);
