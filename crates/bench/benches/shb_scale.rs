//! SHB slab scale bench (DESIGN.md §15, `BENCH_shb_scale.json`).
//!
//! Direct-drives one [`Shb`] (no simulator) holding a large *idle*
//! durable-subscription population and times the three hot paths the
//! slab refactor must keep independent of that population:
//!
//! * `deliver_steady/N` — one fresh constream tick: knowledge ingest →
//!   slab-slot matching → PFS write → delivery to the small connected
//!   fraction, while `N` idle subscribers sit in the slab;
//! * `park_rehydrate/N` — one disconnect/reconnect cycle of a
//!   mid-catchup subscriber: the open stream parks into a compact
//!   record and rehydrates on the next connect;
//! * `churn_recycle/N` — one unsubscribe + re-register pair: slab slot
//!   free/reuse (generation bump) plus the matching-index update.
//!
//! Comparing the two population sizes is the point: per-iteration cost
//! must stay flat as the idle mass grows 10×. The perf gate holds each
//! series against the checked-in baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gryphon::broker::Shb;
use gryphon::config::BrokerConfig;
use gryphon_sim::{NodeCtx, TimerKey};
use gryphon_storage::MemFactory;
use gryphon_streams::KnowledgeStream;
use gryphon_types::{
    CheckpointToken, Event, NetMsg, NodeId, PubendId, SubscriberId, SubscriptionSpec, Timestamp,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

const P: PubendId = PubendId(0);
const CLIENT: NodeId = NodeId(9);
const CLASSES: u64 = 16;
/// Connected fraction receiving the steady-state traffic.
const CONNECTED: u64 = 64;

struct StubCtx {
    sent: u64,
    rng: SmallRng,
}

impl NodeCtx for StubCtx {
    fn now_us(&self) -> u64 {
        0
    }
    fn me(&self) -> NodeId {
        NodeId(1)
    }
    fn send(&mut self, _to: NodeId, _msg: NetMsg) {
        self.sent += 1;
    }
    fn set_timer(&mut self, _delay_us: u64, _key: TimerKey) {}
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
    fn work(&mut self, _cost_us: u64) {}
    fn record(&mut self, _series: &str, _value: f64) {}
    fn count(&mut self, _counter: &str, _delta: f64) {}
}

fn connect_one(
    shb: &mut Shb,
    sub: SubscriberId,
    ct: Option<CheckpointToken>,
    config: &BrokerConfig,
    ctx: &mut StubCtx,
) {
    shb.connect(
        sub,
        CLIENT,
        ct,
        None,
        false,
        false,
        &HashMap::new(),
        None,
        config,
        ctx,
    )
    .expect("registered subscription must connect");
}

fn bench_shb_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("shb_scale");
    // Long windows on purpose: churn and delivery both commit to the
    // durable meta registry, whose WAL compacts (O(population)) every
    // ~13k commits. A 50 ms window catches 0-or-1 compactions and turns
    // the number bimodal; 1 s amortizes enough of them (at 100k subs a
    // single compaction snapshots the whole registry) to keep the mean
    // well inside the perf gate's 2x slack run-to-run.
    group.measurement_time(std::time::Duration::from_secs(1));
    for &n in &[10_000u64, 100_000] {
        let config = BrokerConfig::default();
        let mut ctx = StubCtx {
            sent: 0,
            rng: SmallRng::seed_from_u64(0),
        };
        // Two filter families: the connected fraction subscribes to the
        // traffic classes; the idle mass subscribes to classes the
        // traffic never publishes. Idle subscribers therefore cost
        // nothing through matching — the bench isolates the slab's own
        // contribution to the hot paths (flat across n is the claim).
        let specs_hot: Vec<SubscriptionSpec> = (0..CLASSES)
            .map(|k| SubscriptionSpec::new(format!("class = {k}")))
            .collect();
        let specs_idle: Vec<SubscriptionSpec> = (0..64u64)
            .map(|k| SubscriptionSpec::new(format!("class = {}", 1_000 + k)))
            .collect();
        let spec_for = |i: u64| {
            if i < CONNECTED {
                &specs_hot[(i % CLASSES) as usize]
            } else {
                &specs_idle[(i % 64) as usize]
            }
        };

        // The idle mass: n durable subscriptions, CONNECTED of them live.
        let mut shb = Shb::open(&MemFactory::new(), "scale", &config);
        for i in 0..n {
            shb.register_spec(
                SubscriberId(i + 1),
                CLIENT,
                Some(spec_for(i)),
                false,
                false,
                &mut ctx,
            )
            .expect("register");
        }
        for i in 0..CONNECTED {
            connect_one(&mut shb, SubscriberId(i + 1), None, &config, &mut ctx);
        }

        // Steady-state delivery: each iteration appends one event to the
        // cache and advances the constream through it — ingest, match
        // (CONNECTED/CLASSES hits), PFS write, deliver. The idle slab
        // population must not appear in this cost.
        let mut cache = KnowledgeStream::new();
        let mut tick = 0u64;
        let advance_tick =
            |shb: &mut Shb, cache: &mut KnowledgeStream, tick: u64, ctx: &mut StubCtx| {
                let e = Event::builder(P)
                    .attr("class", (tick % CLASSES) as i64)
                    .build_ref(Timestamp(tick));
                assert!(cache.set_data(e));
                shb.constream_advance(P, cache, Timestamp(tick), &config, ctx);
                // Steady state trims the consumed prefix, exactly as the
                // broker's cache window does — the stream stays O(window).
                cache.advance_base(Timestamp(tick.saturating_sub(64)));
            };
        // Warm explicitly: the stub calibrates its batch size off the
        // first call, and the first ticks grow buffers / fault caches.
        for _ in 0..256 {
            tick += 1;
            advance_tick(&mut shb, &mut cache, tick, &mut ctx);
        }
        group.bench_with_input(BenchmarkId::new("deliver_steady", n), &n, |b, _| {
            b.iter(|| {
                tick += 1;
                advance_tick(&mut shb, &mut cache, tick, &mut ctx);
                std::hint::black_box(shb.delivered)
            });
        });
        assert_eq!(
            shb.delivered,
            tick * (CONNECTED / CLASSES),
            "steady traffic must reach every connected matching subscriber"
        );

        // Park/rehydrate: a subscriber mid-catchup (old checkpoint, the
        // constream is well past it) disconnects and reconnects. The
        // disconnect demotes the open stream to a parked record; the
        // reconnect rehydrates it.
        let storm_sub = SubscriberId(CONNECTED + 100);
        let ct = {
            let mut ct = CheckpointToken::new();
            ct.advance(P, Timestamp::ZERO);
            ct
        };
        connect_one(&mut shb, storm_sub, Some(ct.clone()), &config, &mut ctx);
        assert_eq!(shb.catchup_streams(), 1, "old checkpoint must open catchup");
        group.bench_with_input(BenchmarkId::new("park_rehydrate", n), &n, |b, _| {
            b.iter(|| {
                shb.disconnect(storm_sub, 0);
                connect_one(&mut shb, storm_sub, Some(ct.clone()), &config, &mut ctx);
                // NB: not `parked_streams()` — that inspector is O(slab)
                // and would drown the cycle under test.
                std::hint::black_box(shb.catchup_streams())
            });
        });
        shb.disconnect(storm_sub, 0);
        assert_eq!(shb.parked_streams(), 1, "cycle must end parked");

        // Churn: recycle slab slots in the idle region — unsubscribe
        // frees the slot (generation bump), re-register reuses it and
        // rebuilds the matching-index entry.
        let churn_base = CONNECTED + 200;
        let mut k = 0u64;
        let churn_one = |shb: &mut Shb, k: u64, ctx: &mut StubCtx| {
            let i = churn_base + (k % 1_000);
            let sub = SubscriberId(i + 1);
            shb.unsubscribe(sub);
            shb.register_spec(sub, CLIENT, Some(spec_for(i)), false, false, ctx)
                .expect("re-register");
        };
        for _ in 0..256 {
            churn_one(&mut shb, k, &mut ctx);
            k += 1;
        }
        group.bench_with_input(BenchmarkId::new("churn_recycle", n), &n, |b, _| {
            b.iter(|| {
                churn_one(&mut shb, k, &mut ctx);
                k += 1;
                std::hint::black_box(shb.sub_count())
            });
        });
        assert_eq!(shb.sub_count() as u64, n, "churn preserves the population");
    }
    group.finish();
}

criterion_group!(benches, bench_shb_scale);
criterion_main!(benches);
