//! Metadata-table group-commit benchmark — the knob behind the JMS
//! auto-acknowledge experiment: many single-key commits vs one batched
//! commit (per sync).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gryphon_storage::{MemFactory, MetaTable, TableConfig};

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("meta_table_commit");
    for &batch in &[1usize, 8, 64, 256] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::new("batched_updates", batch),
            &batch,
            |b, &batch| {
                let mut t = MetaTable::open(
                    Box::new(MemFactory::new()),
                    "bench",
                    TableConfig {
                        compact_wal_bytes: u64::MAX, // isolate commit cost
                    },
                )
                .expect("table");
                let mut n = 0u64;
                b.iter(|| {
                    let updates: Vec<(String, Option<Vec<u8>>)> = (0..batch)
                        .map(|i| {
                            (
                                format!("jct/{i}/0"),
                                Some((n + i as u64).to_le_bytes().to_vec()),
                            )
                        })
                        .collect();
                    n += 1;
                    t.commit(&updates).expect("commit");
                });
            },
        );
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    c.bench_function("meta_table_recovery_10k_keys", |b| {
        let factory = MemFactory::new();
        {
            let mut t = MetaTable::open(Box::new(factory.clone()), "bench", TableConfig::default())
                .expect("table");
            for i in 0..10_000u64 {
                t.put_u64(&format!("key/{i}"), i).expect("put");
            }
        }
        b.iter(|| {
            let t = MetaTable::open(Box::new(factory.clone()), "bench", TableConfig::default())
                .expect("reopen");
            std::hint::black_box(t.len())
        });
    });
}

criterion_group!(benches, bench_commit, bench_recovery);
criterion_main!(benches);
