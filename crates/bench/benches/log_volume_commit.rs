//! Group-commit throughput (ISSUE 8 acceptance): N concurrent committers
//! through the [`CommitPipeline`] vs serialized per-caller sync, on the
//! same device.
//!
//! Two devices:
//!
//! * `mem` — [`MemFactory`] with a fixed modeled flush latency (the
//!   simulator's deterministic device). The latency dominates, so the
//!   serial/grouped ratio approaches the committer count: serial pays
//!   `commits × latency`, grouped pays `fsyncs × latency`.
//! * `file` — [`FileFactory`] on a scratch directory: real appends, real
//!   `fsync`s. Absolute numbers are filesystem-relative; the
//!   serial-vs-grouped *ratio* is the quantity of interest.
//!
//! One benchmark iteration = one committed 64-byte batch (durability
//! waited on), so the printed elem/s is committed-batches/sec — the
//! number the ≥ 3× acceptance bar and `BENCH_log_volume.json` refer to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gryphon_storage::{
    CommitPipeline, FileFactory, LogVolume, MediaFactory, MemFactory, StreamId, VolumeConfig,
};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Modeled device flush latency for the `mem` variants (slept outside
/// the media's namespace lock, so concurrent committers genuinely
/// overlap the way they would on hardware).
const MODELED_LATENCY_US: u64 = 300;
const PAYLOAD: [u8; 64] = [0xC3; 64];

/// Runs `total` commits split across `threads` workers (worker `t` gets
/// the ids `t, t + threads, t + 2·threads, …`) and returns the wall time
/// from the start barrier to the last join.
fn run_split(
    threads: usize,
    total: u64,
    commit: impl Fn(usize) + Send + Sync + 'static,
) -> Duration {
    let commit = Arc::new(commit);
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let commit = Arc::clone(&commit);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut i = t as u64;
                while i < total {
                    commit(t);
                    i += threads as u64;
                }
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for h in handles {
        h.join().expect("committer thread");
    }
    t0.elapsed()
}

/// Serialized per-caller sync: every commit locks the volume, appends,
/// and pays its own flush — the pre-pipeline behavior.
fn bench_serial(
    group: &mut criterion::BenchmarkGroup<'_>,
    tag: &str,
    threads: usize,
    vol: LogVolume,
) {
    let vol = Arc::new(Mutex::new(vol));
    group.bench_with_input(
        BenchmarkId::new("serial_sync", format!("{tag}{threads}")),
        &threads,
        |b, &threads| {
            b.iter_custom(|iters| {
                let vol = Arc::clone(&vol);
                run_split(threads, iters, move |t| {
                    let mut v = vol.lock().expect("volume lock");
                    v.append(StreamId(t as u32), &PAYLOAD).expect("append");
                    v.sync().expect("sync");
                })
            });
        },
    );
}

/// Group commit: same workload, same device, one flush per round-trip
/// shared by every committer that appended in the window.
fn bench_grouped(
    group: &mut criterion::BenchmarkGroup<'_>,
    tag: &str,
    threads: usize,
    vol: LogVolume,
) {
    let pipe = CommitPipeline::new(vol);
    group.bench_with_input(
        BenchmarkId::new("group_commit", format!("{tag}{threads}")),
        &threads,
        |b, &threads| {
            b.iter_custom(|iters| {
                let pipe = pipe.clone();
                run_split(threads, iters, move |t| {
                    pipe.commit_with(|v| v.append(StreamId(t as u32), &PAYLOAD))
                        .expect("commit");
                })
            });
        },
    );
}

fn mem_volume(name: &str) -> LogVolume {
    LogVolume::create(
        Box::new(MemFactory::with_sync_latency_us(MODELED_LATENCY_US)),
        name,
        VolumeConfig::default(),
    )
    .expect("mem volume")
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_volume_commit");
    group.throughput(Throughput::Elements(1));
    group.measurement_time(Duration::from_millis(400));

    // Modeled device: the deterministic ratio the CI gate
    // (`group_commit_speedup.rs`) asserts at ≥ 3×.
    bench_serial(&mut group, "mem", 8, mem_volume("serial"));
    bench_grouped(&mut group, "mem", 1, mem_volume("grouped1"));
    bench_grouped(&mut group, "mem", 8, mem_volume("grouped8"));

    // Real files, real fsyncs (the threaded runtime's storage profile).
    let dir = std::env::temp_dir().join(format!("gryphon-lvc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let file_volume = |name: &str| {
        let factory: Box<dyn MediaFactory> =
            Box::new(FileFactory::new(dir.clone()).expect("file factory"));
        LogVolume::create(factory, name, VolumeConfig::default()).expect("file volume")
    };
    bench_serial(&mut group, "file", 8, file_volume("serial"));
    bench_grouped(&mut group, "file", 8, file_volume("grouped8"));
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
