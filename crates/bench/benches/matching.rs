//! Matching-engine benchmarks: counting index vs naive scan (the
//! substrate ablation for Aguilera et al.-style matching).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gryphon_bench::bench_event;
use gryphon_matching::{Filter, MatchScratch, SubscriptionIndex};
use gryphon_types::SubscriberId;

fn build_index(n: u64) -> SubscriptionIndex {
    (0..n)
        .map(|i| {
            // 3/4 equality partitions, 1/4 with an extra range predicate.
            let f = if i % 4 == 3 {
                format!("class = {} && _seq >= 0", i % 4)
            } else {
                format!("class = {}", i % 4)
            };
            (SubscriberId(i), Filter::parse(&f).expect("filter"))
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for &n in &[100u64, 1_000, 10_000] {
        let index = build_index(n);
        let events: Vec<_> = (0..64).map(bench_event).collect();
        group.bench_with_input(BenchmarkId::new("counting_index", n), &n, |b, _| {
            let mut out = Vec::new();
            let mut scratch = MatchScratch::new();
            let mut i = 0usize;
            b.iter(|| {
                index.matches_into(&events[i % events.len()], &mut scratch, &mut out);
                i += 1;
                std::hint::black_box(out.len())
            });
        });
        // The naive scan becomes painful quickly; keep it to smaller sets.
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("naive_scan", n), &n, |b, _| {
                let mut i = 0usize;
                b.iter(|| {
                    let v = index.matches_naive(&events[i % events.len()]);
                    i += 1;
                    std::hint::black_box(v.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
