//! Hot-path matching ablation: the interned, generation-stamped counting
//! index against a faithful in-file copy of the previous implementation
//! (per-event `HashMap<SubscriberId, usize>` counter, `(String, AttrValue)`
//! equality keys). The delta between `interned_scratch` and `legacy_hashmap`
//! is the headline number recorded in `BENCH_matching.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gryphon_bench::bench_event;
use gryphon_matching::{Filter, MatchScratch, Op, SubscriptionIndex};
use gryphon_types::{AttrValue, Event, SubscriberId};
use std::collections::HashMap;

/// The pre-interning index, reproduced verbatim in spirit: string-keyed
/// equality probes that must build an owned `(String, AttrValue)` pair per
/// event attribute, and a fresh per-event `HashMap` counter.
#[derive(Default)]
struct LegacyIndex {
    subs: HashMap<SubscriberId, (Filter, usize)>,
    eq_index: HashMap<(String, AttrValue), Vec<SubscriberId>>,
    attr_index: HashMap<String, Vec<(SubscriberId, usize)>>,
    match_all: Vec<SubscriberId>,
}

impl LegacyIndex {
    fn insert(&mut self, sub: SubscriberId, filter: Filter) {
        let total = filter.predicates().len();
        if total == 0 {
            self.match_all.push(sub);
        } else {
            for (i, p) in filter.predicates().iter().enumerate() {
                if p.op == Op::Eq {
                    self.eq_index
                        .entry((p.attr.as_str().to_owned(), p.value.clone()))
                        .or_default()
                        .push(sub);
                } else {
                    self.attr_index
                        .entry(p.attr.as_str().to_owned())
                        .or_default()
                        .push((sub, i));
                }
            }
        }
        self.subs.insert(sub, (filter, total));
    }

    fn matches_into(&self, event: &Event, out: &mut Vec<SubscriberId>) {
        out.clear();
        out.extend_from_slice(&self.match_all);
        if self.subs.len() == self.match_all.len() {
            return;
        }
        let mut counts: HashMap<SubscriberId, usize> = HashMap::new();
        let mut key = (String::new(), AttrValue::Bool(false));
        for (attr, value) in &event.attrs {
            key.0.clear();
            key.0.push_str(attr.as_str());
            key.1 = value.clone();
            if let Some(subs) = self.eq_index.get(&key) {
                for &s in subs {
                    *counts.entry(s).or_insert(0) += 1;
                }
            }
            if let Some(cands) = self.attr_index.get(attr.as_str()) {
                for &(s, pi) in cands {
                    let pred = &self.subs[&s].0.predicates()[pi];
                    if pred.eval_value(value) {
                        *counts.entry(s).or_insert(0) += 1;
                    }
                }
            }
        }
        for (s, n) in counts {
            if n == self.subs[&s].1 {
                out.push(s);
            }
        }
    }
}

fn filters(n: u64) -> Vec<(SubscriberId, Filter)> {
    (0..n)
        .map(|i| {
            let f = if i % 4 == 3 {
                format!("class = {} && _seq >= 0", i % 4)
            } else {
                format!("class = {}", i % 4)
            };
            (SubscriberId(i), Filter::parse(&f).expect("filter"))
        })
        .collect()
}

fn bench_matching_hot(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_hot");
    for &n in &[1_000u64, 10_000] {
        let subs = filters(n);
        let events: Vec<Event> = (0..64).map(|i| Event::clone(&bench_event(i))).collect();

        let index: SubscriptionIndex = subs.iter().cloned().collect();
        group.bench_with_input(BenchmarkId::new("interned_scratch", n), &n, |b, _| {
            let mut out = Vec::new();
            let mut scratch = MatchScratch::new();
            let mut i = 0usize;
            b.iter(|| {
                index.matches_into(&events[i % events.len()], &mut scratch, &mut out);
                i += 1;
                std::hint::black_box(out.len())
            });
        });

        let mut legacy = LegacyIndex::default();
        for (s, f) in &subs {
            legacy.insert(*s, f.clone());
        }
        group.bench_with_input(BenchmarkId::new("legacy_hashmap", n), &n, |b, _| {
            let mut out = Vec::new();
            let mut i = 0usize;
            b.iter(|| {
                legacy.matches_into(&events[i % events.len()], &mut out);
                i += 1;
                std::hint::black_box(out.len())
            });
        });

        // Cross-check once per size: identical hit sets (legacy order is
        // unspecified, the interned index emits ascending ids).
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut scratch = MatchScratch::new();
        for e in &events {
            index.matches_into(e, &mut scratch, &mut a);
            legacy.matches_into(e, &mut b);
            b.sort_unstable();
            assert_eq!(a, b, "legacy and interned index disagree");
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matching_hot);
criterion_main!(benches);
