//! The Persistent Filtering Subsystem (paper §4.2).
//!
//! The PFS stores, per pubend, *which timestamps matched which durable
//! subscribers*, so a reconnecting subscriber's missed interval can be
//! recovered without retrieving and refiltering every event published
//! while it was away.
//!
//! ## On-disk layout
//!
//! One [`LogVolume`] stream per pubend. One record is written per
//! timestamp that is `Q` (matched) for at least one subscriber — nothing
//! is written for all-silent ticks. A precise record is exactly the
//! paper's `8 + 16·n` bytes:
//!
//! ```text
//! ts: u64 | n × ( subscriber: u64, prev_index: u64 )
//! ```
//!
//! where `prev_index` is the volume index of the previous record that
//! contains this subscriber (the backpointer), or `⊥` for the first. The
//! per-subscriber metadata `lastIndex(s)` / `lastTimestamp(p)` is held in
//! memory and rebuilt by a scan on recovery; the chop floor is persisted
//! in a private [`MetaTable`].
//!
//! ## Reading
//!
//! A batch read walks backpointers newest→oldest within `(from, to]`,
//! yielding the subscriber's `Q` ticks; ticks between them are implicitly
//! `S`. A read that returns every available `Q` tick (no buffer
//! saturation) is a *full* read — the paper reports 87 % of catchup reads
//! being full with a 5000-tick buffer.
//!
//! ## Imprecise mode
//!
//! [`PfsMode::Imprecise`] coalesces a window of consecutive matched
//! timestamps into one record carrying the *union* of matching
//! subscribers. Writes shrink further, at the cost of some subscribers
//! nacking (and the SHB refiltering) events that never matched them —
//! the correctness-preserving trade-off the paper describes.

use gryphon_storage::{
    LogIndex, LogVolume, MediaFactory, MetaTable, StorageError, StreamId, TableConfig,
    VolumeConfig, VolumeStats,
};
use gryphon_types::{PubendId, SubSlot, SubscriberId, Timestamp};
use std::collections::{BTreeMap, HashMap};

const IMPRECISE_FLAG: u64 = 1 << 63;

/// Precision mode; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfsMode {
    /// One record per matched timestamp (the paper's implementation).
    Precise,
    /// Coalesce up to `window_ticks` of matched timestamps per record.
    Imprecise {
        /// Maximum tick span covered by one record.
        window_ticks: u64,
    },
}

/// Result of a batch read for one subscriber; see [`Pfs::read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfsReadResult {
    /// The subscriber's `Q` ticks, ascending, all within
    /// `(known_from, covered_to]`.
    pub q_ticks: Vec<Timestamp>,
    /// Every tick in `(known_from, covered_to]` **not** in `q_ticks` is
    /// `S` for this subscriber.
    pub covered_to: Timestamp,
    /// Ticks in `(from, known_from]` are *undetermined* (their records
    /// were chopped): the caller must nack that whole range. Equal to
    /// `from` when the chain was intact.
    pub known_from: Timestamp,
    /// `true` when the walk returned every available `Q` tick (no buffer
    /// saturation) — the paper's "read reached `lastTimestamp`" metric.
    pub full_read: bool,
    /// Records visited (cost/latency accounting).
    pub records_visited: usize,
}

#[derive(Debug, Clone)]
struct PendingWindow {
    start: Timestamp,
    end: Timestamp,
    subs: BTreeMap<SubscriberId, LogIndex>,
}

/// Newest backpointer-chain head for one slab slot (the dense-index
/// mirror of `lastIndex(s)` used by the slot-keyed hot path).
#[derive(Debug, Clone, Copy)]
struct SlotHead {
    generation: u32,
    idx: LogIndex,
    ts: Timestamp,
}

/// The Persistent Filtering Subsystem of one SHB.
///
/// # Examples
///
/// ```
/// use gryphon::Pfs;
/// use gryphon_storage::MemFactory;
/// use gryphon_types::{PubendId, SubscriberId, Timestamp};
///
/// let mut pfs = Pfs::open(Box::new(MemFactory::new()), "shb0", gryphon::PfsMode::Precise)?;
/// let p = PubendId(0);
/// let (s1, s2) = (SubscriberId(1), SubscriberId(2));
/// pfs.write(p, Timestamp(1), &[s1, s2])?;
/// pfs.write(p, Timestamp(4), &[s1])?;
/// pfs.write(p, Timestamp(5), &[s2])?;
/// pfs.sync()?;
///
/// let r = pfs.read(p, s1, Timestamp::ZERO, Timestamp(10), 100)?;
/// assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(4)]);
/// assert!(r.full_read);
/// # Ok::<(), gryphon_storage::StorageError>(())
/// ```
pub struct Pfs {
    volume: LogVolume,
    meta: MetaTable,
    mode: PfsMode,
    /// (pubend, sub) → (newest record index containing it, its ts).
    /// Chains are per log stream, i.e. per pubend, exactly as in the
    /// paper's `lastIndex(s)` metadata.
    last_index: HashMap<(PubendId, SubscriberId), (LogIndex, Timestamp)>,
    /// pubend → newest record timestamp.
    last_timestamp: HashMap<PubendId, Timestamp>,
    /// pubend → record-ts → volume index (for ts-based chopping).
    ts_index: HashMap<PubendId, BTreeMap<Timestamp, LogIndex>>,
    /// pubend → everything at or below this tick may have been chopped.
    floor: HashMap<PubendId, Timestamp>,
    /// Imprecise-mode buffered window per pubend.
    pending: HashMap<PubendId, PendingWindow>,
    /// pubend → dense per-slab-slot chain heads, generation-stamped.
    /// Purely an in-memory accelerator over `last_index`: misses (slot
    /// recycled, post-recovery, chopped) fall back to the id-keyed map.
    slot_heads: HashMap<PubendId, Vec<Option<SlotHead>>>,
    /// Reusable write-path buffers (the constream hot path must not
    /// allocate per event).
    scratch_pairs: Vec<(SubscriberId, LogIndex)>,
    scratch_gens: Vec<u32>,
    scratch_data: Vec<u8>,
}

impl std::fmt::Debug for Pfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pfs")
            .field("mode", &self.mode)
            .field("subs", &self.last_index.len())
            .field("pubends", &self.last_timestamp.len())
            .finish()
    }
}

fn stream_for(p: PubendId) -> StreamId {
    StreamId(p.0)
}

impl Pfs {
    /// Opens (recovering) or creates the PFS named `name`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or non-tail corruption.
    pub fn open(
        factory: Box<dyn MediaFactory>,
        name: &str,
        mode: PfsMode,
    ) -> Result<Self, StorageError> {
        let meta = MetaTable::open(
            factory.clone_box(),
            &format!("{name}-pfsmeta"),
            TableConfig::default(),
        )?;
        let volume = LogVolume::open(factory, &format!("{name}-pfs"), VolumeConfig::default())?;
        let mut pfs = Pfs {
            volume,
            meta,
            mode,
            last_index: HashMap::new(),
            last_timestamp: HashMap::new(),
            ts_index: HashMap::new(),
            floor: HashMap::new(),
            pending: HashMap::new(),
            slot_heads: HashMap::new(),
            scratch_pairs: Vec::new(),
            scratch_gens: Vec::new(),
            scratch_data: Vec::new(),
        };
        pfs.rebuild()?;
        Ok(pfs)
    }

    fn rebuild(&mut self) -> Result<(), StorageError> {
        for stream in self.volume.stream_ids() {
            let pubend = PubendId(stream.0);
            let records = self.volume.read_all(stream)?;
            for (idx, data) in records {
                let rec = decode_record(&data)?;
                for (sub, _) in &rec.subs {
                    self.last_index.insert((pubend, *sub), (idx, rec.end));
                }
                let lt = self.last_timestamp.entry(pubend).or_insert(Timestamp::ZERO);
                *lt = (*lt).max(rec.end);
                self.ts_index
                    .entry(pubend)
                    .or_default()
                    .insert(rec.start, idx);
            }
        }
        // Floors are persisted explicitly (chops are rare).
        let floors: Vec<(PubendId, Timestamp)> = self
            .meta
            .iter_prefix("floor/")
            .filter_map(|(k, v)| {
                let p: u32 = k.strip_prefix("floor/")?.parse().ok()?;
                let t = u64::from_le_bytes(v.try_into().ok()?);
                Some((PubendId(p), Timestamp(t)))
            })
            .collect();
        for (p, t) in floors {
            self.floor.insert(p, t);
        }
        Ok(())
    }

    /// Records that `ts` on pubend `p` matched `subs` (must be non-empty;
    /// calls must use ascending `ts` per pubend — the constream's order).
    /// Writes at or below `lastTimestamp(p)` are ignored, which makes the
    /// call idempotent across crash-recovery re-processing (the constream
    /// may replay a span whose records are already durable).
    ///
    /// Durability requires a subsequent [`Pfs::sync`].
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    ///
    /// # Panics
    ///
    /// Debug-asserts a non-empty subscriber list.
    pub fn write(
        &mut self,
        p: PubendId,
        ts: Timestamp,
        subs: &[SubscriberId],
    ) -> Result<(), StorageError> {
        debug_assert!(!subs.is_empty(), "PFS write with no matching subscribers");
        if self.last_timestamp.get(&p).is_some_and(|&lt| ts <= lt) {
            return Ok(()); // idempotent replay after recovery
        }
        match self.mode {
            PfsMode::Precise => {
                self.emit_record(p, ts, ts, subs.iter().copied())?;
            }
            PfsMode::Imprecise { window_ticks } => {
                let flush = match self.pending.get(&p) {
                    Some(w) => ts.0.saturating_sub(w.start.0) >= window_ticks,
                    None => false,
                };
                if flush {
                    self.flush_window(p)?;
                }
                let w = self.pending.entry(p).or_insert(PendingWindow {
                    start: ts,
                    end: ts,
                    subs: BTreeMap::new(),
                });
                w.end = ts;
                for &s in subs {
                    w.subs.entry(s).or_insert(LogIndex::NONE);
                }
                // The record is written at flush/sync time.
                self.last_timestamp
                    .entry(p)
                    .and_modify(|lt| *lt = (*lt).max(ts))
                    .or_insert(ts);
            }
        }
        Ok(())
    }

    /// Slot-keyed variant of [`Pfs::write`] for the SHB's constream hot
    /// path: `slots` are slab indices (a match result), and `resolve`
    /// maps one to its `(SubscriberId, generation)` via the slab.
    ///
    /// The backpointer for each slot comes from a dense generation-stamped
    /// head vector — no per-subscriber hash lookup per event. A
    /// generation miss (slot recycled since the last write, or freshly
    /// recovered) falls back to the id-keyed `lastIndex` map. Replays at
    /// or below `lastTimestamp(p)` return without touching anything, so
    /// crash-recovery re-processing is allocation-free.
    ///
    /// Do not interleave the id-keyed [`Pfs::write`]/[`Pfs::read`] pair
    /// and the slot-keyed pair on the same pubend within one run:
    /// `write_slots` maintains only the slot heads (the id-keyed
    /// `lastIndex` map is rebuilt from the log on recovery), and a plain
    /// `write` would leave the slot heads stale. The id-keyed pair
    /// remains for the microbenchmarks and tests.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    ///
    /// # Panics
    ///
    /// Debug-asserts a non-empty slot list.
    pub fn write_slots(
        &mut self,
        p: PubendId,
        ts: Timestamp,
        slots: &[u32],
        resolve: impl Fn(u32) -> (SubscriberId, u32),
    ) -> Result<(), StorageError> {
        debug_assert!(!slots.is_empty(), "PFS write with no matching slots");
        if self.last_timestamp.get(&p).is_some_and(|&lt| ts <= lt) {
            return Ok(()); // idempotent replay after recovery
        }
        if let PfsMode::Imprecise { .. } = self.mode {
            // Imprecise windows buffer by subscriber id; resolve and
            // delegate (this mode is off the hot path).
            let subs: Vec<SubscriberId> = slots.iter().map(|&si| resolve(si).0).collect();
            return self.write(p, ts, &subs);
        }
        let mut pairs = std::mem::take(&mut self.scratch_pairs);
        let mut gens = std::mem::take(&mut self.scratch_gens);
        let mut data = std::mem::take(&mut self.scratch_data);
        pairs.clear();
        gens.clear();
        let heads = self.slot_heads.entry(p).or_default();
        let max = slots.iter().copied().max().unwrap_or(0) as usize;
        if heads.len() <= max {
            heads.resize(max + 1, None);
        }
        for &si in slots {
            let (sub, generation) = resolve(si);
            let prev = match heads[si as usize] {
                Some(h) if h.generation == generation => h.idx,
                _ => self
                    .last_index
                    .get(&(p, sub))
                    .map(|&(i, _)| i)
                    .unwrap_or(LogIndex::NONE),
            };
            pairs.push((sub, prev));
            gens.push(generation);
        }
        encode_record_into(&mut data, ts, ts, &pairs);
        let idx = self.volume.append(stream_for(p), &data)?;
        for (&si, &generation) in slots.iter().zip(gens.iter()) {
            heads[si as usize] = Some(SlotHead {
                generation,
                idx,
                ts,
            });
        }
        self.last_timestamp
            .entry(p)
            .and_modify(|lt| *lt = (*lt).max(ts))
            .or_insert(ts);
        self.ts_index.entry(p).or_default().insert(ts, idx);
        self.scratch_pairs = pairs;
        self.scratch_gens = gens;
        self.scratch_data = data;
        Ok(())
    }

    fn emit_record(
        &mut self,
        p: PubendId,
        start: Timestamp,
        end: Timestamp,
        subs: impl Iterator<Item = SubscriberId>,
    ) -> Result<LogIndex, StorageError> {
        let pairs: Vec<(SubscriberId, LogIndex)> = subs
            .map(|s| {
                let prev = self
                    .last_index
                    .get(&(p, s))
                    .map(|&(i, _)| i)
                    .unwrap_or(LogIndex::NONE);
                (s, prev)
            })
            .collect();
        let data = encode_record(start, end, &pairs);
        let idx = self.volume.append(stream_for(p), &data)?;
        for (s, _) in &pairs {
            self.last_index.insert((p, *s), (idx, end));
        }
        self.last_timestamp
            .entry(p)
            .and_modify(|lt| *lt = (*lt).max(end))
            .or_insert(end);
        self.ts_index.entry(p).or_default().insert(start, idx);
        Ok(idx)
    }

    fn flush_window(&mut self, p: PubendId) -> Result<(), StorageError> {
        if let Some(w) = self.pending.remove(&p) {
            let subs: Vec<SubscriberId> = w.subs.keys().copied().collect();
            self.emit_record(p, w.start, w.end, subs.into_iter())?;
        }
        Ok(())
    }

    /// Group-commit point: flushes pending windows and syncs the volume.
    ///
    /// # Errors
    ///
    /// Returns an error if the flush fails.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        let pubends: Vec<PubendId> = self.pending.keys().copied().collect();
        for p in pubends {
            self.flush_window(p)?;
        }
        self.volume.sync()
    }

    /// Batch read for subscriber `sub` on pubend `p` over `(from, to]`,
    /// returning at most `max_q` of the **oldest** `Q` ticks; see
    /// [`PfsReadResult`] for the semantics of the returned bounds.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    pub fn read(
        &mut self,
        p: PubendId,
        sub: SubscriberId,
        from: Timestamp,
        to: Timestamp,
        max_q: usize,
    ) -> Result<PfsReadResult, StorageError> {
        let head = self.last_index.get(&(p, sub)).map(|&(i, _)| i);
        self.read_walk(p, sub, head, from, to, max_q)
    }

    /// Slot-keyed variant of [`Pfs::read`]: starts the backpointer walk
    /// from the slab slot's cached chain head when its generation still
    /// matches, falling back to the id-keyed `lastIndex` map otherwise.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume fails.
    pub fn read_slot(
        &mut self,
        p: PubendId,
        slot: SubSlot,
        sub: SubscriberId,
        from: Timestamp,
        to: Timestamp,
        max_q: usize,
    ) -> Result<PfsReadResult, StorageError> {
        let head = self
            .slot_heads
            .get(&p)
            .and_then(|hs| hs.get(slot.index() as usize).copied().flatten())
            .filter(|h| h.generation == slot.generation())
            .map(|h| h.idx)
            .or_else(|| self.last_index.get(&(p, sub)).map(|&(i, _)| i));
        self.read_walk(p, sub, head, from, to, max_q)
    }

    fn read_walk(
        &mut self,
        p: PubendId,
        sub: SubscriberId,
        head: Option<LogIndex>,
        from: Timestamp,
        to: Timestamp,
        max_q: usize,
    ) -> Result<PfsReadResult, StorageError> {
        let max_q = max_q.max(1); // a zero-sized buffer still reads one tick
        let floor = self.floor.get(&p).copied().unwrap_or(Timestamp::ZERO);
        let mut known_from = from.max(floor);
        let mut collected: Vec<Timestamp> = Vec::new(); // newest → oldest
        let mut visited = 0usize;
        let mut cursor = head;
        let stream = stream_for(p);
        while let Some(idx) = cursor {
            if idx == LogIndex::NONE {
                break;
            }
            let Some(data) = self.volume.read(stream, idx)? else {
                // Chain broken by a chop: everything below the oldest
                // collected tick is undetermined.
                let boundary = collected.last().map(|t| t.prev()).unwrap_or(to);
                known_from = known_from.max(boundary).min(to);
                break;
            };
            visited += 1;
            let rec = decode_record(&data)?;
            let Some(&(_, prev)) = rec.subs.iter().find(|(s, _)| *s == sub) else {
                // The walk follows this subscriber's chain, so every
                // record must contain it; a miss means index corruption.
                return Err(StorageError::Corrupt {
                    media: format!("pfs stream {p}"),
                    offset: idx.0,
                    detail: format!("record lacks {sub}"),
                });
            };
            if rec.end <= known_from {
                break; // walked past the window: chain is intact below
            }
            if rec.start <= to {
                // Collect ticks of this record within (known_from, to].
                let lo = rec.start.max(known_from.next());
                let hi = rec.end.min(to);
                let mut t = hi;
                while t >= lo && t > Timestamp::ZERO {
                    collected.push(t);
                    if t == lo {
                        break;
                    }
                    t = t.prev();
                }
            }
            cursor = Some(prev);
        }
        collected.reverse(); // ascending
        let full_read = collected.len() <= max_q;
        let (q_ticks, covered_to) = if full_read {
            (collected, to)
        } else {
            let kept: Vec<Timestamp> = collected.into_iter().take(max_q).collect();
            let cov = *kept.last().expect("max_q > 0 implies nonempty");
            (kept, cov)
        };
        Ok(PfsReadResult {
            q_ticks,
            covered_to,
            known_from,
            full_read,
            records_visited: visited,
        })
    }

    /// Discards all records with timestamps `< below` for `p` (everything
    /// there has been released by every durable subscriber). The floor is
    /// persisted so reads after a crash stay conservative.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying volume or meta table fails.
    pub fn chop_below(&mut self, p: PubendId, below: Timestamp) -> Result<(), StorageError> {
        let cur = self.floor.get(&p).copied().unwrap_or(Timestamp::ZERO);
        let new_floor = below.prev();
        if new_floor <= cur {
            return Ok(());
        }
        let Some(map) = self.ts_index.get_mut(&p) else {
            self.floor.insert(p, new_floor);
            self.meta.put_u64(&format!("floor/{}", p.0), new_floor.0)?;
            return Ok(());
        };
        let boundary = map
            .range(below..)
            .next()
            .map(|(_, &i)| i)
            .unwrap_or_else(|| self.volume.next_index(stream_for(p)));
        let dead: Vec<Timestamp> = map.range(..below).map(|(&t, _)| t).collect();
        for t in dead {
            map.remove(&t);
        }
        self.volume.chop(stream_for(p), boundary)?;
        // Prune subscribers whose entire chain (on this pubend) is gone:
        // their newest record was below the chop, so every surviving tick
        // is S for them — exactly what an absent last_index means. The
        // slot heads mirror that: a head pointing below the chop must be
        // cleared, or a later read would walk into chopped records and
        // report undetermined instead of all-silence.
        self.last_index
            .retain(|&(rp, _), &mut (_, ts)| rp != p || ts >= below);
        if let Some(heads) = self.slot_heads.get_mut(&p) {
            for h in heads.iter_mut() {
                if h.is_some_and(|sh| sh.ts < below) {
                    *h = None;
                }
            }
        }
        self.floor.insert(p, new_floor);
        self.meta.put_u64(&format!("floor/{}", p.0), new_floor.0)?;
        Ok(())
    }

    /// Newest record timestamp for `p` ([`Timestamp::ZERO`] when empty).
    pub fn last_timestamp(&self, p: PubendId) -> Timestamp {
        self.last_timestamp
            .get(&p)
            .copied()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Volume counters (records, payload bytes, syncs) — the PFS
    /// microbenchmark reads the "25× less data" off these.
    pub fn stats(&self) -> VolumeStats {
        self.volume.stats()
    }
}

struct Record {
    start: Timestamp,
    end: Timestamp,
    subs: Vec<(SubscriberId, LogIndex)>,
}

fn encode_record(start: Timestamp, end: Timestamp, pairs: &[(SubscriberId, LogIndex)]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_record_into(&mut out, start, end, pairs);
    out
}

/// Encodes into a caller-owned buffer so the hot path can reuse it.
fn encode_record_into(
    out: &mut Vec<u8>,
    start: Timestamp,
    end: Timestamp,
    pairs: &[(SubscriberId, LogIndex)],
) {
    let imprecise = end != start;
    out.clear();
    out.reserve(8 + 16 * pairs.len() + if imprecise { 8 } else { 0 });
    if imprecise {
        out.extend_from_slice(&(start.0 | IMPRECISE_FLAG).to_le_bytes());
        out.extend_from_slice(&end.0.to_le_bytes());
    } else {
        out.extend_from_slice(&start.0.to_le_bytes());
    }
    for (s, prev) in pairs {
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&prev.0.to_le_bytes());
    }
}

fn decode_record(data: &[u8]) -> Result<Record, StorageError> {
    let corrupt = |detail: &str| StorageError::Corrupt {
        media: "pfs".into(),
        offset: 0,
        detail: detail.into(),
    };
    if data.len() < 8 {
        return Err(corrupt("record shorter than timestamp"));
    }
    let raw = u64::from_le_bytes(data[..8].try_into().expect("len 8"));
    let (start, end, mut pos) = if raw & IMPRECISE_FLAG != 0 {
        if data.len() < 16 {
            return Err(corrupt("imprecise record missing end"));
        }
        let end = u64::from_le_bytes(data[8..16].try_into().expect("len 8"));
        (Timestamp(raw & !IMPRECISE_FLAG), Timestamp(end), 16)
    } else {
        (Timestamp(raw), Timestamp(raw), 8)
    };
    if !(data.len() - pos).is_multiple_of(16) {
        return Err(corrupt("record pair section misaligned"));
    }
    let mut subs = Vec::with_capacity((data.len() - pos) / 16);
    while pos < data.len() {
        let s = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("len 8"));
        let i = u64::from_le_bytes(data[pos + 8..pos + 16].try_into().expect("len 8"));
        subs.push((SubscriberId(s), LogIndex(i)));
        pos += 16;
    }
    Ok(Record { start, end, subs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_storage::MemFactory;

    fn fresh(mode: PfsMode) -> (MemFactory, Pfs) {
        let f = MemFactory::new();
        let pfs = Pfs::open(Box::new(f.clone()), "t", mode).unwrap();
        (f, pfs)
    }

    const P: PubendId = PubendId(0);
    const S1: SubscriberId = SubscriberId(1);
    const S2: SubscriberId = SubscriberId(2);
    const S3: SubscriberId = SubscriberId(3);

    /// The paper's figure-2 example: records at t=1 (s1,s2,s3), t=3 (s2),
    /// t=4 (s1, s3), t=5 (s2, s3).
    fn figure2(pfs: &mut Pfs) {
        pfs.write(P, Timestamp(1), &[S1, S2, S3]).unwrap();
        pfs.write(P, Timestamp(3), &[S2]).unwrap();
        pfs.write(P, Timestamp(4), &[S1, S3]).unwrap();
        pfs.write(P, Timestamp(5), &[S2, S3]).unwrap();
        pfs.sync().unwrap();
    }

    #[test]
    fn figure2_reads_per_subscriber() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        figure2(&mut pfs);
        let r = pfs
            .read(P, S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(4)]);
        assert_eq!(r.known_from, Timestamp::ZERO);
        assert_eq!(r.covered_to, Timestamp(10));
        let r = pfs
            .read(P, S2, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(3), Timestamp(5)]);
        let r = pfs
            .read(P, S3, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(4), Timestamp(5)]);
    }

    #[test]
    fn read_window_clips_both_ends() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        figure2(&mut pfs);
        let r = pfs.read(P, S3, Timestamp(1), Timestamp(4), 100).unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(4)]);
        assert_eq!(r.covered_to, Timestamp(4));
    }

    #[test]
    fn saturated_read_returns_oldest_and_reports_partial() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        for t in 1..=20u64 {
            pfs.write(P, Timestamp(t), &[S1]).unwrap();
        }
        pfs.sync().unwrap();
        let r = pfs.read(P, S1, Timestamp::ZERO, Timestamp(30), 5).unwrap();
        assert_eq!(
            r.q_ticks,
            (1..=5).map(Timestamp).collect::<Vec<_>>(),
            "oldest five"
        );
        assert_eq!(r.covered_to, Timestamp(5));
        assert!(!r.full_read);
        // Next read resumes above covered_to.
        let r2 = pfs.read(P, S1, r.covered_to, Timestamp(30), 100).unwrap();
        assert_eq!(r2.q_ticks.first(), Some(&Timestamp(6)));
        assert!(r2.full_read);
    }

    #[test]
    fn subscriber_with_no_records_sees_all_silence() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        figure2(&mut pfs);
        let r = pfs
            .read(P, SubscriberId(99), Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert!(r.q_ticks.is_empty());
        assert_eq!(r.covered_to, Timestamp(10));
        assert!(r.full_read);
    }

    #[test]
    fn pubends_are_isolated() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        pfs.write(PubendId(0), Timestamp(1), &[S1]).unwrap();
        pfs.write(PubendId(1), Timestamp(2), &[S1]).unwrap();
        pfs.sync().unwrap();
        let r = pfs
            .read(PubendId(1), S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        // Chains are keyed per (pubend, sub): s1's records on pubend 0
        // must not appear when reading pubend 1.
        assert_eq!(r.q_ticks, vec![Timestamp(2)]);
        let r = pfs
            .read(PubendId(0), S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1)]);
    }

    #[test]
    fn recovery_rebuilds_chains() {
        let f = MemFactory::new();
        {
            let mut pfs = Pfs::open(Box::new(f.clone()), "t", PfsMode::Precise).unwrap();
            figure2(&mut pfs);
        }
        let mut pfs = Pfs::open(Box::new(f), "t", PfsMode::Precise).unwrap();
        let r = pfs
            .read(P, S2, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(3), Timestamp(5)]);
        assert_eq!(pfs.last_timestamp(P), Timestamp(5));
        // Appending after recovery keeps chains linked.
        pfs.write(P, Timestamp(7), &[S2]).unwrap();
        pfs.sync().unwrap();
        let r = pfs.read(P, S2, Timestamp(2), Timestamp(10), 100).unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(3), Timestamp(5), Timestamp(7)]);
    }

    #[test]
    fn unsynced_writes_lost_on_crash() {
        let f = MemFactory::new();
        {
            let mut pfs = Pfs::open(Box::new(f.clone()), "t", PfsMode::Precise).unwrap();
            pfs.write(P, Timestamp(1), &[S1]).unwrap();
            pfs.sync().unwrap();
            pfs.write(P, Timestamp(2), &[S1]).unwrap(); // not synced
        }
        f.crash_lose_unsynced();
        let mut pfs = Pfs::open(Box::new(f), "t", PfsMode::Precise).unwrap();
        let r = pfs
            .read(P, S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1)]);
    }

    #[test]
    fn chop_prunes_dead_chains_and_persists_floor() {
        let f = MemFactory::new();
        {
            let mut pfs = Pfs::open(Box::new(f.clone()), "t", PfsMode::Precise).unwrap();
            pfs.write(P, Timestamp(1), &[S1]).unwrap();
            pfs.write(P, Timestamp(5), &[S2]).unwrap();
            pfs.sync().unwrap();
            pfs.chop_below(P, Timestamp(3)).unwrap();
            // S1's whole chain is below the chop: all-S from its view.
            let r = pfs.read(P, S1, Timestamp(3), Timestamp(10), 100).unwrap();
            assert!(r.q_ticks.is_empty());
            assert!(r.full_read);
            // S2 unaffected.
            let r = pfs.read(P, S2, Timestamp(3), Timestamp(10), 100).unwrap();
            assert_eq!(r.q_ticks, vec![Timestamp(5)]);
        }
        // Floor survives crash: reads from below it report undetermined.
        let mut pfs = Pfs::open(Box::new(f), "t", PfsMode::Precise).unwrap();
        let r = pfs
            .read(P, S2, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.known_from, Timestamp(2), "ticks ≤ floor undetermined");
        assert_eq!(r.q_ticks, vec![Timestamp(5)]);
    }

    #[test]
    fn imprecise_mode_unions_subscribers() {
        let (_f, mut pfs) = fresh(PfsMode::Imprecise { window_ticks: 10 });
        pfs.write(P, Timestamp(1), &[S1]).unwrap();
        pfs.write(P, Timestamp(4), &[S2]).unwrap();
        pfs.write(P, Timestamp(8), &[S1, S3]).unwrap();
        pfs.sync().unwrap();
        // One record covering 1..=8 with {s1,s2,s3}: every tick in the
        // window is Q for each of them (the imprecision).
        let r = pfs
            .read(P, S2, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks.len(), 8);
        assert_eq!(r.q_ticks[0], Timestamp(1));
        assert_eq!(r.q_ticks[7], Timestamp(8));
        // Writes: exactly one record.
        assert_eq!(pfs.stats().records, 1);
    }

    #[test]
    fn imprecise_windows_split_at_window_ticks() {
        let (_f, mut pfs) = fresh(PfsMode::Imprecise { window_ticks: 5 });
        pfs.write(P, Timestamp(1), &[S1]).unwrap();
        pfs.write(P, Timestamp(6), &[S2]).unwrap(); // 6-1 >= 5 → new window
        pfs.sync().unwrap();
        assert_eq!(pfs.stats().records, 2);
        let r = pfs
            .read(P, S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1)]);
    }

    #[test]
    fn precise_record_is_paper_sized() {
        // 8 + 16·n bytes, exactly footnote 2 of the paper.
        let pairs = vec![(S1, LogIndex(4)), (S2, LogIndex::NONE)];
        let data = encode_record(Timestamp(9), Timestamp(9), &pairs);
        assert_eq!(data.len(), 8 + 16 * 2);
        let rec = decode_record(&data).unwrap();
        assert_eq!(rec.start, Timestamp(9));
        assert_eq!(rec.end, Timestamp(9));
        assert_eq!(rec.subs, pairs);
    }

    #[test]
    fn slot_writes_match_id_writes_and_survive_recycle() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        // Slot 0 = S1 (gen 0), slot 1 = S2 (gen 0).
        let resolve = |si: u32| (SubscriberId(si as u64 + 1), 0u32);
        pfs.write_slots(P, Timestamp(1), &[0, 1], resolve).unwrap();
        pfs.write_slots(P, Timestamp(3), &[1], resolve).unwrap();
        pfs.write_slots(P, Timestamp(4), &[0], resolve).unwrap();
        pfs.sync().unwrap();
        let slot0 = SubSlot::new(0, 0);
        let r = pfs
            .read_slot(P, slot0, S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(4)]);
        // Recycle slot 0 to a new subscriber (generation bump): its chain
        // must start fresh, not chain onto S1's records.
        let resolve2 = |si: u32| {
            if si == 0 {
                (SubscriberId(9), 1u32)
            } else {
                (SubscriberId(si as u64 + 1), 0u32)
            }
        };
        pfs.write_slots(P, Timestamp(7), &[0], resolve2).unwrap();
        pfs.sync().unwrap();
        let r = pfs
            .read_slot(
                P,
                SubSlot::new(0, 1),
                SubscriberId(9),
                Timestamp::ZERO,
                Timestamp(10),
                100,
            )
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(7)]);
        // A stale handle to the old tenant sees nothing in-run (the dead
        // chain is unreachable, exactly like an unsubscribed id).
        let r = pfs
            .read_slot(P, slot0, S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert!(r.q_ticks.is_empty());
    }

    #[test]
    fn recovery_rebuilds_id_chains_from_slot_writes() {
        let f = MemFactory::new();
        {
            let mut pfs = Pfs::open(Box::new(f.clone()), "t", PfsMode::Precise).unwrap();
            let resolve = |si: u32| (SubscriberId(si as u64 + 1), 0u32);
            pfs.write_slots(P, Timestamp(1), &[0, 1], resolve).unwrap();
            pfs.write_slots(P, Timestamp(4), &[0], resolve).unwrap();
            pfs.sync().unwrap();
        }
        // Records are identical on disk regardless of write path: the
        // rebuilt id-keyed chains serve both read flavors after a crash.
        let mut pfs = Pfs::open(Box::new(f), "t", PfsMode::Precise).unwrap();
        let r = pfs
            .read(P, S1, Timestamp::ZERO, Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(4)]);
        let r = pfs
            .read_slot(
                P,
                SubSlot::new(0, 0),
                S1,
                Timestamp::ZERO,
                Timestamp(10),
                100,
            )
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(1), Timestamp(4)]);
        // Post-recovery slot writes chain onto the rebuilt id map.
        let resolve = |si: u32| (SubscriberId(si as u64 + 1), 0u32);
        pfs.write_slots(P, Timestamp(7), &[0], resolve).unwrap();
        pfs.sync().unwrap();
        let r = pfs
            .read_slot(P, SubSlot::new(0, 0), S1, Timestamp(2), Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(4), Timestamp(7)]);
    }

    #[test]
    fn chop_clears_stale_slot_heads() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        let resolve = |si: u32| (SubscriberId(si as u64 + 1), 0u32);
        pfs.write_slots(P, Timestamp(1), &[0], resolve).unwrap();
        pfs.write_slots(P, Timestamp(5), &[1], resolve).unwrap();
        pfs.sync().unwrap();
        pfs.chop_below(P, Timestamp(3)).unwrap();
        // Slot 0's whole chain was chopped: all-silence, not a broken
        // walk into chopped records.
        let r = pfs
            .read_slot(P, SubSlot::new(0, 0), S1, Timestamp(3), Timestamp(10), 100)
            .unwrap();
        assert!(r.q_ticks.is_empty());
        assert!(r.full_read);
        // Slot 1 unaffected.
        let r = pfs
            .read_slot(P, SubSlot::new(1, 0), S2, Timestamp(3), Timestamp(10), 100)
            .unwrap();
        assert_eq!(r.q_ticks, vec![Timestamp(5)]);
    }

    #[test]
    fn slot_write_replay_is_idempotent() {
        let (_f, mut pfs) = fresh(PfsMode::Precise);
        let resolve = |si: u32| (SubscriberId(si as u64 + 1), 0u32);
        pfs.write_slots(P, Timestamp(1), &[0], resolve).unwrap();
        pfs.write_slots(P, Timestamp(2), &[0], resolve).unwrap();
        let records = pfs.stats().records;
        // Re-processing the same span after recovery must not append.
        pfs.write_slots(P, Timestamp(1), &[0], resolve).unwrap();
        pfs.write_slots(P, Timestamp(2), &[0], resolve).unwrap();
        assert_eq!(pfs.stats().records, records);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode_record(&[0u8; 4]).is_err());
        assert!(decode_record(&[0u8; 20]).is_err()); // misaligned pairs
        let mut imprec = (1u64 | IMPRECISE_FLAG).to_le_bytes().to_vec();
        imprec.extend_from_slice(&[0u8; 4]);
        assert!(decode_record(&imprec).is_err());
    }
}
