//! The unified Gryphon broker node.
//!
//! A [`Broker`] plays any combination of PHB / intermediate / SHB roles,
//! exactly like a Gryphon broker: the 1-broker topology of the paper's
//! Figure 3 hosts pubends *and* subscribers on one node, while the 4-SHB
//! topology separates them across a tree.

mod pubend;
mod route;
mod shb;
#[cfg(test)]
mod shb_tests;

pub use pubend::Pubend;
pub use route::Route;
pub use shb::{CatchupNeeds, Con, Conn, Shb};

use crate::config::BrokerConfig;
use crate::timer::{self, Kind};
use gryphon_matching::{Filter, SubscriptionIndex};
use gryphon_sim::{
    count_metric, names, observe_metric, trace_event, Node, NodeCtx, TimerKey, TraceEvent,
};
use gryphon_storage::{EventLog, MediaFactory, VolumeConfig};
use gryphon_types::{
    ClientMsg, CuriosityMsg, KnowledgeMsg, KnowledgePart, NetMsg, NodeId, PubendId, PublishMsg,
    ReleaseMsg, SubInterestMsg, SubscriberId, Timestamp,
};
use std::collections::HashMap;

/// A Gryphon broker; construct with [`Broker::new`] and assign roles with
/// [`Broker::hosting_pubends`] / [`Broker::hosting_subscribers`], then
/// wire the tree with [`Broker::set_parent`] / [`Broker::add_child`].
///
/// See the [crate docs](crate) for a complete example.
pub struct Broker {
    id: u32,
    config: BrokerConfig,
    factory: Box<dyn MediaFactory>,
    /// Bumped on restart; timers from older epochs are stale.
    epoch: u8,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Declared pubends (instantiated lazily at start/restart).
    declared_pubends: Vec<PubendId>,
    pubends: HashMap<PubendId, Pubend>,
    event_log: Option<EventLog>,
    routes: HashMap<PubendId, Route>,
    /// Per-child aggregate subscription filters (for D→S downgrades).
    child_index: HashMap<NodeId, SubscriptionIndex>,
    child_specs: HashMap<NodeId, Vec<(SubscriberId, gryphon_types::SubscriptionSpec)>>,
    /// Per-(child, pubend) release reports.
    child_release: HashMap<(NodeId, PubendId), (Timestamp, Timestamp)>,
    shb: Option<Shb>,
    hosts_subscribers: bool,
    /// Interest-version plumbing (subscription-start causality; see
    /// [`gryphon_types::SubInterestMsg::version`]). Versions are virtual
    /// timestamps, so they stay monotone across restarts.
    my_interest_version: u64,
    /// Highest interest version the parent has confirmed via knowledge
    /// stamps.
    upstream_confirmed: u64,
    /// Latest interest version received per child.
    child_versions: HashMap<NodeId, u64>,
    /// Child interest versions awaiting upstream confirmation:
    /// `(child version, our upward version carrying it)`.
    child_pending: HashMap<NodeId, Vec<(u64, u64)>>,
    /// Highest child interest version known to be causally upstream.
    child_confirmed: HashMap<NodeId, u64>,
    /// First-time connects held until their interest is confirmed
    /// upstream.
    parked: Vec<ParkedConnect>,
    /// Last release point reported per hosted pubend, so the release
    /// timer only emits a `ReleaseAdvanced` trace on actual progress.
    last_release_reported: HashMap<PubendId, Timestamp>,
}

struct ParkedConnect {
    sub: SubscriberId,
    client: NodeId,
    ct: Option<gryphon_types::CheckpointToken>,
    spec: Option<gryphon_types::SubscriptionSpec>,
    broker_ct: bool,
    auto_ack: bool,
    /// Reconnect-anywhere (checkpoint from another SHB), captured before
    /// registration made the subscription look local.
    anywhere: bool,
    version: u64,
    parked_at_us: u64,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("pubends", &self.pubends.len())
            .field("children", &self.children.len())
            .field("shb", &self.shb.is_some())
            .finish()
    }
}

const TICK_US: u64 = 1_000; // 1 tick = 1 virtual millisecond

fn now_ticks(ctx: &dyn NodeCtx) -> Timestamp {
    Timestamp(ctx.now_us() / TICK_US)
}

impl Broker {
    /// Creates a broker with persistent storage rooted in `factory`.
    pub fn new(id: u32, factory: Box<dyn MediaFactory>, config: BrokerConfig) -> Self {
        Broker {
            id,
            config,
            factory,
            epoch: 0,
            parent: None,
            children: Vec::new(),
            declared_pubends: Vec::new(),
            pubends: HashMap::new(),
            event_log: None,
            routes: HashMap::new(),
            child_index: HashMap::new(),
            child_specs: HashMap::new(),
            child_release: HashMap::new(),
            shb: None,
            hosts_subscribers: false,
            my_interest_version: 0,
            upstream_confirmed: 0,
            child_versions: HashMap::new(),
            child_pending: HashMap::new(),
            child_confirmed: HashMap::new(),
            parked: Vec::new(),
            last_release_reported: HashMap::new(),
        }
    }

    /// Declares this broker a PHB hosting `pubends`.
    pub fn hosting_pubends(mut self, pubends: impl IntoIterator<Item = PubendId>) -> Self {
        self.declared_pubends.extend(pubends);
        self
    }

    /// Declares this broker an SHB (durable subscribers may attach).
    pub fn hosting_subscribers(mut self) -> Self {
        self.hosts_subscribers = true;
        self
    }

    /// Sets the upstream broker (towards the pubend hosts).
    pub fn set_parent(&mut self, parent: NodeId) {
        self.parent = Some(parent);
    }

    /// Adds a downstream broker.
    pub fn add_child(&mut self, child: NodeId) {
        if !self.children.contains(&child) {
            self.children.push(child);
        }
    }

    /// The SHB role state (None for pure PHB/intermediate brokers).
    pub fn shb(&self) -> Option<&Shb> {
        self.shb.as_ref()
    }

    /// Mutable SHB access (harness inspection).
    pub fn shb_mut(&mut self) -> Option<&mut Shb> {
        self.shb.as_mut()
    }

    /// Hosted pubend state (harness inspection).
    pub fn pubend(&self, p: PubendId) -> Option<&Pubend> {
        self.pubends.get(&p)
    }

    /// Total events published across hosted pubends.
    pub fn published(&self) -> u64 {
        self.pubends.values().map(|p| p.published).sum()
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    fn boot(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        if !self.declared_pubends.is_empty() {
            let log = EventLog::open(
                self.factory.clone_box(),
                &format!("b{}-events", self.id),
                VolumeConfig::default(),
            )
            .expect("PHB event log must open");
            self.event_log = Some(log);
            for &p in &self.declared_pubends {
                let mut pe = Pubend::new(p, now);
                // Restore the lost prefix (early release decisions are
                // irreversible and must survive crashes).
                if let Some(shb) = &self.shb {
                    if let Some(l) = shb.meta.get_u64(&format!("lost/{}", p.0)) {
                        pe.restore_lost_to(Timestamp(l));
                    }
                }
                self.pubends.insert(p, pe);
            }
        }
        if self.hosts_subscribers {
            self.shb = Some(Shb::open(
                self.factory.as_ref(),
                &format!("b{}", self.id),
                &self.config,
            ));
        }
        // PHB brokers without an SHB still need the lost prefix durable;
        // they reuse an SHB-style meta table lazily. To keep things
        // simple every PHB gets an SHB meta only if it hosts subscribers;
        // pure PHBs persist lost_to inside the event-log volume via a
        // dedicated chop marker — the chop itself is the durable record,
        // recovered as chopped_below. Restore from it:
        if let Some(log) = &self.event_log {
            for (&p, pe) in self.pubends.iter_mut() {
                let chopped = log.chopped_below_ts(p);
                if chopped > Timestamp::ZERO {
                    pe.restore_lost_to(chopped.prev());
                }
            }
        }
        self.arm_periodic(ctx);
    }

    fn arm_periodic(&mut self, ctx: &mut dyn NodeCtx) {
        let e = self.epoch;
        if !self.declared_pubends.is_empty() {
            ctx.set_timer(
                self.config.pubend_silence_interval_us,
                timer::pack(Kind::PhbSilence, e, 0, 0),
            );
        }
        ctx.set_timer(
            self.config.release_interval_us,
            timer::pack(Kind::Release, e, 0, 0),
        );
        ctx.set_timer(1_000_000, timer::pack(Kind::CacheTrim, e, 0, 0));
        ctx.set_timer(
            self.config.retry.timeout_us,
            timer::pack(Kind::RetryNacks, e, 0, 0),
        );
        if self.hosts_subscribers {
            ctx.set_timer(
                self.config.pfs_sync_interval_us,
                timer::pack(Kind::PfsSync, e, 0, 0),
            );
            ctx.set_timer(
                self.config.meta_persist_interval_us,
                timer::pack(Kind::MetaPersist, e, 0, 0),
            );
            ctx.set_timer(
                self.config.client_silence_interval_us,
                timer::pack(Kind::ClientSilence, e, 0, 0),
            );
        }
    }

    // ------------------------------------------------------------------
    // Knowledge plumbing
    // ------------------------------------------------------------------

    /// Central ingest: applies parts to the cache, advances the
    /// constream, feeds catchup streams, and forwards downstream.
    /// `interest_stamp` is the parent's interest-version stamp (`0` for
    /// locally originated knowledge, which confirms nothing upstream).
    fn ingest(
        &mut self,
        p: PubendId,
        parts: Vec<KnowledgePart>,
        nack_response: bool,
        interest_stamp: u64,
        ctx: &mut dyn NodeCtx,
    ) {
        if interest_stamp > self.upstream_confirmed {
            self.upstream_confirmed = interest_stamp;
            self.promote_child_confirmations();
            self.complete_parked(ctx);
        }
        if parts.is_empty() {
            return;
        }
        {
            let route = self.routes.entry(p).or_default();
            for part in &parts {
                route.absorb(part);
            }
        }
        // SHB: constream first (so processed_to is current), then catchup.
        if self.shb.is_some() {
            let holes = {
                let route = self.routes.get(&p).expect("route created above");
                let shb = self.shb.as_mut().expect("checked");
                shb.constream_advance(
                    p,
                    &route.knowledge,
                    route.max_seen,
                    &self.config,
                    ctx,
                )
            };
            self.resolve_for_constream(p, holes, ctx);
            let touched = self
                .shb
                .as_mut()
                .expect("checked")
                .distribute_to_catchup(p, &parts);
            for sub in touched {
                self.drive_catchup(sub, p, ctx);
            }
        }
        // Forward downstream.
        if self.children.is_empty() {
            return;
        }
        if nack_response {
            let targets: Vec<NodeId> = {
                let route = self.routes.get_mut(&p).expect("route created above");
                let mut t = Vec::new();
                for part in &parts {
                    let (f, to) = part.range();
                    for c in route.interest.interested(f, to) {
                        if !t.contains(&c) {
                            t.push(c);
                        }
                    }
                    route.interest.discharge(f, to);
                }
                t
            };
            for child in targets {
                self.send_filtered(child, p, &parts, true, ctx);
            }
        } else {
            let children = self.children.clone();
            for child in children {
                self.send_filtered(child, p, &parts, false, ctx);
            }
        }
    }

    /// Forwards parts to one child, downgrading data ticks that match no
    /// subscription in the child's subtree to silence (the paper's
    /// intermediate filtering).
    fn send_filtered(
        &mut self,
        child: NodeId,
        p: PubendId,
        parts: &[KnowledgePart],
        nack_response: bool,
        ctx: &mut dyn NodeCtx,
    ) {
        // Until a child's interest is known (fresh boot / just restarted),
        // forward unfiltered: over-delivery is safe, silent downgrades of
        // a subscription's events are not.
        let index = self.child_index.get(&child);
        // The stamp: for locally hosted pubends the child's interest is
        // applied the moment it arrives; for routed pubends it must also
        // be confirmed upstream (everything this broker forwards was
        // filtered up there too).
        let stamp = if self.pubends.contains_key(&p) {
            self.child_versions.get(&child).copied().unwrap_or(0)
        } else {
            self.child_confirmed
                .get(&child)
                .copied()
                .unwrap_or(0)
                .min(self.child_versions.get(&child).copied().unwrap_or(0))
        };
        let mut out: Vec<KnowledgePart> = Vec::with_capacity(parts.len());
        for part in parts {
            match part {
                KnowledgePart::Data(e) => {
                    ctx.work(self.config.costs.match_us);
                    let relevant = index.map(|i| i.any_match(e)).unwrap_or(true);
                    if relevant {
                        out.push(KnowledgePart::Data(e.clone()));
                    } else {
                        // Merge adjacent downgrades into one span.
                        if let Some(KnowledgePart::Silence { to, .. }) = out.last_mut() {
                            if to.next() == e.ts {
                                *to = e.ts;
                                continue;
                            }
                        }
                        out.push(KnowledgePart::Silence {
                            from: e.ts,
                            to: e.ts,
                        });
                    }
                }
                other => out.push(other.clone()),
            }
        }
        if !out.is_empty() {
            ctx.send(
                child,
                NetMsg::Knowledge(KnowledgeMsg {
                    pubend: p,
                    parts: out,
                    nack_response,
                    interest_version: stamp,
                }),
            );
        }
    }

    /// Answers `[from, to]` locally (pubend-authoritative or cache) and
    /// returns `(answered parts, unanswerable holes)`.
    fn answer_locally(
        &mut self,
        p: PubendId,
        from: Timestamp,
        to: Timestamp,
    ) -> (Vec<KnowledgePart>, Vec<(Timestamp, Timestamp)>) {
        if let (Some(pe), Some(log)) = (self.pubends.get(&p), self.event_log.as_mut()) {
            let parts = pe.answer(from, to, log).unwrap_or_default();
            (parts, Vec::new())
        } else {
            let route = self.routes.entry(p).or_default();
            route.answer_from_cache(from, to)
        }
    }

    /// Sends `parts` to `child` as chunked nack responses.
    fn respond_chunked(
        &mut self,
        child: NodeId,
        p: PubendId,
        parts: Vec<KnowledgePart>,
        ctx: &mut dyn NodeCtx,
    ) {
        let chunk = self.config.nack_response_chunk_ticks.max(1);
        let mut batch: Vec<KnowledgePart> = Vec::new();
        let mut batch_ticks = 0u64;
        for part in parts {
            let (f, t) = part.range();
            batch_ticks += t.saturating_sub(f) + 1;
            batch.push(part);
            if batch_ticks >= chunk {
                self.send_filtered(child, p, &std::mem::take(&mut batch), true, ctx);
                batch_ticks = 0;
            }
        }
        if !batch.is_empty() {
            self.send_filtered(child, p, &batch, true, ctx);
        }
    }

    /// Forwards unanswered holes upstream (tracked for retry unless
    /// open-ended). `authoritative` requests a pubend-only answer
    /// (reconnect-anywhere recovery must not trust interior caches).
    fn nack_upstream(
        &mut self,
        p: PubendId,
        holes: Vec<(Timestamp, Timestamp)>,
        authoritative: bool,
        ctx: &mut dyn NodeCtx,
    ) {
        let Some(parent) = self.parent else {
            return; // no upstream: the root answers what it has
        };
        if holes.is_empty() {
            return;
        }
        let now = ctx.now_us();
        let fan_in = holes.len();
        let route = self.routes.entry(p).or_default();
        let mut fresh: Vec<(Timestamp, Timestamp)> = Vec::new();
        for (f, t) in holes {
            if t == Timestamp::MAX {
                // Open-ended recovery nacks are one-shot: steady-state
                // hole detection self-heals if the response is lost.
                fresh.push((f, t));
            } else {
                fresh.extend(route.curiosity.add_wanted(f, t, now));
            }
        }
        if !fresh.is_empty() {
            // Consolidation (paper §4.2): `fan_in` requested ranges were
            // deduplicated against outstanding curiosity into one upward
            // nack spanning the surviving span.
            let span_from = fresh.iter().map(|&(f, _)| f).min().unwrap_or(Timestamp::ZERO);
            let span_to = fresh.iter().map(|&(_, t)| t).max().unwrap_or(Timestamp::ZERO);
            trace_event!(
                ctx,
                TraceEvent::NackConsolidated {
                    pubend: p,
                    from: span_from,
                    to: span_to,
                    fan_in,
                }
            );
            observe_metric!(ctx, names::CURIOSITY_NACK_FANIN, fan_in as f64);
            count_metric!(ctx, names::CURIOSITY_NACKS_SENT, 1.0);
            ctx.send(
                parent,
                NetMsg::Curiosity(CuriosityMsg {
                    pubend: p,
                    ranges: fresh,
                    authoritative,
                }),
            );
        }
    }

    /// Resolution path for constream holes: they are cache gaps by
    /// definition, so they go straight upstream — but only one
    /// response-chunk window at a time. Windowed nacking paces a large
    /// recovery (SHB restart) into round trips, which both bounds burst
    /// sizes and lets multiple pubends' recoveries share the uplink
    /// fairly instead of serializing whole backlogs.
    fn resolve_for_constream(
        &mut self,
        p: PubendId,
        holes: Vec<(Timestamp, Timestamp)>,
        ctx: &mut dyn NodeCtx,
    ) {
        let window = self.config.nack_response_chunk_ticks.max(1);
        let bounded: Vec<(Timestamp, Timestamp)> = holes
            .into_iter()
            .map(|(f, t)| (f, t.min(f + window)))
            .collect();
        self.nack_upstream(p, bounded, false, ctx);
    }

    /// Resolution path for catchup holes: answer from local authority or
    /// cache (feeding the stream immediately), push the rest upstream.
    /// `needs_authoritative` (reconnect-anywhere) bypasses caches — they
    /// may hold knowledge filtered without this subscription.
    fn resolve_for_catchup(
        &mut self,
        sub: SubscriberId,
        p: PubendId,
        holes: Vec<(Timestamp, Timestamp)>,
        needs_authoritative: bool,
        ctx: &mut dyn NodeCtx,
    ) {
        let mut upstream = Vec::new();
        let mut local_parts = Vec::new();
        for (f, t) in holes {
            if needs_authoritative && !self.pubends.contains_key(&p) {
                upstream.push((f, t));
                continue;
            }
            let (parts, missing) = self.answer_locally(p, f, t);
            local_parts.extend(parts);
            upstream.extend(missing);
        }
        if !local_parts.is_empty() {
            if let Some(shb) = self.shb.as_mut() {
                // Feed only this subscriber's stream; other streams will
                // pull the same ranges when they need them.
                let filtered: Vec<SubscriberId> = shb
                    .distribute_to_catchup(p, &local_parts)
                    .into_iter()
                    .filter(|&s| s == sub)
                    .collect();
                let _ = filtered;
            }
        }
        self.nack_upstream(p, upstream, needs_authoritative, ctx);
    }

    /// Runs one catchup stream forward and services its needs.
    fn drive_catchup(&mut self, sub: SubscriberId, p: PubendId, ctx: &mut dyn NodeCtx) {
        let needs = {
            let Some(shb) = self.shb.as_mut() else {
                return;
            };
            shb.catchup_progress(sub, p, &self.config, ctx)
        };
        if needs.switched {
            ctx.count("shb.switchovers", 1.0);
            return;
        }
        if !needs.holes.is_empty() {
            self.resolve_for_catchup(sub, p, needs.holes.clone(), needs.authoritative, ctx);
            // Local answers may have unblocked delivery immediately.
            let again = {
                let shb = self.shb.as_mut().expect("checked");
                shb.catchup_progress(sub, p, &self.config, ctx)
            };
            if again.switched {
                ctx.count("shb.switchovers", 1.0);
                return;
            }
            if again.want_read || needs.want_read {
                self.schedule_pfs_read(sub, p, ctx);
            }
            self.nack_upstream(p, again.holes, needs.authoritative, ctx);
            return;
        }
        if needs.want_read {
            self.schedule_pfs_read(sub, p, ctx);
        }
    }

    fn schedule_pfs_read(&mut self, sub: SubscriberId, p: PubendId, ctx: &mut dyn NodeCtx) {
        let Some(shb) = self.shb.as_mut() else {
            return;
        };
        let buffer = self.config.catchup_read_buffer;
        let Some((visited, q_ticks, full)) = shb.start_pfs_read(sub, p, buffer) else {
            return;
        };
        let slot = shb.slot(sub);
        ctx.work(self.config.costs.pfs_read_record_us * visited as u64);
        ctx.count("shb.pfs_reads", 1.0);
        if full {
            ctx.count("shb.pfs_full_reads", 1.0);
        }
        trace_event!(
            ctx,
            TraceEvent::PfsBatchRead {
                pubend: p,
                sub,
                records: visited,
                q_ticks,
                full,
            }
        );
        observe_metric!(ctx, names::PFS_BATCH_READ_RECORDS, visited as f64);
        observe_metric!(ctx, names::PFS_BATCH_READ_QTICKS, q_ticks as f64);
        let latency = self.config.pfs_read_base_us
            + self.config.pfs_read_per_record_us * visited as u64;
        ctx.set_timer(
            latency,
            timer::pack(Kind::CatchupRead, self.epoch, p.0 as u16, slot),
        );
    }

    // ------------------------------------------------------------------
    // Handlers
    // ------------------------------------------------------------------

    fn on_publish(&mut self, msg: PublishMsg, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        let p = msg.pubend;
        let Some(pe) = self.pubends.get_mut(&p) else {
            ctx.count("phb.publish_dropped", 1.0);
            return;
        };
        let event = pe.publish(msg, now);
        trace_event!(
            ctx,
            TraceEvent::PubendTimestamped {
                pubend: p,
                ts: event.ts,
            }
        );
        ctx.work(self.config.costs.event_log_append_us);
        ctx.count("phb.published", 1.0);
        if pe.needs_commit() {
            pe.commit_scheduled = true;
            let delay = self.config.phb_commit_interval_us;
            let key = timer::pack(Kind::PhbCommit, self.epoch, p.0 as u16, 0);
            ctx.set_timer(delay, key);
        }
    }

    /// Batch window closed: start the disk write (durable after the
    /// modeled latency).
    fn on_phb_commit(&mut self, p: PubendId, ctx: &mut dyn NodeCtx) {
        let Some(pe) = self.pubends.get_mut(&p) else {
            return;
        };
        if pe.begin_commit() {
            ctx.set_timer(
                self.config.phb_commit_latency_us,
                timer::pack(Kind::PhbCommitDone, self.epoch, p.0 as u16, 0),
            );
        }
    }

    /// The disk write became durable: log, emit knowledge, and open the
    /// next batch if publishes accumulated meanwhile.
    fn on_phb_commit_done(&mut self, p: PubendId, ctx: &mut dyn NodeCtx) {
        let parts = {
            let (Some(pe), Some(log)) = (self.pubends.get_mut(&p), self.event_log.as_mut())
            else {
                return;
            };
            match pe.finish_commit(log) {
                Ok(parts) => parts,
                Err(_) => {
                    ctx.count("phb.commit_err", 1.0);
                    return;
                }
            }
        };
        ctx.count("phb.commits", 1.0);
        for part in &parts {
            if let KnowledgePart::Data(e) = part {
                let bytes = e.encoded_len();
                trace_event!(
                    ctx,
                    TraceEvent::EventLogged {
                        pubend: p,
                        ts: e.ts,
                        bytes,
                    }
                );
                count_metric!(ctx, names::PHB_LOG_BYTES, bytes as f64);
                count_metric!(ctx, names::PHB_LOG_EVENTS, 1.0);
            }
        }
        // Locally originated knowledge confirms nothing about the parent
        // (stamp 0): a broker that both hosts pubends and routes others
        // must not complete parked connects off its own emissions.
        self.ingest(p, parts, false, 0, ctx);
    }

    fn on_phb_silence(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        let pubends: Vec<PubendId> = self.pubends.keys().copied().collect();
        for p in pubends {
            let parts = self
                .pubends
                .get_mut(&p)
                .map(|pe| pe.emit_silence(now))
                .unwrap_or_default();
            self.ingest(p, parts, false, 0, ctx);
        }
        ctx.set_timer(
            self.config.pubend_silence_interval_us,
            timer::pack(Kind::PhbSilence, self.epoch, 0, 0),
        );
    }

    fn on_curiosity(&mut self, from: NodeId, msg: CuriosityMsg, ctx: &mut dyn NodeCtx) {
        let p = msg.pubend;
        let mut all_holes = Vec::new();
        for (f, t) in msg.ranges.clone() {
            if msg.authoritative && !self.pubends.contains_key(&p) {
                // Reconnect-anywhere recovery: only the pubend may answer.
                let route = self.routes.entry(p).or_default();
                route.interest.register(from, f, t);
                all_holes.push((f, t));
                continue;
            }
            let (parts, holes) = self.answer_locally(p, f, t);
            if !parts.is_empty() {
                if self.pubends.contains_key(&p) {
                    // Authoritative answer from the event log.
                    ctx.count("phb.nack_responses", 1.0);
                } else {
                    // Interior cache absorbed a downstream nack — the
                    // scalability mechanism of paper §3.
                    ctx.count("broker.cache_answers", 1.0);
                }
                self.respond_chunked(from, p, parts, ctx);
            }
            if !holes.is_empty() {
                let route = self.routes.entry(p).or_default();
                for &(hf, ht) in &holes {
                    route.interest.register(from, hf, ht);
                }
                all_holes.extend(holes);
            }
        }
        self.nack_upstream(p, all_holes, msg.authoritative, ctx);
    }

    fn on_sub_interest(&mut self, from: NodeId, msg: SubInterestMsg, ctx: &mut dyn NodeCtx) {
        if !self.children.contains(&from) {
            return;
        }
        let mut index = SubscriptionIndex::new();
        for (sub, spec) in &msg.subs {
            if let Ok(filter) = Filter::parse(spec.expr()) {
                index.insert(*sub, filter);
            }
        }
        self.child_index.insert(from, index);
        self.child_specs.insert(from, msg.subs);
        let v_child = msg.version;
        let cur = self.child_versions.entry(from).or_insert(0);
        *cur = (*cur).max(v_child);
        if self.parent.is_some() {
            let v_up = self.bump_and_send_interest(ctx);
            self.child_pending.entry(from).or_default().push((v_child, v_up));
        } else {
            // Root: the interest is applied here and now.
            let c = self.child_confirmed.entry(from).or_insert(0);
            *c = (*c).max(v_child);
        }
    }

    /// Promotes per-child confirmations from `upstream_confirmed`.
    fn promote_child_confirmations(&mut self) {
        for (&child, pending) in self.child_pending.iter_mut() {
            let confirmed = self.child_confirmed.entry(child).or_insert(0);
            pending.retain(|&(v_child, v_up)| {
                if v_up <= self.upstream_confirmed {
                    *confirmed = (*confirmed).max(v_child);
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Sends the current interest set upward under a fresh version.
    /// Versions are virtual timestamps: monotone across crashes.
    fn bump_and_send_interest(&mut self, ctx: &mut dyn NodeCtx) -> u64 {
        self.my_interest_version =
            (self.my_interest_version + 1).max(ctx.now_us());
        self.send_interest_upstream(ctx);
        self.my_interest_version
    }

    fn send_interest_upstream(&mut self, ctx: &mut dyn NodeCtx) {
        let Some(parent) = self.parent else {
            return;
        };
        let mut subs: Vec<(SubscriberId, gryphon_types::SubscriptionSpec)> = Vec::new();
        for specs in self.child_specs.values() {
            subs.extend(specs.iter().cloned());
        }
        if let Some(shb) = &self.shb {
            subs.extend(shb.interest());
        }
        ctx.send(
            parent,
            NetMsg::SubInterest(SubInterestMsg {
                subs,
                version: self.my_interest_version,
            }),
        );
    }

    /// Completes parked first-time connects whose interest version is now
    /// confirmed upstream. The start floor per pubend is the cache
    /// high-water mark: every tick at or below it may have been filtered
    /// without the new subscription.
    fn complete_parked(&mut self, ctx: &mut dyn NodeCtx) {
        if self.parked.is_empty() {
            return;
        }
        let confirmed = self.upstream_confirmed;
        let mut keep = Vec::new();
        let mut ready = Vec::new();
        for pc in self.parked.drain(..) {
            if pc.version <= confirmed {
                ready.push(pc);
            } else {
                keep.push(pc);
            }
        }
        self.parked = keep;
        for pc in ready {
            let floors: HashMap<PubendId, Timestamp> = self
                .routes
                .iter()
                .map(|(&p, r)| (p, r.max_seen))
                .collect();
            self.finish_connect(
                pc.sub,
                pc.client,
                pc.ct,
                pc.spec,
                pc.broker_ct,
                pc.auto_ack,
                floors,
                Some(pc.anywhere),
                ctx,
            );
        }
    }

    /// Times out parked connects (e.g. no parent traffic): complete with
    /// conservative floors rather than never.
    fn expire_parked(&mut self, ctx: &mut dyn NodeCtx) {
        let now = ctx.now_us();
        let mut keep = Vec::new();
        let mut expired = Vec::new();
        for pc in self.parked.drain(..) {
            if now.saturating_sub(pc.parked_at_us) > 2_000_000 {
                expired.push(pc);
            } else {
                keep.push(pc);
            }
        }
        self.parked = keep;
        for pc in expired {
            ctx.count("shb.parked_timeout", 1.0);
            let floors: HashMap<PubendId, Timestamp> = self
                .routes
                .iter()
                .map(|(&p, r)| (p, r.max_seen))
                .collect();
            self.finish_connect(
                pc.sub,
                pc.client,
                pc.ct,
                pc.spec,
                pc.broker_ct,
                pc.auto_ack,
                floors,
                Some(pc.anywhere),
                ctx,
            );
        }
    }

    /// Runs the actual SHB connect (shared by the direct and parked
    /// paths) and services the resulting catchup plans.
    #[allow(clippy::too_many_arguments)]
    fn finish_connect(
        &mut self,
        sub: SubscriberId,
        client: NodeId,
        ct: Option<gryphon_types::CheckpointToken>,
        spec: Option<gryphon_types::SubscriptionSpec>,
        broker_ct: bool,
        auto_ack: bool,
        floors: HashMap<PubendId, Timestamp>,
        anywhere: Option<bool>,
        ctx: &mut dyn NodeCtx,
    ) {
        let plans = {
            let Some(shb) = self.shb.as_mut() else {
                return;
            };
            shb.connect(
                sub, client, ct, spec, broker_ct, auto_ack, &floors, anywhere, &self.config, ctx,
            )
        };
        let Ok(plans) = plans else {
            return;
        };
        let had_plans = !plans.is_empty();
        for (p, _) in plans {
            self.drive_catchup(sub, p, ctx);
        }
        if had_plans {
            ctx.count("shb.reconnect_catchups", 1.0);
        }
    }

    fn on_release_msg(&mut self, from: NodeId, msg: ReleaseMsg) {
        if self.children.contains(&from) {
            self.child_release
                .insert((from, msg.pubend), (msg.released, msg.latest_delivered));
        }
    }

    fn on_release_timer(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        // Every pubend this broker has seen.
        let mut pubends: Vec<PubendId> = self.routes.keys().copied().collect();
        for &p in self.pubends.keys() {
            if !pubends.contains(&p) {
                pubends.push(p);
            }
        }
        for p in pubends {
            // Aggregate over children + local SHB.
            let mut released = Timestamp::MAX;
            let mut latest = Timestamp::MAX;
            let mut constrained = false;
            for &child in &self.children {
                match self.child_release.get(&(child, p)) {
                    Some(&(r, l)) => {
                        released = released.min(r);
                        latest = latest.min(l);
                        constrained = true;
                    }
                    None => {
                        // Child has not reported yet: fully conservative.
                        released = Timestamp::ZERO;
                        latest = Timestamp::ZERO;
                        constrained = true;
                    }
                }
            }
            if let Some(shb) = &self.shb {
                released = released.min(shb.released_local(p));
                latest = latest.min(shb.latest_delivered(p));
                constrained = true;
            }
            if !constrained {
                // No subscribers anywhere below: nothing holds release
                // back, but with nobody consuming there is also no point
                // advancing it; skip.
                continue;
            }
            if self.pubends.contains_key(&p) {
                // Root: run the release decision.
                let advanced = {
                    let (Some(pe), Some(log)) =
                        (self.pubends.get_mut(&p), self.event_log.as_mut())
                    else {
                        continue;
                    };
                    pe.apply_release(released, latest, now, &self.config, log)
                        .unwrap_or(None)
                };
                if let Some(lost) = advanced {
                    ctx.count("phb.early_release_advances", 1.0);
                    trace_event!(ctx, TraceEvent::LConverted { pubend: p, upto: lost });
                    count_metric!(ctx, names::RELEASE_L_CONVERSIONS, 1.0);
                    if let Some(shb) = self.shb.as_mut() {
                        let _ = shb
                            .meta
                            .put_u64(&format!("lost/{}", p.0), lost.0);
                    }
                }
                // Report forward progress of the aggregated release point
                // (Tr) — once per distinct value, and never the MAX
                // sentinel of an unconstrained aggregate.
                if released < Timestamp::MAX {
                    let prev = self
                        .last_release_reported
                        .get(&p)
                        .copied()
                        .unwrap_or(Timestamp::ZERO);
                    if released > prev {
                        self.last_release_reported.insert(p, released);
                        trace_event!(ctx, TraceEvent::ReleaseAdvanced { pubend: p, released });
                        count_metric!(ctx, names::RELEASE_ADVANCES, 1.0);
                    }
                }
            } else if self.parent.is_some() {
                ctx.send(
                    self.parent.expect("checked"),
                    NetMsg::Release(ReleaseMsg {
                        pubend: p,
                        released,
                        latest_delivered: latest,
                    }),
                );
            }
            // SHB-side housekeeping + metrics.
            if let Some(shb) = self.shb.as_mut() {
                shb.chop_pfs(p);
                let ld = shb.latest_delivered(p);
                let rel = shb.released_local(p);
                ctx.record(&format!("shb{}.ld.{}", self.id, p.0), ld.0 as f64);
                ctx.record(&format!("shb{}.released.{}", self.id, p.0), rel.0 as f64);
            }
        }
        // Periodic interest refresh keeps parents correct across their
        // restarts (same version: content unchanged).
        self.send_interest_upstream(ctx);
        self.expire_parked(ctx);
        ctx.set_timer(
            self.config.release_interval_us,
            timer::pack(Kind::Release, self.epoch, 0, 0),
        );
    }

    fn on_client(&mut self, from: NodeId, msg: ClientMsg, ctx: &mut dyn NodeCtx) {
        if self.shb.is_none() {
            return;
        }
        match msg {
            ClientMsg::Connect {
                sub,
                ct,
                spec,
                broker_ct,
                auto_ack,
            } => {
                let is_new = self
                    .shb
                    .as_ref()
                    .map(|s| s.is_new_subscription(sub))
                    .unwrap_or(false);
                let anywhere = is_new && ct.is_some();
                if is_new && self.parent.is_some() {
                    // Register the filter now (it starts matching and the
                    // interest goes upstream), but hold the attachment
                    // until the interest is confirmed causally upstream —
                    // otherwise the subscription's window could cover
                    // ticks that were filtered without it.
                    let registered = {
                        let shb = self.shb.as_mut().expect("checked");
                        shb.register_spec(sub, from, spec.as_ref(), broker_ct, auto_ack, ctx)
                    };
                    if registered.is_err() {
                        return;
                    }
                    let version = self.bump_and_send_interest(ctx);
                    self.parked.push(ParkedConnect {
                        sub,
                        client: from,
                        ct,
                        spec,
                        broker_ct,
                        auto_ack,
                        anywhere,
                        version,
                        parked_at_us: ctx.now_us(),
                    });
                    ctx.count("shb.parked_connects", 1.0);
                    return;
                }
                self.finish_connect(
                    sub,
                    from,
                    ct,
                    spec,
                    broker_ct,
                    auto_ack,
                    HashMap::new(),
                    Some(anywhere),
                    ctx,
                );
                if is_new {
                    self.send_interest_upstream(ctx);
                }
            }
            ClientMsg::Ack { sub, ct } => {
                let start_worker = {
                    let shb = self.shb.as_mut().expect("checked");
                    shb.ack(sub, &ct)
                };
                if let Some(w) = start_worker {
                    self.start_ct_commit(w, ctx);
                }
                // The acknowledgment may have opened the flow-control
                // window of this subscriber's catchup streams.
                let catching_up: Vec<PubendId> = self
                    .shb
                    .as_ref()
                    .and_then(|s| s.conns.get(&sub))
                    .map(|c| c.catchup.keys().copied().collect())
                    .unwrap_or_default();
                for p in catching_up {
                    self.drive_catchup(sub, p, ctx);
                }
            }
            ClientMsg::Disconnect { sub } => {
                self.shb.as_mut().expect("checked").disconnect(sub);
                ctx.count("shb.disconnects", 1.0);
            }
            ClientMsg::Unsubscribe { sub } => {
                self.shb.as_mut().expect("checked").unsubscribe(sub);
                self.send_interest_upstream(ctx);
            }
        }
    }

    fn start_ct_commit(&mut self, w: usize, ctx: &mut dyn NodeCtx) {
        let Some(shb) = self.shb.as_mut() else {
            return;
        };
        if let Some(duration) = shb.ct_commit_start(w, &self.config) {
            ctx.set_timer(
                duration,
                timer::pack(Kind::CtCommit, self.epoch, 0, w as u32),
            );
        }
    }

    fn on_cache_trim(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        let window = self.config.cache_window_ticks;
        for (&p, route) in self.routes.iter_mut() {
            let mut limit = now - window;
            if let Some(shb) = &self.shb {
                if let Some(con) = shb.con.get(&p) {
                    limit = limit.min(con.processed_to);
                }
            }
            route.knowledge.advance_base(limit);
        }
        ctx.set_timer(1_000_000, timer::pack(Kind::CacheTrim, self.epoch, 0, 0));
    }

    fn on_retry_nacks(&mut self, ctx: &mut dyn NodeCtx) {
        let now = ctx.now_us();
        let retry = self.config.retry;
        if let Some(parent) = self.parent {
            let mut msgs = Vec::new();
            for (&p, route) in self.routes.iter_mut() {
                let due = route.curiosity.due_retries(now, retry);
                if !due.is_empty() {
                    msgs.push((p, due));
                }
            }
            for (p, ranges) in msgs {
                ctx.count("net.renacks", 1.0);
                ctx.send(
                    parent,
                    NetMsg::Curiosity(CuriosityMsg {
                        pubend: p,
                        ranges,
                        authoritative: false,
                    }),
                );
            }
        }
        ctx.set_timer(
            retry.timeout_us,
            timer::pack(Kind::RetryNacks, self.epoch, 0, 0),
        );
    }
}

impl Node for Broker {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.boot(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        ctx.work(self.config.costs.per_msg_us);
        match msg {
            NetMsg::Publish(m) => self.on_publish(m, ctx),
            NetMsg::Knowledge(m) => {
                let p = m.pubend;
                self.ingest(p, m.parts, m.nack_response, m.interest_version, ctx);
            }
            NetMsg::Curiosity(m) => self.on_curiosity(from, m, ctx),
            NetMsg::Release(m) => self.on_release_msg(from, m),
            NetMsg::SubInterest(m) => self.on_sub_interest(from, m, ctx),
            NetMsg::Client(m) => self.on_client(from, m, ctx),
            NetMsg::Server(_) => {} // brokers never receive server msgs
        }
    }

    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        let Some(d) = timer::unpack(key) else {
            return;
        };
        if d.epoch != self.epoch {
            return; // stale timer from before a crash
        }
        match d.kind {
            Kind::PhbCommit => self.on_phb_commit(PubendId(d.pubend as u32), ctx),
            Kind::PhbCommitDone => self.on_phb_commit_done(PubendId(d.pubend as u32), ctx),
            Kind::PhbSilence => self.on_phb_silence(ctx),
            Kind::Release => self.on_release_timer(ctx),
            Kind::MetaPersist => {
                if let Some(shb) = self.shb.as_mut() {
                    shb.meta_persist(ctx);
                }
                ctx.set_timer(
                    self.config.meta_persist_interval_us,
                    timer::pack(Kind::MetaPersist, self.epoch, 0, 0),
                );
            }
            Kind::PfsSync => {
                if let Some(shb) = self.shb.as_mut() {
                    shb.pfs_sync(ctx);
                }
                ctx.set_timer(
                    self.config.pfs_sync_interval_us,
                    timer::pack(Kind::PfsSync, self.epoch, 0, 0),
                );
            }
            Kind::RetryNacks => self.on_retry_nacks(ctx),
            Kind::ClientSilence => {
                if let Some(shb) = self.shb.as_mut() {
                    shb.client_silence(ctx);
                }
                ctx.set_timer(
                    self.config.client_silence_interval_us,
                    timer::pack(Kind::ClientSilence, self.epoch, 0, 0),
                );
            }
            Kind::CacheTrim => self.on_cache_trim(ctx),
            Kind::CatchupRead => {
                let p = PubendId(d.pubend as u32);
                let sub = self
                    .shb
                    .as_ref()
                    .and_then(|s| s.sub_at_slot(d.param));
                if let Some(sub) = sub {
                    let applied = self
                        .shb
                        .as_mut()
                        .expect("checked")
                        .finish_pfs_read(sub, p);
                    if applied {
                        self.drive_catchup(sub, p, ctx);
                    }
                }
            }
            Kind::CtCommit => {
                let w = d.param as usize;
                let more = self
                    .shb
                    .as_mut()
                    .map(|s| s.ct_commit_done(w, ctx))
                    .unwrap_or(false);
                if more {
                    self.start_ct_commit(w, ctx);
                }
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        self.epoch = self.epoch.wrapping_add(1);
        // Volatile state is rebuilt from persistent storage.
        self.routes.clear();
        self.child_index.clear();
        self.child_specs.clear();
        self.child_release.clear();
        self.child_versions.clear();
        self.child_pending.clear();
        self.child_confirmed.clear();
        self.parked.clear();
        self.last_release_reported.clear();
        self.upstream_confirmed = 0;
        self.pubends.clear();
        self.event_log = None;
        self.shb = None;
        self.boot(ctx);
        if let Some(shb) = self.shb.as_mut() {
            shb.post_restart();
        }
        ctx.count("broker.restarts", 1.0);
        // Recovering constreams: open-ended nack from latestDelivered.
        if self.shb.is_some() {
            let pubends: Vec<(PubendId, Timestamp)> = self
                .shb
                .as_ref()
                .expect("checked")
                .con
                .iter()
                .map(|(&p, c)| (p, c.latest_delivered))
                .collect();
            for (p, ld) in pubends {
                self.resolve_for_constream(p, vec![(ld.next(), Timestamp::MAX)], ctx);
            }
            self.send_interest_upstream(ctx);
        }
    }
}
