//! The unified Gryphon broker node, composed from three role components.
//!
//! A [`Broker`] plays any combination of PHB / intermediate / SHB roles,
//! exactly like a Gryphon broker: the 1-broker topology of the paper's
//! Figure 3 hosts pubends *and* subscribers on one node, while the 4-SHB
//! topology separates them across a tree.
//!
//! # Architecture
//!
//! The broker is a thin composition shell: this module holds only the
//! struct, its lifecycle (boot, periodic timers, restart) and the
//! [`Node`] dispatch that classifies each message/timer and hands it to
//! a role. The protocol logic lives in the role modules:
//!
//! * [`phb`] — publisher hosting: pubend timestamping, the only-once
//!   event log, group commit (§2–3);
//! * [`ib`] — routing: knowledge caching and subtree filtering,
//!   curiosity/nack consolidation, interest versioning, release
//!   aggregation (§3, §5.3);
//! * [`shb_role`] — subscriber hosting: connect parking, catchup
//!   driving, PFS reads, client handlers (§4).
//!
//! All state scoped to a single pubend — the hosted [`Pubend`], the
//! [`Route`], per-child release reports — lives in one
//! [`pipeline::PubendPipeline`] keyed once per pubend, so a sharded
//! runtime can process different pubends on different workers while
//! everything for one pubend stays ordered (see `DESIGN.md`).

mod ib;
mod phb;
mod pipeline;
mod pubend;
mod route;
mod shb;
mod shb_role;
#[cfg(test)]
mod shb_tests;
mod sub_table;

pub use pubend::Pubend;
pub use route::Route;
pub use shb::{CatchupNeeds, Con, Conn, Shb};
pub use sub_table::{ParkedStream, PubendMap, SubState, SubscriberTable};

use crate::config::BrokerConfig;
use crate::timer::{self, Kind};
use gryphon_matching::MatchScratch;
use gryphon_sim::{names, trace_event, Node, NodeCtx, TimerKey, TraceEvent};
use gryphon_storage::{CommitPipeline, EventLog, MediaFactory, VolumeConfig};
use gryphon_types::{NetMsg, NodeId, PubendId, Timestamp};
use ib::IbRole;
use phb::PhbRole;
use pipeline::PubendPipeline;
use shb_role::ShbRole;
use std::collections::HashMap;

/// A Gryphon broker; construct with [`Broker::new`] and assign roles with
/// [`Broker::hosting_pubends`] / [`Broker::hosting_subscribers`], then
/// wire the tree with [`Broker::set_parent`] / [`Broker::add_child`].
///
/// Internally a composition of three role components (PHB, IB, SHB) over
/// a map of per-pubend pipelines; see the [module docs](self) and the
/// [crate docs](crate) for a complete example.
pub struct Broker {
    id: u32,
    config: BrokerConfig,
    factory: Box<dyn MediaFactory>,
    /// Bumped on restart; timers from older epochs are stale.
    epoch: u8,
    parent: Option<NodeId>,
    /// Publisher-hosting role: declared pubends + the only-once log.
    phb: PhbRole,
    /// Intermediate role: children, per-child state, interest versions.
    ib: IbRole,
    /// Subscriber-hosting role: the SHB state machine + parked connects.
    shb: ShbRole,
    /// All per-pubend state, one pipeline per pubend.
    pipelines: HashMap<PubendId, PubendPipeline>,
    /// Reusable matching scratch for the IB filtering path (zero
    /// allocations per event once warmed up).
    match_scratch: MatchScratch,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("pipelines", &self.pipelines.len())
            .field("children", &self.ib.children.len())
            .field("shb", &self.shb.state.is_some())
            .finish()
    }
}

const TICK_US: u64 = 1_000; // 1 tick = 1 virtual millisecond

pub(crate) fn now_ticks(ctx: &dyn NodeCtx) -> Timestamp {
    Timestamp(ctx.now_us() / TICK_US)
}

impl Broker {
    /// Creates a broker with persistent storage rooted in `factory`.
    pub fn new(id: u32, factory: Box<dyn MediaFactory>, config: BrokerConfig) -> Self {
        Broker {
            id,
            config,
            factory,
            epoch: 0,
            parent: None,
            phb: PhbRole::default(),
            ib: IbRole::default(),
            shb: ShbRole::default(),
            pipelines: HashMap::new(),
            match_scratch: MatchScratch::new(),
        }
    }

    /// Declares this broker a PHB hosting `pubends`.
    pub fn hosting_pubends(mut self, pubends: impl IntoIterator<Item = PubendId>) -> Self {
        self.phb.declared.extend(pubends);
        self
    }

    /// Declares this broker an SHB (durable subscribers may attach).
    pub fn hosting_subscribers(mut self) -> Self {
        self.shb.hosts_subscribers = true;
        self
    }

    /// Sets the upstream broker (towards the pubend hosts).
    pub fn set_parent(&mut self, parent: NodeId) {
        self.parent = Some(parent);
    }

    /// Adds a downstream broker.
    pub fn add_child(&mut self, child: NodeId) {
        if !self.ib.children.contains(&child) {
            self.ib.children.push(child);
        }
    }

    /// The SHB role state (None for pure PHB/intermediate brokers).
    pub fn shb(&self) -> Option<&Shb> {
        self.shb.state.as_ref()
    }

    /// Mutable SHB access (harness inspection).
    pub fn shb_mut(&mut self) -> Option<&mut Shb> {
        self.shb.state.as_mut()
    }

    /// Hosted pubend state (harness inspection).
    pub fn pubend(&self, p: PubendId) -> Option<&Pubend> {
        self.pipelines.get(&p).and_then(|pl| pl.pubend.as_ref())
    }

    /// Total events published across hosted pubends.
    pub fn published(&self) -> u64 {
        self.pipelines
            .values()
            .filter_map(|pl| pl.pubend.as_ref())
            .map(|p| p.published)
            .sum()
    }

    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    fn boot(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        if !self.phb.declared.is_empty() {
            let log = EventLog::open(
                self.factory.clone_box(),
                &format!("b{}-events", self.id),
                VolumeConfig::default(),
            )
            .expect("PHB event log must open");
            // Deterministic pipeline (no wall-clock timing): the
            // simulator's golden tests hash metric output, and timing
            // fields are zero without `with_timing`.
            self.phb.log = Some(CommitPipeline::new(log));
            let declared = self.phb.declared.clone();
            for p in declared {
                let mut pe = Pubend::new(p, now);
                // Restore the lost prefix (early release decisions are
                // irreversible and must survive crashes).
                if let Some(shb) = &self.shb.state {
                    if let Some(l) = shb.meta.get_u64(&format!("lost/{}", p.0)) {
                        pe.restore_lost_to(Timestamp(l));
                    }
                }
                self.pipeline_mut(p).pubend = Some(pe);
            }
        }
        if self.shb.hosts_subscribers {
            self.shb.state = Some(Shb::open(
                self.factory.as_ref(),
                &format!("b{}", self.id),
                &self.config,
            ));
        }
        // PHB brokers without an SHB still need the lost prefix durable;
        // they reuse an SHB-style meta table lazily. To keep things
        // simple every PHB gets an SHB meta only if it hosts subscribers;
        // pure PHBs persist lost_to inside the event-log volume via a
        // dedicated chop marker — the chop itself is the durable record,
        // recovered as chopped_below. Restore from it:
        if let Some(log) = &self.phb.log {
            for pl in self.pipelines.values_mut() {
                let Some(pe) = pl.pubend.as_mut() else {
                    continue;
                };
                let chopped = log.with(|l| l.chopped_below_ts(pe.id));
                if chopped > Timestamp::ZERO {
                    pe.restore_lost_to(chopped.prev());
                }
            }
        }
        self.arm_periodic(ctx);
    }

    fn arm_periodic(&mut self, ctx: &mut dyn NodeCtx) {
        let e = self.epoch;
        if !self.phb.declared.is_empty() {
            ctx.set_timer(
                self.config.pubend_silence_interval_us,
                timer::pack(Kind::PhbSilence, e, 0, 0),
            );
        }
        ctx.set_timer(
            self.config.release_interval_us,
            timer::pack(Kind::Release, e, 0, 0),
        );
        ctx.set_timer(1_000_000, timer::pack(Kind::CacheTrim, e, 0, 0));
        ctx.set_timer(
            self.config.retry.timeout_us,
            timer::pack(Kind::RetryNacks, e, 0, 0),
        );
        if self.shb.hosts_subscribers {
            ctx.set_timer(
                self.config.pfs_sync_interval_us,
                timer::pack(Kind::PfsSync, e, 0, 0),
            );
            ctx.set_timer(
                self.config.meta_persist_interval_us,
                timer::pack(Kind::MetaPersist, e, 0, 0),
            );
            ctx.set_timer(
                self.config.client_silence_interval_us,
                timer::pack(Kind::ClientSilence, e, 0, 0),
            );
        }
    }
}

impl Node for Broker {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        self.boot(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        ctx.work(self.config.costs.per_msg_us);
        match msg {
            NetMsg::Publish(m) => self.on_publish(m, ctx),
            NetMsg::Knowledge(m) => {
                let p = m.pubend;
                self.ingest(p, m.parts, m.nack_response, m.interest_version, ctx);
            }
            NetMsg::Curiosity(m) => self.on_curiosity(from, m, ctx),
            NetMsg::Release(m) => self.on_release_msg(from, m),
            NetMsg::SubInterest(m) => self.on_sub_interest(from, m, ctx),
            NetMsg::Client(m) => self.on_client(from, m, ctx),
            m @ NetMsg::Server(_) => {
                // Brokers never expect server-bound messages; a silent
                // drop here once hid misrouted traffic entirely.
                ctx.count(names::BROKER_UNEXPECTED_MSG, 1.0);
                trace_event!(ctx, TraceEvent::UnexpectedMsg { tag: m.tag() });
            }
        }
    }

    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        let Some(d) = timer::unpack(key) else {
            return;
        };
        if d.epoch != self.epoch {
            return; // stale timer from before a crash
        }
        match d.kind {
            Kind::PhbCommit => self.on_phb_commit(PubendId(d.pubend as u32), ctx),
            Kind::PhbCommitDone => self.on_phb_commit_done(PubendId(d.pubend as u32), ctx),
            Kind::PhbSilence => self.on_phb_silence(ctx),
            Kind::Release => self.on_release_timer(ctx),
            Kind::MetaPersist => {
                if let Some(shb) = self.shb.state.as_mut() {
                    // The slab-byte census and population sweep are
                    // O(live subscriptions), so they ride this periodic
                    // timer, never the delivery path.
                    shb.update_memory_gauges(ctx);
                    shb.sweep_population(ctx);
                    shb.meta_persist(ctx);
                }
                ctx.set_timer(
                    self.config.meta_persist_interval_us,
                    timer::pack(Kind::MetaPersist, self.epoch, 0, 0),
                );
            }
            Kind::PfsSync => {
                if let Some(shb) = self.shb.state.as_mut() {
                    shb.pfs_sync(ctx);
                }
                ctx.set_timer(
                    self.config.pfs_sync_interval_us,
                    timer::pack(Kind::PfsSync, self.epoch, 0, 0),
                );
            }
            Kind::RetryNacks => self.on_retry_nacks(ctx),
            Kind::ClientSilence => {
                if let Some(shb) = self.shb.state.as_mut() {
                    shb.client_silence(ctx);
                }
                ctx.set_timer(
                    self.config.client_silence_interval_us,
                    timer::pack(Kind::ClientSilence, self.epoch, 0, 0),
                );
            }
            Kind::CacheTrim => self.on_cache_trim(ctx),
            Kind::CatchupRead => self.on_catchup_read(PubendId(d.pubend as u32), d.param, ctx),
            Kind::CtCommit => self.on_ct_commit(d.param as usize, ctx),
            Kind::KnowledgeFlush => self.on_knowledge_flush(NodeId(d.param), ctx),
        }
    }

    fn on_restart(&mut self, ctx: &mut dyn NodeCtx) {
        self.epoch = self.epoch.wrapping_add(1);
        // Volatile state is rebuilt from persistent storage. The
        // interest version deliberately survives (virtual-timestamp
        // monotonicity across crashes).
        self.pipelines.clear();
        self.ib.child.clear();
        self.ib.upstream_confirmed = 0;
        self.shb.parked.clear();
        self.phb.log = None;
        self.shb.state = None;
        self.boot(ctx);
        if let Some(shb) = self.shb.state.as_mut() {
            shb.post_restart();
        }
        ctx.count("broker.restarts", 1.0);
        // Recovering constreams: open-ended nack from latestDelivered,
        // in ascending pubend order (intrinsic — `con` is a BTreeMap).
        if self.shb.state.is_some() {
            let pubends: Vec<(PubendId, Timestamp)> = self
                .shb
                .state
                .as_ref()
                .expect("checked")
                .con
                .iter()
                .map(|(&p, c)| (p, c.latest_delivered))
                .collect();
            for (p, ld) in pubends {
                self.resolve_for_constream(p, vec![(ld.next(), Timestamp::MAX)], ctx);
            }
            self.send_interest_upstream(ctx);
        }
    }
}
