//! Subscriber-hosting broker (SHB) role: durable subscriber
//! connections, the consolidated stream, per-subscriber catchup and the
//! filtered event store (§4).
//!
//! The detailed SHB state machine lives in [`Shb`] (`shb.rs`); this
//! module owns its composition into the broker — connect parking until
//! interest confirmation, catchup driving, PFS read scheduling, and the
//! client-facing message handlers.

use super::{Broker, Shb};
use crate::timer::{self, Kind};
use gryphon_sim::{names, observe_metric, trace_event, NodeCtx, TraceEvent};
use gryphon_types::{
    CheckpointToken, ClientMsg, NodeId, PubendId, SubSlot, SubscriberId, SubscriptionSpec,
    Timestamp,
};
use std::collections::HashMap;

/// State owned by the SHB role.
#[derive(Default)]
pub(crate) struct ShbRole {
    /// Whether this broker accepts durable subscribers (set at
    /// construction; the [`Shb`] itself is opened at boot).
    pub(crate) hosts_subscribers: bool,
    /// The SHB state machine (`None` for pure PHB/intermediate brokers).
    pub(crate) state: Option<Shb>,
    /// First-time connects held until their interest is confirmed
    /// upstream.
    pub(crate) parked: Vec<ParkedConnect>,
}

/// A connect waiting for upstream interest confirmation.
pub(crate) struct ParkedConnect {
    pub(crate) sub: SubscriberId,
    pub(crate) client: NodeId,
    pub(crate) ct: Option<CheckpointToken>,
    pub(crate) spec: Option<SubscriptionSpec>,
    pub(crate) broker_ct: bool,
    pub(crate) auto_ack: bool,
    /// Reconnect-anywhere (checkpoint from another SHB), captured before
    /// registration made the subscription look local.
    pub(crate) anywhere: bool,
    pub(crate) version: u64,
    pub(crate) parked_at_us: u64,
}

impl Broker {
    /// Resolution path for catchup holes: answer from local authority or
    /// cache (feeding the stream immediately), push the rest upstream.
    /// `needs_authoritative` (reconnect-anywhere) bypasses caches — they
    /// may hold knowledge filtered without this subscription.
    pub(crate) fn resolve_for_catchup(
        &mut self,
        slot: SubSlot,
        p: PubendId,
        holes: Vec<(Timestamp, Timestamp)>,
        needs_authoritative: bool,
        ctx: &mut dyn NodeCtx,
    ) {
        let mut upstream = Vec::new();
        let mut local_parts = Vec::new();
        for (f, t) in holes {
            if needs_authoritative && !self.hosts(p) {
                upstream.push((f, t));
                continue;
            }
            let (parts, missing) = self.answer_locally(p, f, t);
            local_parts.extend(parts);
            upstream.extend(missing);
        }
        if !local_parts.is_empty() {
            if let Some(shb) = self.shb.state.as_mut() {
                // Feed only this subscriber's stream; other streams will
                // pull the same ranges when they need them.
                let filtered: Vec<SubSlot> = shb
                    .distribute_to_catchup(p, &local_parts)
                    .into_iter()
                    .filter(|&s| s == slot)
                    .collect();
                let _ = filtered;
            }
        }
        self.nack_upstream(p, upstream, needs_authoritative, ctx);
    }

    /// Runs one catchup stream forward and services its needs.
    pub(crate) fn drive_catchup(&mut self, slot: SubSlot, p: PubendId, ctx: &mut dyn NodeCtx) {
        let needs = {
            let Some(shb) = self.shb.state.as_mut() else {
                return;
            };
            let needs = shb.catchup_progress(slot, p, &self.config, ctx);
            shb.update_telemetry_gauges(ctx);
            needs
        };
        if needs.switched {
            ctx.count("shb.switchovers", 1.0);
            return;
        }
        if !needs.holes.is_empty() {
            self.resolve_for_catchup(slot, p, needs.holes.clone(), needs.authoritative, ctx);
            // Local answers may have unblocked delivery immediately.
            let again = {
                let shb = self.shb.state.as_mut().expect("checked");
                let again = shb.catchup_progress(slot, p, &self.config, ctx);
                shb.update_telemetry_gauges(ctx);
                again
            };
            if again.switched {
                ctx.count("shb.switchovers", 1.0);
                return;
            }
            if again.want_read || needs.want_read {
                self.schedule_pfs_read(slot, p, ctx);
            }
            self.nack_upstream(p, again.holes, needs.authoritative, ctx);
            return;
        }
        if needs.want_read {
            self.schedule_pfs_read(slot, p, ctx);
        }
    }

    pub(crate) fn schedule_pfs_read(&mut self, slot: SubSlot, p: PubendId, ctx: &mut dyn NodeCtx) {
        let Some(shb) = self.shb.state.as_mut() else {
            return;
        };
        let buffer = self.config.catchup_read_buffer;
        let Some((visited, q_ticks, full)) = shb.start_pfs_read(slot, p, buffer) else {
            return;
        };
        let sub = shb
            .sub_at_slot(slot.index())
            .map(|(_, s)| s)
            .unwrap_or(SubscriberId(0));
        ctx.work(self.config.costs.pfs_read_record_us * visited as u64);
        ctx.count("shb.pfs_reads", 1.0);
        if full {
            ctx.count("shb.pfs_full_reads", 1.0);
        }
        trace_event!(
            ctx,
            TraceEvent::PfsBatchRead {
                pubend: p,
                sub,
                records: visited,
                q_ticks,
                full,
            }
        );
        observe_metric!(ctx, names::PFS_BATCH_READ_RECORDS, visited as f64);
        observe_metric!(ctx, names::PFS_BATCH_READ_QTICKS, q_ticks as f64);
        let latency =
            self.config.pfs_read_base_us + self.config.pfs_read_per_record_us * visited as u64;
        // The timer parameter carries only the bare slab index (32 bits —
        // no room for the generation). If the slot is recycled before the
        // timer fires, the new tenant's own pending read (if any) is
        // applied slightly early — a harmless, deterministic outcome —
        // and otherwise `finish_pfs_read` finds no pending read and
        // no-ops.
        ctx.set_timer(
            latency,
            timer::pack(Kind::CatchupRead, self.epoch, p.0 as u16, slot.index()),
        );
    }

    /// Completes parked first-time connects whose interest version is now
    /// confirmed upstream. The start floor per pubend is the cache
    /// high-water mark: every tick at or below it may have been filtered
    /// without the new subscription.
    pub(crate) fn complete_parked(&mut self, ctx: &mut dyn NodeCtx) {
        if self.shb.parked.is_empty() {
            return;
        }
        let confirmed = self.ib.upstream_confirmed;
        let mut keep = Vec::new();
        let mut ready = Vec::new();
        for pc in self.shb.parked.drain(..) {
            if pc.version <= confirmed {
                ready.push(pc);
            } else {
                keep.push(pc);
            }
        }
        self.shb.parked = keep;
        for pc in ready {
            let floors = self.release_floors();
            self.finish_connect(
                pc.sub,
                pc.client,
                pc.ct,
                pc.spec,
                pc.broker_ct,
                pc.auto_ack,
                floors,
                Some(pc.anywhere),
                ctx,
            );
        }
    }

    /// Times out parked connects (e.g. no parent traffic): complete with
    /// conservative floors rather than never.
    pub(crate) fn expire_parked(&mut self, ctx: &mut dyn NodeCtx) {
        let now = ctx.now_us();
        let mut keep = Vec::new();
        let mut expired = Vec::new();
        for pc in self.shb.parked.drain(..) {
            if now.saturating_sub(pc.parked_at_us) > 2_000_000 {
                expired.push(pc);
            } else {
                keep.push(pc);
            }
        }
        self.shb.parked = keep;
        for pc in expired {
            ctx.count("shb.parked_timeout", 1.0);
            let floors = self.release_floors();
            self.finish_connect(
                pc.sub,
                pc.client,
                pc.ct,
                pc.spec,
                pc.broker_ct,
                pc.auto_ack,
                floors,
                Some(pc.anywhere),
                ctx,
            );
        }
    }

    /// Per-pubend connect floors: the cache high-water mark of every
    /// pipeline (absent pubends are implicitly `Timestamp::ZERO`).
    fn release_floors(&self) -> HashMap<PubendId, Timestamp> {
        self.pipelines
            .iter()
            .map(|(&p, pl)| (p, pl.route.max_seen))
            .collect()
    }

    /// Runs the actual SHB connect (shared by the direct and parked
    /// paths) and services the resulting catchup plans.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish_connect(
        &mut self,
        sub: SubscriberId,
        client: NodeId,
        ct: Option<CheckpointToken>,
        spec: Option<SubscriptionSpec>,
        broker_ct: bool,
        auto_ack: bool,
        floors: HashMap<PubendId, Timestamp>,
        anywhere: Option<bool>,
        ctx: &mut dyn NodeCtx,
    ) {
        let plans = {
            let Some(shb) = self.shb.state.as_mut() else {
                return;
            };
            shb.connect(
                sub,
                client,
                ct,
                spec,
                broker_ct,
                auto_ack,
                &floors,
                anywhere,
                &self.config,
                ctx,
            )
        };
        let Ok(plans) = plans else {
            return;
        };
        // Edge boundary: resolve the id → slot mapping once; everything
        // below carries the slot.
        let Some(slot) = self.shb.state.as_ref().and_then(|s| s.slot_of_sub(sub)) else {
            return;
        };
        let had_plans = !plans.is_empty();
        for (p, _) in plans {
            self.drive_catchup(slot, p, ctx);
        }
        if had_plans {
            ctx.count("shb.reconnect_catchups", 1.0);
        }
    }

    pub(crate) fn on_client(&mut self, from: NodeId, msg: ClientMsg, ctx: &mut dyn NodeCtx) {
        if self.shb.state.is_none() {
            return;
        }
        match msg {
            ClientMsg::Connect {
                sub,
                ct,
                spec,
                broker_ct,
                auto_ack,
            } => {
                let is_new = self
                    .shb
                    .state
                    .as_ref()
                    .map(|s| s.is_new_subscription(sub))
                    .unwrap_or(false);
                let anywhere = is_new && ct.is_some();
                if is_new && self.parent.is_some() {
                    // Register the filter now (it starts matching and the
                    // interest goes upstream), but hold the attachment
                    // until the interest is confirmed causally upstream —
                    // otherwise the subscription's window could cover
                    // ticks that were filtered without it.
                    let registered = {
                        let shb = self.shb.state.as_mut().expect("checked");
                        shb.register_spec(sub, from, spec.as_ref(), broker_ct, auto_ack, ctx)
                    };
                    if registered.is_err() {
                        return;
                    }
                    let version = self.bump_and_send_interest(ctx);
                    self.shb.parked.push(ParkedConnect {
                        sub,
                        client: from,
                        ct,
                        spec,
                        broker_ct,
                        auto_ack,
                        anywhere,
                        version,
                        parked_at_us: ctx.now_us(),
                    });
                    ctx.count("shb.parked_connects", 1.0);
                    return;
                }
                self.finish_connect(
                    sub,
                    from,
                    ct,
                    spec,
                    broker_ct,
                    auto_ack,
                    HashMap::new(),
                    Some(anywhere),
                    ctx,
                );
                if is_new {
                    self.send_interest_upstream(ctx);
                }
            }
            ClientMsg::Ack { sub, ct } => {
                let start_worker = {
                    let shb = self.shb.state.as_mut().expect("checked");
                    shb.ack(sub, &ct)
                };
                if let Some(w) = start_worker {
                    self.start_ct_commit(w, ctx);
                }
                // The acknowledgment may have opened the flow-control
                // window of this subscriber's catchup streams.
                let slot = self.shb.state.as_ref().and_then(|s| s.slot_of_sub(sub));
                if let Some(slot) = slot {
                    let catching_up = self
                        .shb
                        .state
                        .as_ref()
                        .map(|s| s.catchup_pubends(slot))
                        .unwrap_or_default();
                    for p in catching_up {
                        self.drive_catchup(slot, p, ctx);
                    }
                }
            }
            ClientMsg::Disconnect { sub } => {
                let now = ctx.now_us();
                self.shb
                    .state
                    .as_mut()
                    .expect("checked")
                    .disconnect(sub, now);
                ctx.count("shb.disconnects", 1.0);
            }
            ClientMsg::Unsubscribe { sub } => {
                self.shb.state.as_mut().expect("checked").unsubscribe(sub);
                self.send_interest_upstream(ctx);
            }
        }
    }

    pub(crate) fn start_ct_commit(&mut self, w: usize, ctx: &mut dyn NodeCtx) {
        let Some(shb) = self.shb.state.as_mut() else {
            return;
        };
        if let Some(duration) = shb.ct_commit_start(w, &self.config) {
            ctx.set_timer(
                duration,
                timer::pack(Kind::CtCommit, self.epoch, 0, w as u32),
            );
        }
    }

    /// A PFS batch read's modeled latency elapsed: apply it and keep the
    /// catchup stream moving.
    pub(crate) fn on_catchup_read(&mut self, p: PubendId, index: u32, ctx: &mut dyn NodeCtx) {
        let slot = self
            .shb
            .state
            .as_ref()
            .and_then(|s| s.sub_at_slot(index))
            .map(|(slot, _)| slot);
        if let Some(slot) = slot {
            let applied = self
                .shb
                .state
                .as_mut()
                .expect("checked")
                .finish_pfs_read(slot, p);
            if applied {
                self.drive_catchup(slot, p, ctx);
            }
        }
    }

    /// A checkpoint-commit worker finished; start the next batch if acks
    /// queued behind it.
    pub(crate) fn on_ct_commit(&mut self, w: usize, ctx: &mut dyn NodeCtx) {
        let more = self
            .shb
            .state
            .as_mut()
            .map(|s| s.ct_commit_done(w, ctx))
            .unwrap_or(false);
        if more {
            self.start_ct_commit(w, ctx);
        }
    }
}
