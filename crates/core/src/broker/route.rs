//! Per-pubend routing state at a broker: knowledge cache, consolidated
//! curiosity, and downstream interest for nack-response routing.

use gryphon_streams::{CuriosityStream, InterestMap, KnowledgeStream};
use gryphon_types::{KnowledgePart, NodeId, Timestamp};

/// Routing state for one pubend flowing through (or originating at) a
/// broker.
#[derive(Debug, Default)]
pub struct Route {
    /// Knowledge cache: answers downstream nacks without bothering the
    /// pubend (the paper's "caching events at intermediate brokers and
    /// SHBs"). Trimmed to a retention window; absence is never incorrect,
    /// only slower.
    pub knowledge: KnowledgeStream,
    /// Consolidated upstream curiosity: each hole is nacked to the parent
    /// once, no matter how many downstreams (or local catchup streams)
    /// want it.
    pub curiosity: CuriosityStream,
    /// Which child asked for which ranges (nack-response routing).
    pub interest: InterestMap<NodeId>,
    /// Highest tick ever seen for this pubend (steady-state hole
    /// detection bounds).
    pub max_seen: Timestamp,
}

impl Route {
    /// Applies an arriving knowledge part to the cache, clears matching
    /// curiosity, and tracks the high-water mark.
    pub fn absorb(&mut self, part: &KnowledgePart) {
        let (from, to) = part.range();
        self.knowledge.apply(part);
        self.curiosity.satisfy(from, to);
        self.max_seen = self.max_seen.max(to);
    }

    /// Splits `[from, to]` into locally answerable parts and holes.
    ///
    /// Ticks at or below the cache's trimmed base are *always* holes —
    /// the cache no longer remembers them and must not claim silence.
    pub fn answer_from_cache(
        &self,
        from: Timestamp,
        to: Timestamp,
    ) -> (Vec<KnowledgePart>, Vec<(Timestamp, Timestamp)>) {
        let mut parts = Vec::new();
        let mut holes = Vec::new();
        let from = from.max(Timestamp(1));
        if from > to {
            return (parts, holes);
        }
        let lost = self.knowledge.lost_to();
        let base = self.knowledge.base();
        // Region A — the lost prefix is retained across trims: answer L.
        if lost >= from {
            parts.push(KnowledgePart::Lost {
                from,
                to: lost.min(to),
            });
        }
        // Region B — above the lost prefix but inside the trimmed base:
        // the cache no longer remembers these, so they are holes.
        let b_lo = from.max(lost.next());
        let b_hi = base.min(to);
        if b_lo <= b_hi {
            holes.push((b_lo, b_hi));
        }
        // Region C — live cache contents.
        let c_lo = from.max(base.next()).max(lost.next());
        if c_lo <= to {
            parts.extend(self.knowledge.export_range(c_lo, to));
            holes.extend(self.knowledge.q_ranges(c_lo, to));
        }
        (parts, holes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_types::{Event, PubendId, TickKind};

    fn ev(ts: u64) -> KnowledgePart {
        KnowledgePart::Data(Event::builder(PubendId(0)).build_ref(Timestamp(ts)))
    }

    fn sil(a: u64, b: u64) -> KnowledgePart {
        KnowledgePart::Silence {
            from: Timestamp(a),
            to: Timestamp(b),
        }
    }

    #[test]
    fn absorb_tracks_max_and_satisfies_curiosity() {
        let mut r = Route::default();
        r.curiosity.add_wanted(Timestamp(1), Timestamp(10), 0);
        r.absorb(&sil(1, 4));
        r.absorb(&ev(5));
        assert_eq!(r.max_seen, Timestamp(5));
        assert_eq!(
            r.curiosity.outstanding(),
            vec![(Timestamp(6), Timestamp(10))]
        );
    }

    #[test]
    fn answer_reports_known_and_holes() {
        let mut r = Route::default();
        r.absorb(&sil(1, 4));
        r.absorb(&ev(7));
        let (parts, holes) = r.answer_from_cache(Timestamp(1), Timestamp(9));
        assert_eq!(parts.len(), 2); // silence span + event
        assert_eq!(
            holes,
            vec![(Timestamp(5), Timestamp(6)), (Timestamp(8), Timestamp(9))]
        );
    }

    #[test]
    fn trimmed_prefix_is_a_hole_not_silence() {
        let mut r = Route::default();
        r.absorb(&sil(1, 20));
        r.knowledge.advance_base(Timestamp(10));
        let (parts, holes) = r.answer_from_cache(Timestamp(5), Timestamp(15));
        // Ticks 5..=10 were trimmed: they must come back as holes.
        assert_eq!(holes, vec![(Timestamp(5), Timestamp(10))]);
        // Ticks 11..=15 still known as silence.
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].range(), (Timestamp(11), Timestamp(15)));
    }

    #[test]
    fn lost_prefix_survives_trim_in_answers() {
        let mut r = Route::default();
        r.absorb(&KnowledgePart::Lost {
            from: Timestamp(1),
            to: Timestamp(6),
        });
        r.absorb(&sil(7, 12));
        r.knowledge.advance_base(Timestamp(9));
        let (parts, holes) = r.answer_from_cache(Timestamp(2), Timestamp(12));
        // L is retained below base; only the trimmed S range (7..=9) holes.
        assert!(parts
            .iter()
            .any(|p| matches!(p, KnowledgePart::Lost { .. })));
        assert_eq!(holes, vec![(Timestamp(7), Timestamp(9))]);
        let _ = TickKind::L;
    }
}
