//! Publisher-hosting broker (PHB) role: pubend timestamping, the
//! only-once event log, and group-committed knowledge emission (§2–3).
//!
//! The role owns the broker's declared pubends and the shared event log;
//! the per-pubend `Pubend` state machines themselves live in each
//! [`PubendPipeline`](super::pipeline::PubendPipeline) so a sharded
//! runtime can split them across workers.

use super::{now_ticks, Broker};
use crate::timer::{self, Kind};
use gryphon_sim::{count_metric, names, observe_metric, trace_event, NodeCtx, TraceEvent};
use gryphon_storage::{CommitPipeline, EventLog};
use gryphon_types::{KnowledgePart, PubendId, PublishMsg};

/// State owned by the PHB role.
#[derive(Default)]
pub(crate) struct PhbRole {
    /// Pubends this broker hosts (instantiated lazily at start/restart).
    pub(crate) declared: Vec<PubendId>,
    /// The only-once event log shared by all hosted pubends, behind the
    /// group-commit pipeline: every durability point goes through
    /// [`CommitPipeline::commit_with`], so concurrent committers (the
    /// threaded runtime processes different pubends on different
    /// workers) share one device flush per round-trip. In the
    /// single-threaded simulator the pipeline degenerates to exactly one
    /// flush per batch — deterministic, timing fields zero.
    pub(crate) log: Option<CommitPipeline<EventLog>>,
}

impl Broker {
    pub(crate) fn on_publish(&mut self, msg: PublishMsg, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        let p = msg.pubend;
        let Some(pe) = self.pipelines.get_mut(&p).and_then(|pl| pl.pubend.as_mut()) else {
            ctx.count("phb.publish_dropped", 1.0);
            return;
        };
        let event = pe.publish(msg, now);
        trace_event!(
            ctx,
            TraceEvent::PubendTimestamped {
                pubend: p,
                ts: event.ts,
            }
        );
        ctx.work(self.config.costs.event_log_append_us);
        ctx.count("phb.published", 1.0);
        if pe.needs_commit() {
            pe.commit_scheduled = true;
            let delay = self.config.phb_commit_interval_us;
            let key = timer::pack(Kind::PhbCommit, self.epoch, p.0 as u16, 0);
            ctx.set_timer(delay, key);
        }
    }

    /// Batch window closed: start the disk write (durable after the
    /// modeled latency).
    pub(crate) fn on_phb_commit(&mut self, p: PubendId, ctx: &mut dyn NodeCtx) {
        let Some(pe) = self.hosted_mut(p) else {
            return;
        };
        if pe.begin_commit() {
            ctx.set_timer(
                self.config.phb_commit_latency_us,
                timer::pack(Kind::PhbCommitDone, self.epoch, p.0 as u16, 0),
            );
        }
    }

    /// The disk write became durable: log, emit knowledge, and open the
    /// next batch if publishes accumulated meanwhile.
    pub(crate) fn on_phb_commit_done(&mut self, p: PubendId, ctx: &mut dyn NodeCtx) {
        let (parts, receipt) = {
            let pe = self.pipelines.get_mut(&p).and_then(|pl| pl.pubend.as_mut());
            let (Some(pe), Some(pipe)) = (pe, self.phb.log.as_ref()) else {
                return;
            };
            match pipe.commit_with(|log| pe.finish_commit_appends(log)) {
                Ok(pr) => pr,
                Err(_) => {
                    ctx.count("phb.commit_err", 1.0);
                    return;
                }
            }
        };
        ctx.count("phb.commits", 1.0);
        let records = parts
            .iter()
            .filter(|part| matches!(part, KnowledgePart::Data(_)))
            .count();
        observe_metric!(ctx, names::STORAGE_COMMIT_BATCH_RECORDS, records as f64);
        observe_metric!(
            ctx,
            names::STORAGE_COMMIT_GROUP_SIZE,
            receipt.group_size as f64
        );
        observe_metric!(
            ctx,
            names::STORAGE_COMMIT_SYNC_WAIT_US,
            receipt.sync_wait_us as f64
        );
        // Leader/follower split: the group leader pays the fsync, the
        // followers pay only the wait. Separating the two histograms is
        // what lets the exported trace tell queueing from device time.
        let wait_name = if receipt.leader {
            names::STORAGE_COMMIT_SYNC_WAIT_LEADER_US
        } else {
            names::STORAGE_COMMIT_SYNC_WAIT_FOLLOWER_US
        };
        observe_metric!(ctx, wait_name, receipt.sync_wait_us as f64);
        observe_metric!(ctx, names::STORAGE_COMMIT_FSYNC_US, receipt.fsync_us as f64);
        ctx.interval(
            gryphon_sim::forensics::KIND_COMMIT,
            self.config.phb_commit_latency_us.max(receipt.fsync_us),
        );
        if receipt.leader && receipt.fsync_us > 0 {
            ctx.interval(gryphon_sim::forensics::KIND_FSYNC, receipt.fsync_us);
        }
        for part in &parts {
            if let KnowledgePart::Data(e) = part {
                let bytes = e.encoded_len();
                trace_event!(
                    ctx,
                    TraceEvent::EventLogged {
                        pubend: p,
                        ts: e.ts,
                        bytes,
                    }
                );
                count_metric!(ctx, names::PHB_LOG_BYTES, bytes as f64);
                count_metric!(ctx, names::PHB_LOG_EVENTS, 1.0);
            }
        }
        // Locally originated knowledge confirms nothing about the parent
        // (stamp 0): a broker that both hosts pubends and routes others
        // must not complete parked connects off its own emissions.
        self.ingest(p, parts, false, 0, ctx);
    }

    pub(crate) fn on_phb_silence(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        // Declared order: stable across runs, unlike map iteration. An
        // index loop avoids cloning the pubend list per tick — `declared`
        // is fixed after construction, so the indices stay valid across
        // the `ingest` calls.
        for i in 0..self.phb.declared.len() {
            let p = self.phb.declared[i];
            let parts = self
                .hosted_mut(p)
                .map(|pe| pe.emit_silence(now))
                .unwrap_or_default();
            self.ingest(p, parts, false, 0, ctx);
        }
        ctx.set_timer(
            self.config.pubend_silence_interval_us,
            timer::pack(Kind::PhbSilence, self.epoch, 0, 0),
        );
    }
}
