//! Unit tests for the SHB state machine, driven through a capturing
//! stub context (no simulator).

use super::shb::{CatchupNeeds, Shb};
use crate::config::BrokerConfig;
use gryphon_sim::{NodeCtx, TimerKey};
use gryphon_storage::MemFactory;
use gryphon_streams::KnowledgeStream;
use gryphon_types::{
    CheckpointToken, DeliveryKind, Event, NetMsg, NodeId, PubendId, ServerMsg, SubscriberId,
    Timestamp,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Captures everything a node does to the outside world.
struct StubCtx {
    now_us: u64,
    sent: Vec<(NodeId, NetMsg)>,
    timers: Vec<(u64, TimerKey)>,
    rng: SmallRng,
    busy: u64,
}

impl StubCtx {
    fn new() -> Self {
        StubCtx {
            now_us: 0,
            sent: Vec::new(),
            timers: Vec::new(),
            rng: SmallRng::seed_from_u64(0),
            busy: 0,
        }
    }

    /// Event deliveries sent to `client`, as `(pubend, kind, ts)`.
    fn deliveries(&self, client: NodeId) -> Vec<(PubendId, &'static str, u64)> {
        self.sent
            .iter()
            .filter_map(|(to, msg)| {
                if *to != client {
                    return None;
                }
                let NetMsg::Server(ServerMsg::Deliver { msg, .. }) = msg else {
                    return None;
                };
                let kind = match msg.kind {
                    DeliveryKind::Event(_) => "event",
                    DeliveryKind::Silence(_) => "silence",
                    DeliveryKind::Gap(_) => "gap",
                };
                Some((msg.pubend, kind, msg.ts().0))
            })
            .collect()
    }
}

impl NodeCtx for StubCtx {
    fn now_us(&self) -> u64 {
        self.now_us
    }
    fn me(&self) -> NodeId {
        NodeId(1)
    }
    fn send(&mut self, to: NodeId, msg: NetMsg) {
        self.sent.push((to, msg));
    }
    fn set_timer(&mut self, delay_us: u64, key: TimerKey) {
        self.timers.push((delay_us, key));
    }
    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
    fn work(&mut self, cost_us: u64) {
        self.busy += cost_us;
    }
    fn record(&mut self, _series: &str, _value: f64) {}
    fn count(&mut self, _counter: &str, _delta: f64) {}
}

const P: PubendId = PubendId(0);
const CLIENT: NodeId = NodeId(9);

fn fresh_shb() -> (Shb, BrokerConfig, StubCtx) {
    let config = BrokerConfig::default();
    let shb = Shb::open(&MemFactory::new(), "t", &config);
    (shb, config, StubCtx::new())
}

/// Builds a fully known cache over `[1, upto]`: `D` at the given ticks,
/// `S` everywhere else (data first — silence spans split around it, like
/// real broker caches).
fn cache_with(events: &[u64], upto: u64) -> (KnowledgeStream, Timestamp) {
    let mut ks = KnowledgeStream::new();
    for &t in events {
        let e = Event::builder(P)
            .attr("class", 0i64)
            .build_ref(Timestamp(t));
        assert!(ks.set_data(e));
    }
    ks.set_silence(Timestamp(1), Timestamp(upto));
    (ks, Timestamp(upto))
}

fn connect(
    shb: &mut Shb,
    ctx: &mut StubCtx,
    sub: u64,
    ct: Option<CheckpointToken>,
    config: &BrokerConfig,
) -> Vec<(PubendId, CatchupNeeds)> {
    shb.connect(
        SubscriberId(sub),
        CLIENT,
        ct,
        Some(gryphon_types::SubscriptionSpec::new("class = 0")),
        false,
        false,
        &HashMap::new(),
        None,
        config,
        ctx,
    )
    .expect("connect")
}

#[test]
fn constream_delivers_matching_events_and_records_pfs() {
    let (mut shb, config, mut ctx) = fresh_shb();
    connect(&mut shb, &mut ctx, 1, None, &config);
    let (cache, upto) = cache_with(&[5, 9], 12);
    let holes = shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    assert!(holes.is_empty(), "fully known cache has no holes");
    let got = ctx.deliveries(CLIENT);
    let events: Vec<u64> = got
        .iter()
        .filter(|(_, k, _)| *k == "event")
        .map(|&(_, _, t)| t)
        .collect();
    assert_eq!(events, vec![5, 9]);
    // PFS recorded both matched ticks (the constream writes slot-keyed,
    // so the oracle reads slot-keyed too).
    shb.pfs.sync().unwrap();
    let slot = shb.slot_of_sub(SubscriberId(1)).expect("registered");
    let r = shb
        .pfs
        .read_slot(P, slot, SubscriberId(1), Timestamp::ZERO, Timestamp(12), 10)
        .unwrap();
    assert_eq!(r.q_ticks, vec![Timestamp(5), Timestamp(9)]);
    // The cursor advanced to the doubt horizon.
    assert_eq!(shb.con_entry(P).processed_to, Timestamp(12));
}

#[test]
fn constream_reports_holes_up_to_high_water_mark() {
    let (mut shb, config, mut ctx) = fresh_shb();
    let mut cache = KnowledgeStream::new();
    cache.set_silence(Timestamp(1), Timestamp(4));
    // tick 5..=6 unknown; 7..=10 known.
    cache.set_silence(Timestamp(7), Timestamp(10));
    let holes = shb.constream_advance(P, &cache, Timestamp(10), &config, &mut ctx);
    assert_eq!(holes, vec![(Timestamp(5), Timestamp(6))]);
    assert_eq!(shb.con_entry(P).processed_to, Timestamp(4));
}

#[test]
fn pfs_sync_advances_durable_latest_delivered() {
    let (mut shb, config, mut ctx) = fresh_shb();
    let (cache, upto) = cache_with(&[3], 8);
    connect(&mut shb, &mut ctx, 1, None, &config);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    assert_eq!(shb.latest_delivered(P), Timestamp::ZERO, "pre-sync");
    shb.pfs_sync(&mut ctx);
    assert_eq!(shb.latest_delivered(P), Timestamp(8));
}

#[test]
fn released_is_min_over_subscribers_and_latest_delivered() {
    let (mut shb, config, mut ctx) = fresh_shb();
    let (cache, upto) = cache_with(&[2, 6], 10);
    connect(&mut shb, &mut ctx, 1, None, &config);
    connect(&mut shb, &mut ctx, 2, None, &config);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    shb.pfs_sync(&mut ctx);
    // Acks: sub1 → 6, sub2 → 4.
    shb.ack(
        SubscriberId(1),
        &CheckpointToken::from_pairs([(P, Timestamp(6))]),
    );
    shb.ack(
        SubscriberId(2),
        &CheckpointToken::from_pairs([(P, Timestamp(4))]),
    );
    assert_eq!(shb.released_local(P), Timestamp(4));
    // A disconnected subscriber still holds release back.
    shb.disconnect(SubscriberId(2), ctx.now_us());
    assert_eq!(shb.released_local(P), Timestamp(4));
    // Until it unsubscribes entirely.
    shb.unsubscribe(SubscriberId(2));
    assert_eq!(shb.released_local(P), Timestamp(6));
}

#[test]
fn reconnect_with_checkpoint_creates_catchup_and_switches_over() {
    let (mut shb, config, mut ctx) = fresh_shb();
    connect(&mut shb, &mut ctx, 1, None, &config);
    let (cache, upto) = cache_with(&[5, 9, 15], 20);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    shb.pfs_sync(&mut ctx);
    shb.disconnect(SubscriberId(1), ctx.now_us());
    ctx.sent.clear();

    // Reconnect at ct=4: events 5, 9, 15 must be recovered.
    let plans = connect(
        &mut shb,
        &mut ctx,
        1,
        Some(CheckpointToken::from_pairs([(P, Timestamp(4))])),
        &config,
    );
    assert_eq!(plans.len(), 1);
    assert!(plans[0].1.want_read, "catchup starts with a PFS read");
    assert_eq!(shb.catchup_streams(), 1);

    // PFS read → apply → progress: the Q ticks become nack holes.
    // Interior paths carry the slab slot, resolved once at the edge.
    let slot = shb.slot_of_sub(SubscriberId(1)).expect("registered");
    let (visited, q_ticks, full) = shb.start_pfs_read(slot, P, 100).expect("read needed");
    assert!(visited > 0);
    assert_eq!(q_ticks, 3, "one matching Q tick per recovered event");
    assert!(full, "small history fits the buffer");
    assert!(shb.finish_pfs_read(slot, P));
    let needs = shb.catchup_progress(slot, P, &config, &mut ctx);
    assert!(!needs.switched);
    assert_eq!(
        needs.holes,
        vec![
            (Timestamp(5), Timestamp(5)),
            (Timestamp(9), Timestamp(9)),
            (Timestamp(15), Timestamp(15)),
        ],
        "exactly the matched ticks are nacked — the PFS optimization"
    );

    // Feed the recovered events (as the broker would from cache answers).
    for t in [5u64, 9, 15] {
        let e = Event::builder(P)
            .attr("class", 0i64)
            .build_ref(Timestamp(t));
        shb.distribute_to_catchup(P, &[gryphon_types::KnowledgePart::Data(e)]);
    }
    let needs = shb.catchup_progress(slot, P, &config, &mut ctx);
    assert!(needs.switched, "caught up to processed_to");
    assert_eq!(shb.catchup_streams(), 0);
    let events: Vec<u64> = ctx
        .deliveries(CLIENT)
        .into_iter()
        .filter(|(_, k, _)| *k == "event")
        .map(|(_, _, t)| t)
        .collect();
    assert_eq!(events, vec![5, 9, 15]);
}

#[test]
fn catchup_delivery_is_paced_by_acknowledgments() {
    let (mut shb, mut config, mut ctx) = fresh_shb();
    config.catchup_window_ticks = 10; // tiny flow-control window
    connect(&mut shb, &mut ctx, 1, None, &config);
    // 100 ticks of history, all silence except one event at 50.
    let (cache, upto) = cache_with(&[50], 100);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    shb.pfs_sync(&mut ctx);
    shb.disconnect(SubscriberId(1), ctx.now_us());
    ctx.sent.clear();
    connect(
        &mut shb,
        &mut ctx,
        1,
        Some(CheckpointToken::from_pairs([(P, Timestamp(1))])),
        &config,
    );
    // Give the stream full knowledge of the whole span.
    let e = Event::builder(P)
        .attr("class", 0i64)
        .build_ref(Timestamp(50));
    shb.distribute_to_catchup(
        P,
        &[
            gryphon_types::KnowledgePart::Silence {
                from: Timestamp(2),
                to: Timestamp(49),
            },
            gryphon_types::KnowledgePart::Data(e),
            gryphon_types::KnowledgePart::Silence {
                from: Timestamp(51),
                to: Timestamp(100),
            },
        ],
    );
    let slot = shb.slot_of_sub(SubscriberId(1)).expect("registered");
    let needs = shb.catchup_progress(slot, P, &config, &mut ctx);
    assert!(!needs.switched, "flow control must hold delivery back");
    // Nothing beyond acked(1) + window(10) was delivered.
    let max_ts = ctx
        .deliveries(CLIENT)
        .into_iter()
        .map(|(_, _, t)| t)
        .max()
        .unwrap_or(0);
    assert!(max_ts <= 11, "delivered past the pace window: {max_ts}");
    // Acknowledge: the window slides and delivery completes.
    shb.ack(
        SubscriberId(1),
        &CheckpointToken::from_pairs([(P, Timestamp(95))]),
    );
    let needs = shb.catchup_progress(slot, P, &config, &mut ctx);
    assert!(needs.switched);
    let events: Vec<u64> = ctx
        .deliveries(CLIENT)
        .into_iter()
        .filter(|(_, k, _)| *k == "event")
        .map(|(_, _, t)| t)
        .collect();
    assert_eq!(events, vec![50]);
}

#[test]
fn gated_subscriber_serializes_on_commit_workers() {
    let (mut shb, config, mut ctx) = fresh_shb();
    shb.connect(
        SubscriberId(1),
        CLIENT,
        None,
        Some(gryphon_types::SubscriptionSpec::new("class = 0")),
        true, // broker_ct
        true, // auto_ack ⇒ gated
        &HashMap::new(),
        None,
        &config,
        &mut ctx,
    )
    .unwrap();
    let (cache, upto) = cache_with(&[3, 5, 7], 10);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    // Only the first event may be in flight.
    let events: Vec<u64> = ctx
        .deliveries(CLIENT)
        .into_iter()
        .filter(|(_, k, _)| *k == "event")
        .map(|(_, _, t)| t)
        .collect();
    assert_eq!(events, vec![3], "gated: one un-acked delivery at a time");
    // Ack + commit cycle releases the next one.
    let w = shb
        .ack(
            SubscriberId(1),
            &CheckpointToken::from_pairs([(P, Timestamp(3))]),
        )
        .expect("worker should start");
    let dur = shb.ct_commit_start(w, &config).expect("commit batch");
    assert!(dur >= config.ct_commit_base_us);
    shb.ct_commit_done(w, &mut ctx);
    let events: Vec<u64> = ctx
        .deliveries(CLIENT)
        .into_iter()
        .filter(|(_, k, _)| *k == "event")
        .map(|(_, _, t)| t)
        .collect();
    assert_eq!(events, vec![3, 5]);
}

#[test]
fn post_restart_resumes_from_durable_cursor() {
    let factory = MemFactory::new();
    let config = BrokerConfig::default();
    let mut ctx = StubCtx::new();
    {
        let mut shb = Shb::open(&factory, "t", &config);
        shb.connect(
            SubscriberId(1),
            CLIENT,
            None,
            Some(gryphon_types::SubscriptionSpec::new("class = 0")),
            false,
            false,
            &HashMap::new(),
            None,
            &config,
            &mut ctx,
        )
        .unwrap();
        let (cache, upto) = cache_with(&[4, 8], 10);
        shb.constream_advance(P, &cache, upto, &config, &mut ctx);
        shb.pfs_sync(&mut ctx);
        shb.ack(
            SubscriberId(1),
            &CheckpointToken::from_pairs([(P, Timestamp(8))]),
        );
        shb.meta_persist(&mut ctx);
    } // crash
    let mut shb = Shb::open(&factory, "t", &config);
    shb.post_restart();
    assert_eq!(shb.latest_delivered(P), Timestamp(10));
    assert_eq!(shb.con_entry(P).processed_to, Timestamp(10));
    assert_eq!(shb.released_local(P), Timestamp(8));
    assert_eq!(shb.sub_count(), 1, "subscription survived");
    assert_eq!(shb.connected_count(), 0, "connections did not");
    // The PFS chains survived too.
    let r = shb
        .pfs
        .read(P, SubscriberId(1), Timestamp::ZERO, Timestamp(10), 10)
        .unwrap();
    assert_eq!(r.q_ticks, vec![Timestamp(4), Timestamp(8)]);
}

#[test]
fn teardown_frees_released_state_for_dead_pairs() {
    let (mut shb, config, mut ctx) = fresh_shb();
    let (cache, upto) = cache_with(&[2, 6], 10);
    connect(&mut shb, &mut ctx, 1, None, &config);
    connect(&mut shb, &mut ctx, 2, None, &config);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    shb.pfs_sync(&mut ctx);
    shb.ack(
        SubscriberId(1),
        &CheckpointToken::from_pairs([(P, Timestamp(9))]),
    );
    shb.ack(
        SubscriberId(2),
        &CheckpointToken::from_pairs([(P, Timestamp(3))]),
    );
    assert_eq!(shb.released_local(P), Timestamp(3));
    shb.unsubscribe(SubscriberId(2));
    // The dead (sub 2, P) pair must not hold release back...
    assert_eq!(shb.released_local(P), Timestamp(9));
    // ...and a straggler ack for it must not resurrect the pair (the
    // pre-slab `released` map leaked exactly this way).
    assert_eq!(
        shb.ack(
            SubscriberId(2),
            &CheckpointToken::from_pairs([(P, Timestamp(4))])
        ),
        None
    );
    assert_eq!(shb.released_local(P), Timestamp(9));
    assert_eq!(shb.sub_count(), 1);
    // Nor does the durable table keep rel/ rows for the dead pair: a
    // reopened SHB sees only sub 1's cursor.
    shb.meta_persist(&mut ctx);
    assert!(shb.meta.with(|m| m.iter_prefix("rel/2/").next().is_none()));
}

#[test]
fn disconnect_parks_catchup_streams_and_reconnect_drains_them() {
    let (mut shb, config, mut ctx) = fresh_shb();
    connect(&mut shb, &mut ctx, 1, None, &config);
    let (cache, upto) = cache_with(&[5, 9], 20);
    shb.constream_advance(P, &cache, upto, &config, &mut ctx);
    shb.pfs_sync(&mut ctx);
    shb.disconnect(SubscriberId(1), ctx.now_us());
    // Reconnect mid-catchup, then disconnect with the stream still open:
    // it must demote to a compact parked record, not a live stream.
    connect(
        &mut shb,
        &mut ctx,
        1,
        Some(CheckpointToken::from_pairs([(P, Timestamp(4))])),
        &config,
    );
    assert_eq!(shb.catchup_streams(), 1);
    shb.disconnect(SubscriberId(1), ctx.now_us());
    assert_eq!(shb.catchup_streams(), 0, "no live stream while idle");
    assert_eq!(shb.parked_streams(), 1, "parked record kept instead");
    // Reconnect rehydrates from the durable checkpoint protocol and
    // drains the parked record.
    connect(
        &mut shb,
        &mut ctx,
        1,
        Some(CheckpointToken::from_pairs([(P, Timestamp(4))])),
        &config,
    );
    assert_eq!(shb.parked_streams(), 0);
    assert_eq!(shb.catchup_streams(), 1);
}

#[test]
fn client_silence_advances_idle_subscribers() {
    let (mut shb, config, mut ctx) = fresh_shb();
    connect(&mut shb, &mut ctx, 1, None, &config);
    let mut cache = KnowledgeStream::new();
    cache.set_silence(Timestamp(1), Timestamp(100));
    shb.constream_advance(P, &cache, Timestamp(100), &config, &mut ctx);
    ctx.sent.clear();
    shb.client_silence(&mut ctx);
    let got = ctx.deliveries(CLIENT);
    assert_eq!(got, vec![(P, "silence", 100)]);
    // Idempotent until the cursor moves again.
    ctx.sent.clear();
    shb.client_silence(&mut ctx);
    assert!(ctx.deliveries(CLIENT).is_empty());
}
