//! Per-pubend pipeline state: everything a broker keeps about one
//! pubend, in one place.
//!
//! Before this struct existed the broker smeared per-pubend state across
//! parallel maps (`pubends`, `routes`, `child_release`,
//! `last_release_reported`), all keyed by [`PubendId`] and all looked up
//! separately. Consolidating them means one lookup per message, no way
//! for the maps to drift out of sync, and — crucially for the threaded
//! runtime — a single ownable unit that a sharded executor can pin to
//! one worker so all processing for a pubend stays ordered.

use super::{Broker, Pubend, Route};
use gryphon_types::{NodeId, PubendId, Timestamp};
use std::collections::HashMap;

/// All broker state scoped to a single pubend.
///
/// Created lazily the first time any message mentions the pubend (or at
/// boot for hosted pubends); `Default` is the correct empty state for
/// every field.
#[derive(Debug, Default)]
pub(crate) struct PubendPipeline {
    /// The authoritative pubend state machine — `Some` only on the
    /// hosting broker (PHB role).
    pub(crate) pubend: Option<Pubend>,
    /// Routing state: knowledge cache, consolidated curiosity, and
    /// downstream interest (intermediate role).
    pub(crate) route: Route,
    /// Latest release report per child broker (release aggregation).
    pub(crate) child_release: HashMap<NodeId, (Timestamp, Timestamp)>,
    /// Last release point reported for this pubend, so the release timer
    /// only emits a `ReleaseAdvanced` trace on actual progress.
    pub(crate) last_release_reported: Timestamp,
}

impl Broker {
    /// The pipeline for `p`, created empty on first touch.
    pub(crate) fn pipeline_mut(&mut self, p: PubendId) -> &mut PubendPipeline {
        self.pipelines.entry(p).or_default()
    }

    /// Whether this broker hosts (is authoritative for) pubend `p`.
    pub(crate) fn hosts(&self, p: PubendId) -> bool {
        self.pipelines.get(&p).is_some_and(|pl| pl.pubend.is_some())
    }

    /// The hosted pubend state for `p`, if this broker is its PHB.
    pub(crate) fn hosted_mut(&mut self, p: PubendId) -> Option<&mut Pubend> {
        self.pipelines.get_mut(&p).and_then(|pl| pl.pubend.as_mut())
    }

    /// Every pubend this broker has a pipeline for, in sorted order so
    /// periodic sweeps emit messages deterministically regardless of map
    /// iteration order.
    pub(crate) fn pipeline_ids(&self) -> Vec<PubendId> {
        let mut ids: Vec<PubendId> = self.pipelines.keys().copied().collect();
        ids.sort_by_key(|p| p.0);
        ids
    }
}
