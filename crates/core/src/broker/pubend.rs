//! Pubend state: timestamp assignment, group commit, authoritative
//! knowledge, and the release-protocol root.

use crate::config::BrokerConfig;
use gryphon_storage::{EventLog, StorageError};
use gryphon_types::{Event, EventRef, KnowledgePart, PubendId, PublishMsg, Timestamp};

/// One publishing endpoint hosted by a PHB.
///
/// The pubend is the root of its knowledge tree: it assigns a unique,
/// monotone tick to every published event, persists it **once** in the
/// PHB event log (group-committed), emits knowledge downstream only after
/// the commit is durable, answers nacks authoritatively (`D` from the
/// log, `S` elsewhere, `L` below the lost prefix), and converts the
/// prefix allowed by the release protocol to `L`.
#[derive(Debug)]
pub struct Pubend {
    /// This pubend's id.
    pub id: PubendId,
    /// Highest tick assigned to an event (or covered by emitted silence).
    frontier: Timestamp,
    /// Knowledge has been emitted downstream for all ticks ≤ this.
    emitted_to: Timestamp,
    /// Events accumulating for the next batch (already timestamped).
    pending: Vec<EventRef>,
    /// Batches whose disk writes are in flight (the controller's write
    /// cache pipelines commits, as the paper's SSA setup does), oldest
    /// first.
    committing: std::collections::VecDeque<Vec<EventRef>>,
    /// A batch-close timer is outstanding.
    pub commit_scheduled: bool,
    /// Ticks `≤ lost_to` are `L` (released or early-released).
    lost_to: Timestamp,
    /// Events published (monotone counter for stats).
    pub published: u64,
    /// Bytes appended to the event log by this incarnation (stable-storage
    /// write volume; the broker mirrors it into `phb.log_bytes`).
    pub log_bytes: u64,
}

impl Pubend {
    /// Creates the pubend with both cursors at `now_ticks` (a pubend
    /// joining at virtual time `t` has trivially emitted all ticks before
    /// it existed).
    pub fn new(id: PubendId, now_ticks: Timestamp) -> Self {
        Pubend {
            id,
            frontier: now_ticks,
            emitted_to: now_ticks,
            pending: Vec::new(),
            committing: std::collections::VecDeque::new(),
            commit_scheduled: false,
            lost_to: Timestamp::ZERO,
            published: 0,
            log_bytes: 0,
        }
    }

    /// Assigns a timestamp to a publish request and buffers it for the
    /// next group commit. Returns the event.
    pub fn publish(&mut self, msg: PublishMsg, now_ticks: Timestamp) -> EventRef {
        let ts = self.frontier.next().max(now_ticks);
        self.frontier = ts;
        let event = std::sync::Arc::new(Event {
            pubend: self.id,
            ts,
            attrs: msg.attrs,
            payload: msg.payload,
        });
        self.pending.push(event.clone());
        self.published += 1;
        event
    }

    /// `true` when a batch-close timer should be armed (a new batch
    /// exists and no close timer is outstanding; an in-flight write does
    /// not block the next batch window from opening).
    pub fn needs_commit(&self) -> bool {
        !self.pending.is_empty() && !self.commit_scheduled
    }

    /// Batch close: snapshots the accumulating batch as an in-flight
    /// write (writes pipeline; each becomes durable after the device
    /// latency). The caller schedules the durability timer
    /// (`PhbCommitDone`). Returns `false` when there was nothing to
    /// commit.
    pub fn begin_commit(&mut self) -> bool {
        self.commit_scheduled = false;
        if self.pending.is_empty() {
            return false;
        }
        self.committing.push_back(std::mem::take(&mut self.pending));
        true
    }

    /// Durability point for the oldest in-flight batch: appends and
    /// syncs it, then returns the knowledge parts (`S` gaps + `D`
    /// events) covering `(emitted_to, batch end]` for downstream
    /// emission.
    ///
    /// # Errors
    ///
    /// Returns an error if the log fails.
    pub fn finish_commit(
        &mut self,
        log: &mut EventLog,
    ) -> Result<Vec<KnowledgePart>, StorageError> {
        let parts = self.finish_commit_appends(log)?;
        log.sync()?;
        Ok(parts)
    }

    /// The append half of [`finish_commit`]: appends the oldest in-flight
    /// batch and builds its knowledge parts **without** syncing. The
    /// caller owns the durability point — the PHB runs this inside a
    /// [`CommitPipeline`](gryphon_storage::CommitPipeline) so one device
    /// flush covers every pubend that committed in the same window, and
    /// must not emit the parts downstream until that flush returns.
    ///
    /// # Errors
    ///
    /// Returns an error if an append fails.
    pub fn finish_commit_appends(
        &mut self,
        log: &mut EventLog,
    ) -> Result<Vec<KnowledgePart>, StorageError> {
        let batch = self.committing.pop_front().unwrap_or_default();
        for e in &batch {
            log.append(e)?;
            self.log_bytes += e.encoded_len() as u64;
        }
        let mut parts = Vec::with_capacity(batch.len() * 2);
        let mut cursor = self.emitted_to;
        for e in batch {
            if e.ts > cursor.next() {
                parts.push(KnowledgePart::Silence {
                    from: cursor.next(),
                    to: e.ts.prev(),
                });
            }
            cursor = e.ts;
            parts.push(KnowledgePart::Data(e));
        }
        self.emitted_to = cursor;
        Ok(parts)
    }

    /// Test/compat helper: batch close + immediate durability.
    ///
    /// # Errors
    ///
    /// Returns an error if the log fails.
    pub fn commit(&mut self, log: &mut EventLog) -> Result<Vec<KnowledgePart>, StorageError> {
        if !self.begin_commit() {
            return Ok(Vec::new());
        }
        self.finish_commit(log)
    }

    /// Emits silence up to `now_ticks` for an idle pubend (no pending or
    /// in-flight events). Returns the parts to emit (empty when already
    /// covered).
    pub fn emit_silence(&mut self, now_ticks: Timestamp) -> Vec<KnowledgePart> {
        if !self.pending.is_empty() || !self.committing.is_empty() || now_ticks <= self.emitted_to {
            return Vec::new();
        }
        let from = self.emitted_to.next();
        self.emitted_to = now_ticks;
        self.frontier = self.frontier.max(now_ticks);
        vec![KnowledgePart::Silence {
            from,
            to: now_ticks,
        }]
    }

    /// Applies the release decision (paper §3): a tick `t` becomes `L`
    /// when `t ≤ Tr ∨ (t ≤ Td ∧ T − t > maxRetain)`. Chops the event log
    /// accordingly and returns the new lost prefix if it advanced.
    ///
    /// # Errors
    ///
    /// Returns an error if the log chop fails.
    pub fn apply_release(
        &mut self,
        tr: Timestamp,
        td: Timestamp,
        now_ticks: Timestamp,
        config: &BrokerConfig,
        log: &mut EventLog,
    ) -> Result<Option<Timestamp>, StorageError> {
        let mut candidate = tr;
        if let Some(max_retain) = config.max_retain_ticks {
            let age_limit = now_ticks - (max_retain + 1);
            candidate = candidate.max(td.min(age_limit));
        }
        if candidate <= self.lost_to {
            return Ok(None);
        }
        self.lost_to = candidate;
        log.chop_below(self.id, candidate.next())?;
        Ok(Some(candidate))
    }

    /// Ticks `≤ lost_to` are `L`.
    pub fn lost_to(&self) -> Timestamp {
        self.lost_to
    }

    /// Restores the lost prefix from persistent metadata after a crash.
    pub fn restore_lost_to(&mut self, lost_to: Timestamp) {
        self.lost_to = self.lost_to.max(lost_to);
    }

    /// Knowledge emitted up to this tick.
    pub fn emitted_to(&self) -> Timestamp {
        self.emitted_to
    }

    /// Re-seeds the cursors after a crash: the wall clock has advanced
    /// past anything the pre-crash incarnation could have emitted, so
    /// starting both cursors at `now_ticks` can never contradict
    /// previously emitted knowledge.
    pub fn restart_at(&mut self, now_ticks: Timestamp) {
        self.pending.clear();
        self.committing.clear();
        self.commit_scheduled = false;
        self.frontier = self.frontier.max(now_ticks);
        self.emitted_to = self.emitted_to.max(now_ticks);
    }

    /// Authoritatively answers a nack for `[from, to]` (clipped to what
    /// has been emitted): `L` below the lost prefix, `D` from the log,
    /// `S` everywhere else.
    ///
    /// # Errors
    ///
    /// Returns an error if the log read fails.
    pub fn answer(
        &self,
        from: Timestamp,
        to: Timestamp,
        log: &mut EventLog,
    ) -> Result<Vec<KnowledgePart>, StorageError> {
        let lo = from.max(Timestamp(1));
        let hi = to.min(self.emitted_to);
        if lo > hi {
            return Ok(Vec::new());
        }
        let mut parts = Vec::new();
        let mut cursor = lo;
        if self.lost_to >= lo {
            let l_end = self.lost_to.min(hi);
            parts.push(KnowledgePart::Lost {
                from: lo,
                to: l_end,
            });
            cursor = l_end.next();
        }
        if cursor > hi {
            return Ok(parts);
        }
        let events = log.read_range(self.id, cursor, hi)?;
        for e in events {
            if e.ts > cursor {
                parts.push(KnowledgePart::Silence {
                    from: cursor,
                    to: e.ts.prev(),
                });
            }
            cursor = e.ts.next();
            parts.push(KnowledgePart::Data(e));
        }
        if cursor <= hi {
            parts.push(KnowledgePart::Silence {
                from: cursor,
                to: hi,
            });
        }
        Ok(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gryphon_storage::MemFactory;
    use gryphon_types::TickKind;

    fn log() -> EventLog {
        EventLog::open(Box::new(MemFactory::new()), "el", Default::default()).unwrap()
    }

    fn publish(p: &mut Pubend, now: u64) -> EventRef {
        p.publish(
            PublishMsg {
                pubend: p.id,
                attrs: Default::default(),
                payload: bytes::Bytes::new(),
            },
            Timestamp(now),
        )
    }

    fn kind_at(parts: &[KnowledgePart], t: u64) -> Option<TickKind> {
        for p in parts {
            let (f, to) = p.range();
            if f.0 <= t && t <= to.0 {
                return Some(match p {
                    KnowledgePart::Silence { .. } => TickKind::S,
                    KnowledgePart::Data(_) => TickKind::D,
                    KnowledgePart::Lost { .. } => TickKind::L,
                });
            }
        }
        None
    }

    #[test]
    fn timestamps_unique_and_monotone() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let e1 = publish(&mut p, 5);
        let e2 = publish(&mut p, 5); // same millisecond
        let e3 = publish(&mut p, 4); // clock regression tolerated
        assert_eq!(e1.ts, Timestamp(5));
        assert_eq!(e2.ts, Timestamp(6));
        assert_eq!(e3.ts, Timestamp(7));
    }

    #[test]
    fn commit_emits_silence_gaps_and_data() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let mut l = log();
        publish(&mut p, 3);
        publish(&mut p, 7);
        let parts = p.commit(&mut l).unwrap();
        assert_eq!(kind_at(&parts, 1), Some(TickKind::S));
        assert_eq!(kind_at(&parts, 2), Some(TickKind::S));
        assert_eq!(kind_at(&parts, 3), Some(TickKind::D));
        assert_eq!(kind_at(&parts, 5), Some(TickKind::S));
        assert_eq!(kind_at(&parts, 7), Some(TickKind::D));
        assert_eq!(p.emitted_to(), Timestamp(7));
        assert_eq!(l.live_events(PubendId(0)), 2);
    }

    #[test]
    fn silence_emission_only_when_idle() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let parts = p.emit_silence(Timestamp(10));
        assert_eq!(parts.len(), 1);
        assert_eq!(p.emitted_to(), Timestamp(10));
        assert!(p.emit_silence(Timestamp(10)).is_empty(), "already covered");
        publish(&mut p, 15);
        assert!(p.emit_silence(Timestamp(20)).is_empty(), "pending commit");
    }

    #[test]
    fn events_after_silence_get_later_ticks() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        p.emit_silence(Timestamp(10));
        let e = publish(&mut p, 8); // publish "in the past"
        assert!(e.ts > Timestamp(10), "must not contradict emitted silence");
    }

    #[test]
    fn answer_is_authoritative() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let mut l = log();
        publish(&mut p, 4);
        p.commit(&mut l).unwrap();
        p.emit_silence(Timestamp(9));
        let parts = p.answer(Timestamp(1), Timestamp(20), &mut l).unwrap();
        assert_eq!(kind_at(&parts, 2), Some(TickKind::S));
        assert_eq!(kind_at(&parts, 4), Some(TickKind::D));
        assert_eq!(kind_at(&parts, 9), Some(TickKind::S));
        assert_eq!(kind_at(&parts, 10), None, "future ticks not answered");
    }

    #[test]
    fn release_without_early_release_uses_tr() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let mut l = log();
        for now in [2u64, 4, 6] {
            publish(&mut p, now);
        }
        p.commit(&mut l).unwrap();
        let cfg = BrokerConfig::default();
        let adv = p
            .apply_release(Timestamp(4), Timestamp(6), Timestamp(100), &cfg, &mut l)
            .unwrap();
        assert_eq!(adv, Some(Timestamp(4)));
        assert_eq!(l.live_events(PubendId(0)), 1, "events ≤ 4 chopped");
        // Nack below the lost prefix answers L.
        let parts = p.answer(Timestamp(1), Timestamp(6), &mut l).unwrap();
        assert_eq!(kind_at(&parts, 3), Some(TickKind::L));
        assert_eq!(kind_at(&parts, 6), Some(TickKind::D));
    }

    #[test]
    fn early_release_bounded_by_td() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let mut l = log();
        publish(&mut p, 10);
        publish(&mut p, 50);
        p.commit(&mut l).unwrap();
        let cfg = BrokerConfig {
            max_retain_ticks: Some(20),
            ..BrokerConfig::default()
        };
        // T = 100, maxRetain = 20 → age limit 79; Td = 40 caps it.
        let adv = p
            .apply_release(Timestamp(5), Timestamp(40), Timestamp(100), &cfg, &mut l)
            .unwrap();
        assert_eq!(adv, Some(Timestamp(40)));
        assert_eq!(l.live_events(PubendId(0)), 1);
        // A non-catchup subscriber (t > Td) is never early-released.
        assert!(p.lost_to() <= Timestamp(40));
    }

    #[test]
    fn release_regression_is_ignored() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        let mut l = log();
        p.emit_silence(Timestamp(50));
        let cfg = BrokerConfig::default();
        p.apply_release(Timestamp(30), Timestamp(40), Timestamp(50), &cfg, &mut l)
            .unwrap();
        let adv = p
            .apply_release(Timestamp(20), Timestamp(40), Timestamp(60), &cfg, &mut l)
            .unwrap();
        assert_eq!(adv, None);
        assert_eq!(p.lost_to(), Timestamp(30));
    }

    #[test]
    fn restart_at_never_regresses_cursors() {
        let mut p = Pubend::new(PubendId(0), Timestamp::ZERO);
        p.emit_silence(Timestamp(100));
        publish(&mut p, 101);
        p.restart_at(Timestamp(150));
        assert!(p.emitted_to() >= Timestamp(100));
        let e = publish(&mut p, 120);
        assert!(e.ts > Timestamp(150));
    }
}
