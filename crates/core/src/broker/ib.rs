//! Intermediate-broker (IB) role: knowledge routing with per-subtree
//! filtering, curiosity/nack consolidation, interest versioning, and
//! release aggregation (§3, §5.3).
//!
//! Every broker runs this role — a PHB routes its own emissions through
//! it and an SHB feeds its constream from it — so it owns the broker's
//! tree wiring (children, per-child state) and the interest-version
//! plumbing that makes subscription starts causally safe.

use super::{now_ticks, Broker};
use crate::timer::{self, Kind};
use gryphon_matching::{Filter, SubscriptionIndex};
use gryphon_sim::{count_metric, names, observe_metric, trace_event, NodeCtx, TraceEvent};
use gryphon_streams::push_coalesced;
use gryphon_types::{
    CuriosityMsg, KnowledgeMsg, KnowledgePart, NetMsg, NodeId, PubendId, ReleaseMsg,
    SubInterestMsg, SubscriberId, SubscriptionSpec, Timestamp,
};
use std::collections::{BTreeMap, HashMap};

/// State owned by the intermediate role.
#[derive(Default)]
pub(crate) struct IbRole {
    /// Downstream brokers, in attachment order.
    pub(crate) children: Vec<NodeId>,
    /// Everything known about one child broker (filter index, raw specs,
    /// interest versions) — one struct per child so the pieces cannot
    /// drift out of sync.
    pub(crate) child: HashMap<NodeId, ChildState>,
    /// Interest-version plumbing (subscription-start causality; see
    /// [`gryphon_types::SubInterestMsg::version`]). Versions are virtual
    /// timestamps, so they stay monotone across restarts.
    pub(crate) my_interest_version: u64,
    /// Highest interest version the parent has confirmed via knowledge
    /// stamps.
    pub(crate) upstream_confirmed: u64,
}

/// Per-child subscription and interest-version state.
#[derive(Default)]
pub(crate) struct ChildState {
    /// Aggregate subscription filter of the child's subtree (for D→S
    /// downgrades); `None` until the first interest message arrives.
    pub(crate) index: Option<SubscriptionIndex>,
    /// The raw specs behind `index`, re-aggregated upstream.
    pub(crate) specs: Vec<(SubscriberId, SubscriptionSpec)>,
    /// Latest interest version received from the child.
    pub(crate) version: u64,
    /// Highest child interest version known to be causally upstream.
    pub(crate) confirmed: u64,
    /// Child interest versions awaiting upstream confirmation:
    /// `(child version, our upward version carrying it)`.
    pub(crate) pending: Vec<(u64, u64)>,
    /// Fresh knowledge accumulated for this child, awaiting a flush.
    pub(crate) batcher: KnowledgeBatcher,
}

/// Per-child knowledge batcher: fresh (non-nack) knowledge accumulates
/// here, with adjacent silence runs coalesced, until a flush timer or the
/// size threshold sends it downstream as one message per pubend (the
/// paper's silence consolidation, amortizing per-message overhead).
#[derive(Default)]
pub(crate) struct KnowledgeBatcher {
    /// Pending parts per pubend. A `BTreeMap` so flushes emit in
    /// ascending pubend order — deterministic regardless of arrival
    /// interleaving.
    pub(crate) pending: BTreeMap<PubendId, PendingBatch>,
    /// Whether a flush timer is currently armed for this child.
    pub(crate) timer_armed: bool,
}

/// One pubend's accumulated knowledge for one child.
pub(crate) struct PendingBatch {
    /// Coalesced parts, in accumulation order.
    pub(crate) parts: Vec<KnowledgePart>,
    /// Interest-version stamp the parts were filtered under. A stamp
    /// change forces a flush first: merging parts filtered under
    /// different versions into one message would over- or under-claim
    /// which subscriptions the filtering honored.
    pub(crate) stamp: u64,
    /// Virtual time the batch opened (flush-latency accounting).
    pub(crate) since_us: u64,
}

impl Broker {
    /// Central ingest: applies parts to the pipeline's cache, advances
    /// the constream, feeds catchup streams, and forwards downstream.
    /// `interest_stamp` is the parent's interest-version stamp (`0` for
    /// locally originated knowledge, which confirms nothing upstream).
    pub(crate) fn ingest(
        &mut self,
        p: PubendId,
        parts: Vec<KnowledgePart>,
        nack_response: bool,
        interest_stamp: u64,
        ctx: &mut dyn NodeCtx,
    ) {
        if interest_stamp > self.ib.upstream_confirmed {
            self.ib.upstream_confirmed = interest_stamp;
            self.promote_child_confirmations();
            self.complete_parked(ctx);
        }
        if parts.is_empty() {
            return;
        }
        {
            let route = &mut self.pipeline_mut(p).route;
            for part in &parts {
                route.absorb(part);
            }
        }
        // SHB: constream first (so processed_to is current), then catchup.
        if self.shb.state.is_some() {
            // Lineage stage anchor: events enter this SHB's streams now.
            // Emitted before `constream_advance` so any delivery it
            // triggers sees the ingest time already recorded.
            note_shb_ingest(p, &parts, ctx);
            let holes = {
                let route = &self
                    .pipelines
                    .get(&p)
                    .expect("pipeline created above")
                    .route;
                let shb = self.shb.state.as_mut().expect("checked");
                shb.constream_advance(p, &route.knowledge, route.max_seen, &self.config, ctx)
            };
            self.resolve_for_constream(p, holes, ctx);
            let touched = self
                .shb
                .state
                .as_mut()
                .expect("checked")
                .distribute_to_catchup(p, &parts);
            for slot in touched {
                self.drive_catchup(slot, p, ctx);
            }
        }
        // Forward downstream.
        if self.ib.children.is_empty() {
            return;
        }
        if nack_response {
            let targets: Vec<NodeId> = {
                let route = &mut self.pipeline_mut(p).route;
                let mut t = Vec::new();
                for part in &parts {
                    let (f, to) = part.range();
                    for c in route.interest.interested(f, to) {
                        if !t.contains(&c) {
                            t.push(c);
                        }
                    }
                    route.interest.discharge(f, to);
                }
                t
            };
            for child in targets {
                self.send_filtered(child, p, &parts, true, ctx);
            }
        } else {
            // Index loop instead of cloning the child list per message:
            // `children` only grows at wiring time, never inside
            // `send_filtered`.
            for i in 0..self.ib.children.len() {
                let child = self.ib.children[i];
                self.send_filtered(child, p, &parts, false, ctx);
            }
        }
    }

    /// Forwards parts to one child, downgrading data ticks that match no
    /// subscription in the child's subtree to silence (the paper's
    /// intermediate filtering). Fresh knowledge goes through the
    /// per-child batcher; nack responses bypass it (recovery latency and
    /// interest-routing semantics both want them on the wire now).
    pub(crate) fn send_filtered(
        &mut self,
        child: NodeId,
        p: PubendId,
        parts: &[KnowledgePart],
        nack_response: bool,
        ctx: &mut dyn NodeCtx,
    ) {
        let hosted = self.hosts(p);
        // Borrow-split: the scratch leaves `self` while the child's index
        // (a shared borrow of `self.ib`) drives matching. `take` on a
        // warmed scratch moves vectors, it does not allocate.
        let mut scratch = std::mem::take(&mut self.match_scratch);
        let (out, stamp) = {
            let state = self.ib.child.get(&child);
            // Until a child's interest is known (fresh boot / just
            // restarted), forward unfiltered: over-delivery is safe,
            // silent downgrades of a subscription's events are not.
            let index = state.and_then(|c| c.index.as_ref());
            // The stamp: for locally hosted pubends the child's interest
            // is applied the moment it arrives; for routed pubends it
            // must also be confirmed upstream (everything this broker
            // forwards was filtered up there too).
            let stamp = match state {
                Some(c) if hosted => c.version,
                Some(c) => c.confirmed.min(c.version),
                None => 0,
            };
            let mut out: Vec<KnowledgePart> = Vec::with_capacity(parts.len());
            for part in parts {
                match part {
                    KnowledgePart::Data(e) => {
                        ctx.work(self.config.costs.match_us);
                        let relevant = index.map(|i| i.any_match(e, &mut scratch)).unwrap_or(true);
                        if relevant {
                            out.push(KnowledgePart::Data(e.clone()));
                        } else {
                            // Downgrade to silence; adjacent downgrades
                            // coalesce into one run.
                            push_coalesced(
                                &mut out,
                                KnowledgePart::Silence {
                                    from: e.ts,
                                    to: e.ts,
                                },
                            );
                        }
                    }
                    other => push_coalesced(&mut out, other.clone()),
                }
            }
            (out, stamp)
        };
        self.match_scratch = scratch;
        if out.is_empty() {
            return;
        }
        if nack_response {
            // Flush any batched fresh knowledge for this (child, pubend)
            // first so the response never arrives under older knowledge
            // it was meant to follow.
            self.flush_child_pubend(child, p, ctx);
            note_ib_forward(p, &out, ctx);
            ctx.send(
                child,
                NetMsg::Knowledge(KnowledgeMsg {
                    pubend: p,
                    parts: out,
                    nack_response: true,
                    interest_version: stamp,
                }),
            );
        } else if self.config.knowledge_flush_interval_us == 0 {
            note_ib_forward(p, &out, ctx);
            ctx.send(
                child,
                NetMsg::Knowledge(KnowledgeMsg {
                    pubend: p,
                    parts: out,
                    nack_response: false,
                    interest_version: stamp,
                }),
            );
        } else {
            self.enqueue_knowledge(child, p, out, stamp, ctx);
        }
    }

    /// Accumulates filtered fresh knowledge for `child`, flushing early on
    /// a stamp change or once the batch hits the size threshold; otherwise
    /// arms the per-child flush timer.
    fn enqueue_knowledge(
        &mut self,
        child: NodeId,
        p: PubendId,
        parts: Vec<KnowledgePart>,
        stamp: u64,
        ctx: &mut dyn NodeCtx,
    ) {
        let stamp_changed = self
            .ib
            .child
            .get(&child)
            .and_then(|c| c.batcher.pending.get(&p))
            .is_some_and(|b| b.stamp != stamp);
        if stamp_changed {
            self.flush_child_pubend(child, p, ctx);
        }
        let now = ctx.now_us();
        let max_parts = self.config.knowledge_batch_max_parts.max(1);
        let full = {
            let state = self.ib.child.entry(child).or_default();
            let batch = state
                .batcher
                .pending
                .entry(p)
                .or_insert_with(|| PendingBatch {
                    parts: Vec::new(),
                    stamp,
                    since_us: now,
                });
            for part in parts {
                push_coalesced(&mut batch.parts, part);
            }
            batch.parts.len() >= max_parts
        };
        if full {
            self.flush_child_pubend(child, p, ctx);
            return;
        }
        let state = self.ib.child.get_mut(&child).expect("created above");
        if !state.batcher.timer_armed {
            state.batcher.timer_armed = true;
            ctx.set_timer(
                self.config.knowledge_flush_interval_us,
                timer::pack(Kind::KnowledgeFlush, self.epoch, 0, child.0),
            );
        }
    }

    /// Flushes one pubend's pending batch for `child`, if any.
    pub(crate) fn flush_child_pubend(&mut self, child: NodeId, p: PubendId, ctx: &mut dyn NodeCtx) {
        let Some(batch) = self
            .ib
            .child
            .get_mut(&child)
            .and_then(|c| c.batcher.pending.remove(&p))
        else {
            return;
        };
        self.send_batch(child, p, batch, ctx);
    }

    /// Flush-timer handler: sends everything pending for `child`.
    pub(crate) fn on_knowledge_flush(&mut self, child: NodeId, ctx: &mut dyn NodeCtx) {
        let Some(state) = self.ib.child.get_mut(&child) else {
            return;
        };
        state.batcher.timer_armed = false;
        let pending = std::mem::take(&mut state.batcher.pending);
        for (p, batch) in pending {
            self.send_batch(child, p, batch, ctx);
        }
    }

    fn send_batch(
        &mut self,
        child: NodeId,
        p: PubendId,
        batch: PendingBatch,
        ctx: &mut dyn NodeCtx,
    ) {
        observe_metric!(
            ctx,
            names::IB_KNOWLEDGE_BATCH_PARTS,
            batch.parts.len() as f64
        );
        observe_metric!(
            ctx,
            names::IB_KNOWLEDGE_FLUSH_WAIT_US,
            ctx.now_us().saturating_sub(batch.since_us) as f64
        );
        count_metric!(ctx, names::IB_KNOWLEDGE_BATCHES, 1.0);
        note_ib_forward(p, &batch.parts, ctx);
        ctx.send(
            child,
            NetMsg::Knowledge(KnowledgeMsg {
                pubend: p,
                parts: batch.parts,
                nack_response: false,
                interest_version: batch.stamp,
            }),
        );
    }

    /// Answers `[from, to]` locally (pubend-authoritative or cache) and
    /// returns `(answered parts, unanswerable holes)`.
    pub(crate) fn answer_locally(
        &mut self,
        p: PubendId,
        from: Timestamp,
        to: Timestamp,
    ) -> (Vec<KnowledgePart>, Vec<(Timestamp, Timestamp)>) {
        let pe = self.pipelines.get(&p).and_then(|pl| pl.pubend.as_ref());
        if let (Some(pe), Some(log)) = (pe, self.phb.log.as_ref()) {
            let parts = log.with(|l| pe.answer(from, to, l)).unwrap_or_default();
            (parts, Vec::new())
        } else {
            let route = &mut self.pipeline_mut(p).route;
            route.answer_from_cache(from, to)
        }
    }

    /// Sends `parts` to `child` as chunked nack responses.
    pub(crate) fn respond_chunked(
        &mut self,
        child: NodeId,
        p: PubendId,
        parts: Vec<KnowledgePart>,
        ctx: &mut dyn NodeCtx,
    ) {
        let chunk = self.config.nack_response_chunk_ticks.max(1);
        let mut batch: Vec<KnowledgePart> = Vec::new();
        let mut batch_ticks = 0u64;
        for part in parts {
            let (f, t) = part.range();
            batch_ticks += t.saturating_sub(f) + 1;
            batch.push(part);
            if batch_ticks >= chunk {
                self.send_filtered(child, p, &std::mem::take(&mut batch), true, ctx);
                batch_ticks = 0;
            }
        }
        if !batch.is_empty() {
            self.send_filtered(child, p, &batch, true, ctx);
        }
    }

    /// Forwards unanswered holes upstream (tracked for retry unless
    /// open-ended). `authoritative` requests a pubend-only answer
    /// (reconnect-anywhere recovery must not trust interior caches).
    pub(crate) fn nack_upstream(
        &mut self,
        p: PubendId,
        holes: Vec<(Timestamp, Timestamp)>,
        authoritative: bool,
        ctx: &mut dyn NodeCtx,
    ) {
        let Some(parent) = self.parent else {
            return; // no upstream: the root answers what it has
        };
        if holes.is_empty() {
            return;
        }
        let now = ctx.now_us();
        let fan_in = holes.len();
        let route = &mut self.pipeline_mut(p).route;
        let mut fresh: Vec<(Timestamp, Timestamp)> = Vec::new();
        for (f, t) in holes {
            if t == Timestamp::MAX {
                // Open-ended recovery nacks are one-shot: steady-state
                // hole detection self-heals if the response is lost.
                fresh.push((f, t));
            } else {
                fresh.extend(route.curiosity.add_wanted(f, t, now));
            }
        }
        if !fresh.is_empty() {
            // Consolidation (paper §4.2): `fan_in` requested ranges were
            // deduplicated against outstanding curiosity into one upward
            // nack spanning the surviving span.
            let span_from = fresh
                .iter()
                .map(|&(f, _)| f)
                .min()
                .unwrap_or(Timestamp::ZERO);
            let span_to = fresh
                .iter()
                .map(|&(_, t)| t)
                .max()
                .unwrap_or(Timestamp::ZERO);
            trace_event!(
                ctx,
                TraceEvent::NackConsolidated {
                    pubend: p,
                    from: span_from,
                    to: span_to,
                    fan_in,
                }
            );
            observe_metric!(ctx, names::CURIOSITY_NACK_FANIN, fan_in as f64);
            count_metric!(ctx, names::CURIOSITY_NACKS_SENT, 1.0);
            ctx.send(
                parent,
                NetMsg::Curiosity(CuriosityMsg {
                    pubend: p,
                    ranges: fresh,
                    authoritative,
                }),
            );
        }
    }

    /// Resolution path for constream holes: they are cache gaps by
    /// definition, so they go straight upstream — but only one
    /// response-chunk window at a time. Windowed nacking paces a large
    /// recovery (SHB restart) into round trips, which both bounds burst
    /// sizes and lets multiple pubends' recoveries share the uplink
    /// fairly instead of serializing whole backlogs.
    pub(crate) fn resolve_for_constream(
        &mut self,
        p: PubendId,
        holes: Vec<(Timestamp, Timestamp)>,
        ctx: &mut dyn NodeCtx,
    ) {
        let window = self.config.nack_response_chunk_ticks.max(1);
        if self.parent.is_none() && self.hosts(p) {
            // A root broker hosting `p` has no upstream to nack, so it
            // answers its own constream holes authoritatively from the
            // local pubend, window by window until the constream stops
            // reporting them. Two cases reach here: a pubend booted at
            // t > 0 (its trivially-emitted prefix never flowed through
            // `ingest`, so the colocated constream starts behind it) and
            // a combined broker recovering a subscriber backlog after
            // restart.
            let mut holes = holes;
            while !holes.is_empty() {
                let mut parts = Vec::new();
                for (f, t) in holes.drain(..) {
                    let (answered, _) = self.answer_locally(p, f, t.min(f + window));
                    parts.extend(answered);
                }
                if parts.is_empty() {
                    return; // nothing answerable: stop rather than spin
                }
                {
                    let route = &mut self.pipeline_mut(p).route;
                    for part in &parts {
                        route.absorb(part);
                    }
                }
                // Root-hosted self-answer: these parts enter the local
                // SHB's streams without passing through `ingest`.
                note_shb_ingest(p, &parts, ctx);
                holes = {
                    let route = &self
                        .pipelines
                        .get(&p)
                        .expect("pipeline created above")
                        .route;
                    let Some(shb) = self.shb.state.as_mut() else {
                        return;
                    };
                    shb.constream_advance(p, &route.knowledge, route.max_seen, &self.config, ctx)
                };
                let touched = self
                    .shb
                    .state
                    .as_mut()
                    .expect("checked")
                    .distribute_to_catchup(p, &parts);
                for slot in touched {
                    self.drive_catchup(slot, p, ctx);
                }
            }
            return;
        }
        let bounded: Vec<(Timestamp, Timestamp)> = holes
            .into_iter()
            .map(|(f, t)| (f, t.min(f + window)))
            .collect();
        self.nack_upstream(p, bounded, false, ctx);
    }

    pub(crate) fn on_curiosity(&mut self, from: NodeId, msg: CuriosityMsg, ctx: &mut dyn NodeCtx) {
        let p = msg.pubend;
        let mut all_holes = Vec::new();
        for (f, t) in msg.ranges.clone() {
            if msg.authoritative && !self.hosts(p) {
                // Reconnect-anywhere recovery: only the pubend may answer.
                let route = &mut self.pipeline_mut(p).route;
                route.interest.register(from, f, t);
                all_holes.push((f, t));
                continue;
            }
            let (parts, holes) = self.answer_locally(p, f, t);
            if !parts.is_empty() {
                if self.hosts(p) {
                    // Authoritative answer from the event log.
                    ctx.count("phb.nack_responses", 1.0);
                } else {
                    // Interior cache absorbed a downstream nack — the
                    // scalability mechanism of paper §3.
                    ctx.count("broker.cache_answers", 1.0);
                }
                self.respond_chunked(from, p, parts, ctx);
            }
            if !holes.is_empty() {
                let route = &mut self.pipeline_mut(p).route;
                for &(hf, ht) in &holes {
                    route.interest.register(from, hf, ht);
                }
                all_holes.extend(holes);
            }
        }
        self.nack_upstream(p, all_holes, msg.authoritative, ctx);
    }

    pub(crate) fn on_sub_interest(
        &mut self,
        from: NodeId,
        msg: SubInterestMsg,
        ctx: &mut dyn NodeCtx,
    ) {
        if !self.ib.children.contains(&from) {
            return;
        }
        let mut index = SubscriptionIndex::new();
        for (sub, spec) in &msg.subs {
            if let Ok(filter) = Filter::parse(spec.expr()) {
                index.insert(*sub, filter);
            }
        }
        let v_child = msg.version;
        {
            let state = self.ib.child.entry(from).or_default();
            state.index = Some(index);
            state.specs = msg.subs;
            state.version = state.version.max(v_child);
        }
        if self.parent.is_some() {
            let v_up = self.bump_and_send_interest(ctx);
            self.ib
                .child
                .entry(from)
                .or_default()
                .pending
                .push((v_child, v_up));
        } else {
            // Root: the interest is applied here and now.
            let state = self.ib.child.entry(from).or_default();
            state.confirmed = state.confirmed.max(v_child);
        }
    }

    /// Promotes per-child confirmations from `upstream_confirmed`.
    pub(crate) fn promote_child_confirmations(&mut self) {
        let upstream = self.ib.upstream_confirmed;
        for state in self.ib.child.values_mut() {
            let ChildState {
                confirmed, pending, ..
            } = state;
            pending.retain(|&(v_child, v_up)| {
                if v_up <= upstream {
                    *confirmed = (*confirmed).max(v_child);
                    false
                } else {
                    true
                }
            });
        }
    }

    /// Sends the current interest set upward under a fresh version.
    /// Versions are virtual timestamps: monotone across crashes.
    pub(crate) fn bump_and_send_interest(&mut self, ctx: &mut dyn NodeCtx) -> u64 {
        self.ib.my_interest_version = (self.ib.my_interest_version + 1).max(ctx.now_us());
        self.send_interest_upstream(ctx);
        self.ib.my_interest_version
    }

    pub(crate) fn send_interest_upstream(&mut self, ctx: &mut dyn NodeCtx) {
        let Some(parent) = self.parent else {
            return;
        };
        let mut subs: Vec<(SubscriberId, SubscriptionSpec)> = Vec::new();
        // Sorted child order keeps the upstream message deterministic.
        let mut child_ids: Vec<NodeId> = self.ib.child.keys().copied().collect();
        child_ids.sort_by_key(|n| n.0);
        for id in child_ids {
            subs.extend(self.ib.child[&id].specs.iter().cloned());
        }
        if let Some(shb) = &self.shb.state {
            subs.extend(shb.interest());
        }
        ctx.send(
            parent,
            NetMsg::SubInterest(SubInterestMsg {
                subs,
                version: self.ib.my_interest_version,
            }),
        );
    }

    pub(crate) fn on_release_msg(&mut self, from: NodeId, msg: ReleaseMsg) {
        if self.ib.children.contains(&from) {
            self.pipeline_mut(msg.pubend)
                .child_release
                .insert(from, (msg.released, msg.latest_delivered));
        }
    }

    pub(crate) fn on_release_timer(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        // Every pubend this broker has seen, in deterministic order.
        for p in self.pipeline_ids() {
            // Aggregate over children + local SHB.
            let mut released = Timestamp::MAX;
            let mut latest = Timestamp::MAX;
            let mut constrained = false;
            {
                let pl = self.pipelines.get(&p).expect("listed above");
                for child in &self.ib.children {
                    match pl.child_release.get(child) {
                        Some(&(r, l)) => {
                            released = released.min(r);
                            latest = latest.min(l);
                            constrained = true;
                        }
                        None => {
                            // Child has not reported yet: fully conservative.
                            released = Timestamp::ZERO;
                            latest = Timestamp::ZERO;
                            constrained = true;
                        }
                    }
                }
            }
            if let Some(shb) = &self.shb.state {
                released = released.min(shb.released_local(p));
                latest = latest.min(shb.latest_delivered(p));
                constrained = true;
            }
            if !constrained {
                // No subscribers anywhere below: nothing holds release
                // back, but with nobody consuming there is also no point
                // advancing it; skip.
                continue;
            }
            if self.hosts(p) {
                // Root: run the release decision.
                let advanced = {
                    let pe = self.pipelines.get_mut(&p).and_then(|pl| pl.pubend.as_mut());
                    let (Some(pe), Some(log)) = (pe, self.phb.log.as_ref()) else {
                        continue;
                    };
                    // `with` (not `commit_with`): the chop forces its own
                    // sync whenever it deletes a segment file, and a chop
                    // frame still in the tail is allowed to be lost (the
                    // release decision is then forgotten atomically).
                    log.with(|l| pe.apply_release(released, latest, now, &self.config, l))
                        .unwrap_or(None)
                };
                if let Some(lost) = advanced {
                    ctx.count("phb.early_release_advances", 1.0);
                    trace_event!(
                        ctx,
                        TraceEvent::LConverted {
                            pubend: p,
                            upto: lost
                        }
                    );
                    count_metric!(ctx, names::RELEASE_L_CONVERSIONS, 1.0);
                    if let Some(shb) = self.shb.state.as_mut() {
                        let _ = shb.meta.put_u64(&format!("lost/{}", p.0), lost.0);
                    }
                }
                // Report forward progress of the aggregated release point
                // (Tr) — once per distinct value, and never the MAX
                // sentinel of an unconstrained aggregate.
                if released < Timestamp::MAX {
                    let pl = self.pipeline_mut(p);
                    if released > pl.last_release_reported {
                        pl.last_release_reported = released;
                        trace_event!(
                            ctx,
                            TraceEvent::ReleaseAdvanced {
                                pubend: p,
                                released
                            }
                        );
                        count_metric!(ctx, names::RELEASE_ADVANCES, 1.0);
                    }
                }
            } else if self.parent.is_some() {
                ctx.send(
                    self.parent.expect("checked"),
                    NetMsg::Release(ReleaseMsg {
                        pubend: p,
                        released,
                        latest_delivered: latest,
                    }),
                );
            }
            // SHB-side housekeeping + metrics.
            if let Some(shb) = self.shb.state.as_mut() {
                shb.chop_pfs(p);
                let ld = shb.latest_delivered(p);
                let rel = shb.released_local(p);
                ctx.record(&format!("shb{}.ld.{}", self.id, p.0), ld.0 as f64);
                ctx.record(&format!("shb{}.released.{}", self.id, p.0), rel.0 as f64);
            }
        }
        // Periodic interest refresh keeps parents correct across their
        // restarts (same version: content unchanged).
        self.send_interest_upstream(ctx);
        self.expire_parked(ctx);
        ctx.set_timer(
            self.config.release_interval_us,
            timer::pack(Kind::Release, self.epoch, 0, 0),
        );
    }

    pub(crate) fn on_cache_trim(&mut self, ctx: &mut dyn NodeCtx) {
        let now = now_ticks(ctx);
        let window = self.config.cache_window_ticks;
        for (&p, pl) in self.pipelines.iter_mut() {
            let mut limit = now - window;
            if let Some(shb) = &self.shb.state {
                if let Some(con) = shb.con.get(&p) {
                    limit = limit.min(con.processed_to);
                }
            }
            pl.route.knowledge.advance_base(limit);
        }
        ctx.set_timer(1_000_000, timer::pack(Kind::CacheTrim, self.epoch, 0, 0));
    }

    pub(crate) fn on_retry_nacks(&mut self, ctx: &mut dyn NodeCtx) {
        let now = ctx.now_us();
        let retry = self.config.retry;
        if let Some(parent) = self.parent {
            let mut msgs = Vec::new();
            for (&p, pl) in self.pipelines.iter_mut() {
                let due = pl.route.curiosity.due_retries(now, retry);
                if !due.is_empty() {
                    msgs.push((p, due));
                }
            }
            // Deterministic re-nack order regardless of map iteration.
            msgs.sort_by_key(|&(p, _)| p.0);
            for (p, ranges) in msgs {
                ctx.count("net.renacks", 1.0);
                ctx.send(
                    parent,
                    NetMsg::Curiosity(CuriosityMsg {
                        pubend: p,
                        ranges,
                        authoritative: false,
                    }),
                );
            }
        }
        ctx.set_timer(
            retry.timeout_us,
            timer::pack(Kind::RetryNacks, self.epoch, 0, 0),
        );
    }
}

/// Lineage stage: one `IbForwarded` per data part actually put on the
/// wire toward a child (batched fresh knowledge fires here at flush time,
/// so the span's forward anchor reflects when bytes left, not when they
/// were enqueued).
fn note_ib_forward(p: PubendId, parts: &[KnowledgePart], ctx: &mut dyn NodeCtx) {
    for part in parts {
        if let KnowledgePart::Data(e) = part {
            trace_event!(
                ctx,
                TraceEvent::IbForwarded {
                    pubend: p,
                    ts: e.ts
                }
            );
        }
    }
}

/// Lineage stage: one `ShbIngested` per data part entering this SHB's
/// consolidated/catchup streams.
fn note_shb_ingest(p: PubendId, parts: &[KnowledgePart], ctx: &mut dyn NodeCtx) {
    for part in parts {
        if let KnowledgePart::Data(e) = part {
            trace_event!(
                ctx,
                TraceEvent::ShbIngested {
                    pubend: p,
                    ts: e.ts
                }
            );
        }
    }
}
