//! Subscriber hosting broker state (paper §4): the consolidated stream,
//! per-subscriber catchup streams, durable release state, and the
//! broker-managed checkpoint commit pool for JMS-style subscribers.
//!
//! All per-subscriber state lives in one dense [`SubscriberTable`] slab
//! (DESIGN.md §15): the `SubscriberId → SubSlot` hash lookup happens only
//! at the ingress edges (connect / subscribe / ack / disconnect); every
//! interior path — constream delivery, catchup pumping, PFS reads —
//! carries a [`SubSlot`] and indexes the slab directly.

use super::sub_table::{ParkedStream, SubscriberTable};
use crate::config::BrokerConfig;
use crate::pfs::{Pfs, PfsMode};
use gryphon_matching::{Filter, MatchScratch, SubscriptionIndex};
use gryphon_sim::{
    count_metric, gauge_metric, names, observe_metric, record_metric, trace_event, DeliveryPath,
    NodeCtx, TraceEvent,
};
use gryphon_storage::{MediaFactory, SharedMetaTable, TableConfig};
use gryphon_streams::KnowledgeStream;
use gryphon_types::{
    CheckpointToken, DeliveryKind, DeliveryMsg, EventRef, KnowledgePart, NodeId, PubendId,
    ServerMsg, SubSlot, SubscriberId, SubscriptionSpec, Timestamp,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

use super::sub_table::PubendMap;

/// Per-pubend consolidated-stream state.
#[derive(Debug, Default, Clone, Copy)]
pub struct Con {
    /// Durable `latestDelivered(p)`: advanced only at PFS sync points,
    /// persisted, and the resumption point after an SHB crash.
    pub latest_delivered: Timestamp,
    /// Volatile processing cursor: events `≤ processed_to` have been
    /// matched, sent to connected non-catchup subscribers and queued for
    /// the PFS. Always `≥ latest_delivered`.
    pub processed_to: Timestamp,
}

/// One per-subscriber, per-pubend catchup stream.
#[derive(Debug)]
pub struct Catchup {
    /// Per-subscriber knowledge view, based at the reconnect checkpoint.
    pub knowledge: KnowledgeStream,
    /// Everything `≤ delivered_to` has been sent to the client in order.
    pub delivered_to: Timestamp,
    /// PFS filtering information folded in up to this tick.
    pub pfs_covered_to: Timestamp,
    /// A modeled PFS batch read is in flight.
    pub reading: bool,
    /// Result of the in-flight read, applied when its latency timer
    /// fires.
    pub pending_read: Option<crate::pfs::PfsReadResult>,
    /// Reconnect-anywhere stream: this SHB has no PFS history for the
    /// subscription, so the whole missed interval is nacked to the
    /// pubend and refiltered on arrival (paper §1, feature 5).
    pub refilter: bool,
    /// When this stream was created (switchover-latency metric).
    pub started_at_us: u64,
}

impl Catchup {
    /// Approximate heap bytes beyond the struct itself (the pending read
    /// buffer; the knowledge stream's own heap is excluded — the
    /// estimate errs low, which is fine for a regression gauge).
    fn approx_heap_bytes(&self) -> usize {
        self.pending_read
            .as_ref()
            .map(|r| r.q_ticks.capacity() * std::mem::size_of::<Timestamp>())
            .unwrap_or(0)
    }
}

/// A connected subscriber.
///
/// Per-pubend maps are [`PubendMap`]s (sorted vecs): subscribers touch a
/// handful of pubends, and the intrinsic ascending iteration order means
/// emission paths need no ad-hoc sorting for golden determinism.
#[derive(Debug)]
pub struct Conn {
    /// The client node to deliver to.
    pub client: NodeId,
    /// Outstanding catchup streams (empty ⇒ fully non-catchup).
    pub catchup: PubendMap<Catchup>,
    /// Monotone per-pubend delivery cursor (order enforcement).
    pub last_sent: PubendMap<Timestamp>,
    /// Queued deliveries for gated (JMS) subscribers.
    pub outbox: VecDeque<DeliveryMsg>,
    /// A delivery is awaiting its acknowledgment commit (gated only).
    pub in_flight: bool,
    /// When this connection was established (catchup-duration metric).
    pub connected_at_us: u64,
}

impl Conn {
    /// Approximate heap bytes owned by this connection (slab accounting).
    pub(crate) fn approx_heap_bytes(&self) -> usize {
        self.catchup.approx_heap_bytes()
            + self.last_sent.approx_heap_bytes()
            + self.outbox.capacity() * std::mem::size_of::<DeliveryMsg>()
            + self
                .catchup
                .iter()
                .map(|(_, cu)| cu.approx_heap_bytes())
                .sum::<usize>()
    }
}

/// What a catchup stream needs from the broker after making progress.
#[derive(Debug, Default)]
pub struct CatchupNeeds {
    /// Tick ranges to resolve (cache first, then upstream nack).
    pub holes: Vec<(Timestamp, Timestamp)>,
    /// Issue a PFS batch read (schedule the modeled-latency timer).
    pub want_read: bool,
    /// The stream caught up and was discarded.
    pub switched: bool,
    /// Holes must be answered by the pubend, not caches
    /// (reconnect-anywhere refiltering).
    pub authoritative: bool,
}

/// Aggregate census returned by [`Shb::sweep_population`], covering the
/// counters that feed no top-K dimension directly (window catchup ticks,
/// parked population) plus the sweep's own coverage numbers — the
/// equivalence tests pin these against a naive recount.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepSummary {
    /// Live slab slots visited.
    pub swept: usize,
    /// Slots with a live connection (the lag-spectrum population).
    pub connected: usize,
    /// Idle slots still carrying a parked-since mark.
    pub parked: usize,
    /// Catchup ticks served across the window (drained).
    pub catchup_ticks: u64,
}

/// One checkpoint-commit worker (JMS experiment, paper §5.2).
#[derive(Debug, Default)]
struct CtWorker {
    queue: Vec<(SubscriberId, CheckpointToken)>,
    busy: bool,
    committing: Vec<(SubscriberId, CheckpointToken)>,
}

/// Cached gauge-name strings. The constream publishes gauges on every
/// knowledge ingest, and a `format!` per publish was the hot path's last
/// steady-state allocation; names depend only on (node, pubend), so they
/// are built once and reused.
#[derive(Default)]
struct GaugeNames {
    node: Option<u32>,
    backlog: String,
    streams: String,
    slab_bytes: String,
    bytes_per_idle: String,
    doubt_width: HashMap<PubendId, String>,
}

impl GaugeNames {
    fn ensure(&mut self, node: u32) {
        if self.node == Some(node) {
            return;
        }
        self.node = Some(node);
        self.backlog = format!("{}.n{node}", names::TELEMETRY_CATCHUP_BACKLOG_TICKS);
        self.streams = format!("{}.n{node}", names::TELEMETRY_CATCHUP_STREAMS);
        self.slab_bytes = format!("{}.n{node}", names::TELEMETRY_SHB_SLAB_BYTES);
        self.bytes_per_idle = format!("{}.n{node}", names::TELEMETRY_SHB_BYTES_PER_IDLE_SUB);
        self.doubt_width.clear();
    }

    fn doubt_width(&mut self, node: u32, p: PubendId) -> &str {
        self.ensure(node);
        self.doubt_width
            .entry(p)
            .or_insert_with(|| format!("{}.n{node}.p{}", names::TELEMETRY_DOUBT_WIDTH_TICKS, p.0))
    }
}

/// The SHB role of a broker.
pub struct Shb {
    name: String,
    /// Durable tables: `ld/{p}`, `rel/{sub}/{p}`, `spec/{sub}`,
    /// `gated/{sub}`, `jct/{sub}/{p}`, `lost/{p}` (PHB side shares it).
    /// Behind the group-commit pipeline: JMS checkpoint-transaction
    /// workers committing concurrently (threaded runtime) share device
    /// flushes instead of serializing on their own.
    pub meta: SharedMetaTable,
    /// The persistent filtering subsystem.
    pub pfs: Pfs,
    /// All durable subscriptions hosted here (connected or not); slot
    /// assignment is shared with [`Shb::table`].
    pub index: SubscriptionIndex,
    /// The dense per-subscriber slab: spec, filter, `released(s, p)`,
    /// gated/broker-ct flags, live connection, parked streams.
    pub table: SubscriberTable,
    dirty_released: bool,
    /// Per-pubend constream cursors. A `BTreeMap` so every iteration is
    /// intrinsically in ascending pubend order (golden determinism
    /// without ad-hoc sorting).
    pub con: BTreeMap<PubendId, Con>,
    /// Connected subscribers: id → slab index, ascending-id iteration.
    connected: BTreeMap<SubscriberId, u32>,
    workers: Vec<CtWorker>,
    /// Events delivered (constream + catchup), for counters.
    pub delivered: u64,
    /// Per-pubend delivered-byte window counters, drained into the
    /// `hottest_pubends` attribution dimension by
    /// [`Shb::sweep_population`]. A `BTreeMap` for deterministic
    /// ascending-pubend drain order.
    pubend_bytes: BTreeMap<PubendId, u64>,
    /// Reusable matching scratch for the constream hot path.
    match_scratch: MatchScratch,
    /// Reusable match-result buffer (slab indices) for the hot path.
    match_buf: Vec<u32>,
    /// Reusable event buffer (`Arc` clones) for the hot path.
    event_buf: Vec<EventRef>,
    gauges: GaugeNames,
}

impl std::fmt::Debug for Shb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shb")
            .field("name", &self.name)
            .field("subs", &self.table.len())
            .field("connected", &self.connected.len())
            .field("pubends", &self.con.len())
            .finish()
    }
}

impl Shb {
    /// Opens (recovering) the SHB state named `name`.
    ///
    /// # Panics
    ///
    /// Panics if persistent storage fails — a broker cannot run without
    /// its durable state (mirrors a database-less DB2 broker refusing to
    /// boot).
    pub fn open(factory: &dyn MediaFactory, name: &str, config: &BrokerConfig) -> Self {
        let meta = SharedMetaTable::open(
            factory.clone_box(),
            &format!("{name}-meta"),
            TableConfig::default(),
        )
        .expect("SHB meta table must open");
        let pfs =
            Pfs::open(factory.clone_box(), name, PfsMode::Precise).expect("SHB PFS must open");
        let mut shb = Shb {
            name: name.to_owned(),
            meta,
            pfs,
            index: SubscriptionIndex::new(),
            table: SubscriberTable::new(),
            dirty_released: false,
            con: BTreeMap::new(),
            connected: BTreeMap::new(),
            workers: (0..config.ct_commit_workers.max(1))
                .map(|_| CtWorker::default())
                .collect(),
            delivered: 0,
            pubend_bytes: BTreeMap::new(),
            match_scratch: MatchScratch::new(),
            match_buf: Vec::new(),
            event_buf: Vec::new(),
            gauges: GaugeNames::default(),
        };
        shb.load_persistent();
        shb
    }

    fn load_persistent(&mut self) {
        // Subscriptions: slab + matching index share slot assignment.
        let specs: Vec<(SubscriberId, String)> = self.meta.with(|m| {
            m.iter_prefix("spec/")
                .filter_map(|(k, v)| {
                    let id: u64 = k.strip_prefix("spec/")?.parse().ok()?;
                    Some((SubscriberId(id), String::from_utf8(v.to_vec()).ok()?))
                })
                .collect()
        });
        for (sub, expr) in specs {
            if let Ok(filter) = Filter::parse(&expr) {
                let slot = self
                    .table
                    .insert(sub, SubscriptionSpec::new(expr), filter.clone());
                self.index.insert_at(slot.index(), sub, filter);
            }
        }
        // Gated / broker-managed flags.
        let gated: Vec<SubscriberId> = self.meta.with(|m| {
            m.iter_prefix("gated/")
                .filter_map(|(k, _)| Some(SubscriberId(k.strip_prefix("gated/")?.parse().ok()?)))
                .collect()
        });
        for sub in gated {
            if let Some(st) = self.table.slot_of(sub).and_then(|s| self.table.get_mut(s)) {
                st.gated = true;
            }
        }
        let bct: Vec<SubscriberId> = self.meta.with(|m| {
            m.iter_prefix("bct/")
                .filter_map(|(k, _)| Some(SubscriberId(k.strip_prefix("bct/")?.parse().ok()?)))
                .collect()
        });
        for sub in bct {
            if let Some(st) = self.table.slot_of(sub).and_then(|s| self.table.get_mut(s)) {
                st.broker_ct = true;
            }
        }
        // latestDelivered per pubend.
        let lds: Vec<(PubendId, Timestamp)> = self.meta.with(|m| {
            m.iter_prefix("ld/")
                .filter_map(|(k, v)| {
                    let p: u32 = k.strip_prefix("ld/")?.parse().ok()?;
                    Some((
                        PubendId(p),
                        Timestamp(u64::from_le_bytes(v.try_into().ok()?)),
                    ))
                })
                .collect()
        });
        for (p, t) in lds {
            self.con.insert(
                p,
                Con {
                    latest_delivered: t,
                    processed_to: t,
                },
            );
        }
        // released(s, p). Entries for subscribers with no live slot are
        // dropped: they are exactly the dead (subscriber, pubend) pairs
        // an unsubscribe-era leak would have left behind, and nothing
        // may hold release back for a subscription that no longer exists.
        let rels: Vec<((SubscriberId, PubendId), Timestamp)> = self.meta.with(|m| {
            m.iter_prefix("rel/")
                .filter_map(|(k, v)| {
                    let rest = k.strip_prefix("rel/")?;
                    let (s, p) = rest.split_once('/')?;
                    Some((
                        (SubscriberId(s.parse().ok()?), PubendId(p.parse().ok()?)),
                        Timestamp(u64::from_le_bytes(v.try_into().ok()?)),
                    ))
                })
                .collect()
        });
        for ((sub, p), t) in rels {
            if let Some(st) = self.table.slot_of(sub).and_then(|s| self.table.get_mut(s)) {
                st.released.insert(p, t);
            }
        }
    }

    /// Number of durable subscriptions (connected or not).
    pub fn sub_count(&self) -> usize {
        self.table.len()
    }

    /// Number of currently connected subscribers.
    pub fn connected_count(&self) -> usize {
        self.connected.len()
    }

    /// Number of catchup streams currently alive.
    pub fn catchup_streams(&self) -> usize {
        self.connected
            .values()
            .filter_map(|&i| self.table.get_at(i))
            .filter_map(|(_, st)| st.conn.as_deref())
            .map(|c| c.catchup.len())
            .sum()
    }

    /// Number of parked catchup-stream records across all idle
    /// subscribers (O(slab) — inspection only, not a gauge path).
    pub fn parked_streams(&self) -> usize {
        self.table.iter().map(|(_, st)| st.parked.len()).sum()
    }

    /// Approximate bytes held by the subscriber slab (see
    /// [`SubscriberTable::approx_bytes`]).
    pub fn slab_bytes(&self) -> usize {
        self.table.approx_bytes()
    }

    /// Durable subscriptions with no live connection.
    pub fn idle_subs(&self) -> usize {
        self.table.len().saturating_sub(self.connected.len())
    }

    /// Current subscription set for upward interest aggregation.
    pub fn interest(&self) -> Vec<(SubscriberId, SubscriptionSpec)> {
        self.table
            .iter()
            .map(|(_, st)| (st.sub, st.spec.clone()))
            .collect()
    }

    /// Edge lookup: the slab slot of `sub`, if registered.
    pub fn slot_of_sub(&self, sub: SubscriberId) -> Option<SubSlot> {
        self.table.slot_of(sub)
    }

    /// Reverse lookup by bare slab index (timer parameters): the current
    /// slot handle and its subscriber.
    pub fn sub_at_slot(&self, index: u32) -> Option<(SubSlot, SubscriberId)> {
        self.table.get_at(index).map(|(slot, st)| (slot, st.sub))
    }

    /// Pubends `slot` currently has catchup streams on, ascending (the
    /// `PubendMap` makes this order intrinsic — no sorting).
    pub fn catchup_pubends(&self, slot: SubSlot) -> Vec<PubendId> {
        self.table
            .get(slot)
            .and_then(|st| st.conn.as_deref())
            .map(|c| c.catchup.keys().collect())
            .unwrap_or_default()
    }

    /// Ensures constream state for `p` exists and returns it.
    pub fn con_entry(&mut self, p: PubendId) -> Con {
        *self.con.entry(p).or_default()
    }

    /// The live connection of `sub`, if connected (edge paths only).
    fn conn_of_mut(&mut self, sub: SubscriberId) -> Option<&mut Conn> {
        let slot = self.table.slot_of(sub)?;
        self.table.get_mut(slot)?.conn.as_deref_mut()
    }

    // ------------------------------------------------------------------
    // Constream
    // ------------------------------------------------------------------

    /// Advances the consolidated stream of `p` over newly known ticks of
    /// the broker's cache: matches events, delivers to connected
    /// non-catchup subscribers, and queues PFS records. Returns the holes
    /// (`Q` ranges up to the cache high-water mark) the broker should
    /// nack upstream.
    pub fn constream_advance(
        &mut self,
        p: PubendId,
        cache: &KnowledgeStream,
        max_seen: Timestamp,
        config: &BrokerConfig,
        ctx: &mut dyn NodeCtx,
    ) -> Vec<(Timestamp, Timestamp)> {
        let mut con = self.con_entry(p);
        debug_assert!(
            cache.lost_to() <= con.latest_delivered,
            "release protocol violated: pubend lost ticks beyond Td"
        );
        let dh = if con.processed_to >= cache.base() {
            cache.doubt_horizon(con.processed_to)
        } else {
            con.processed_to
        };
        if dh > con.processed_to {
            // Reused buffers end to end — events (`Arc` clones), match
            // slots, PFS scratch, gauge names — so the steady-state
            // delivery path allocates nothing (pinned by
            // core/tests/zero_alloc_deliver.rs).
            let mut events = std::mem::take(&mut self.event_buf);
            events.clear();
            events.extend(cache.events_in(con.processed_to, dh).cloned());
            let mut matched = std::mem::take(&mut self.match_buf);
            for event in &events {
                ctx.work(config.costs.match_us);
                self.index
                    .matches_slots_into(event, &mut self.match_scratch, &mut matched);
                if matched.is_empty() {
                    continue;
                }
                // A match result is directly a slab index: the PFS
                // resolves each slot once through the slab, not through
                // a per-event id map.
                let table = &self.table;
                if self
                    .pfs
                    .write_slots(p, event.ts, &matched, |i| {
                        let (slot, st) = table.get_at(i).expect("match result points at live slot");
                        (st.sub, slot.generation())
                    })
                    .is_ok()
                {
                    ctx.work(config.costs.pfs_record_us);
                }
                for &si in &matched {
                    let Some((_, st)) = self.table.get_at_mut(si) else {
                        continue;
                    };
                    let sub = st.sub;
                    let gated = st.gated;
                    let Some(conn) = st.conn.as_deref_mut() else {
                        continue; // disconnected: recovered later via PFS
                    };
                    if conn.catchup.contains_key(p) {
                        continue; // its catchup stream owns this range
                    }
                    let last = conn.last_sent.get_or_default(p);
                    if event.ts <= *last {
                        continue;
                    }
                    *last = event.ts;
                    ctx.work(config.costs.delivery_us);
                    self.delivered += 1;
                    let wire = delivery_bytes(event);
                    st.stats.bytes_delivered += wire;
                    *self.pubend_bytes.entry(p).or_default() += wire;
                    ctx.count("shb.delivered", 1.0);
                    count_metric!(ctx, names::SHB_CONSTREAM_DELIVERED, 1.0);
                    let msg = DeliveryMsg {
                        pubend: p,
                        kind: DeliveryKind::Event(event.clone()),
                    };
                    deliver(conn, sub, msg, gated, DeliveryPath::Constream, ctx);
                }
            }
            self.match_buf = matched;
            self.event_buf = events;
            // The constream must advance over a contiguous prefix: the
            // gap-free watchdog (paper §4.1) checks that each advance
            // starts exactly where the previous one ended.
            trace_event!(
                ctx,
                TraceEvent::ConstreamGapCheck {
                    pubend: p,
                    prev: con.processed_to,
                    new_to: dh,
                }
            );
            trace_event!(
                ctx,
                TraceEvent::DoubtAdvanced {
                    pubend: p,
                    horizon: dh,
                }
            );
            con.processed_to = dh;
            self.con.insert(p, con);
        }
        let width = max_seen.saturating_sub(con.processed_to) as f64;
        record_metric!(ctx, names::SHB_DOUBT_WIDTH, width);
        let node = ctx.me().0;
        gauge_metric!(ctx, self.gauges.doubt_width(node, p), width);
        self.update_telemetry_gauges(ctx);
        if max_seen > con.processed_to {
            cache.q_ranges(con.processed_to, max_seen)
        } else {
            Vec::new()
        }
    }

    /// Outstanding catchup backlog in ticks: for each active
    /// per-subscriber catchup stream, the distance from its delivery
    /// cursor to the consolidated stream's processing cursor, summed.
    /// Spikes when subscribers reconnect after a crash and drains to
    /// zero as streams switch over.
    pub fn catchup_backlog_ticks(&self) -> u64 {
        let mut total = 0u64;
        for (_, &si) in self.connected.iter() {
            let Some((_, st)) = self.table.get_at(si) else {
                continue;
            };
            let Some(conn) = st.conn.as_deref() else {
                continue;
            };
            for (p, cu) in conn.catchup.iter() {
                let cursor = self.con.get(&p).map(|c| c.processed_to).unwrap_or_default();
                total += cursor.saturating_sub(cu.delivered_to);
            }
        }
        total
    }

    /// Refreshes this SHB's telemetry gauges (DESIGN.md §13): catchup
    /// backlog and active catchup-stream count, published under this
    /// node's `.n<id>` shard suffix so several SHBs sharing one metrics
    /// sink stay distinct (the sampler derives the unsuffixed sum).
    pub fn update_telemetry_gauges(&mut self, ctx: &mut dyn NodeCtx) {
        let backlog = self.catchup_backlog_ticks() as f64;
        let streams = self.catchup_streams() as f64;
        let node = ctx.me().0;
        self.gauges.ensure(node);
        gauge_metric!(ctx, &self.gauges.backlog, backlog);
        gauge_metric!(ctx, &self.gauges.streams, streams);
    }

    /// Publishes the slab-memory gauges (`telemetry.shb.slab_bytes`,
    /// `telemetry.shb.bytes_per_idle_sub`, DESIGN.md §15). The byte
    /// census is O(live subscriptions), so it rides the periodic
    /// meta-persist timer rather than the delivery path.
    pub fn update_memory_gauges(&mut self, ctx: &mut dyn NodeCtx) {
        let bytes = self.table.approx_bytes();
        let idle = self.idle_subs();
        let node = ctx.me().0;
        self.gauges.ensure(node);
        gauge_metric!(ctx, &self.gauges.slab_bytes, bytes as f64);
        gauge_metric!(
            ctx,
            &self.gauges.bytes_per_idle,
            bytes as f64 / idle.max(1) as f64
        );
    }

    /// Sweeps the subscriber slab, draining the per-slot attribution
    /// counters into the population sketch via [`NodeCtx::attribute`]
    /// (DESIGN.md §18):
    ///
    /// * `slowest_subs_by_lag` — connected subscribers only, weighted by
    ///   the age of their oldest live catchup stream (0 when caught up).
    ///   The lag spectrum deliberately excludes idle subscribers: a
    ///   million parked durables at lag 0 would otherwise drown the one
    ///   connected consumer that is actually behind.
    /// * `hottest_subs_by_bytes` / `top_nackers` — per-slot window
    ///   deltas, reset as they drain.
    /// * `hottest_pubends` — per-pubend delivered bytes this window.
    ///
    /// O(slab), so it rides the periodic meta-persist timer with the
    /// byte census, never the delivery path. When the sketch is
    /// disarmed every `attribute` call is a default no-op; either way
    /// the sweep touches no delivery state — pure observation.
    pub fn sweep_population(&mut self, ctx: &mut dyn NodeCtx) -> SweepSummary {
        use gryphon_sim::sketch::{DIM_PUBEND_BYTES, DIM_SUB_BYTES, DIM_SUB_LAG, DIM_SUB_NACKS};
        let now = ctx.now_us();
        let mut summary = SweepSummary::default();
        for (_, st) in self.table.iter_mut() {
            summary.swept += 1;
            if let Some(conn) = st.conn.as_deref() {
                summary.connected += 1;
                let lag_us = conn
                    .catchup
                    .iter()
                    .map(|(_, cu)| cu.started_at_us)
                    .min()
                    .map(|t| now.saturating_sub(t))
                    .unwrap_or(0);
                ctx.attribute(DIM_SUB_LAG, st.sub.0, lag_us);
            } else if st.stats.parked_since_us > 0 {
                summary.parked += 1;
            }
            if st.stats.window_is_empty() {
                continue;
            }
            let w = st.stats.take_window();
            summary.catchup_ticks += w.catchup_ticks;
            if w.bytes_delivered > 0 {
                ctx.attribute(DIM_SUB_BYTES, st.sub.0, w.bytes_delivered);
            }
            if w.nacks > 0 {
                ctx.attribute(DIM_SUB_NACKS, st.sub.0, w.nacks);
            }
        }
        for (&p, bytes) in self.pubend_bytes.iter_mut() {
            if *bytes > 0 {
                ctx.attribute(DIM_PUBEND_BYTES, p.0 as u64, *bytes);
                *bytes = 0;
            }
        }
        summary
    }

    /// PFS group commit: makes queued filtering records durable and
    /// advances `latestDelivered(p)` to the processing cursor, persisting
    /// it in the metadata table.
    pub fn pfs_sync(&mut self, ctx: &mut dyn NodeCtx) {
        if self.pfs.sync().is_err() {
            ctx.count("shb.pfs_sync_err", 1.0);
            return;
        }
        let mut batch = Vec::new();
        for (p, con) in self.con.iter_mut() {
            if con.processed_to > con.latest_delivered {
                con.latest_delivered = con.processed_to;
                batch.push((
                    format!("ld/{}", p.0),
                    Some(con.latest_delivered.0.to_le_bytes().to_vec()),
                ));
            }
        }
        if !batch.is_empty() && self.meta.commit(&batch).is_err() {
            ctx.count("shb.meta_err", 1.0);
        }
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    /// `true` when `sub` has never been registered here.
    pub fn is_new_subscription(&self, sub: SubscriberId) -> bool {
        self.table.slot_of(sub).is_none()
    }

    /// Registers a brand-new durable subscription (filter parse +
    /// persistence + slab slot + matching-index insert at the same slot)
    /// without attaching a client. Used both by [`Shb::connect`] and by
    /// the broker when it parks a connect while the subscription's
    /// interest propagates upstream.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason (already sent to `client` as a
    /// `ConnectErr`) when the filter is missing or fails to parse.
    pub fn register_spec(
        &mut self,
        sub: SubscriberId,
        client: NodeId,
        spec: Option<&SubscriptionSpec>,
        broker_ct: bool,
        auto_ack: bool,
        ctx: &mut dyn NodeCtx,
    ) -> Result<(), String> {
        if !self.is_new_subscription(sub) {
            return Ok(());
        }
        let Some(spec) = spec else {
            let reason = "first connect requires a subscription filter".to_owned();
            ctx.send(
                client,
                gryphon_types::NetMsg::Server(ServerMsg::ConnectErr {
                    sub,
                    reason: reason.clone(),
                }),
            );
            return Err(reason);
        };
        let filter = match Filter::parse(spec.expr()) {
            Ok(f) => f,
            Err(e) => {
                let reason = e.to_string();
                ctx.send(
                    client,
                    gryphon_types::NetMsg::Server(ServerMsg::ConnectErr {
                        sub,
                        reason: reason.clone(),
                    }),
                );
                return Err(reason);
            }
        };
        let mut batch = vec![(
            format!("spec/{}", sub.0),
            Some(spec.expr().as_bytes().to_vec()),
        )];
        if broker_ct {
            batch.push((format!("bct/{}", sub.0), Some(vec![1])));
        }
        // Only auto-acknowledge serializes delivery on commits; lazy
        // broker-managed subscribers stream freely.
        if broker_ct && auto_ack {
            batch.push((format!("gated/{}", sub.0), Some(vec![1])));
        }
        let slot = self.table.insert(sub, spec.clone(), filter.clone());
        self.index.insert_at(slot.index(), sub, filter);
        let st = self.table.get_mut(slot).expect("just inserted");
        st.broker_ct = broker_ct;
        st.gated = broker_ct && auto_ack;
        // A new subscriber starts at the constream's delivery cursor (the
        // paper's "CT(s, p) = latestDelivered(p)" — in our split-cursor
        // design the delivery point is processed_to, with
        // latest_delivered as its durable shadow). The broker raises this
        // further with the interest-propagation floor when completing a
        // parked connect.
        for (&p, con) in self.con.iter() {
            st.released.insert(p, con.processed_to);
            batch.push((
                format!("rel/{}/{}", sub.0, p.0),
                Some(con.processed_to.0.to_le_bytes().to_vec()),
            ));
        }
        let _ = self.meta.commit(&batch);
        Ok(())
    }

    /// Handles a client connect. Returns the catchup plans per pubend
    /// (the `ConnectOk`/`ConnectErr` has already been sent) or an error
    /// string.
    #[allow(clippy::too_many_arguments)]
    pub fn connect(
        &mut self,
        sub: SubscriberId,
        client: NodeId,
        ct: Option<CheckpointToken>,
        spec: Option<SubscriptionSpec>,
        broker_ct: bool,
        auto_ack: bool,
        floors: &std::collections::HashMap<PubendId, Timestamp>,
        anywhere_override: Option<bool>,
        config: &BrokerConfig,
        ctx: &mut dyn NodeCtx,
    ) -> Result<Vec<(PubendId, CatchupNeeds)>, String> {
        // Reconnect-anywhere: a checkpoint presented by a subscription
        // this SHB has never hosted. Its missed interval must be
        // recovered authoritatively and refiltered — this SHB's PFS and
        // caches know nothing about it. (The broker pre-computes this
        // for parked connects, whose registration happened at park time.)
        let anywhere =
            anywhere_override.unwrap_or_else(|| self.is_new_subscription(sub) && ct.is_some());
        self.register_spec(sub, client, spec.as_ref(), broker_ct, auto_ack, ctx)?;
        let slot = self.table.slot_of(sub).expect("registered above");

        // Effective resumption point per pubend: the presented checkpoint,
        // else the broker-stored one (JMS), else released(s, p), else
        // latestDelivered (fresh subscription). `con` is a BTreeMap, so
        // catchup plans and CatchupStarted events are intrinsically in
        // ascending pubend order (golden determinism, no sorting).
        let mut start = CheckpointToken::new();
        let mut plans: Vec<(PubendId, CatchupNeeds)> = Vec::new();
        let mut conn = Conn {
            client,
            catchup: PubendMap::new(),
            last_sent: PubendMap::new(),
            outbox: VecDeque::new(),
            in_flight: false,
            connected_at_us: ctx.now_us(),
        };
        for (&p, pcon) in self.con.iter() {
            let stored_jct = self
                .meta
                .get_u64(&format!("jct/{}/{}", sub.0, p.0))
                .map(Timestamp);
            // The client's checkpoint may be AHEAD of the recovering
            // constream (it consumed deliveries whose PFS records were
            // not yet durable when the SHB crashed). Never clamp it
            // backwards — redelivering acknowledged events would violate
            // the monotone-delivery model; the constream simply skips
            // ticks at or below `last_sent` as it re-processes.
            let explicit = ct.as_ref().map(|c| c.get(p)).or(stored_jct);
            let resume = match explicit {
                // An explicit checkpoint defines the window regardless of
                // upstream filtering history: the missed interval is
                // recovered authoritatively and refiltered.
                Some(t) => t,
                // Otherwise the subscription starts "now" — raised by the
                // interest-propagation floor, because ticks at or below
                // it may have been filtered upstream without this
                // subscription's filter.
                None => self
                    .table
                    .get(slot)
                    .and_then(|st| st.released.get(p))
                    .copied()
                    .unwrap_or(pcon.processed_to)
                    .max(floors.get(&p).copied().unwrap_or(Timestamp::ZERO)),
            };
            start.advance(p, resume);
            conn.last_sent.insert(p, resume);
            // Ledger session boundary: anything at or below `resume`
            // arriving later would be a duplicate across this reconnect.
            trace_event!(
                ctx,
                TraceEvent::SubResumed {
                    sub,
                    pubend: p,
                    at: resume,
                }
            );
            if anywhere {
                // The migrated subscription only holds release back from
                // its own checkpoint, not this SHB's cursor.
                if let Some(st) = self.table.get_mut(slot) {
                    st.released.insert(p, resume);
                }
                self.dirty_released = true;
            }
            if resume < pcon.processed_to {
                // Catchup needed. Reconnect-anywhere streams skip the PFS
                // (no history here): mark its coverage exhausted so every
                // unknown tick is nacked — authoritatively — instead.
                trace_event!(
                    ctx,
                    TraceEvent::CatchupStarted {
                        pubend: p,
                        sub,
                        from: resume.next(),
                    }
                );
                conn.catchup.insert(
                    p,
                    Catchup {
                        knowledge: KnowledgeStream::with_base(resume),
                        delivered_to: resume,
                        pfs_covered_to: if anywhere { Timestamp::MAX } else { resume },
                        reading: false,
                        pending_read: None,
                        refilter: anywhere,
                        started_at_us: ctx.now_us(),
                    },
                );
                plans.push((
                    p,
                    CatchupNeeds {
                        holes: Vec::new(),
                        want_read: !anywhere,
                        switched: false,
                        authoritative: anywhere,
                    },
                ));
            }
        }
        ctx.count("shb.connects", 1.0);
        if !conn.catchup.is_empty() {
            ctx.count("shb.catchup_connects", 1.0);
        }
        ctx.send(
            client,
            gryphon_types::NetMsg::Server(ServerMsg::ConnectOk { sub, start }),
        );
        // Attach. Parked stream records from the previous connection are
        // drained here: the streams above were rebuilt from the durable
        // checkpoint protocol, so the parked positions have served their
        // purpose (observability + bounded idle memory).
        let st = self.table.get_mut(slot).expect("registered above");
        let rehydrated = st.parked.len();
        st.parked.clear();
        st.stats.parked_since_us = 0;
        st.conn = Some(Box::new(conn));
        self.connected.insert(sub, slot.index());
        if rehydrated > 0 {
            ctx.count("shb.stream_rehydrations", rehydrated as f64);
        }
        let _ = config;
        Ok(plans)
    }

    /// Handles a graceful disconnect (the subscription stays durable).
    /// Active catchup streams are demoted to compact [`ParkedStream`]
    /// records — an idle subscriber must not pin knowledge buffers.
    pub fn disconnect(&mut self, sub: SubscriberId, now_us: u64) {
        self.connected.remove(&sub);
        let Some(slot) = self.table.slot_of(sub) else {
            return;
        };
        let Some(st) = self.table.get_mut(slot) else {
            return;
        };
        if let Some(conn) = st.conn.take() {
            // Parked mark for the population sweep; `max(1)` keeps a
            // disconnect at t=0 distinguishable from "never connected".
            st.stats.parked_since_us = now_us.max(1);
            let Conn { catchup, .. } = *conn;
            for (p, cu) in catchup.into_iter() {
                st.parked.insert(
                    p,
                    ParkedStream {
                        position: cu.delivered_to,
                        doubt_floor: cu.pfs_covered_to,
                    },
                );
            }
        }
    }

    /// Destroys a durable subscription entirely. The slab slot is
    /// recycled (generation bumped), freeing every per-subscriber
    /// structure with it — including the `released(s, p)` cursors, whose
    /// durable twins are deleted in the same batch (no dead-pair leaks).
    pub fn unsubscribe(&mut self, sub: SubscriberId) {
        self.connected.remove(&sub);
        let mut batch = vec![
            (format!("spec/{}", sub.0), None),
            (format!("gated/{}", sub.0), None),
            (format!("bct/{}", sub.0), None),
        ];
        if let Some(slot) = self.table.slot_of(sub) {
            self.index.remove_at(slot.index());
            if let Some(st) = self.table.remove(slot) {
                for (p, _) in st.released.into_iter() {
                    batch.push((format!("rel/{}/{}", sub.0, p.0), None));
                    batch.push((format!("jct/{}/{}", sub.0, p.0), None));
                }
            }
        }
        let _ = self.meta.commit(&batch);
    }

    /// Handles an acknowledgment: advances `released(s, p)` and, for
    /// gated (JMS) subscribers, enqueues the checkpoint commit. Returns
    /// `Some(worker)` when a commit worker should be started.
    ///
    /// Acknowledgments for subscriptions no longer registered here are
    /// ignored: the release cursors live inside the slab slot, so a late
    /// ack after an unsubscribe cannot resurrect a dead (subscriber,
    /// pubend) pair and pin release forever.
    pub fn ack(&mut self, sub: SubscriberId, ct: &CheckpointToken) -> Option<usize> {
        let slot = self.table.slot_of(sub)?;
        let st = self.table.get_mut(slot).expect("slot_of returned live");
        let mut dirty = false;
        for (p, t) in ct.iter() {
            let e = st.released.get_or_default(p);
            if t > *e {
                *e = t;
                dirty = true;
            }
        }
        let broker_ct = st.broker_ct;
        if dirty {
            self.dirty_released = true;
        }
        if !broker_ct {
            return None;
        }
        let n = self.workers.len();
        let w = (sub.0 as usize) % n;
        let worker = &mut self.workers[w];
        if let Some(entry) = worker.queue.iter_mut().find(|(s, _)| *s == sub) {
            entry.1.merge(ct);
        } else {
            worker.queue.push((sub, ct.clone()));
        }
        (!worker.busy).then_some(w)
    }

    /// Starts a commit transaction on worker `w`; returns the modeled
    /// duration (schedule the `CtCommit` timer for it), or `None` when
    /// idle.
    pub fn ct_commit_start(&mut self, w: usize, config: &BrokerConfig) -> Option<u64> {
        let worker = self.workers.get_mut(w)?;
        if worker.busy || worker.queue.is_empty() {
            return None;
        }
        worker.committing = std::mem::take(&mut worker.queue);
        worker.busy = true;
        Some(
            config.ct_commit_base_us
                + config.ct_commit_per_update_us * worker.committing.len() as u64,
        )
    }

    /// Completes the commit on worker `w`: persists the checkpoints and
    /// un-gates the affected subscribers (their next delivery may flow).
    /// Returns `true` if the worker has more queued work.
    pub fn ct_commit_done(&mut self, w: usize, ctx: &mut dyn NodeCtx) -> bool {
        let Some(worker) = self.workers.get_mut(w) else {
            return false;
        };
        let committing = std::mem::take(&mut worker.committing);
        worker.busy = false;
        let mut batch = Vec::new();
        for (sub, ct) in &committing {
            for (p, t) in ct.iter() {
                batch.push((
                    format!("jct/{}/{}", sub.0, p.0),
                    Some(t.0.to_le_bytes().to_vec()),
                ));
            }
        }
        if !batch.is_empty() {
            match self.meta.commit(&batch) {
                Ok(receipt) => {
                    ctx.count("shb.ct_commits", 1.0);
                    ctx.count("shb.ct_commit_updates", batch.len() as f64);
                    observe_metric!(ctx, names::STORAGE_COMMIT_BATCH_RECORDS, batch.len() as f64);
                    observe_metric!(
                        ctx,
                        names::STORAGE_COMMIT_GROUP_SIZE,
                        receipt.group_size as f64
                    );
                    observe_metric!(
                        ctx,
                        names::STORAGE_COMMIT_SYNC_WAIT_US,
                        receipt.sync_wait_us as f64
                    );
                    // Leader pays the device flush; followers only wait.
                    let wait_name = if receipt.leader {
                        names::STORAGE_COMMIT_SYNC_WAIT_LEADER_US
                    } else {
                        names::STORAGE_COMMIT_SYNC_WAIT_FOLLOWER_US
                    };
                    observe_metric!(ctx, wait_name, receipt.sync_wait_us as f64);
                    observe_metric!(ctx, names::STORAGE_COMMIT_FSYNC_US, receipt.fsync_us as f64);
                    ctx.interval(
                        gryphon_sim::forensics::KIND_COMMIT,
                        receipt.sync_wait_us + receipt.fsync_us,
                    );
                    if receipt.leader && receipt.fsync_us > 0 {
                        ctx.interval(gryphon_sim::forensics::KIND_FSYNC, receipt.fsync_us);
                    }
                }
                Err(_) => ctx.count("shb.meta_err", 1.0),
            }
        }
        for (sub, _) in committing {
            if let Some(conn) = self.conn_of_mut(sub) {
                conn.in_flight = false;
                pump_outbox(conn, sub, ctx);
            }
        }
        !self.workers[w].queue.is_empty()
    }

    /// Sends silence messages to idle connected subscribers so their
    /// checkpoint tokens keep advancing.
    ///
    /// Emission order is intrinsic — `connected` iterates ascending
    /// subscriber id and `con` ascending pubend — so golden determinism
    /// needs no ad-hoc sorting here.
    pub fn client_silence(&mut self, ctx: &mut dyn NodeCtx) {
        for (&sub, &si) in self.connected.iter() {
            let Some((_, st)) = self.table.get_at_mut(si) else {
                continue;
            };
            if st.gated {
                continue; // gated subscribers advance via their own acks
            }
            let Some(conn) = st.conn.as_deref_mut() else {
                continue;
            };
            for (&p, c) in self.con.iter() {
                let processed = c.processed_to;
                if conn.catchup.contains_key(p) {
                    continue;
                }
                let last = conn.last_sent.get_or_default(p);
                if *last < processed {
                    *last = processed;
                    ctx.send(
                        conn.client,
                        gryphon_types::NetMsg::Server(ServerMsg::Deliver {
                            sub,
                            msg: DeliveryMsg {
                                pubend: p,
                                kind: DeliveryKind::Silence(processed),
                            },
                        }),
                    );
                }
            }
        }
    }

    /// Persists dirty `released(s, p)` values (the paper's periodic
    /// 250 ms updates). The batch iterates the slab in slot order — a
    /// deterministic commit layout.
    pub fn meta_persist(&mut self, ctx: &mut dyn NodeCtx) {
        if !self.dirty_released {
            return;
        }
        self.dirty_released = false;
        let mut batch: Vec<(String, Option<Vec<u8>>)> = Vec::new();
        for (_, st) in self.table.iter() {
            for (p, &t) in st.released.iter() {
                batch.push((
                    format!("rel/{}/{}", st.sub.0, p.0),
                    Some(t.0.to_le_bytes().to_vec()),
                ));
            }
        }
        if self.meta.commit(&batch).is_err() {
            ctx.count("shb.meta_err", 1.0);
        }
    }

    /// `released(p)` over this SHB: `min(latestDelivered, min_s released)`.
    pub fn released_local(&self, p: PubendId) -> Timestamp {
        let ld = self
            .con
            .get(&p)
            .map(|c| c.latest_delivered)
            .unwrap_or(Timestamp::ZERO);
        self.table
            .iter()
            .filter_map(|(_, st)| st.released.get(p).copied())
            .fold(ld, Timestamp::min)
    }

    /// `latestDelivered(p)` (durable view).
    pub fn latest_delivered(&self, p: PubendId) -> Timestamp {
        self.con
            .get(&p)
            .map(|c| c.latest_delivered)
            .unwrap_or(Timestamp::ZERO)
    }

    /// Chops PFS state below `released(p)` (all hosted subscribers have
    /// acknowledged it).
    pub fn chop_pfs(&mut self, p: PubendId) {
        let rel = self.released_local(p);
        if rel > Timestamp::ZERO {
            let _ = self.pfs.chop_below(p, rel);
        }
    }

    // ------------------------------------------------------------------
    // Catchup
    // ------------------------------------------------------------------

    /// Performs a PFS batch read for a catchup stream, storing the result
    /// until the modeled-latency timer fires. Returns `(records visited,
    /// matching Q ticks found, was it a full read)` — the visit count
    /// drives the modeled latency, the full-read flag feeds the paper's
    /// "87 % of reads reach lastTimestamp" metric — or `None` when no
    /// read is needed.
    pub fn start_pfs_read(
        &mut self,
        slot: SubSlot,
        p: PubendId,
        buffer: usize,
    ) -> Option<(usize, usize, bool)> {
        let ld = self.con_entry(p).latest_delivered;
        let (sub, from) = {
            let st = self.table.get_mut(slot)?;
            let sub = st.sub;
            let cu = st.conn.as_deref_mut()?.catchup.get_mut(p)?;
            if cu.reading {
                return None;
            }
            let from = cu.pfs_covered_to.max(cu.delivered_to);
            if from >= ld {
                return None;
            }
            cu.reading = true;
            (sub, from)
        };
        let result = self.pfs.read_slot(p, slot, sub, from, ld, buffer).ok()?;
        let visited = result.records_visited;
        let q_ticks = result.q_ticks.len();
        let full = result.full_read;
        // Re-borrow to stash the result (pfs and the slab are disjoint
        // fields, but the `cu` borrow had to end before the read).
        if let Some(cu) = self
            .table
            .get_mut(slot)
            .and_then(|st| st.conn.as_deref_mut())
            .and_then(|c| c.catchup.get_mut(p))
        {
            cu.pending_read = Some(result);
        }
        Some((visited, q_ticks, full))
    }

    /// Applies the stored read result when its latency timer fires;
    /// returns `true` if there was one.
    pub fn finish_pfs_read(&mut self, slot: SubSlot, p: PubendId) -> bool {
        let Some(cu) = self
            .table
            .get_mut(slot)
            .and_then(|st| st.conn.as_deref_mut())
            .and_then(|c| c.catchup.get_mut(p))
        else {
            return false;
        };
        let Some(result) = cu.pending_read.take() else {
            cu.reading = false;
            return false;
        };
        cu.reading = false;
        // Ticks in (known_from, covered_to] not listed are silence.
        let mut cursor = result.known_from.max(cu.knowledge.base());
        for &q in &result.q_ticks {
            if q > cursor.next() {
                cu.knowledge.set_silence(cursor.next(), q.prev());
            }
            cursor = cursor.max(q); // the Q tick itself stays unknown → nacked
        }
        if result.covered_to > cursor {
            cu.knowledge.set_silence(cursor.next(), result.covered_to);
        }
        cu.pfs_covered_to = cu.pfs_covered_to.max(result.covered_to);
        true
    }

    /// Applies arriving knowledge parts to every catchup stream of `p`,
    /// filtered per subscriber (a data tick that does not match becomes
    /// silence for that stream). Returns the touched slots in ascending
    /// subscriber-id order (intrinsic — `connected` is a `BTreeMap`).
    pub fn distribute_to_catchup(&mut self, p: PubendId, parts: &[KnowledgePart]) -> Vec<SubSlot> {
        let mut touched = Vec::new();
        for (_, &si) in self.connected.iter() {
            let Some((slot, st)) = self.table.get_at_mut(si) else {
                continue;
            };
            let filter = &st.filter;
            let Some(conn) = st.conn.as_deref_mut() else {
                continue;
            };
            let Some(cu) = conn.catchup.get_mut(p) else {
                continue;
            };
            for part in parts {
                match part {
                    KnowledgePart::Data(e) => {
                        if filter.eval(e) {
                            cu.knowledge.set_data(e.clone());
                        } else {
                            cu.knowledge.set_silence(e.ts, e.ts);
                        }
                    }
                    KnowledgePart::Silence { from, to } => {
                        cu.knowledge.set_silence(*from, *to);
                    }
                    KnowledgePart::Lost { to, .. } => {
                        cu.knowledge.set_lost_prefix(*to);
                    }
                }
            }
            touched.push(slot);
        }
        touched
    }

    /// Drives one catchup stream: delivers what is known in order,
    /// detects switchover, and reports holes / read needs.
    pub fn catchup_progress(
        &mut self,
        slot: SubSlot,
        p: PubendId,
        config: &BrokerConfig,
        ctx: &mut dyn NodeCtx,
    ) -> CatchupNeeds {
        let mut needs = CatchupNeeds::default();
        let con = self.con_entry(p);
        let Some(st) = self.table.get_mut(slot) else {
            return needs;
        };
        let sub = st.sub;
        let gated = st.gated;
        // Flow control (paper §4.1): catchup delivery and nack initiation
        // are bounded to a window beyond what the client has acknowledged,
        // so a reconnecting client is never overwhelmed and the SHB's
        // catchup work is paced by real consumption.
        let acked = st.released.get(p).copied().unwrap_or(Timestamp::ZERO);
        let pace_limit = acked + config.catchup_window_ticks;
        let Some(conn) = st.conn.as_deref_mut() else {
            return needs;
        };
        // Detach the stream so deliveries can borrow the connection.
        let Some(mut cu) = conn.catchup.remove(p) else {
            return needs;
        };
        // 1. Deliver everything already known, in timestamp order — but
        // never further than the flow-control window past the client's
        // acknowledgments.
        loop {
            if cu.delivered_to >= pace_limit {
                break;
            }
            let lost = cu.knowledge.lost_to();
            if lost > cu.delivered_to {
                // Early release discarded this span: explicit gap.
                cu.delivered_to = lost;
                cu.pfs_covered_to = cu.pfs_covered_to.max(lost);
                ctx.count("shb.gaps_sent", 1.0);
                deliver(
                    conn,
                    sub,
                    DeliveryMsg {
                        pubend: p,
                        kind: DeliveryKind::Gap(lost),
                    },
                    gated,
                    DeliveryPath::Catchup,
                    ctx,
                );
                continue;
            }
            let dh = cu.knowledge.doubt_horizon(cu.delivered_to).min(pace_limit);
            if dh <= cu.delivered_to {
                break;
            }
            let events: Vec<EventRef> = cu
                .knowledge
                .events_in(cu.delivered_to, dh)
                .cloned()
                .collect();
            let mut last_event_ts = Timestamp::ZERO;
            for e in events {
                ctx.work(config.costs.catchup_delivery_us);
                self.delivered += 1;
                let wire = delivery_bytes(&e);
                st.stats.bytes_delivered += wire;
                st.stats.catchup_ticks += 1;
                *self.pubend_bytes.entry(p).or_default() += wire;
                ctx.count("shb.delivered", 1.0);
                ctx.count("shb.catchup_delivered", 1.0);
                last_event_ts = e.ts;
                deliver(
                    conn,
                    sub,
                    DeliveryMsg {
                        pubend: p,
                        kind: DeliveryKind::Event(e),
                    },
                    gated,
                    DeliveryPath::Catchup,
                    ctx,
                );
            }
            if dh > last_event_ts {
                deliver(
                    conn,
                    sub,
                    DeliveryMsg {
                        pubend: p,
                        kind: DeliveryKind::Silence(dh),
                    },
                    gated,
                    DeliveryPath::Catchup,
                    ctx,
                );
            }
            cu.delivered_to = dh;
            cu.knowledge.advance_base(dh);
        }
        needs.authoritative = cu.refilter;
        // 2. Switchover?
        if cu.delivered_to >= con.processed_to {
            conn.last_sent.insert(p, cu.delivered_to);
            needs.switched = true;
            let latency_us = ctx.now_us().saturating_sub(cu.started_at_us);
            trace_event!(
                ctx,
                TraceEvent::Switchover {
                    pubend: p,
                    sub,
                    latency_us,
                }
            );
            observe_metric!(ctx, names::SHB_SWITCHOVER_LATENCY_US, latency_us as f64);
            if conn.catchup.is_empty() {
                let dur_us = ctx.now_us().saturating_sub(conn.connected_at_us);
                ctx.record("shb.catchup_duration_ms", dur_us as f64 / 1_000.0);
            }
            return needs;
        }
        // 3. Plan recovery within the flow-control window.
        let window_end = (cu.delivered_to + config.catchup_window_ticks)
            .min(con.processed_to)
            .min(pace_limit + config.catchup_window_ticks);
        let ld = con.latest_delivered;
        for (f, t) in cu.knowledge.q_ranges(cu.delivered_to, window_end) {
            // Below PFS coverage: events known to match → nack directly.
            let covered = cu.pfs_covered_to;
            if f <= covered {
                needs.holes.push((f, t.min(covered)));
            }
            // Between PFS coverage and latestDelivered: ask the PFS first
            // (that is the whole point of persistent filtering).
            if t > covered && f <= ld && covered < ld && !cu.reading {
                needs.want_read = true;
            }
            // Above latestDelivered: the PFS has nothing; recover from
            // the broker cache / upstream.
            let above = f.max(ld.next()).max(covered.next());
            if above <= t {
                needs.holes.push((above, t));
            }
        }
        conn.catchup.insert(p, cu);
        st.stats.nacks += needs.holes.len() as u64;
        needs
    }

    /// Restores volatile invariants after the owning broker crashed:
    /// every connection (and every parked-stream record — they are
    /// volatile observability state, rebuilt from durable checkpoints)
    /// is gone; constreams resume from the durable `latestDelivered`.
    pub fn post_restart(&mut self) {
        self.connected.clear();
        for (_, st) in self.table.iter_mut() {
            st.conn = None;
            st.parked.clear();
        }
        for worker in &mut self.workers {
            worker.queue.clear();
            worker.committing.clear();
            worker.busy = false;
        }
        for con in self.con.values_mut() {
            con.processed_to = con.latest_delivered;
        }
    }
}

/// Approximate wire bytes of one event delivery (payload plus a fixed
/// per-event frame covering pubend + tick), the weight unit of the
/// hottest-subscriber / hottest-pubend attribution dimensions.
fn delivery_bytes(e: &gryphon_types::Event) -> u64 {
    16 + e.payload.len() as u64
}

/// Sends a delivery directly, or queues it for a gated (JMS) subscriber
/// whose previous delivery has not been acknowledged-and-committed yet.
///
/// This is the single funnel every subscriber-bound event and gap passes
/// through, so it also emits the lineage ledger's terminal stage events
/// (`Delivered` / `GapDelivered`). For gated subscribers that is the
/// queue-accept point, not the later outbox drain — the broker commits
/// to exactly-once here.
fn deliver(
    conn: &mut Conn,
    sub: SubscriberId,
    msg: DeliveryMsg,
    gated: bool,
    path: DeliveryPath,
    ctx: &mut dyn NodeCtx,
) {
    match &msg.kind {
        DeliveryKind::Event(e) => {
            trace_event!(
                ctx,
                TraceEvent::Delivered {
                    pubend: msg.pubend,
                    ts: e.ts,
                    sub,
                    path,
                }
            );
        }
        DeliveryKind::Gap(upto) => {
            trace_event!(
                ctx,
                TraceEvent::GapDelivered {
                    pubend: msg.pubend,
                    sub,
                    upto: *upto,
                }
            );
        }
        DeliveryKind::Silence(_) => {}
    }
    if gated {
        conn.outbox.push_back(msg);
        pump_outbox(conn, sub, ctx);
    } else {
        ctx.send(
            conn.client,
            gryphon_types::NetMsg::Server(ServerMsg::Deliver { sub, msg }),
        );
    }
}

/// Sends the next queued delivery of a gated subscriber if none is in
/// flight.
fn pump_outbox(conn: &mut Conn, sub: SubscriberId, ctx: &mut dyn NodeCtx) {
    if conn.in_flight {
        return;
    }
    if let Some(msg) = conn.outbox.pop_front() {
        conn.in_flight = true;
        ctx.send(
            conn.client,
            gryphon_types::NetMsg::Server(ServerMsg::Deliver { sub, msg }),
        );
    }
}
