//! Dense per-subscriber state slab (`SubscriberTable`, DESIGN.md §15).
//!
//! The SHB is the scalability bottleneck of the paper's design: it holds
//! *all* per-durable-subscriber state, connected or not. Keeping that
//! state in parallel `HashMap`s (one per concern) costs several hash
//! entries, separate heap blocks and an id hash per touch for every
//! subscriber — per *event* on the delivery path. This module collapses
//! everything into one slab:
//!
//! * each durable subscription occupies one dense [`SubSlot`]
//!   (index + free-list generation) holding a [`SubState`] — spec,
//!   compiled filter, `released(s,p)` cursors, gated/broker-ct flags,
//!   the live connection (boxed, absent for idle subscribers) and the
//!   compact parked-stream records;
//! * the only `SubscriberId → slot` hash lookup happens at the edges
//!   (connect / subscribe / ack ingress); interior paths carry
//!   [`SubSlot`] and index the slab directly;
//! * slot assignment is shared with the matching index
//!   (`SubscriptionIndex::insert_at`), so a match result *is* a slab
//!   index;
//! * [`SubscriberTable::approx_bytes`] feeds the
//!   `telemetry.shb.bytes_per_idle_sub` gauge, making memory per idle
//!   subscriber an observable, gate-guarded number.

use super::shb::Conn;
use gryphon_matching::Filter;
use gryphon_types::{PubendId, SubSlot, SubscriberId, SubscriptionSpec, Timestamp};
use std::collections::HashMap;

/// A tiny sorted-vec map keyed by [`PubendId`].
///
/// Per-subscriber per-pubend state (release cursors, parked streams,
/// delivery cursors, catchup streams) is keyed by pubend, and realistic
/// subscribers touch a handful of pubends — a sorted `Vec` beats a hash
/// map on both bytes and lookup cost at that size, and its iteration
/// order is intrinsically ascending, so emission paths need no ad-hoc
/// sorting for determinism.
#[derive(Debug, Clone, Default)]
pub struct PubendMap<T> {
    entries: Vec<(PubendId, T)>,
}

impl<T> PubendMap<T> {
    /// Creates an empty map (no allocation until first insert).
    pub fn new() -> Self {
        PubendMap {
            entries: Vec::new(),
        }
    }

    fn pos(&self, p: PubendId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&p, |&(k, _)| k)
    }

    /// The value for `p`, if present.
    pub fn get(&self, p: PubendId) -> Option<&T> {
        self.pos(p).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `p`, if present.
    pub fn get_mut(&mut self, p: PubendId) -> Option<&mut T> {
        self.pos(p).ok().map(|i| &mut self.entries[i].1)
    }

    /// Mutable access to the value for `p`, inserting `T::default()`
    /// when absent.
    pub fn get_or_default(&mut self, p: PubendId) -> &mut T
    where
        T: Default,
    {
        let i = match self.pos(p) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (p, T::default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Inserts (or replaces) the value for `p`; returns the old value.
    pub fn insert(&mut self, p: PubendId, value: T) -> Option<T> {
        match self.pos(p) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (p, value));
                None
            }
        }
    }

    /// Removes and returns the value for `p`.
    pub fn remove(&mut self, p: PubendId) -> Option<T> {
        self.pos(p).ok().map(|i| self.entries.remove(i).1)
    }

    /// `true` when `p` has a value.
    pub fn contains_key(&self, p: PubendId) -> bool {
        self.pos(p).is_ok()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in ascending pubend order.
    pub fn iter(&self) -> impl Iterator<Item = (PubendId, &T)> + '_ {
        self.entries.iter().map(|(p, v)| (*p, v))
    }

    /// Mutably iterates entries in ascending pubend order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (PubendId, &mut T)> + '_ {
        self.entries.iter_mut().map(|(p, v)| (*p, v))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = PubendId> + '_ {
        self.entries.iter().map(|&(p, _)| p)
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Heap bytes owned by the entry vector itself (values' own heap is
    /// the caller's concern).
    pub fn approx_heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(PubendId, T)>()
    }
}

/// Drains all entries in ascending pubend order.
impl<T> IntoIterator for PubendMap<T> {
    type Item = (PubendId, T);
    type IntoIter = std::vec::IntoIter<(PubendId, T)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// Compact record of a catchup stream whose subscriber disconnected:
/// the constream position it had reached and its doubt floor — nothing
/// else (DESIGN.md §15).
///
/// An idle subscriber must not pin a full catchup stream (knowledge
/// parts, read buffers); those die with the connection. What survives,
/// multiplexed per pubend inside the slot, is this 16-byte record. On
/// reconnect the stream is rehydrated from the checkpoint protocol
/// exactly as a cold connect would build it — the parked positions are
/// observability (how far the stream had come) and memory accounting,
/// *not* resumption state, so ground-truth delivery is provably
/// unchanged by parking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParkedStream {
    /// `delivered_to` of the stream at park time.
    pub position: Timestamp,
    /// `pfs_covered_to` of the stream at park time.
    pub doubt_floor: Timestamp,
}

/// Per-slot population-attribution counters (DESIGN.md §18).
///
/// Bumped with plain adds on the hot delivery/catchup paths and drained
/// as window deltas by the SHB's periodic slab sweep, which feeds them
/// to the population sketch via `NodeCtx::attribute`. Kept `Copy` and
/// heap-free so a million idle slots pay four words each and
/// `approx_heap_bytes` is unaffected. Pure observation: nothing reads
/// these on any decision path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubStats {
    /// Payload bytes delivered (live + catchup) since the last sweep.
    pub bytes_delivered: u64,
    /// Catchup stream ticks served since the last sweep.
    pub catchup_ticks: u64,
    /// Checkpoint holes reported (nack-equivalent redelivery demand)
    /// since the last sweep.
    pub nacks: u64,
    /// Sim time (µs) this subscriber last disconnected; 0 while
    /// connected (or never yet connected). Lets the sweep attribute
    /// parked duration without storing a per-window delta.
    pub parked_since_us: u64,
}

impl SubStats {
    /// Takes the window deltas, resetting them to zero.
    /// `parked_since_us` survives — it is a point-in-time mark the
    /// connect path clears, not a delta.
    pub fn take_window(&mut self) -> SubStats {
        let out = *self;
        self.bytes_delivered = 0;
        self.catchup_ticks = 0;
        self.nacks = 0;
        out
    }

    /// `true` when every window delta is zero.
    pub fn window_is_empty(&self) -> bool {
        self.bytes_delivered == 0 && self.catchup_ticks == 0 && self.nacks == 0
    }
}

/// Everything the SHB knows about one durable subscription.
#[derive(Debug)]
pub struct SubState {
    /// The durable subscription id (slot → id is a slab read; id → slot
    /// is the edge hash).
    pub sub: SubscriberId,
    /// The subscription spec as registered (re-sent upstream on
    /// interest aggregation).
    pub spec: SubscriptionSpec,
    /// The compiled filter (catchup refiltering; the matching index
    /// holds its own copy at the same slot).
    pub filter: Filter,
    /// `released(s, p)` — survives disconnection; persisted
    /// periodically; freed with the slot (no dead-pair leaks).
    pub released: PubendMap<Timestamp>,
    /// Deliveries serialize on checkpoint commits (JMS auto-ack).
    pub gated: bool,
    /// The broker persists this subscriber's checkpoint (all JMS modes).
    pub broker_ct: bool,
    /// The live connection; `None` for idle subscribers. Boxed so an
    /// idle slot pays one pointer, not the full connection footprint.
    pub conn: Option<Box<Conn>>,
    /// Parked catchup positions of past connections (see
    /// [`ParkedStream`]); drained on reconnect.
    pub parked: PubendMap<ParkedStream>,
    /// Attribution counters drained by the periodic slab sweep (see
    /// [`SubStats`]). Survives disconnection like the cursors do.
    pub stats: SubStats,
}

impl SubState {
    /// Approximate heap bytes owned by this state (excluding the
    /// `Option<SubState>` slot itself, which the table accounts for).
    pub fn approx_heap_bytes(&self) -> usize {
        let mut n = self.spec.expr().len()
            + std::mem::size_of_val(self.filter.predicates())
            + self.released.approx_heap_bytes()
            + self.parked.approx_heap_bytes();
        if let Some(conn) = &self.conn {
            n += std::mem::size_of::<Conn>() + conn.approx_heap_bytes();
        }
        n
    }
}

/// The dense slab of durable-subscriber state hosted by one SHB.
///
/// Slots are recycled through a free list; each recycle bumps the
/// slot's generation, so a stale [`SubSlot`] (held across an
/// unsubscribe, e.g. by a pending timer) can never alias the next
/// tenant. The `SubscriberId → slot` hash exists for the ingress edges
/// only — every interior path indexes `states` directly.
#[derive(Debug, Default)]
pub struct SubscriberTable {
    states: Vec<Option<SubState>>,
    /// Current generation per slot index (bumped when freed).
    gens: Vec<u32>,
    free: Vec<u32>,
    /// Edge-only id → slot-index map.
    by_id: HashMap<SubscriberId, u32>,
}

impl SubscriberTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live subscriptions.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Total slots ever allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.states.len()
    }

    /// Edge lookup: the current slot of `sub`.
    pub fn slot_of(&self, sub: SubscriberId) -> Option<SubSlot> {
        let &i = self.by_id.get(&sub)?;
        Some(SubSlot::new(i, self.gens[i as usize]))
    }

    /// Registers `sub`, assigning a slot (replacing spec/filter in place
    /// if it is already registered — connection, release cursors and
    /// parked records are preserved). Returns the slot.
    pub fn insert(&mut self, sub: SubscriberId, spec: SubscriptionSpec, filter: Filter) -> SubSlot {
        if let Some(&i) = self.by_id.get(&sub) {
            let st = self.states[i as usize]
                .as_mut()
                .expect("by_id points at live slot");
            st.spec = spec;
            st.filter = filter;
            return SubSlot::new(i, self.gens[i as usize]);
        }
        let i = match self.free.pop() {
            Some(i) => i,
            None => {
                self.states.push(None);
                self.gens.push(0);
                (self.states.len() - 1) as u32
            }
        };
        debug_assert!(self.states[i as usize].is_none(), "free slot occupied");
        self.states[i as usize] = Some(SubState {
            sub,
            spec,
            filter,
            released: PubendMap::new(),
            gated: false,
            broker_ct: false,
            conn: None,
            parked: PubendMap::new(),
            stats: SubStats::default(),
        });
        self.by_id.insert(sub, i);
        SubSlot::new(i, self.gens[i as usize])
    }

    /// Frees `slot`, returning its state. The generation is bumped so
    /// every outstanding `SubSlot` for this index is invalidated, and
    /// the index is recycled — per-slot state (including `released`
    /// entries) is freed with it, never leaked.
    pub fn remove(&mut self, slot: SubSlot) -> Option<SubState> {
        let i = slot.index() as usize;
        if self.gens.get(i) != Some(&slot.generation()) {
            return None;
        }
        let st = self.states[i].take()?;
        self.by_id.remove(&st.sub);
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(slot.index());
        Some(st)
    }

    /// Generation-checked access.
    pub fn get(&self, slot: SubSlot) -> Option<&SubState> {
        let i = slot.index() as usize;
        if self.gens.get(i) != Some(&slot.generation()) {
            return None;
        }
        self.states[i].as_ref()
    }

    /// Generation-checked mutable access.
    pub fn get_mut(&mut self, slot: SubSlot) -> Option<&mut SubState> {
        let i = slot.index() as usize;
        if self.gens.get(i) != Some(&slot.generation()) {
            return None;
        }
        self.states[i].as_mut()
    }

    /// Access by bare index (match results, timer parameters), returning
    /// the current full [`SubSlot`] alongside the state.
    pub fn get_at(&self, index: u32) -> Option<(SubSlot, &SubState)> {
        let st = self.states.get(index as usize)?.as_ref()?;
        Some((SubSlot::new(index, self.gens[index as usize]), st))
    }

    /// Mutable access by bare index.
    pub fn get_at_mut(&mut self, index: u32) -> Option<(SubSlot, &mut SubState)> {
        let gen = *self.gens.get(index as usize)?;
        let st = self.states.get_mut(index as usize)?.as_mut()?;
        Some((SubSlot::new(index, gen), st))
    }

    /// Iterates live states in ascending slot order (a deterministic,
    /// intrinsic order — no sorting needed by emission paths).
    pub fn iter(&self) -> impl Iterator<Item = (SubSlot, &SubState)> + '_ {
        self.states.iter().enumerate().filter_map(|(i, s)| {
            s.as_ref()
                .map(|st| (SubSlot::new(i as u32, self.gens[i]), st))
        })
    }

    /// Mutably iterates live states in ascending slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SubSlot, &mut SubState)> + '_ {
        let gens = &self.gens;
        self.states
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, s)| s.as_mut().map(|st| (SubSlot::new(i as u32, gens[i]), st)))
    }

    /// Approximate bytes held by the slab: the dense arrays, the edge
    /// hash, and each live state's heap (spec text, compiled filter,
    /// release cursors, parked records, live connections). Feeds the
    /// `telemetry.shb.slab_bytes` / `telemetry.shb.bytes_per_idle_sub`
    /// gauges (DESIGN.md §15). An estimate, not an exact heap census —
    /// its job is to make regressions visible, and it errs low.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = self.states.capacity() * size_of::<Option<SubState>>()
            + self.gens.capacity() * size_of::<u32>()
            + self.free.capacity() * size_of::<u32>()
            + self.by_id.capacity() * (size_of::<(SubscriberId, u32)>() + size_of::<u64>());
        for st in self.states.iter().flatten() {
            total += st.approx_heap_bytes();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_for(table: &mut SubscriberTable, id: u64) -> SubSlot {
        table.insert(
            SubscriberId(id),
            SubscriptionSpec::new(format!("class = {id}")),
            Filter::parse(&format!("class = {id}")).unwrap(),
        )
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = SubscriberTable::new();
        let slot = state_for(&mut t, 7);
        assert_eq!(t.slot_of(SubscriberId(7)), Some(slot));
        assert_eq!(t.get(slot).unwrap().sub, SubscriberId(7));
        assert_eq!(t.len(), 1);
        // Re-registering replaces spec/filter in place, same slot.
        let again = t.insert(
            SubscriberId(7),
            SubscriptionSpec::new("class = 9"),
            Filter::parse("class = 9").unwrap(),
        );
        assert_eq!(again, slot);
        assert_eq!(t.get(slot).unwrap().spec.expr(), "class = 9");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn freed_slots_recycle_with_new_generation() {
        let mut t = SubscriberTable::new();
        let a = state_for(&mut t, 1);
        let st = t.remove(a).unwrap();
        assert_eq!(st.sub, SubscriberId(1));
        assert!(t.get(a).is_none(), "freed slot must reject the old gen");
        assert!(t.slot_of(SubscriberId(1)).is_none());
        let b = state_for(&mut t, 2);
        assert_eq!(b.index(), a.index(), "index recycled via free list");
        assert_ne!(b.generation(), a.generation(), "generation bumped");
        assert!(t.get(a).is_none(), "stale handle cannot alias new tenant");
        assert_eq!(t.get(b).unwrap().sub, SubscriberId(2));
        assert_eq!(t.capacity(), 1);
    }

    #[test]
    fn released_entries_die_with_the_slot() {
        // The released(s,p) cursors live inside the slot: recycling the
        // slot frees them; no dead (subscriber, pubend) pair survives.
        let mut t = SubscriberTable::new();
        let a = state_for(&mut t, 1);
        t.get_mut(a)
            .unwrap()
            .released
            .insert(PubendId(0), Timestamp(5));
        let st = t.remove(a).unwrap();
        assert_eq!(st.released.get(PubendId(0)), Some(&Timestamp(5)));
        let b = state_for(&mut t, 9); // recycles the same index
        assert!(t.get(b).unwrap().released.is_empty());
    }

    #[test]
    fn iteration_is_ascending_slot_order() {
        let mut t = SubscriberTable::new();
        for id in [30u64, 10, 20] {
            state_for(&mut t, id);
        }
        let order: Vec<u64> = t.iter().map(|(_, st)| st.sub.0).collect();
        assert_eq!(order, vec![30, 10, 20], "insertion order = slot order");
        let idxs: Vec<u32> = t.iter().map(|(s, _)| s.index()).collect();
        assert_eq!(idxs, vec![0, 1, 2]);
    }

    #[test]
    fn approx_bytes_tracks_population() {
        let mut t = SubscriberTable::new();
        let empty = t.approx_bytes();
        let slots: Vec<SubSlot> = (0..64).map(|i| state_for(&mut t, i)).collect();
        let full = t.approx_bytes();
        assert!(
            full > empty + 64 * 16,
            "64 subscriptions must cost real bytes: {empty} -> {full}"
        );
        for s in slots {
            t.remove(s);
        }
        let drained = t.approx_bytes();
        assert!(
            drained < full,
            "freeing states must release accounted bytes: {full} -> {drained}"
        );
    }

    #[test]
    fn pubend_map_is_sorted_and_compact() {
        let mut m: PubendMap<Timestamp> = PubendMap::new();
        assert!(m.is_empty());
        m.insert(PubendId(3), Timestamp(3));
        m.insert(PubendId(1), Timestamp(1));
        m.insert(PubendId(2), Timestamp(2));
        assert_eq!(m.len(), 3);
        let keys: Vec<u32> = m.keys().map(|p| p.0).collect();
        assert_eq!(keys, vec![1, 2, 3], "iteration intrinsically ascending");
        assert_eq!(m.get(PubendId(2)), Some(&Timestamp(2)));
        assert_eq!(m.insert(PubendId(2), Timestamp(9)), Some(Timestamp(2)));
        assert_eq!(m.remove(PubendId(1)), Some(Timestamp(1)));
        assert!(!m.contains_key(PubendId(1)));
        *m.get_or_default(PubendId(5)) = Timestamp(5);
        assert_eq!(m.get(PubendId(5)), Some(&Timestamp(5)));
        let drained: Vec<u32> = m.into_iter().map(|(p, _)| p.0).collect();
        assert_eq!(drained, vec![2, 3, 5]);
    }
}
