//! # Gryphon durable subscriptions
//!
//! A from-scratch Rust reproduction of *"Scalably Supporting Durable
//! Subscriptions in a Publish/Subscribe System"* (Bhola, Zhao, Auerbach —
//! DSN 2003): exactly-once delivery to durable subscribers in a
//! content-based publish/subscribe overlay, with each event persistently
//! logged **only once** in the whole system.
//!
//! ## Architecture
//!
//! Brokers form a tree per pubend. A [`Broker`] node can play any mix of
//! three roles simultaneously (the 1-broker topology of the paper plays
//! all three):
//!
//! * **Publisher hosting broker (PHB)** — hosts [pubends](broker::Pubend):
//!   assigns monotone timestamps, group-commits events to the persistent
//!   event log (the *only* event log in the system), answers nacks from
//!   its authoritative knowledge, and runs the release protocol root
//!   (`Tr(p)`/`Td(p)`, `maxRetain` early release);
//! * **Intermediate broker** — caches knowledge per pubend, filters data
//!   ticks against each child subtree's subscription set (forwarding
//!   non-matching events as silence), and consolidates nacks from below;
//! * **Subscriber hosting broker (SHB)** — maintains the consolidated
//!   stream (constream) for all non-catchup subscribers, one catchup
//!   stream per reconnecting subscriber, the
//!   [Persistent Filtering Subsystem](Pfs), durable `released(s, p)` /
//!   `latestDelivered(p)` state, and gap/silence generation.
//!
//! Clients are [`SubscriberClient`] (durable subscriber maintaining its
//! [checkpoint token](gryphon_types::CheckpointToken) client-side) and
//! [`PublisherClient`].
//!
//! All nodes are deterministic state machines run by
//! [`gryphon-sim`](gryphon_sim) (virtual time, crash injection) or by the
//! threaded runtime in `gryphon-net`.
//!
//! ## Example
//!
//! Build a 2-broker network (PHB + SHB), one publisher, one durable
//! subscriber; run for two virtual seconds and observe deliveries:
//!
//! ```
//! use gryphon::{Broker, BrokerConfig, PublisherClient, SubscriberClient, SubscriberConfig};
//! use gryphon_sim::Sim;
//! use gryphon_storage::MemFactory;
//! use gryphon_types::{PubendId, SubscriberId};
//!
//! let mut sim = Sim::new(1);
//! let phb = sim.add_typed_node(
//!     "phb",
//!     Broker::new(0, Box::new(MemFactory::new()), BrokerConfig::default())
//!         .hosting_pubends([PubendId(0)]),
//! );
//! let shb = sim.add_typed_node(
//!     "shb",
//!     Broker::new(1, Box::new(MemFactory::new()), BrokerConfig::default()).hosting_subscribers(),
//! );
//! sim.node(phb).add_child(shb.id());
//! sim.node(shb).set_parent(phb.id());
//! sim.connect(phb.id(), shb.id(), 1_000);
//!
//! let publisher = sim.add_typed_node(
//!     "pub",
//!     PublisherClient::new(phb.id(), PubendId(0), 100.0)
//!         .with_attrs(|_, _| [("class".into(), 0i64.into())].into()),
//! );
//! sim.connect(publisher.id(), phb.id(), 500);
//!
//! let subscriber = sim.add_typed_node(
//!     "sub",
//!     SubscriberClient::new(SubscriberId(1), shb.id(), "class = 0", SubscriberConfig::default()),
//! );
//! sim.connect(subscriber.id(), shb.id(), 500);
//!
//! sim.run_until(2_000_000);
//! assert!(sim.node_ref(subscriber).events_received() > 100);
//! assert_eq!(sim.node_ref(subscriber).gaps_received(), 0);
//! ```

pub mod broker;
pub mod client;
pub mod config;
pub mod pfs;
pub(crate) mod timer;

pub use broker::Broker;
pub use client::{PublisherClient, SubscriberClient, SubscriberConfig};
pub use config::{BrokerConfig, CostModel};
pub use pfs::{Pfs, PfsMode, PfsReadResult};
