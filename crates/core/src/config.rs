//! Broker tuning knobs and the CPU-cost calibration model.

use gryphon_streams::RetryPolicy;

/// CPU work charged to a broker per operation, in microseconds.
///
/// The simulator does not slow message processing down by these costs; it
/// *accounts* them per node, which is how the paper's "% CPU idle" plots
/// and peak-capacity estimates are reproduced. Defaults are calibrated so
/// that one SHB saturating at ≈20 K deliveries/s matches the paper's
/// single-SHB capacity (see EXPERIMENTS.md for the calibration note).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Matching one event against the subscription index.
    pub match_us: u64,
    /// Delivering one event to one non-catchup subscriber (constream path).
    pub delivery_us: u64,
    /// Delivering one event to one catchup subscriber (separate stream:
    /// per-subscriber knowledge bookkeeping, nack initiation, PFS-driven
    /// state). The catchup/constream cost ratio reproduces the paper's
    /// "10 K ev/s all-catchup vs 20 K ev/s constream" observation.
    pub catchup_delivery_us: u64,
    /// Writing one PFS record (timestamp + matching subscriber list).
    pub pfs_record_us: u64,
    /// Visiting one record during a PFS backpointer read.
    pub pfs_read_record_us: u64,
    /// Appending one event to the PHB event log.
    pub event_log_append_us: u64,
    /// Handling any message (protocol overhead).
    pub per_msg_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            match_us: 2,
            delivery_us: 48,
            catchup_delivery_us: 96,
            pfs_record_us: 6,
            pfs_read_record_us: 1,
            event_log_append_us: 8,
            per_msg_us: 3,
        }
    }
}

/// Configuration for a [`Broker`](crate::Broker).
///
/// Defaults follow the paper's experimental setup where it states one
/// (44 ms PHB group-commit latency, 250 ms `released(s)` persistence
/// period, 5000-tick PFS read buffer) and sensible middleware values
/// elsewhere.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    // ---- PHB / pubend ----
    /// Group-commit interval at the pubend: publishes buffered this long
    /// share one log sync.
    pub phb_commit_interval_us: u64,
    /// Modeled durability latency of one group commit (disk write +
    /// rotation; 44 ms in the paper's SSA-disk setup). Knowledge for an
    /// event is emitted downstream only after its commit completes —
    /// this is the dominant term of end-to-end latency.
    pub phb_commit_latency_us: u64,
    /// How often an idle pubend emits silence knowledge (bounds how far
    /// `latestDelivered` lags `T(p)` on a quiet stream).
    pub pubend_silence_interval_us: u64,
    /// Early-release policy `maxRetain(p)` in ticks (milliseconds of
    /// stream time); `None` disables early release (the paper's
    /// experiments disable it too).
    pub max_retain_ticks: Option<u64>,
    /// Maximum ticks of knowledge answered per nack-response message;
    /// bounds burst sizes during recovery.
    pub nack_response_chunk_ticks: u64,

    // ---- release protocol ----
    /// Period of upward `(released, latestDelivered)` aggregation and of
    /// release-driven log chopping.
    pub release_interval_us: u64,

    // ---- caching / routing ----
    /// How many ticks of knowledge an intermediate/SHB cache retains for
    /// answering nacks locally.
    pub cache_window_ticks: u64,
    /// Retry policy for upstream nacks.
    pub retry: RetryPolicy,
    /// How long the IB may hold a child's accumulated fresh knowledge
    /// before flushing it downstream as one message (the paper's silence
    /// consolidation amortizes per-message overhead at the cost of this
    /// much added knowledge latency). `0` disables batching: every
    /// knowledge message is forwarded immediately. Nack responses always
    /// bypass the batcher.
    pub knowledge_flush_interval_us: u64,
    /// Flush a child's pending knowledge batch for a pubend early once it
    /// holds this many parts (bounds message size and heap growth under
    /// bursts).
    pub knowledge_batch_max_parts: usize,

    // ---- SHB ----
    /// PFS group-commit interval: constream advances `latestDelivered`
    /// only at these sync points.
    pub pfs_sync_interval_us: u64,
    /// Period for persisting `released(s, p)` / `latestDelivered(p)` to
    /// the metadata table (250 ms in the paper).
    pub meta_persist_interval_us: u64,
    /// Period for sending silence messages to idle subscribers (keeps
    /// their checkpoint tokens advancing).
    pub client_silence_interval_us: u64,
    /// PFS read buffer size in Q ticks (5000 in the paper's experiments).
    pub catchup_read_buffer: usize,
    /// Flow control: maximum outstanding nacked ticks per catchup stream
    /// (the paper's scheme that avoids overwhelming the client).
    pub catchup_window_ticks: u64,
    /// Modeled base latency of one PFS batch read.
    pub pfs_read_base_us: u64,
    /// Modeled additional PFS read latency per record visited.
    pub pfs_read_per_record_us: u64,

    // ---- JMS-style broker-managed checkpoints ----
    /// Number of parallel commit workers for broker-managed checkpoint
    /// tokens (4 in the paper's JMS experiment).
    pub ct_commit_workers: usize,
    /// Modeled latency of one checkpoint-commit transaction: base cost...
    pub ct_commit_base_us: u64,
    /// ...plus this much per checkpoint update batched into it.
    pub ct_commit_per_update_us: u64,

    /// CPU cost calibration.
    pub costs: CostModel,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            phb_commit_interval_us: 4_000,
            phb_commit_latency_us: 44_000,
            pubend_silence_interval_us: 20_000,
            max_retain_ticks: None,
            nack_response_chunk_ticks: 2_000,
            release_interval_us: 250_000,
            cache_window_ticks: 60_000,
            retry: RetryPolicy::default(),
            knowledge_flush_interval_us: 1_000,
            knowledge_batch_max_parts: 64,
            pfs_sync_interval_us: 5_000,
            meta_persist_interval_us: 250_000,
            client_silence_interval_us: 100_000,
            catchup_read_buffer: 5_000,
            catchup_window_ticks: 2_000,
            pfs_read_base_us: 2_000,
            pfs_read_per_record_us: 1,
            ct_commit_workers: 4,
            ct_commit_base_us: 2_000,
            ct_commit_per_update_us: 500,
            costs: CostModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = BrokerConfig::default();
        assert_eq!(c.phb_commit_latency_us, 44_000);
        assert_eq!(c.meta_persist_interval_us, 250_000);
        assert_eq!(c.catchup_read_buffer, 5_000);
        assert_eq!(c.ct_commit_workers, 4);
        assert!(c.max_retain_ticks.is_none(), "early release off by default");
    }

    #[test]
    fn cost_model_catchup_is_pricier_than_constream() {
        let m = CostModel::default();
        assert!(m.catchup_delivery_us > m.delivery_us);
    }
}
