//! Client nodes: durable subscribers and publishers.
//!
//! A [`SubscriberClient`] owns its [`CheckpointToken`] (the paper's model:
//! the token lives *outside* the messaging system, updated in the
//! transaction that consumes messages), acknowledges periodically,
//! disconnects/reconnects on a schedule, detects broker death, and
//! verifies per-pubend delivery order as it consumes.

use gryphon_sim::{Node, NodeCtx, TimerKey};
use gryphon_types::{
    Attributes, CheckpointToken, ClientMsg, DeliveryKind, NetMsg, NodeId, PubendId, PublishMsg,
    ServerMsg, SubscriberId, SubscriptionSpec, Timestamp,
};
use rand::rngs::SmallRng;

const T_ACK: TimerKey = TimerKey(0x0C01);
const T_PROBE: TimerKey = TimerKey(0x0C02);
const T_DISCONNECT: TimerKey = TimerKey(0x0C03);
const T_RECONNECT: TimerKey = TimerKey(0x0C04);
const T_PUBLISH: TimerKey = TimerKey(0x0C05);
const T_SAMPLE: TimerKey = TimerKey(0x0C06);
const T_CONNECT: TimerKey = TimerKey(0x0C07);

/// Behaviour knobs for a [`SubscriberClient`].
#[derive(Debug, Clone)]
pub struct SubscriberConfig {
    /// Period of checkpoint acknowledgments (ignored in auto-ack mode).
    pub ack_interval_us: u64,
    /// Liveness probe: reconnect when the broker has been silent this
    /// long (and retry failed connects at this period).
    pub probe_interval_us: u64,
    /// When to connect for the first time.
    pub connect_at_us: u64,
    /// Voluntary disconnect period (disconnect-to-disconnect), `None` for
    /// an always-connected subscriber. The paper's scalability runs use
    /// 300 s.
    pub disconnect_period_us: Option<u64>,
    /// How long each voluntary disconnection lasts (5 s in the paper).
    pub disconnect_duration_us: u64,
    /// Offset of the *first* disconnect after connecting (defaults to one
    /// full period); topologies stagger this so reconnections trickle
    /// steadily instead of stampeding.
    pub disconnect_phase_us: Option<u64>,
    /// Extra delay before reconnecting after *detecting a broker crash*
    /// (the paper's §5.3 setup delays reconnection until the constream
    /// has caught up).
    pub crash_reconnect_delay_us: u64,
    /// Keep every received delivery for test inspection (memory!).
    pub collect: bool,
    /// Record a per-second received-event-rate series
    /// (`client{id}.rate`).
    pub sample_rate: bool,
    /// JMS-style: the broker manages the checkpoint token.
    pub broker_ct: bool,
    /// JMS auto-acknowledge: one acknowledgment per delivery.
    pub auto_ack: bool,
}

impl Default for SubscriberConfig {
    fn default() -> Self {
        SubscriberConfig {
            ack_interval_us: 100_000,
            probe_interval_us: 2_000_000,
            connect_at_us: 0,
            disconnect_period_us: None,
            disconnect_duration_us: 5_000_000,
            disconnect_phase_us: None,
            crash_reconnect_delay_us: 0,
            collect: false,
            sample_rate: false,
            broker_ct: false,
            auto_ack: false,
        }
    }
}

/// A record of one received delivery (when `collect` is on).
#[derive(Debug, Clone)]
pub struct Received {
    /// Virtual receive time.
    pub at_us: u64,
    /// Source pubend.
    pub pubend: PubendId,
    /// The advanced-to timestamp.
    pub ts: Timestamp,
    /// `"event"`, `"silence"` or `"gap"`.
    pub kind: &'static str,
    /// The `_seq` attribute of event deliveries (ground-truth checks).
    pub seq: Option<i64>,
    /// The `_sent_us` attribute (publish time) of event deliveries —
    /// end-to-end latency measurement.
    pub sent_us: Option<i64>,
}

/// A durable subscriber.
///
/// See the [crate docs](crate) for a wiring example.
#[derive(Debug)]
pub struct SubscriberClient {
    id: SubscriberId,
    shb: NodeId,
    spec: SubscriptionSpec,
    cfg: SubscriberConfig,
    /// The client-side checkpoint token (persistent across client
    /// crashes by assumption — the client stores it transactionally).
    ct: CheckpointToken,
    ever_connected: bool,
    connected: bool,
    voluntary_down: bool,
    last_traffic_us: u64,
    events: u64,
    silences: u64,
    gaps: u64,
    order_violations: u64,
    received: Vec<Received>,
    events_since_sample: u64,
    last_ts: std::collections::HashMap<PubendId, Timestamp>,
    /// Set at (re)connect when the resumption point lags the stream;
    /// cleared (recording `client.catchup_ms`) once deliveries are
    /// current again.
    catchup_since_us: Option<u64>,
    catchup_durations_ms: Vec<f64>,
}

impl SubscriberClient {
    /// Creates a durable subscriber that will attach to `shb`.
    pub fn new(
        id: SubscriberId,
        shb: NodeId,
        filter: impl Into<SubscriptionSpec>,
        cfg: SubscriberConfig,
    ) -> Self {
        SubscriberClient {
            id,
            shb,
            spec: filter.into(),
            cfg,
            ct: CheckpointToken::new(),
            ever_connected: false,
            connected: false,
            voluntary_down: false,
            last_traffic_us: 0,
            events: 0,
            silences: 0,
            gaps: 0,
            order_violations: 0,
            received: Vec::new(),
            events_since_sample: 0,
            last_ts: std::collections::HashMap::new(),
            catchup_since_us: None,
            catchup_durations_ms: Vec::new(),
        }
    }

    /// Events received so far.
    pub fn events_received(&self) -> u64 {
        self.events
    }

    /// Silence messages received so far.
    pub fn silences_received(&self) -> u64 {
        self.silences
    }

    /// Gap messages received so far.
    pub fn gaps_received(&self) -> u64 {
        self.gaps
    }

    /// Per-pubend order violations observed (must stay 0 — the
    /// exactly-once in-order guarantee).
    pub fn order_violations(&self) -> u64 {
        self.order_violations
    }

    /// Collected deliveries (empty unless `cfg.collect`).
    pub fn received(&self) -> &[Received] {
        &self.received
    }

    /// The current client-side checkpoint token.
    pub fn checkpoint(&self) -> &CheckpointToken {
        &self.ct
    }

    /// `true` while attached to the SHB.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Client-observed catchup durations (one entry per reconnect that
    /// had to recover missed messages), in milliseconds.
    pub fn catchup_durations_ms(&self) -> &[f64] {
        &self.catchup_durations_ms
    }

    /// `true` while recovering missed messages after a reconnect.
    pub fn is_catching_up(&self) -> bool {
        self.catchup_since_us.is_some()
    }

    /// Seeds the client with a checkpoint token carried over from a
    /// previous session (possibly at a *different* SHB — the
    /// reconnect-anywhere extension). The client will present it on its
    /// first connect.
    pub fn with_checkpoint(mut self, ct: CheckpointToken) -> Self {
        for (p, t) in ct.iter() {
            let e = self.last_ts.entry(p).or_default();
            *e = (*e).max(t);
        }
        self.ct.merge(&ct);
        self.ever_connected = true;
        self
    }

    fn connect(&mut self, ctx: &mut dyn NodeCtx) {
        let ct = if !self.ever_connected || self.cfg.broker_ct {
            None
        } else {
            Some(self.ct.clone())
        };
        ctx.send(
            self.shb,
            NetMsg::Client(ClientMsg::Connect {
                sub: self.id,
                ct,
                spec: Some(self.spec.clone()),
                broker_ct: self.cfg.broker_ct,
                auto_ack: self.cfg.auto_ack,
            }),
        );
        self.last_traffic_us = ctx.now_us();
    }

    fn send_ack(&mut self, ctx: &mut dyn NodeCtx) {
        ctx.send(
            self.shb,
            NetMsg::Client(ClientMsg::Ack {
                sub: self.id,
                ct: self.ct.clone(),
            }),
        );
    }
}

impl Node for SubscriberClient {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        ctx.set_timer(self.cfg.connect_at_us, T_CONNECT);
        ctx.set_timer(self.cfg.connect_at_us + self.cfg.ack_interval_us, T_ACK);
        ctx.set_timer(self.cfg.connect_at_us + self.cfg.probe_interval_us, T_PROBE);
        if let Some(period) = self.cfg.disconnect_period_us {
            let phase = self.cfg.disconnect_phase_us.unwrap_or(period).max(1);
            ctx.set_timer(self.cfg.connect_at_us + phase, T_DISCONNECT);
        }
        if self.cfg.sample_rate {
            ctx.set_timer(1_000_000, T_SAMPLE);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut dyn NodeCtx) {
        let NetMsg::Server(server) = msg else {
            return;
        };
        self.last_traffic_us = ctx.now_us();
        match server {
            ServerMsg::ConnectOk { sub, start } => {
                debug_assert_eq!(sub, self.id);
                self.connected = true;
                self.ever_connected = true;
                self.ct.merge(&start);
                let now_ticks = ctx.now_us() / 1_000;
                let mut lagging = false;
                for (p, t) in start.iter() {
                    let e = self.last_ts.entry(p).or_default();
                    *e = (*e).max(t);
                    if now_ticks.saturating_sub(e.0) > 2_000 {
                        lagging = true;
                    }
                }
                if lagging && self.catchup_since_us.is_none() {
                    self.catchup_since_us = Some(ctx.now_us());
                }
            }
            ServerMsg::ConnectErr { .. } => {
                self.connected = false;
            }
            ServerMsg::Deliver { sub, msg } => {
                debug_assert_eq!(sub, self.id);
                if !self.connected {
                    return; // in-flight deliveries after a disconnect
                }
                let ts = msg.ts();
                let p = msg.pubend;
                let last = self.last_ts.entry(p).or_default();
                if ts <= *last {
                    self.order_violations += 1;
                    ctx.count("client.order_violations", 1.0);
                    return;
                }
                *last = ts;
                self.ct.advance(p, ts);
                let (kind, seq, sent_us) = match &msg.kind {
                    DeliveryKind::Event(e) => {
                        self.events += 1;
                        self.events_since_sample += 1;
                        ctx.count("client.events", 1.0);
                        let seq = match e.attr("_seq") {
                            Some(gryphon_types::AttrValue::Int(v)) => Some(*v),
                            _ => None,
                        };
                        let sent = match e.attr("_sent_us") {
                            Some(gryphon_types::AttrValue::Int(v)) => Some(*v),
                            _ => None,
                        };
                        if self.cfg.collect {
                            if let Some(sent) = sent {
                                let lat_ms = (ctx.now_us() as i64 - sent) as f64 / 1_000.0;
                                ctx.record("client.latency_ms", lat_ms);
                            }
                        }
                        ("event", seq, sent)
                    }
                    DeliveryKind::Silence(_) => {
                        self.silences += 1;
                        ("silence", None, None)
                    }
                    DeliveryKind::Gap(_) => {
                        self.gaps += 1;
                        ctx.count("client.gaps", 1.0);
                        ("gap", None, None)
                    }
                };
                if self.cfg.collect {
                    self.received.push(Received {
                        at_us: ctx.now_us(),
                        pubend: p,
                        ts,
                        kind,
                        seq,
                        sent_us,
                    });
                }
                if let Some(since) = self.catchup_since_us {
                    // Caught up once every pubend's cursor is within 1.5 s
                    // of the virtual clock.
                    let now_ticks = ctx.now_us() / 1_000;
                    let current = self
                        .last_ts
                        .values()
                        .all(|t| now_ticks.saturating_sub(t.0) < 1_500);
                    if current {
                        let dur_ms = (ctx.now_us() - since) as f64 / 1_000.0;
                        self.catchup_durations_ms.push(dur_ms);
                        ctx.record("client.catchup_ms", dur_ms);
                        self.catchup_since_us = None;
                    }
                }
                if self.cfg.auto_ack {
                    self.send_ack(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        match key {
            T_CONNECT if !self.connected && !self.voluntary_down => {
                self.connect(ctx);
            }
            T_ACK => {
                if self.connected && !self.cfg.auto_ack {
                    self.send_ack(ctx);
                }
                ctx.set_timer(self.cfg.ack_interval_us, T_ACK);
            }
            T_PROBE => {
                let now = ctx.now_us();
                if !self.voluntary_down {
                    if !self.connected {
                        self.connect(ctx);
                    } else if now.saturating_sub(self.last_traffic_us) > self.cfg.probe_interval_us
                    {
                        // Broker presumed crashed.
                        self.connected = false;
                        ctx.count("client.crash_detected", 1.0);
                        if self.cfg.crash_reconnect_delay_us > 0 {
                            self.voluntary_down = true;
                            ctx.set_timer(self.cfg.crash_reconnect_delay_us, T_RECONNECT);
                        } else {
                            self.connect(ctx);
                        }
                    }
                }
                ctx.set_timer(self.cfg.probe_interval_us, T_PROBE);
            }
            T_DISCONNECT => {
                if self.connected {
                    ctx.send(
                        self.shb,
                        NetMsg::Client(ClientMsg::Disconnect { sub: self.id }),
                    );
                    self.connected = false;
                    self.voluntary_down = true;
                    ctx.set_timer(self.cfg.disconnect_duration_us, T_RECONNECT);
                }
                if let Some(period) = self.cfg.disconnect_period_us {
                    ctx.set_timer(period, T_DISCONNECT);
                }
            }
            T_RECONNECT => {
                self.voluntary_down = false;
                self.connect(ctx);
            }
            T_SAMPLE => {
                ctx.record(
                    &format!("client{}.rate", self.id.0),
                    self.events_since_sample as f64,
                );
                self.events_since_sample = 0;
                ctx.set_timer(1_000_000, T_SAMPLE);
            }
            _ => {}
        }
    }
}

/// Generates an event's attributes: `(sequence number, rng) → attrs`.
pub type AttrGen = Box<dyn FnMut(u64, &mut SmallRng) -> Attributes + Send>;

/// A publisher client: publishes to one pubend at a fixed rate.
///
/// Every event automatically carries a monotone `_seq` attribute so tests
/// and the harness can verify exactly-once delivery against ground truth.
pub struct PublisherClient {
    phb: NodeId,
    pubend: PubendId,
    interval_us: u64,
    start_at_us: u64,
    payload_len: usize,
    attr_gen: Option<AttrGen>,
    seq: u64,
    stop_after: Option<u64>,
}

impl std::fmt::Debug for PublisherClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublisherClient")
            .field("pubend", &self.pubend)
            .field("interval_us", &self.interval_us)
            .field("seq", &self.seq)
            .finish()
    }
}

impl PublisherClient {
    /// Creates a publisher for `pubend` (hosted at broker node `phb`)
    /// publishing `rate` events per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(phb: NodeId, pubend: PubendId, rate: f64) -> Self {
        assert!(rate > 0.0, "publish rate must be positive");
        PublisherClient {
            phb,
            pubend,
            interval_us: (1_000_000.0 / rate).max(1.0) as u64,
            start_at_us: 0,
            payload_len: 250,
            attr_gen: None,
            seq: 0,
            stop_after: None,
        }
    }

    /// Sets the attribute generator (default: no attributes beyond
    /// `_seq`).
    pub fn with_attrs(
        mut self,
        f: impl FnMut(u64, &mut SmallRng) -> Attributes + Send + 'static,
    ) -> Self {
        self.attr_gen = Some(Box::new(f));
        self
    }

    /// Sets the application payload size (250 bytes in the paper: 418 on
    /// the wire with headers).
    pub fn with_payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Delays the first publish.
    pub fn starting_at(mut self, at_us: u64) -> Self {
        self.start_at_us = at_us;
        self
    }

    /// Stops after publishing this many events (for bounded tests).
    pub fn stop_after(mut self, n: u64) -> Self {
        self.stop_after = Some(n);
        self
    }

    /// Events published so far.
    pub fn published(&self) -> u64 {
        self.seq
    }
}

impl Node for PublisherClient {
    fn on_start(&mut self, ctx: &mut dyn NodeCtx) {
        ctx.set_timer(self.start_at_us + self.interval_us, T_PUBLISH);
    }

    fn on_message(&mut self, _from: NodeId, _msg: NetMsg, _ctx: &mut dyn NodeCtx) {}

    fn on_timer(&mut self, key: TimerKey, ctx: &mut dyn NodeCtx) {
        if key != T_PUBLISH {
            return;
        }
        if let Some(limit) = self.stop_after {
            if self.seq >= limit {
                return;
            }
        }
        let mut attrs = match &mut self.attr_gen {
            Some(f) => f(self.seq, ctx.rng()),
            None => Attributes::new(),
        };
        attrs.insert("_seq".into(), (self.seq as i64).into());
        attrs.insert("_sent_us".into(), (ctx.now_us() as i64).into());
        ctx.send(
            self.phb,
            NetMsg::Publish(PublishMsg {
                pubend: self.pubend,
                attrs,
                payload: bytes::Bytes::from(vec![0u8; self.payload_len]),
            }),
        );
        self.seq += 1;
        ctx.count("pub.published", 1.0);
        ctx.set_timer(self.interval_us, T_PUBLISH);
    }
}
